#include "shmd-lint/lexer.hpp"

#include <array>
#include <cctype>

namespace shmd::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-char operators, longest first so maximal munch is a linear scan.
constexpr std::array<std::string_view, 26> kOperators = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
};

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) scan_one();
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      at_line_start_ = true;
    }
    return c;
  }

  Token& emit(TokenKind kind, int start_line, std::string text) {
    Token& tok = out_.emplace_back();
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = start_line;
    tok.end_line = line_;
    tok.line_leading = leading_pending_;
    leading_pending_ = false;
    return tok;
  }

  void scan_one() {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f') {
      advance();
      return;
    }
    leading_pending_ = at_line_start_;
    at_line_start_ = false;
    if (c == '/' && peek(1) == '/') return scan_line_comment();
    if (c == '/' && peek(1) == '*') return scan_block_comment();
    if (c == '#' && leading_pending_) return scan_directive();
    if (c == '"') return scan_string();
    if (c == '\'') return scan_char();
    if (digit(c) || (c == '.' && digit(peek(1)))) return scan_number();
    if (ident_start(c)) return scan_identifier();
    scan_punct();
  }

  void scan_line_comment() {
    const int start = line_;
    advance();
    advance();
    std::string body;
    while (pos_ < src_.size() && peek() != '\n') body.push_back(advance());
    emit(TokenKind::kComment, start, std::move(body));
  }

  void scan_block_comment() {
    const int start = line_;
    advance();
    advance();
    std::string body;
    while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) body.push_back(advance());
    if (pos_ < src_.size()) {
      advance();
      advance();
    }
    emit(TokenKind::kComment, start, std::move(body));
  }

  // A preprocessor logical line: from '#' to the first unescaped newline,
  // stopping short of a trailing comment (which is lexed normally so its
  // suppression annotation, if any, is still seen).
  void scan_directive() {
    const int start = line_;
    std::string body;
    while (pos_ < src_.size()) {
      if (peek() == '\n') break;
      if (peek() == '\\' && peek(1) == '\n') {
        advance();
        advance();
        body.push_back(' ');
        continue;
      }
      if (peek() == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      body.push_back(advance());
    }
    while (!body.empty() && (body.back() == ' ' || body.back() == '\t')) body.pop_back();
    emit(TokenKind::kDirective, start, std::move(body));
  }

  void scan_string() {
    const int start = line_;
    advance();  // opening quote
    std::string body;
    while (pos_ < src_.size() && peek() != '"') {
      if (peek() == '\\' && pos_ + 1 < src_.size()) body.push_back(advance());
      body.push_back(advance());
    }
    if (pos_ < src_.size()) advance();  // closing quote
    emit(TokenKind::kString, start, std::move(body));
  }

  void scan_raw_string() {
    const int start = line_;
    advance();  // opening quote
    std::string delim;
    while (pos_ < src_.size() && peek() != '(') delim.push_back(advance());
    if (pos_ < src_.size()) advance();  // '('
    const std::string close = ")" + delim + "\"";
    std::string body;
    while (pos_ < src_.size() && src_.compare(pos_, close.size(), close) != 0) {
      body.push_back(advance());
    }
    for (std::size_t i = 0; i < close.size() && pos_ < src_.size(); ++i) advance();
    emit(TokenKind::kString, start, std::move(body));
  }

  void scan_char() {
    const int start = line_;
    advance();  // opening quote
    std::string body;
    while (pos_ < src_.size() && peek() != '\'') {
      if (peek() == '\\' && pos_ + 1 < src_.size()) body.push_back(advance());
      body.push_back(advance());
    }
    if (pos_ < src_.size()) advance();
    emit(TokenKind::kString, start, std::move(body));
  }

  // pp-number: digits, letters, dots, digit separators, and signs directly
  // after an exponent marker. Deliberately permissive — classification
  // (integer vs floating) is the rules' job.
  void scan_number() {
    const int start = line_;
    std::string body;
    body.push_back(advance());
    while (pos_ < src_.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        body.push_back(advance());
        continue;
      }
      if ((c == '+' || c == '-') && !body.empty()) {
        const char prev = body.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          body.push_back(advance());
          continue;
        }
      }
      break;
    }
    emit(TokenKind::kNumber, start, std::move(body));
  }

  void scan_identifier() {
    const int start = line_;
    std::string body;
    while (pos_ < src_.size() && ident_char(peek())) body.push_back(advance());
    // String-literal encoding prefixes: L"", u8"", R"()", u8R"()", ...
    if (peek() == '"' && (body == "L" || body == "u" || body == "U" || body == "u8" ||
                          body == "R" || body == "LR" || body == "uR" || body == "UR" ||
                          body == "u8R")) {
      if (body.back() == 'R') return scan_raw_string();
      return scan_string();
    }
    emit(TokenKind::kIdentifier, start, std::move(body));
  }

  void scan_punct() {
    const int start = line_;
    for (const std::string_view op : kOperators) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        emit(TokenKind::kPunct, start, std::string(op));
        return;
      }
    }
    emit(TokenKind::kPunct, start, std::string(1, advance()));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool leading_pending_ = false;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Scanner(source).run(); }

}  // namespace shmd::lint
