// The shmd-lint rule registry.
//
// Each rule machine-checks one invariant the paper's defense depends on
// (see DESIGN.md "Machine-checked invariants" for the full rationale):
//
//   R1 fault-coverage  — every floating-point product in fault-injectable
//        code (src/nn/, src/hmd/) must flow through ArithmeticContext::mul
//        or dot(), because §VI.A injects undervolting faults per MAC
//        *product*; one raw `a * b` on an inference path silently bypasses
//        the defense. Raw products inside a dot() override of an
//        ArithmeticContext subclass are the sanctioned span kernels
//        themselves and are recognized structurally (or via the
//        "span-kernel" tag for kernels the heuristic cannot see).
//   R2 rng-discipline  — std::rand/srand/std::random_device only inside
//        src/rng/entropy.*; everything else uses the project RandomSource
//        hierarchy so the per-worker jump() streams stay deterministic.
//   R3 stream-hygiene  — no std::cout/printf in src/ library code; the
//        library computes, benches and examples narrate.
//   R4 header-hygiene  — #pragma once first in every header, include
//        blocks sorted, no duplicate includes.
//   R5 socket-discipline — socket/readiness syscalls (socket, bind, send,
//        recv, epoll_*, ...) only inside src/net/; transport leaking into
//        scoring or model code couples the detector to I/O and makes the
//        determinism contract unauditable.
//   R6 lock-discipline — concurrent layers (src/serve/, src/net/,
//        src/runtime/) use the annotated util::Mutex/util::CondVar
//        primitives (raw std::mutex is invisible to Clang Thread Safety
//        Analysis), every mutex guards at least one SHMD_GUARDED_BY
//        member, and every CondVar declares its mutex via
//        SHMD_CV_WAITS_ON.
//   R7 atomic-ordering — every std::atomic load/store/exchange/fetch_*/
//        compare_exchange in src/ names an explicit std::memory_order;
//        an implicit seq_cst is a decision nobody made. Cross-file: the
//        atomic-member registry is built from every header in the
//        project, so uses in a .cpp of members declared in its .hpp are
//        still seen.
//   R8 determinism-taint — the pure scoring layers (src/nn/, src/hmd/,
//        src/faultsim/, src/rng/ minus entropy.*) must not read wall
//        clocks, thread ids, or thread-local state: a detector whose
//        verdict depends on when or where it ran cannot be replayed.
//   R9 layering        — cross-directory includes must follow the layer
//        DAG (util/rng → trace/faultsim/volt → nn → eval/sys → hmd →
//        attack/runtime → serve → net); an upward or sideways include
//        couples a lower layer to a higher one and makes the
//        determinism/transport boundaries unauditable.
//   R0 annotation      — suppression annotations must be well-formed and
//        carry a reason; emitted by the linter driver, not the registry.
//
// R1-R6 and R8 see one lexed SourceFile at a time (`Rule`); R7 and R9
// need the whole lexed project at once (`ProjectRule`). The driver
// (linter.hpp) applies suppressions afterwards so every rule stays
// suppression-agnostic.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/source_file.hpp"

namespace shmd::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule_id;
  std::string message;
  std::string hint;
};

/// Identity shared by per-file and whole-project rules: id, name, the
/// suppression tags that overrule it, and the paper rationale shown by
/// `shmd-lint --list-rules`.
class RuleInfo {
 public:
  virtual ~RuleInfo() = default;

  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Primary annotation tag that overrules this rule, e.g. "exact-ok".
  [[nodiscard]] virtual std::string_view suppression_tag() const noexcept = 0;
  /// Every tag that overrules this rule. Defaults to the primary tag
  /// alone; rules with specialized escape hatches (R1's "span-kernel")
  /// override this to accept more than one.
  [[nodiscard]] virtual std::vector<std::string_view> suppression_tags() const {
    return {suppression_tag()};
  }
  /// One-line paper rationale, shown by `shmd-lint --list-rules`.
  [[nodiscard]] virtual std::string_view rationale() const noexcept = 0;
};

/// A rule that judges one translation unit in isolation.
class Rule : public RuleInfo {
 public:
  [[nodiscard]] virtual bool applies(const SourceFile& file) const = 0;
  virtual void check(const SourceFile& file, std::vector<Diagnostic>& out) const = 0;
};

/// A rule that needs the whole lexed project at once — cross-file state
/// like R7's atomic-member registry (members declared in one header, used
/// in another file) or R9's include graph. Runs after the per-file rules;
/// `files` is every source handed to Linter::lint_project, already lexed.
class ProjectRule : public RuleInfo {
 public:
  virtual void check_project(const std::vector<SourceFile>& files,
                             std::vector<Diagnostic>& out) const = 0;
};

/// All shipped per-file rules, in id order (R1..R6, R8).
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

/// All shipped whole-project rules, in id order (R7, R9).
[[nodiscard]] std::vector<std::unique_ptr<ProjectRule>> default_project_rules();

}  // namespace shmd::lint
