// The shmd-lint rule registry.
//
// Each rule machine-checks one invariant the paper's defense depends on
// (see DESIGN.md "Machine-checked invariants" for the full rationale):
//
//   R1 fault-coverage  — every floating-point product in fault-injectable
//        code (src/nn/, src/hmd/) must flow through ArithmeticContext::mul
//        or dot(), because §VI.A injects undervolting faults per MAC
//        *product*; one raw `a * b` on an inference path silently bypasses
//        the defense. Raw products inside a dot() override of an
//        ArithmeticContext subclass are the sanctioned span kernels
//        themselves and are recognized structurally (or via the
//        "span-kernel" tag for kernels the heuristic cannot see).
//   R2 rng-discipline  — std::rand/srand/std::random_device only inside
//        src/rng/entropy.*; everything else uses the project RandomSource
//        hierarchy so the per-worker jump() streams stay deterministic.
//   R3 stream-hygiene  — no std::cout/printf in src/ library code; the
//        library computes, benches and examples narrate.
//   R4 header-hygiene  — #pragma once first in every header, include
//        blocks sorted, no duplicate includes.
//   R5 socket-discipline — socket/readiness syscalls (socket, bind, send,
//        recv, epoll_*, ...) only inside src/net/; transport leaking into
//        scoring or model code couples the detector to I/O and makes the
//        determinism contract unauditable.
//   R0 annotation      — suppression annotations must be well-formed and
//        carry a reason; emitted by the linter driver, not the registry.
//
// A rule sees one lexed SourceFile at a time and appends Diagnostics; the
// driver (linter.hpp) applies suppressions afterwards so every rule stays
// suppression-agnostic.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/source_file.hpp"

namespace shmd::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule_id;
  std::string message;
  std::string hint;
};

class Rule {
 public:
  virtual ~Rule() = default;

  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Primary annotation tag that overrules this rule, e.g. "exact-ok".
  [[nodiscard]] virtual std::string_view suppression_tag() const noexcept = 0;
  /// Every tag that overrules this rule. Defaults to the primary tag
  /// alone; rules with specialized escape hatches (R1's "span-kernel")
  /// override this to accept more than one.
  [[nodiscard]] virtual std::vector<std::string_view> suppression_tags() const {
    return {suppression_tag()};
  }
  /// One-line paper rationale, shown by `shmd-lint --list-rules`.
  [[nodiscard]] virtual std::string_view rationale() const noexcept = 0;

  [[nodiscard]] virtual bool applies(const SourceFile& file) const = 0;
  virtual void check(const SourceFile& file, std::vector<Diagnostic>& out) const = 0;
};

/// All shipped rules, in id order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

}  // namespace shmd::lint
