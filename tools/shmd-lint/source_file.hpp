// SourceFile: one lexed translation unit plus its suppression annotations.
//
// A rule diagnostic can be silenced in place with
//
//   // shmd-lint: exact-ok(training-time gradient, never runs undervolted)
//
// where the tag (`exact-ok`, `rng-ok`, `stream-ok`, `header-ok`) selects
// which rule is being overruled and the parenthesized reason is MANDATORY
// — an annotation is an argument addressed to the next reader, not a mute
// button. A trailing annotation covers its own line; a standalone one
// covers the whole statement below it (through the next `;`, bounded).
// Malformed or reason-less annotations are themselves reported (rule R0),
// so a typo cannot silently disable checking.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/lexer.hpp"

namespace shmd::lint {

struct Suppression {
  std::string tag;     // e.g. "exact-ok"
  std::string reason;  // text inside the parentheses
  int line = 0;        // first line the suppression covers
  int last_line = 0;   // last line it covers (== line, or line+1 for standalone)
};

struct BadAnnotation {
  int line = 0;
  std::string detail;  // what is wrong, for the R0 diagnostic
};

class SourceFile {
 public:
  SourceFile(std::string path, std::string content);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& content() const noexcept { return content_; }
  [[nodiscard]] const std::vector<Token>& tokens() const noexcept { return tokens_; }
  [[nodiscard]] const std::vector<Suppression>& suppressions() const noexcept {
    return suppressions_;
  }
  [[nodiscard]] const std::vector<BadAnnotation>& bad_annotations() const noexcept {
    return bad_annotations_;
  }

  /// True when a well-formed `tag(reason)` annotation covers `line`.
  [[nodiscard]] bool suppressed(int line, std::string_view tag) const noexcept;

  [[nodiscard]] bool is_header() const noexcept;
  [[nodiscard]] bool in_dir(std::string_view prefix) const noexcept;  // e.g. "src/nn/"

 private:
  void parse_annotations();
  /// Last line a standalone annotation at token `comment_index` covers:
  /// the end of the statement below it (next `;`/`{`/`}`), bounded.
  [[nodiscard]] int statement_end(std::size_t comment_index) const noexcept;

  std::string path_;
  std::string content_;
  std::vector<Token> tokens_;
  std::vector<Suppression> suppressions_;
  std::vector<BadAnnotation> bad_annotations_;
};

}  // namespace shmd::lint
