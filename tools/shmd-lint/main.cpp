// shmd-lint CLI.
//
//   shmd-lint [--root <repo-root>] [--list-rules] [path...]
//
// Paths default to "src", "bench" and "examples" under the root (each
// rule still decides which trees it applies to); directories are scanned
// recursively for .cpp/.hpp. Exit status: 0 clean, 1 violations found,
// 2 usage or I/O error. Wired into the build as `cmake --build build
// --target lint` and into CI as the `lint` job.
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/linter.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <repo-root>] [--list-rules] [path...]\n"
               "  Scans .cpp/.hpp files for Stochastic-HMD project-invariant violations.\n"
               "  Paths are resolved against --root (default: current directory).\n",
               argv0);
  return 2;
}

void list_rules(const shmd::lint::Linter& linter) {
  for (const auto& rule : linter.rules()) {
    std::string tags;
    for (const std::string_view tag : rule->suppression_tags()) {
      if (!tags.empty()) tags += " or ";
      tags += "// shmd-lint: ";
      tags += tag;
      tags += "(<reason>)";
    }
    std::printf("%s %-16s suppress: %s\n    %s\n", std::string(rule->id()).c_str(),
                std::string(rule->name()).c_str(), tags.c_str(),
                std::string(rule->rationale()).c_str());
  }
  std::printf("R0 annotation       (not suppressible)\n"
              "    suppression annotations themselves must be well-formed and carry a reason\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = std::filesystem::current_path();
  std::vector<std::filesystem::path> paths;
  bool want_rule_list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--list-rules") {
      want_rule_list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.starts_with("--")) {
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }

  const shmd::lint::Linter linter;
  if (want_rule_list) {
    list_rules(linter);
    return 0;
  }
  if (paths.empty()) {
    paths.emplace_back("src");
    paths.emplace_back("bench");
    paths.emplace_back("examples");
  }

  std::size_t violations = 0;
  std::size_t files = 0;
  bool io_error = false;
  for (const std::filesystem::path& raw : paths) {
    const std::filesystem::path base = raw.is_absolute() ? raw : root / raw;
    if (!std::filesystem::exists(base)) {
      std::fprintf(stderr, "shmd-lint: no such path: %s\n", base.string().c_str());
      io_error = true;
      continue;
    }
    for (const std::filesystem::path& file : shmd::lint::collect_sources(base)) {
      ++files;
      for (const shmd::lint::Diagnostic& diag : linter.lint_file(file, root)) {
        if (diag.rule_id == "IO") io_error = true;
        ++violations;
        std::printf("%s\n", shmd::lint::format_diagnostic(diag).c_str());
      }
    }
  }

  if (violations == 0) {
    std::fprintf(stderr, "shmd-lint: %zu files clean\n", files);
  } else {
    std::fprintf(stderr, "shmd-lint: %zu violation(s) in %zu files scanned\n", violations, files);
  }
  if (io_error) return 2;
  return violations == 0 ? 0 : 1;
}
