// shmd-lint CLI.
//
//   shmd-lint [--root <repo-root>] [--jobs <n>] [--list-rules] [path...]
//
// Paths default to "src", "bench" and "examples" under the root (each
// rule still decides which trees it applies to); directories are scanned
// recursively for .cpp/.hpp. The whole file set is linted as ONE project:
// per-file rules run across --jobs worker threads (0 = all cores, the
// default) and the cross-file rules (R7 atomic-ordering, R9 layering)
// run over the combined include/declaration graph, so the output is
// identical for any job count. A per-rule diagnostic count table goes to
// stderr after the scan. Exit status: 0 clean, 1 violations found,
// 2 usage or I/O error. Wired into the build as `cmake --build build
// --target lint` and into CI as the `lint` job.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/linter.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <repo-root>] [--jobs <n>] [--list-rules] [path...]\n"
               "  Scans .cpp/.hpp files for Stochastic-HMD project-invariant violations.\n"
               "  Paths are resolved against --root (default: current directory).\n"
               "  --jobs 0 (default) uses every hardware thread for the per-file phase.\n",
               argv0);
  return 2;
}

/// Both registries merged and ordered by id, for --list-rules and the
/// count table.
std::vector<const shmd::lint::RuleInfo*> all_rules(const shmd::lint::Linter& linter) {
  std::vector<const shmd::lint::RuleInfo*> rules;
  for (const auto& rule : linter.rules()) rules.push_back(rule.get());
  for (const auto& rule : linter.project_rules()) rules.push_back(rule.get());
  std::sort(rules.begin(), rules.end(),
            [](const shmd::lint::RuleInfo* a, const shmd::lint::RuleInfo* b) {
              return a->id() < b->id();
            });
  return rules;
}

void list_rules(const shmd::lint::Linter& linter) {
  for (const shmd::lint::RuleInfo* rule : all_rules(linter)) {
    std::string tags;
    for (const std::string_view tag : rule->suppression_tags()) {
      if (!tags.empty()) tags += " or ";
      tags += "// shmd-lint: ";
      tags += tag;
      tags += "(<reason>)";
    }
    std::printf("%s %-16s suppress: %s\n    %s\n", std::string(rule->id()).c_str(),
                std::string(rule->name()).c_str(), tags.c_str(),
                std::string(rule->rationale()).c_str());
  }
  std::printf("R0 annotation       (not suppressible)\n"
              "    suppression annotations themselves must be well-formed and carry a reason\n");
}

/// Per-rule diagnostic counts, every shipped rule listed (zeros included)
/// so the CI log shows at a glance which invariants fired.
void print_rule_counts(const shmd::lint::Linter& linter,
                       const std::vector<shmd::lint::Diagnostic>& diags) {
  std::map<std::string, std::size_t> counts;
  for (const shmd::lint::Diagnostic& diag : diags) ++counts[diag.rule_id];
  std::fprintf(stderr, "shmd-lint: per-rule diagnostics:\n");
  std::fprintf(stderr, "  R0 %-18s %zu\n", "annotation", counts["R0"]);
  for (const shmd::lint::RuleInfo* rule : all_rules(linter)) {
    std::fprintf(stderr, "  %s %-18s %zu\n", std::string(rule->id()).c_str(),
                 std::string(rule->name()).c_str(), counts[std::string(rule->id())]);
  }
  if (counts.contains("IO")) std::fprintf(stderr, "  IO %-18s %zu\n", "unreadable", counts["IO"]);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = std::filesystem::current_path();
  std::vector<std::filesystem::path> paths;
  bool want_rule_list = false;
  std::size_t jobs = 0;  // 0 = all cores

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--jobs" || arg == "-j") {
      if (++i >= argc) return usage(argv[0]);
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0') return usage(argv[0]);
      jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--list-rules") {
      want_rule_list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.starts_with("--")) {
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }

  const shmd::lint::Linter linter;
  if (want_rule_list) {
    list_rules(linter);
    return 0;
  }
  if (paths.empty()) {
    paths.emplace_back("src");
    paths.emplace_back("bench");
    paths.emplace_back("examples");
  }

  std::vector<std::filesystem::path> files;
  bool io_error = false;
  for (const std::filesystem::path& raw : paths) {
    const std::filesystem::path base = raw.is_absolute() ? raw : root / raw;
    if (!std::filesystem::exists(base)) {
      std::fprintf(stderr, "shmd-lint: no such path: %s\n", base.string().c_str());
      io_error = true;
      continue;
    }
    for (std::filesystem::path& file : shmd::lint::collect_sources(base)) {
      files.push_back(std::move(file));
    }
  }

  const std::vector<shmd::lint::Diagnostic> diags = linter.lint_project_files(files, root, jobs);
  for (const shmd::lint::Diagnostic& diag : diags) {
    if (diag.rule_id == "IO") io_error = true;
    std::printf("%s\n", shmd::lint::format_diagnostic(diag).c_str());
  }

  if (diags.empty()) {
    std::fprintf(stderr, "shmd-lint: %zu files clean\n", files.size());
  } else {
    std::fprintf(stderr, "shmd-lint: %zu violation(s) in %zu files scanned\n", diags.size(),
                 files.size());
  }
  print_rule_counts(linter, diags);
  if (io_error) return 2;
  return diags.empty() ? 0 : 1;
}
