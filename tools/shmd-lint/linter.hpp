// Linter driver: applies the rule registry to sources and resolves
// suppression annotations.
//
// Rules emit every candidate diagnostic; the driver then drops the ones a
// matching `// shmd-lint: <tag>(<reason>)` annotation covers, and adds R0
// diagnostics for malformed annotations and for tags no rule owns. Split
// from main.cpp so tests/lint_test.cpp can lint in-memory fixtures.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/rules.hpp"

namespace shmd::lint {

class Linter {
 public:
  Linter() : rules_(default_rules()) {}

  /// Lint one in-memory source. `path` must be repo-relative with forward
  /// slashes (e.g. "src/nn/network.cpp") — rules scope on it.
  [[nodiscard]] std::vector<Diagnostic> lint_source(std::string path, std::string content) const;

  /// Lint a file on disk; `repo_root` anchors the repo-relative path.
  /// I/O failures become a diagnostic rather than an exception.
  [[nodiscard]] std::vector<Diagnostic> lint_file(const std::filesystem::path& file,
                                                  const std::filesystem::path& repo_root) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const noexcept { return rules_; }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Recursively collect the .cpp/.hpp files under `path` (or `path` itself
/// when it is a regular file), sorted for stable output.
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(const std::filesystem::path& path);

/// Render one diagnostic as "file:line: [Rn] message" (+ indented hint).
[[nodiscard]] std::string format_diagnostic(const Diagnostic& diag);

}  // namespace shmd::lint
