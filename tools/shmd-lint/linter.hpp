// Linter driver: applies the rule registry to sources and resolves
// suppression annotations.
//
// Rules emit every candidate diagnostic; the driver then drops the ones a
// matching `// shmd-lint: <tag>(<reason>)` annotation covers, and adds R0
// diagnostics for malformed annotations and for tags no rule owns. Split
// from main.cpp so tests/lint_test.cpp can lint in-memory fixtures.
//
// Two entry points:
//   * lint_source/lint_file — one translation unit, per-file rules only.
//   * lint_project — the whole file set at once: per-file rules run in
//     parallel across worker threads (output independent of the thread
//     count — results are merged in slot order), then the cross-file
//     rules (R7 atomic-ordering, R9 layering) run serially over the
//     lexed project.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "shmd-lint/rules.hpp"

namespace shmd::lint {

/// One unread source handed to lint_project: repo-relative path (forward
/// slashes) plus its content. Lexing happens inside the parallel phase.
struct RawSource {
  std::string path;
  std::string content;
};

class Linter {
 public:
  Linter() : rules_(default_rules()), project_rules_(default_project_rules()) {}

  /// Lint one in-memory source. `path` must be repo-relative with forward
  /// slashes (e.g. "src/nn/network.cpp") — rules scope on it. Per-file
  /// rules only; the cross-file rules need lint_project.
  [[nodiscard]] std::vector<Diagnostic> lint_source(std::string path, std::string content) const;

  /// Lint a file on disk; `repo_root` anchors the repo-relative path.
  /// I/O failures become a diagnostic rather than an exception.
  [[nodiscard]] std::vector<Diagnostic> lint_file(const std::filesystem::path& file,
                                                  const std::filesystem::path& repo_root) const;

  /// Lint `sources` as one project: parallel per-file phase (`jobs`
  /// workers; 0 = all cores), then the serial cross-file phase.
  /// Diagnostics are sorted by (file, line, rule) regardless of `jobs`.
  [[nodiscard]] std::vector<Diagnostic> lint_project(std::vector<RawSource> sources,
                                                     std::size_t jobs = 0) const;

  /// Read `files` from disk and lint them as one project. Unreadable
  /// files yield an "IO" diagnostic, like lint_file.
  [[nodiscard]] std::vector<Diagnostic> lint_project_files(
      const std::vector<std::filesystem::path>& files, const std::filesystem::path& repo_root,
      std::size_t jobs = 0) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const noexcept { return rules_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ProjectRule>>& project_rules() const noexcept {
    return project_rules_;
  }

 private:
  /// Per-file rules + R0 annotation checks on an already-lexed file.
  [[nodiscard]] std::vector<Diagnostic> lint_lexed(const SourceFile& file) const;
  /// Run the project rules over `files` and drop suppressed diagnostics.
  void run_project_rules(const std::vector<SourceFile>& files,
                         std::vector<Diagnostic>& out) const;

  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::unique_ptr<ProjectRule>> project_rules_;
};

/// Recursively collect the .cpp/.hpp files under `path` (or `path` itself
/// when it is a regular file), sorted for stable output.
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(const std::filesystem::path& path);

/// Render one diagnostic as "file:line: [Rn] message" (+ indented hint).
[[nodiscard]] std::string format_diagnostic(const Diagnostic& diag);

}  // namespace shmd::lint
