#include "shmd-lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <set>
#include <utility>

namespace shmd::lint {
namespace {

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// Indices of expression-level tokens (no comments, no preprocessor lines).
std::vector<std::size_t> code_indices(const std::vector<Token>& toks) {
  std::vector<std::size_t> out;
  out.reserve(toks.size());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kComment && toks[i].kind != TokenKind::kDirective) {
      out.push_back(i);
    }
  }
  return out;
}

bool is_upper(char c) { return std::isupper(static_cast<unsigned char>(c)) != 0; }

/// Identifiers that name (or plausibly name) a type — a `*` after one of
/// these is a pointer declarator, not a multiply.
bool type_like(std::string_view name) {
  static const std::set<std::string_view> kTypes = {
      "bool",     "char",     "char8_t",  "char16_t", "char32_t", "wchar_t",  "short",
      "int",      "long",     "signed",   "unsigned", "float",    "double",   "void",
      "auto",     "const",    "volatile", "constexpr"};
  if (kTypes.contains(name)) return true;
  if (name.ends_with("_t") || name.ends_with("_type")) return true;
  return !name.empty() && is_upper(name.front());  // class names are UpperCamelCase
}

/// Names that, by project convention, hold integers (indices, dimensions,
/// counts). Products of these are address/size arithmetic, not MACs.
bool integer_named(std::string_view name) {
  static const std::set<std::string_view> kExact = {
      "i",    "j",     "k",     "l",      "m",     "n",      "o",     "idx",   "dim",
      "len",  "count", "size",  "rows",   "cols",  "stride", "width", "height", "depth",
      "epoch", "epochs", "bit", "bits",   "shift", "lane",   "worker", "workers"};
  if (kExact.contains(name)) return true;
  for (const std::string_view prefix : {"n_", "num_", "idx_"}) {
    if (name.starts_with(prefix)) return true;
  }
  for (const std::string_view suffix :
       {"_dim", "_idx", "_index", "_count", "_size", "_len", "_n", "_bits", "_bit", "_epoch",
        "_epochs", "_samples", "_leaf", "_stride", "_rows", "_cols", "_id", "_workers"}) {
    if (name.ends_with(suffix)) return true;
  }
  return false;
}

bool integer_literal(std::string_view text) {
  const bool hex = text.starts_with("0x") || text.starts_with("0X");
  if (text.find('.') != std::string_view::npos) return false;
  for (const char c : text) {
    if (hex && (c == 'p' || c == 'P')) return false;            // hex float exponent
    if (!hex && (c == 'e' || c == 'E')) return false;           // decimal exponent
    if (!hex && (c == 'f' || c == 'F')) return false;           // float suffix
  }
  return true;
}

enum class Operand { kInt, kFloat, kTypeLike, kUnknown, kNone };

/// Classify the type named inside a cast's template argument list.
Operand classify_cast_types(const std::vector<Token>& toks, const std::vector<std::size_t>& code,
                            std::size_t open_angle, std::size_t close_angle) {
  bool saw_int = false;
  for (std::size_t j = open_angle + 1; j < close_angle; ++j) {
    const Token& t = toks[code[j]];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "double" || t.text == "float") return Operand::kFloat;
    if (t.text == "int" || t.text == "long" || t.text == "short" || t.text == "unsigned" ||
        t.text == "signed" || t.text == "char" || t.text.ends_with("_t")) {
      saw_int = true;
    }
  }
  return saw_int ? Operand::kInt : Operand::kUnknown;
}

bool cast_keyword(std::string_view name) {
  return name == "static_cast" || name == "const_cast" || name == "reinterpret_cast" ||
         name == "dynamic_cast";
}

/// Keywords that can directly precede a unary `*` (dereference), so the
/// token after them is never the left operand of a multiply.
bool stmt_keyword(std::string_view name) {
  static const std::set<std::string_view> kKeywords = {
      "return",    "throw", "case",  "delete", "new",   "else",  "do",
      "goto",      "co_return", "co_yield", "co_await", "if",    "while",
      "for",       "switch", "catch"};
  return kKeywords.contains(name);
}

// ---------------------------------------------------------------------------
// R1 — fault coverage
// ---------------------------------------------------------------------------

class FaultCoverageRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R1"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "fault-coverage"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "exact-ok"; }
  [[nodiscard]] std::vector<std::string_view> suppression_tags() const override {
    return {"exact-ok", "span-kernel"};
  }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "§VI.A injects undervolting faults per MAC product; a raw floating-point '*' in "
           "src/nn/ or src/hmd/ bypasses the stochastic defense";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    // arithmetic.hpp IS the ArithmeticContext implementation — the one
    // place raw products are the point.
    return (f.in_dir("src/nn/") || f.in_dir("src/hmd/")) && f.path() != "src/nn/arithmetic.hpp";
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    std::vector<std::pair<std::size_t, std::size_t>> kernels = span_kernel_ranges(toks, code);
    // Files under src/nn/kernels/ ARE the lane-blocked kernel tables the
    // span contract dispatches to (kernels.hpp documents the binding to
    // the per-product fault model), so bodies inside their `kernels`
    // namespace are sanctioned structurally — multiplies outside that
    // namespace in the same files stay in scope, and a `kernels`
    // namespace anywhere else earns no exemption.
    if (f.in_dir("src/nn/kernels/")) {
      append_kernel_namespace_ranges(toks, code, kernels);
    }
    int bracket_depth = 0;
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "[") ++bracket_depth;
        if (tok.text == "]" && bracket_depth > 0) --bracket_depth;
      }
      if (tok.kind != TokenKind::kPunct || (tok.text != "*" && tok.text != "*=")) continue;
      if (ci == 0 || ci + 1 == code.size()) continue;
      if (bracket_depth > 0) continue;  // subscript arithmetic is index math
      if (inside_any(kernels, ci)) continue;  // sanctioned dot() span kernel
      const Token& prev = toks[code[ci - 1]];
      if (prev.kind == TokenKind::kIdentifier && prev.text == "operator") continue;
      const Operand lhs = classify_left(toks, code, ci);
      if (lhs == Operand::kNone || lhs == Operand::kTypeLike || lhs == Operand::kInt) continue;
      const Operand rhs = classify_right(toks, code, ci);
      if (rhs == Operand::kNone || rhs == Operand::kInt) continue;
      out.push_back(
          {f.path(), tok.line, std::string(id()),
           "raw floating-point multiply ('" + prev.text + " " + tok.text + " " +
               toks[code[ci + 1]].text + "') outside ArithmeticContext in fault-injectable code",
           "route inference-path products through the active ArithmeticContext (ctx.mul(a, b) "
           "or ctx.dot(w, x, n)); if this product never runs on the undervolted path, annotate "
           "it: // shmd-lint: exact-ok(<why exact arithmetic is sound here>); a span kernel "
           "the dot()/gemm()-override heuristic misses takes // shmd-lint: span-kernel(<reason>)"});
    }
  }

 private:
  /// Index (in code space) of the `}` matching the `{` at code[open], or
  /// code.size() when the brace never closes (mid-edit file).
  static std::size_t match_brace(const std::vector<Token>& toks,
                                 const std::vector<std::size_t>& code, std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < code.size(); ++j) {
      const Token& t = toks[code[j]];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "{") ++depth;
      if (t.text == "}" && --depth == 0) return j;
    }
    return code.size();
  }

  /// Code-index ranges covering the bodies of dot(...) and gemm(...)
  /// overrides declared inside classes that derive from ArithmeticContext.
  /// Raw products there ARE the sanctioned span kernels — the override
  /// contract (arithmetic.hpp) already binds them to the per-product fault
  /// model, so R1 skips them.
  static std::vector<std::pair<std::size_t, std::size_t>> span_kernel_ranges(
      const std::vector<Token>& toks, const std::vector<std::size_t>& code) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
      const Token& t = toks[code[ci]];
      if (t.kind != TokenKind::kIdentifier || (t.text != "class" && t.text != "struct")) continue;
      // Scan the class head (up to the body '{' or a forward-decl ';') for
      // an ArithmeticContext base.
      bool derives = false;
      std::size_t body_open = code.size();
      for (std::size_t j = ci + 1; j < code.size(); ++j) {
        const Token& h = toks[code[j]];
        if (h.kind == TokenKind::kIdentifier && h.text == "ArithmeticContext") derives = true;
        if (h.kind == TokenKind::kPunct && (h.text == ";" || h.text == "{")) {
          if (h.text == "{") body_open = j;
          break;
        }
      }
      if (!derives || body_open == code.size()) continue;
      const std::size_t body_close = match_brace(toks, code, body_open);
      for (std::size_t j = body_open + 1; j + 1 < body_close && j + 1 < code.size(); ++j) {
        const Token& m = toks[code[j]];
        if (m.kind != TokenKind::kIdentifier || (m.text != "dot" && m.text != "gemm")) continue;
        if (toks[code[j + 1]].kind != TokenKind::kPunct || toks[code[j + 1]].text != "(") continue;
        // Member named dot/gemm: require `override` between the parameter
        // list and the function body to count it as a span kernel.
        bool is_override = false;
        std::size_t fn_open = body_close;
        for (std::size_t k = j + 2; k < body_close; ++k) {
          const Token& e = toks[code[k]];
          if (e.kind == TokenKind::kIdentifier && e.text == "override") is_override = true;
          if (e.kind == TokenKind::kPunct && (e.text == ";" || e.text == "{")) {
            if (e.text == "{") fn_open = k;
            break;
          }
        }
        if (!is_override || fn_open == body_close) continue;
        const std::size_t fn_close = match_brace(toks, code, fn_open);
        ranges.emplace_back(fn_open, fn_close);
        j = fn_close;
      }
    }
    return ranges;
  }

  /// Append the code-index ranges of `namespace ...kernels... { ... }`
  /// bodies (qualified spellings like `namespace shmd::nn::kernels` count;
  /// nested anonymous namespaces are covered by the enclosing range).
  /// Only called for files under src/nn/kernels/.
  static void append_kernel_namespace_ranges(
      const std::vector<Token>& toks, const std::vector<std::size_t>& code,
      std::vector<std::pair<std::size_t, std::size_t>>& ranges) {
    for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
      const Token& t = toks[code[ci]];
      if (t.kind != TokenKind::kIdentifier || t.text != "namespace") continue;
      bool is_kernels = false;
      std::size_t body_open = code.size();
      for (std::size_t j = ci + 1; j < code.size(); ++j) {
        const Token& h = toks[code[j]];
        if (h.kind == TokenKind::kIdentifier && h.text == "kernels") is_kernels = true;
        if (h.kind == TokenKind::kPunct && (h.text == ";" || h.text == "{")) {
          if (h.text == "{") body_open = j;
          break;
        }
      }
      if (!is_kernels || body_open == code.size()) continue;
      const std::size_t body_close = match_brace(toks, code, body_open);
      ranges.emplace_back(body_open, body_close);
      ci = body_open;  // nested namespaces are inside the recorded range
    }
  }

  static bool inside_any(const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
                         std::size_t ci) {
    for (const auto& [first, last] : ranges) {
      if (ci > first && ci < last) return true;
    }
    return false;
  }

  static Operand classify_left(const std::vector<Token>& toks,
                               const std::vector<std::size_t>& code, std::size_t star) {
    const Token& prev = toks[code[star - 1]];
    if (prev.kind == TokenKind::kNumber) {
      return integer_literal(prev.text) ? Operand::kInt : Operand::kFloat;
    }
    if (prev.kind == TokenKind::kIdentifier) {
      if (stmt_keyword(prev.text)) return Operand::kNone;  // `return *ptr` etc.
      if (type_like(prev.text)) return Operand::kTypeLike;
      if (integer_named(prev.text)) return Operand::kInt;
      return Operand::kUnknown;
    }
    if (prev.kind != TokenKind::kPunct) return Operand::kNone;
    if (prev.text == "]") return Operand::kUnknown;  // element of some array
    if (prev.text == ")") return classify_call_result(toks, code, star - 1);
    if (prev.text == ">") {
      // `foo<T>* x` — template-id in a declarator.
      return Operand::kTypeLike;
    }
    return Operand::kNone;
  }

  /// Walk back over a balanced `( ... )` and classify what produced it.
  static Operand classify_call_result(const std::vector<Token>& toks,
                                      const std::vector<std::size_t>& code,
                                      std::size_t close_paren) {
    int depth = 0;
    std::size_t j = close_paren;
    for (;; --j) {
      const Token& t = toks[code[j]];
      if (t.kind == TokenKind::kPunct && t.text == ")") ++depth;
      if (t.kind == TokenKind::kPunct && t.text == "(") {
        if (--depth == 0) break;
      }
      if (j == 0) return Operand::kUnknown;
    }
    if (j == 0) return Operand::kUnknown;
    const Token& before = toks[code[j - 1]];
    if (before.kind == TokenKind::kIdentifier) {
      if (stmt_keyword(before.text)) return Operand::kNone;  // `if (x) *p = ...`
      if (before.text == "sizeof") return Operand::kInt;
      if (integer_named(before.text)) return Operand::kInt;  // e.g. parameter_count()
      return Operand::kUnknown;
    }
    if (before.kind == TokenKind::kPunct && before.text == ">") {
      // Probably `xxx_cast<T>(...)`: find the matching '<' and the keyword.
      int angle = 0;
      std::size_t a = j - 1;
      for (;; --a) {
        const Token& t = toks[code[a]];
        if (t.kind == TokenKind::kPunct && t.text == ">") ++angle;
        if (t.kind == TokenKind::kPunct && t.text == "<") {
          if (--angle == 0) break;
        }
        if (a == 0) return Operand::kUnknown;
      }
      if (a == 0) return Operand::kUnknown;
      const Token& kw = toks[code[a - 1]];
      if (kw.kind == TokenKind::kIdentifier && cast_keyword(kw.text)) {
        return classify_cast_types(toks, code, a, j - 1);
      }
    }
    return Operand::kUnknown;
  }

  static Operand classify_right(const std::vector<Token>& toks,
                                const std::vector<std::size_t>& code, std::size_t star) {
    std::size_t n = star + 1;
    const Token* next = &toks[code[n]];
    // Skip a unary sign: `a * -b`.
    if (next->kind == TokenKind::kPunct && (next->text == "-" || next->text == "+")) {
      if (n + 1 >= code.size()) return Operand::kNone;
      next = &toks[code[++n]];
    }
    if (next->kind == TokenKind::kNumber) {
      return integer_literal(next->text) ? Operand::kInt : Operand::kFloat;
    }
    if (next->kind == TokenKind::kIdentifier) {
      if (next->text == "sizeof") return Operand::kInt;
      if (cast_keyword(next->text)) {
        // `x * static_cast<T>(y)`: classify T.
        if (n + 1 < code.size() && toks[code[n + 1]].text == "<") {
          int angle = 0;
          for (std::size_t j = n + 1; j < code.size(); ++j) {
            const Token& t = toks[code[j]];
            if (t.kind == TokenKind::kPunct && t.text == "<") ++angle;
            if (t.kind == TokenKind::kPunct && t.text == ">") {
              if (--angle == 0) return classify_cast_types(toks, code, n + 1, j);
            }
          }
        }
        return Operand::kUnknown;
      }
      if (integer_named(next->text)) return Operand::kInt;
      return Operand::kUnknown;
    }
    if (next->kind == TokenKind::kPunct && next->text == "(") return Operand::kUnknown;
    return Operand::kNone;
  }
};

// ---------------------------------------------------------------------------
// R2 — RNG discipline
// ---------------------------------------------------------------------------

class RngDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R2"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "rng-discipline"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "rng-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "ad-hoc randomness (std::rand, std::random_device) breaks run-to-run determinism "
           "and the per-worker jump()-derived streams; use the rng/ RandomSource hierarchy";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    return f.in_dir("src/") && !f.in_dir("src/rng/entropy.");
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    static const std::set<std::string_view> kBanned = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random_device"};
    for (const Token& tok : f.tokens()) {
      if (tok.kind != TokenKind::kIdentifier || !kBanned.contains(tok.text)) continue;
      out.push_back({f.path(), tok.line, std::string(id()),
                     "'" + tok.text + "' undermines seeded determinism",
                     "draw randomness from the project RandomSource hierarchy (rng/) so every "
                     "stream is seeded, logged, and jump()-splittable; if this use is genuinely "
                     "outside that discipline, annotate: // shmd-lint: rng-ok(<reason>)"});
    }
  }
};

// ---------------------------------------------------------------------------
// R3 — stream hygiene
// ---------------------------------------------------------------------------

class StreamHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R3"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "stream-hygiene"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "stream-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "library code computes, it does not narrate: stdout belongs to benches/examples; "
           "stray prints corrupt the figure pipelines' machine-read output";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override { return f.in_dir("src/"); }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    static const std::set<std::string_view> kBanned = {"cout", "printf", "puts", "putchar"};
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier) continue;
      bool hit = kBanned.contains(tok.text);
      // fprintf/fputs only when explicitly aimed at stdout.
      if (!hit && (tok.text == "fprintf" || tok.text == "fputs") && ci + 2 < code.size()) {
        hit = toks[code[ci + 1]].text == "(" && toks[code[ci + 2]].text == "stdout";
      }
      if (!hit) continue;
      out.push_back({f.path(), tok.line, std::string(id()),
                     "'" + tok.text + "' writes to stdout from library code",
                     "return data (or take an std::ostream&/sink parameter) and let the caller "
                     "print; std::cerr stays available for diagnostics; deliberate CLI output is "
                     "annotatable: // shmd-lint: stream-ok(<reason>)"});
    }
  }
};

// ---------------------------------------------------------------------------
// R4 — header hygiene
// ---------------------------------------------------------------------------

struct IncludeLine {
  int line = 0;
  std::string path;  // text between the delimiters
};

std::optional<IncludeLine> parse_include(const Token& directive) {
  std::string_view s = directive.text;
  if (!s.starts_with("#")) return std::nullopt;
  s.remove_prefix(1);
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  if (!s.starts_with("include")) return std::nullopt;
  s.remove_prefix(7);
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  const char open = s.front();
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return std::nullopt;
  const std::size_t end = s.find(close, 1);
  if (end == std::string_view::npos) return std::nullopt;
  return IncludeLine{directive.line, std::string(s.substr(1, end - 1))};
}

bool is_pragma_once(const Token& directive) {
  std::string_view s = directive.text;
  if (!s.starts_with("#")) return false;
  s.remove_prefix(1);
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  return s.starts_with("pragma") && s.find("once") != std::string_view::npos;
}

class HeaderHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R4"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "header-hygiene"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "header-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "#pragma once first in every header, include blocks alphabetized, no duplicate "
           "includes — so include-what-you-use stays reviewable at production scale";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    // Header hygiene extends beyond the library: the bench and example
    // binaries are the project's public face, and unsorted includes there
    // rot just as fast.
    return f.in_dir("src/") || f.in_dir("bench/") || f.in_dir("examples/");
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    if (f.is_header()) check_pragma_once(f, out);
    check_includes(f, out);
  }

 private:
  static void check_pragma_once(const SourceFile& f, std::vector<Diagnostic>& out) {
    const Token* first_directive = nullptr;
    const Token* pragma = nullptr;
    bool code_before_pragma = false;
    for (const Token& tok : f.tokens()) {
      if (tok.kind == TokenKind::kComment) continue;
      if (tok.kind == TokenKind::kDirective) {
        if (first_directive == nullptr) first_directive = &tok;
        if (is_pragma_once(tok)) {
          pragma = &tok;
          break;
        }
        continue;
      }
      code_before_pragma = true;  // expression tokens before any pragma once
      break;
    }
    if (pragma == nullptr) {
      out.push_back({f.path(), 1, "R4", "header is missing #pragma once",
                     "every header starts with #pragma once (before any other directive)"});
      return;
    }
    if (code_before_pragma || first_directive != pragma) {
      out.push_back({f.path(), pragma->line, "R4",
                     "#pragma once must be the first directive in the header",
                     "move #pragma once above every include and declaration"});
    }
  }

  static void check_includes(const SourceFile& f, std::vector<Diagnostic>& out) {
    std::vector<std::vector<IncludeLine>> blocks;
    std::set<std::string> seen;
    for (const Token& tok : f.tokens()) {
      if (tok.kind == TokenKind::kComment) continue;
      if (tok.kind != TokenKind::kDirective) {
        if (!blocks.empty() && !blocks.back().empty()) blocks.emplace_back();
        continue;
      }
      std::optional<IncludeLine> inc = parse_include(tok);
      if (!inc) {
        if (!blocks.empty() && !blocks.back().empty()) blocks.emplace_back();
        continue;
      }
      if (!seen.insert(inc->path).second) {
        out.push_back({f.path(), inc->line, "R4", "duplicate #include \"" + inc->path + "\"",
                       "delete the repeated include"});
      }
      if (blocks.empty() || (!blocks.back().empty() && blocks.back().back().line + 1 != inc->line)) {
        blocks.emplace_back();
      }
      blocks.back().push_back(std::move(*inc));
    }
    for (const std::vector<IncludeLine>& block : blocks) {
      for (std::size_t i = 1; i < block.size(); ++i) {
        if (block[i].path < block[i - 1].path) {
          out.push_back({f.path(), block[i].line, "R4",
                         "include block not alphabetized: \"" + block[i].path + "\" sorts before "
                         "\"" + block[i - 1].path + "\"",
                         "keep each contiguous include block sorted (clang-format does this "
                         "automatically)"});
          break;  // one diagnostic per block is enough to fix the sort
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// R5 — socket discipline
// ---------------------------------------------------------------------------

class SocketDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R5"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "socket-discipline"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "socket-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "all socket and readiness syscalls live in src/net/ — transport concerns leaking "
           "into scoring, fault, or model code couple the detector to I/O and make the "
           "determinism contract unauditable";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    return f.in_dir("src/") && !f.in_dir("src/net/");
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    static const std::set<std::string_view> kBanned = {
        "socket",     "bind",          "listen",     "accept",    "accept4",
        "connect",    "send",          "recv",       "sendto",    "recvfrom",
        "sendmsg",    "recvmsg",       "setsockopt", "getsockopt", "shutdown",
        "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait", "eventfd"};
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier || !kBanned.contains(tok.text)) continue;
      // Only flag *calls* — `conn.send(...)` method declarations elsewhere
      // would be a different name anyway, but `foo.accept` as a field read
      // is not a syscall.
      if (ci + 1 >= code.size() || toks[code[ci + 1]].kind != TokenKind::kPunct ||
          toks[code[ci + 1]].text != "(") {
        continue;
      }
      out.push_back({f.path(), tok.line, std::string(id()),
                     "socket/readiness call '" + tok.text + "' outside src/net/",
                     "keep transport syscalls behind the src/net/ boundary (NetServer/NetClient); "
                     "a deliberate exception takes // shmd-lint: socket-ok(<reason>)"});
    }
  }
};

// ---------------------------------------------------------------------------
// R6 — lock discipline
// ---------------------------------------------------------------------------

class LockDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R6"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "lock-discipline"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "lock-free"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "concurrent layers use the annotated util::Mutex/util::CondVar primitives so Clang "
           "-Wthread-safety can prove the lock protocol; raw std::mutex is invisible to the "
           "analysis, and an unannotated guard documents nothing";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    return f.in_dir("src/serve/") || f.in_dir("src/net/") || f.in_dir("src/runtime/") ||
           f.in_dir("src/admit/");
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    check_raw_primitives(f, toks, code, out);

    // Names that appear as an argument of any SHMD_* thread-safety macro
    // anywhere in this file — the set of mutexes something is annotated
    // against.
    std::set<std::string_view> annotated_against;
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier || !tok.text.starts_with("SHMD_")) continue;
      if (ci + 1 >= code.size() || toks[code[ci + 1]].text != "(") continue;
      int depth = 0;
      for (std::size_t j = ci + 1; j < code.size(); ++j) {
        const Token& a = toks[code[j]];
        if (a.kind == TokenKind::kPunct && a.text == "(") ++depth;
        if (a.kind == TokenKind::kPunct && a.text == ")" && --depth == 0) break;
        if (a.kind == TokenKind::kIdentifier) annotated_against.insert(a.text);
      }
    }

    for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier) continue;
      const Token& next = toks[code[ci + 1]];
      if (next.kind != TokenKind::kIdentifier) continue;  // `Mutex&` params etc.
      if (tok.text == "Mutex" && is_declaration(toks, code, ci + 1)) {
        // A mutex that guards nothing annotated is either dead or hiding
        // its protocol from the analysis.
        if (!annotated_against.contains(next.text)) {
          out.push_back({f.path(), next.line, std::string(id()),
                         "mutex '" + next.text + "' guards no annotated state",
                         "annotate the members it protects with SHMD_GUARDED_BY(" + next.text +
                             ") (and condition variables with SHMD_CV_WAITS_ON(" + next.text +
                             ")); a mutex that intentionally guards no member takes "
                             "// shmd-lint: lock-free(<reason>)"});
        }
      } else if (tok.text == "CondVar" && is_declaration(toks, code, ci + 1)) {
        // The declaration (through `;`) must name the mutex the CV waits
        // on — CVs have no Clang TSA model, so this marker is the only
        // machine-visible record of the pairing.
        bool paired = false;
        for (std::size_t j = ci + 2; j < code.size(); ++j) {
          const Token& d = toks[code[j]];
          if (d.kind == TokenKind::kPunct && (d.text == ";" || d.text == "{")) break;
          if (d.kind == TokenKind::kIdentifier &&
              (d.text == "SHMD_CV_WAITS_ON" || d.text == "SHMD_GUARDED_BY")) {
            paired = true;
            break;
          }
        }
        if (!paired) {
          out.push_back({f.path(), next.line, std::string(id()),
                         "condition variable '" + next.text + "' does not declare its mutex",
                         "append SHMD_CV_WAITS_ON(<mutex>) to the declaration so the wait "
                         "protocol is machine-readable; a deliberate exception takes "
                         "// shmd-lint: lock-free(<reason>)"});
        }
      }
    }
  }

 private:
  /// True when code[name_index] looks like a declared entity name: the
  /// token after it is `;`, `{` (brace init), or an SHMD_* annotation.
  static bool is_declaration(const std::vector<Token>& toks, const std::vector<std::size_t>& code,
                             std::size_t name_index) {
    if (name_index + 1 >= code.size()) return false;
    const Token& after = toks[code[name_index + 1]];
    if (after.kind == TokenKind::kPunct && (after.text == ";" || after.text == "{")) return true;
    return after.kind == TokenKind::kIdentifier && after.text.starts_with("SHMD_");
  }

  static void check_raw_primitives(const SourceFile& f, const std::vector<Token>& toks,
                                   const std::vector<std::size_t>& code,
                                   std::vector<Diagnostic>& out) {
    // std primitives invisible to thread-safety analysis, with the
    // annotated replacement to name in the hint.
    static const std::set<std::string_view> kRawMutex = {
        "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex", "shared_mutex",
        "shared_timed_mutex"};
    static const std::set<std::string_view> kRawCv = {"condition_variable",
                                                      "condition_variable_any"};
    static const std::set<std::string_view> kRawLock = {"lock_guard", "unique_lock", "scoped_lock",
                                                        "shared_lock"};
    for (const std::size_t i : code) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kIdentifier) continue;
      std::string replacement;
      if (kRawMutex.contains(tok.text)) {
        replacement = "util::Mutex";
      } else if (kRawCv.contains(tok.text)) {
        replacement = "util::CondVar";
      } else if (kRawLock.contains(tok.text)) {
        replacement = "util::MutexLock";
      } else {
        continue;
      }
      out.push_back({f.path(), tok.line, "R6",
                     "raw std::" + tok.text + " is invisible to thread-safety analysis",
                     "use " + replacement + " (util/sync.hpp) so Clang -Wthread-safety can see "
                     "the acquire/release protocol; a deliberate exception takes "
                     "// shmd-lint: lock-free(<reason>)"});
    }
  }
};

// ---------------------------------------------------------------------------
// R8 — determinism taint
// ---------------------------------------------------------------------------

class DeterminismTaintRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R8"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "determinism-taint"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override {
    return "determinism-ok";
  }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "the pure scoring layers must be replayable bit-for-bit from (seed, input): a wall "
           "clock, thread id, or thread_local read makes the verdict depend on when or where "
           "it ran, which no test can pin down";
  }

  [[nodiscard]] bool applies(const SourceFile& f) const override {
    return (f.in_dir("src/nn/") || f.in_dir("src/hmd/") || f.in_dir("src/faultsim/") ||
            f.in_dir("src/rng/")) &&
           !f.in_dir("src/rng/entropy.");
  }

  void check(const SourceFile& f, std::vector<Diagnostic>& out) const override {
    static const std::set<std::string_view> kBanned = {
        "system_clock", "steady_clock", "high_resolution_clock", "clock_gettime", "gettimeofday",
        "timespec_get", "localtime",    "gmtime",                "mktime",        "get_id",
        "thread_local"};
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier) continue;
      bool hit = kBanned.contains(tok.text);
      // `::time(...)` / `std::time(...)` — the bare name is too common
      // (variables, members) to ban outright.
      if (!hit && tok.text == "time" && ci > 0 && ci + 1 < code.size()) {
        hit = toks[code[ci - 1]].text == "::" && toks[code[ci + 1]].text == "(";
      }
      if (!hit) continue;
      out.push_back({f.path(), tok.line, std::string(id()),
                     "'" + tok.text + "' taints the deterministic scoring path",
                     "pure layers compute from (seed, input) only — take timestamps or ids as "
                     "parameters from the runtime/serve layer if needed; a sound exception "
                     "takes // shmd-lint: determinism-ok(<reason>)"});
    }
  }
};

// ---------------------------------------------------------------------------
// R7 — atomic ordering (whole-project)
// ---------------------------------------------------------------------------

class AtomicOrderingRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R7"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "atomic-ordering"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "seq-cst-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "every atomic operation in src/ names its std::memory_order explicitly: an implicit "
           "seq_cst is a fence nobody chose and a review burden nobody can discharge; the "
           "member registry is cross-file so uses in a .cpp of atomics declared in its header "
           "are still checked";
  }

  void check_project(const std::vector<SourceFile>& files,
                     std::vector<Diagnostic>& out) const override {
    // Pass 1: every std::atomic<...>/std::atomic_flag member or variable
    // name declared anywhere in the project.
    std::set<std::string> atomics;
    for (const SourceFile& f : files) collect_atomic_names(f, atomics);

    // Pass 2: judge the call sites.
    for (const SourceFile& f : files) {
      if (!f.in_dir("src/")) continue;
      check_calls(f, atomics, out);
    }
  }

 private:
  static void collect_atomic_names(const SourceFile& f, std::set<std::string>& atomics) {
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (tok.text == "atomic_flag") {
        const Token& next = toks[code[ci + 1]];
        if (next.kind == TokenKind::kIdentifier) atomics.insert(next.text);
        continue;
      }
      if (tok.text != "atomic" || toks[code[ci + 1]].text != "<") continue;
      // Walk the template argument list. When the angle depth returns to
      // zero the next token is the declared name — unless the atomic was
      // itself a template argument (std::array<std::atomic<u64>, N> x),
      // in which case a `,` or `>` follows and the name comes after the
      // *enclosing* list closes.
      int depth = 0;
      for (std::size_t j = ci + 1; j < code.size(); ++j) {
        const Token& t = toks[code[j]];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "<") ++depth;
          if (t.text == ">") --depth;
          if (t.text == ">>") depth -= 2;
          if (t.text == ";") break;  // declaration ended without a name we can see
        }
        if (depth > 0) continue;
        if (j + 1 >= code.size()) break;
        const Token& next = toks[code[j + 1]];
        if (next.kind == TokenKind::kIdentifier) {
          atomics.insert(next.text);
          break;
        }
        if (next.kind == TokenKind::kPunct && (next.text == "," || next.text == ">")) {
          depth = 1;  // still inside an enclosing template list; keep walking
          continue;
        }
        break;
      }
    }
  }

  static void check_calls(const SourceFile& f, const std::set<std::string>& atomics,
                          std::vector<Diagnostic>& out) {
    // Methods only an atomic has — checked wherever they are called.
    static const std::set<std::string_view> kUnambiguous = {
        "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
        "compare_exchange_weak", "compare_exchange_strong", "test_and_set"};
    // Methods many types have — checked only when the receiver is a known
    // atomic member (this is what the cross-file registry buys).
    static const std::set<std::string_view> kReceiverGated = {"load",  "store", "exchange",
                                                              "wait",  "test",  "clear"};
    const std::vector<Token>& toks = f.tokens();
    const std::vector<std::size_t> code = code_indices(toks);
    for (std::size_t ci = 1; ci + 1 < code.size(); ++ci) {
      const Token& tok = toks[code[ci]];
      if (tok.kind != TokenKind::kIdentifier) continue;
      const Token& before = toks[code[ci - 1]];
      if (before.kind != TokenKind::kPunct || (before.text != "." && before.text != "->")) {
        continue;
      }
      if (toks[code[ci + 1]].text != "(") continue;
      bool check = false;
      if (kUnambiguous.contains(tok.text)) {
        check = true;
      } else if (kReceiverGated.contains(tok.text) && ci >= 2) {
        const std::string receiver = receiver_name(toks, code, ci - 2);
        check = atomics.contains(receiver);
      }
      if (!check) continue;
      if (names_memory_order(toks, code, ci + 1)) continue;
      out.push_back(
          {f.path(), tok.line, "R7",
           "atomic '" + tok.text + "' call relies on the implicit seq_cst memory order",
           "name the ordering explicitly (e.g. std::memory_order_relaxed for counters, "
           "acquire/release for handoffs); where sequential consistency is genuinely required, "
           "say so: // shmd-lint: seq-cst-ok(<why>)"});
    }
  }

  /// Name of the expression ending at code[end]: an identifier directly,
  /// or the identifier before a balanced `[...]` subscript
  /// (latency_buckets_[b].load). Empty when unresolvable.
  static std::string receiver_name(const std::vector<Token>& toks,
                                   const std::vector<std::size_t>& code, std::size_t end) {
    const Token& last = toks[code[end]];
    if (last.kind == TokenKind::kIdentifier) return last.text;
    if (last.kind == TokenKind::kPunct && last.text == "]") {
      int depth = 0;
      for (std::size_t j = end;; --j) {
        const Token& t = toks[code[j]];
        if (t.kind == TokenKind::kPunct && t.text == "]") ++depth;
        if (t.kind == TokenKind::kPunct && t.text == "[" && --depth == 0) {
          if (j == 0) return {};
          const Token& base = toks[code[j - 1]];
          return base.kind == TokenKind::kIdentifier ? base.text : std::string{};
        }
        if (j == 0) break;
      }
    }
    return {};
  }

  /// True when the balanced argument list opening at code[open_paren]
  /// contains an identifier naming a std::memory_order constant.
  static bool names_memory_order(const std::vector<Token>& toks,
                                 const std::vector<std::size_t>& code, std::size_t open_paren) {
    int depth = 0;
    for (std::size_t j = open_paren; j < code.size(); ++j) {
      const Token& t = toks[code[j]];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") ++depth;
        if (t.text == ")" && --depth == 0) return false;
      }
      if (t.kind == TokenKind::kIdentifier && t.text.starts_with("memory_order")) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// R9 — layering (whole-project)
// ---------------------------------------------------------------------------

class LayeringRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "R9"; }
  [[nodiscard]] std::string_view name() const noexcept override { return "layering"; }
  [[nodiscard]] std::string_view suppression_tag() const noexcept override { return "layer-ok"; }
  [[nodiscard]] std::string_view rationale() const noexcept override {
    return "cross-directory includes must descend the layer DAG (util/rng at the bottom, "
           "redteam at the top): an upward or sideways include couples a pure layer to a "
           "concurrent or transport one and the determinism contract stops being auditable";
  }

  /// Module layers. A module is the longest table entry that prefixes a
  /// path on a '/' boundary — nested submodules (nn/kernels under nn) get
  /// their own row. An include from A to B (A != B) is legal iff
  /// layer(A) > layer(B) — strictly, so same-layer modules stay mutually
  /// independent — with one structural exception: a parent module may
  /// include its own nested submodule (nn -> nn/kernels), never the
  /// reverse, keeping the submodule a leaf. Modules not listed (and files
  /// outside src/: bench, examples, tools, tests) are unconstrained
  /// consumers.
  static constexpr std::pair<std::string_view, int> kLayers[] = {
      {"util", 0}, {"rng", 0},     {"trace", 1},   {"faultsim", 1}, {"volt", 1},
      {"nn", 2},   {"nn/kernels", 2}, {"eval", 3},  {"sys", 3},     {"hmd", 4},
      {"attack", 5}, {"runtime", 5}, {"admit", 6},  {"serve", 7},   {"net", 8},
      {"redteam", 9},
  };

  /// Longest kLayers entry that is a whole-segment prefix of `rel`
  /// ("nn/kernels/dot.cpp" -> "nn/kernels", "nn/network.cpp" -> "nn"),
  /// or empty when no entry matches.
  static std::string_view module_of(std::string_view rel) {
    std::string_view best;
    for (const auto& [name, layer] : kLayers) {
      (void)layer;
      if (rel.size() <= name.size() || rel[name.size()] != '/') continue;
      if (!rel.starts_with(name)) continue;
      if (name.size() > best.size()) best = name;
    }
    return best;
  }

  static int layer_of(std::string_view module) {
    for (const auto& [name, layer] : kLayers) {
      if (name == module) return layer;
    }
    return -1;
  }

  /// True when `inner` is a nested submodule of `outer` (outer == "nn",
  /// inner == "nn/kernels").
  static bool submodule_of(std::string_view inner, std::string_view outer) {
    return inner.size() > outer.size() && inner[outer.size()] == '/' &&
           inner.starts_with(outer);
  }

  void check_project(const std::vector<SourceFile>& files,
                     std::vector<Diagnostic>& out) const override {
    for (const SourceFile& f : files) {
      if (!f.in_dir("src/")) continue;
      const std::string_view path = f.path();
      const std::string_view from_mod = module_of(path.substr(4));
      if (from_mod.empty()) continue;  // src/shmd.hpp: umbrella, unconstrained
      const int from_layer = layer_of(from_mod);
      for (const Token& tok : f.tokens()) {
        if (tok.kind != TokenKind::kDirective) continue;
        const std::optional<IncludeLine> inc = parse_include(tok);
        if (!inc) continue;
        if (inc->path.find('/') == std::string::npos) continue;  // system or local header
        const std::string_view to_mod = module_of(inc->path);
        if (to_mod.empty() || to_mod == from_mod) continue;
        if (submodule_of(to_mod, from_mod)) continue;  // parent -> own nested submodule
        const int to_layer = layer_of(to_mod);
        if (from_layer > to_layer) continue;
        out.push_back(
            {f.path(), inc->line, "R9",
             "layering violation: src/" + std::string(from_mod) + "/ (layer " +
                 std::to_string(from_layer) + ") includes \"" + inc->path + "\" (layer " +
                 std::to_string(to_layer) + ")",
             "the layer DAG descends redteam > net > serve > admit > runtime/attack > hmd > "
             "eval/sys > nn > trace/faultsim/volt > util/rng, and nn/kernels is a leaf "
             "submodule only nn may reach into; move the shared piece down a layer or invert "
             "the dependency; a deliberate exception takes // shmd-lint: layer-ok(<reason>)"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<FaultCoverageRule>());
  rules.push_back(std::make_unique<RngDisciplineRule>());
  rules.push_back(std::make_unique<StreamHygieneRule>());
  rules.push_back(std::make_unique<HeaderHygieneRule>());
  rules.push_back(std::make_unique<SocketDisciplineRule>());
  rules.push_back(std::make_unique<LockDisciplineRule>());
  rules.push_back(std::make_unique<DeterminismTaintRule>());
  return rules;
}

std::vector<std::unique_ptr<ProjectRule>> default_project_rules() {
  std::vector<std::unique_ptr<ProjectRule>> rules;
  rules.push_back(std::make_unique<AtomicOrderingRule>());
  rules.push_back(std::make_unique<LayeringRule>());
  return rules;
}

}  // namespace shmd::lint
