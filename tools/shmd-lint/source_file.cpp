#include "shmd-lint/source_file.hpp"

#include <cctype>
#include <utility>

namespace shmd::lint {
namespace {

constexpr std::string_view kMarker = "shmd-lint:";

bool tag_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '-';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

SourceFile::SourceFile(std::string path, std::string content)
    : path_(std::move(path)), content_(std::move(content)), tokens_(lex(content_)) {
  parse_annotations();
}

bool SourceFile::is_header() const noexcept { return path_.ends_with(".hpp"); }

bool SourceFile::in_dir(std::string_view prefix) const noexcept {
  return std::string_view(path_).starts_with(prefix);
}

// Grammar inside a comment:  shmd-lint: tag(reason) [, tag(reason)]*
void SourceFile::parse_annotations() {
  for (std::size_t ti = 0; ti < tokens_.size(); ++ti) {
    const Token& tok = tokens_[ti];
    if (tok.kind != TokenKind::kComment) continue;
    const std::string_view body = tok.text;
    const std::size_t at = body.find(kMarker);
    if (at == std::string_view::npos) continue;

    std::string_view rest = trim(body.substr(at + kMarker.size()));
    bool any = false;
    bool bad = false;
    std::string detail;
    while (!rest.empty()) {
      std::size_t i = 0;
      while (i < rest.size() && tag_char(rest[i])) ++i;
      if (i == 0 || i >= rest.size() || rest[i] != '(') {
        bad = true;
        detail = "expected tag(reason)";
        break;
      }
      const std::string_view tag = rest.substr(0, i);
      const std::size_t close = rest.find(')', i + 1);
      if (close == std::string_view::npos) {
        bad = true;
        detail = "unterminated reason for '" + std::string(tag) + "'";
        break;
      }
      const std::string_view reason = trim(rest.substr(i + 1, close - i - 1));
      if (reason.empty()) {
        bad = true;
        detail = "empty reason for '" + std::string(tag) + "' — say why the rule is overruled";
        break;
      }
      Suppression& s = suppressions_.emplace_back();
      s.tag = std::string(tag);
      s.reason = std::string(reason);
      s.line = tok.line;
      // A trailing annotation governs its own line. A standalone one
      // governs the whole statement that follows: through the next `;`
      // (or brace), capped so a missing semicolon cannot blanket a file.
      s.last_line = tok.line_leading ? statement_end(ti) : tok.end_line;
      any = true;
      rest = trim(rest.substr(close + 1));
      if (!rest.empty() && rest.front() == ',') rest = trim(rest.substr(1));
    }
    if (bad || !any) {
      bad_annotations_.push_back(
          {tok.line, detail.empty() ? std::string("no tag(reason) entries") : detail});
    }
  }
}

int SourceFile::statement_end(std::size_t comment_index) const noexcept {
  constexpr int kMaxSpan = 8;  // lines an annotation may reach past itself
  const int base = tokens_[comment_index].end_line;
  for (std::size_t j = comment_index + 1; j < tokens_.size(); ++j) {
    const Token& t = tokens_[j];
    if (t.line > base + kMaxSpan) break;
    if (t.kind == TokenKind::kPunct && (t.text == ";" || t.text == "{" || t.text == "}")) {
      return t.end_line;
    }
  }
  return base + 1;
}

bool SourceFile::suppressed(int line, std::string_view tag) const noexcept {
  for (const Suppression& s : suppressions_) {
    if (s.tag == tag && line >= s.line && line <= s.last_line) return true;
  }
  return false;
}

}  // namespace shmd::lint
