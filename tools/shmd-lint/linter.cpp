#include "shmd-lint/linter.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace shmd::lint {
namespace {

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule_id) < std::tie(b.file, b.line, b.rule_id);
  });
}

}  // namespace

std::vector<Diagnostic> Linter::lint_lexed(const SourceFile& file) const {
  std::vector<Diagnostic> out;

  for (const std::unique_ptr<Rule>& rule : rules_) {
    if (!rule->applies(file)) continue;
    std::vector<Diagnostic> found;
    rule->check(file, found);
    const std::vector<std::string_view> tags = rule->suppression_tags();
    for (Diagnostic& diag : found) {
      const bool covered = std::any_of(tags.begin(), tags.end(), [&](std::string_view tag) {
        return file.suppressed(diag.line, tag);
      });
      if (!covered) out.push_back(std::move(diag));
    }
  }

  for (const BadAnnotation& bad : file.bad_annotations()) {
    out.push_back({file.path(), bad.line, "R0", "malformed shmd-lint annotation: " + bad.detail,
                   "write // shmd-lint: <tag>(<reason>), e.g. "
                   "// shmd-lint: exact-ok(training-only path)"});
  }
  // The tag registry spans both rule kinds: a seq-cst-ok annotation is
  // legal in a file even though only the project pass consumes it.
  std::set<std::string_view> known_tags;
  std::string valid_tags;  // registry order, so the hint reads R1..R9
  const auto register_tags = [&](const RuleInfo& rule) {
    for (const std::string_view tag : rule.suppression_tags()) {
      if (!known_tags.insert(tag).second) continue;
      if (!valid_tags.empty()) valid_tags += ", ";
      valid_tags += tag;
    }
  };
  for (const std::unique_ptr<Rule>& rule : rules_) register_tags(*rule);
  for (const std::unique_ptr<ProjectRule>& rule : project_rules_) register_tags(*rule);
  for (const Suppression& s : file.suppressions()) {
    if (!known_tags.contains(s.tag)) {
      out.push_back({file.path(), s.line, "R0", "unknown suppression tag '" + s.tag + "'",
                     "valid tags: " + valid_tags});
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.line, a.rule_id) < std::tie(b.line, b.rule_id);
  });
  return out;
}

std::vector<Diagnostic> Linter::lint_source(std::string path, std::string content) const {
  const SourceFile file(std::move(path), std::move(content));
  return lint_lexed(file);
}

std::vector<Diagnostic> Linter::lint_file(const std::filesystem::path& file,
                                          const std::filesystem::path& repo_root) const {
  std::error_code ec;
  std::filesystem::path rel = std::filesystem::relative(file, repo_root, ec);
  if (ec || rel.empty()) rel = file;
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {{rel.generic_string(), 0, "IO", "cannot read file", "check the path and permissions"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(rel.generic_string(), std::move(buf).str());
}

void Linter::run_project_rules(const std::vector<SourceFile>& files,
                               std::vector<Diagnostic>& out) const {
  for (const std::unique_ptr<ProjectRule>& rule : project_rules_) {
    std::vector<Diagnostic> found;
    rule->check_project(files, found);
    const std::vector<std::string_view> tags = rule->suppression_tags();
    for (Diagnostic& diag : found) {
      const SourceFile* origin = nullptr;
      for (const SourceFile& f : files) {
        if (f.path() == diag.file) {
          origin = &f;
          break;
        }
      }
      const bool covered =
          origin != nullptr && std::any_of(tags.begin(), tags.end(), [&](std::string_view tag) {
            return origin->suppressed(diag.line, tag);
          });
      if (!covered) out.push_back(std::move(diag));
    }
  }
}

std::vector<Diagnostic> Linter::lint_project(std::vector<RawSource> sources,
                                             std::size_t jobs) const {
  const std::size_t n = sources.size();
  // Slot-indexed storage keeps the merge deterministic: worker threads
  // race only over *which* slot they fill, never over its position.
  std::vector<std::unique_ptr<SourceFile>> files(n);
  std::vector<std::vector<Diagnostic>> per_file(n);

  const auto lint_slot = [&](std::size_t i) {
    files[i] =
        std::make_unique<SourceFile>(std::move(sources[i].path), std::move(sources[i].content));
    per_file[i] = lint_lexed(*files[i]);
  };

  const std::size_t workers = std::min(runtime::resolve_workers(jobs), std::max<std::size_t>(n, 1));
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) lint_slot(i);
  } else {
    // Dynamic slot claiming: files vary wildly in size, so a static
    // partition would leave workers idle behind whoever drew server.cpp.
    std::atomic<std::size_t> next{0};
    runtime::ThreadPool pool(workers);
    pool.run([&](std::size_t) {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        lint_slot(i);
      }
    });
  }

  std::vector<Diagnostic> out;
  for (std::vector<Diagnostic>& diags : per_file) {
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }

  std::vector<SourceFile> lexed;
  lexed.reserve(n);
  for (std::unique_ptr<SourceFile>& f : files) lexed.push_back(std::move(*f));
  run_project_rules(lexed, out);

  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> Linter::lint_project_files(const std::vector<std::filesystem::path>& files,
                                                   const std::filesystem::path& repo_root,
                                                   std::size_t jobs) const {
  std::vector<RawSource> sources;
  sources.reserve(files.size());
  std::vector<Diagnostic> io_errors;
  for (const std::filesystem::path& file : files) {
    std::error_code ec;
    std::filesystem::path rel = std::filesystem::relative(file, repo_root, ec);
    if (ec || rel.empty()) rel = file;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      io_errors.push_back(
          {rel.generic_string(), 0, "IO", "cannot read file", "check the path and permissions"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({rel.generic_string(), std::move(buf).str()});
  }
  std::vector<Diagnostic> out = lint_project(std::move(sources), jobs);
  out.insert(out.end(), std::make_move_iterator(io_errors.begin()),
             std::make_move_iterator(io_errors.end()));
  sort_diagnostics(out);
  return out;
}

std::vector<std::filesystem::path> collect_sources(const std::filesystem::path& path) {
  std::vector<std::filesystem::path> files;
  const auto wanted = [](const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
  };
  if (std::filesystem::is_regular_file(path)) {
    if (wanted(path)) files.push_back(path);
  } else if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && wanted(entry.path())) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string format_diagnostic(const Diagnostic& diag) {
  std::ostringstream os;
  os << diag.file << ':' << diag.line << ": [" << diag.rule_id << "] " << diag.message;
  if (!diag.hint.empty()) os << "\n    hint: " << diag.hint;
  return std::move(os).str();
}

}  // namespace shmd::lint
