#include "shmd-lint/linter.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace shmd::lint {

std::vector<Diagnostic> Linter::lint_source(std::string path, std::string content) const {
  const SourceFile file(std::move(path), std::move(content));
  std::vector<Diagnostic> out;

  for (const std::unique_ptr<Rule>& rule : rules_) {
    if (!rule->applies(file)) continue;
    std::vector<Diagnostic> found;
    rule->check(file, found);
    const std::vector<std::string_view> tags = rule->suppression_tags();
    for (Diagnostic& diag : found) {
      const bool covered = std::any_of(tags.begin(), tags.end(), [&](std::string_view tag) {
        return file.suppressed(diag.line, tag);
      });
      if (!covered) out.push_back(std::move(diag));
    }
  }

  for (const BadAnnotation& bad : file.bad_annotations()) {
    out.push_back({file.path(), bad.line, "R0", "malformed shmd-lint annotation: " + bad.detail,
                   "write // shmd-lint: <tag>(<reason>), e.g. "
                   "// shmd-lint: exact-ok(training-only path)"});
  }
  std::set<std::string_view> known_tags;
  std::string valid_tags;  // registry order, so the hint reads R1..R4
  for (const std::unique_ptr<Rule>& rule : rules_) {
    for (const std::string_view tag : rule->suppression_tags()) {
      if (!known_tags.insert(tag).second) continue;
      if (!valid_tags.empty()) valid_tags += ", ";
      valid_tags += tag;
    }
  }
  for (const Suppression& s : file.suppressions()) {
    if (!known_tags.contains(s.tag)) {
      out.push_back({file.path(), s.line, "R0", "unknown suppression tag '" + s.tag + "'",
                     "valid tags: " + valid_tags});
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.line, a.rule_id) < std::tie(b.line, b.rule_id);
  });
  return out;
}

std::vector<Diagnostic> Linter::lint_file(const std::filesystem::path& file,
                                          const std::filesystem::path& repo_root) const {
  std::error_code ec;
  std::filesystem::path rel = std::filesystem::relative(file, repo_root, ec);
  if (ec || rel.empty()) rel = file;
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {{rel.generic_string(), 0, "IO", "cannot read file", "check the path and permissions"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(rel.generic_string(), std::move(buf).str());
}

std::vector<std::filesystem::path> collect_sources(const std::filesystem::path& path) {
  std::vector<std::filesystem::path> files;
  const auto wanted = [](const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
  };
  if (std::filesystem::is_regular_file(path)) {
    if (wanted(path)) files.push_back(path);
  } else if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && wanted(entry.path())) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string format_diagnostic(const Diagnostic& diag) {
  std::ostringstream os;
  os << diag.file << ':' << diag.line << ": [" << diag.rule_id << "] " << diag.message;
  if (!diag.hint.empty()) os << "\n    hint: " << diag.hint;
  return std::move(os).str();
}

}  // namespace shmd::lint
