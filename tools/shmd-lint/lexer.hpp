// Minimal C++ token scanner for shmd-lint.
//
// The linter's rules (see rules.hpp) need token-level structure — "is this
// `*` a binary multiply or a pointer declarator", "is this identifier
// `rand` code or a comment" — but not a full parse. The lexer therefore
// produces a flat token stream with line numbers, keeping comments (they
// carry suppression annotations) and whole preprocessor logical lines
// (rule R4 inspects includes), and folding string/char literals into
// single opaque tokens so their contents can never trip a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shmd::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,     // pp-number: integer or floating literal, any base/suffix
  kString,     // string or character literal, prefixes and delimiters stripped
  kPunct,      // operator or punctuator; multi-char operators are one token
  kDirective,  // whole preprocessor logical line, continuations folded
  kComment,    // comment body without the // or /* */ delimiters
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;      // 1-based line of the token's first character
  int end_line = 1;  // last line the token spans (comments/directives)
  bool line_leading = false;  // first non-whitespace token on its line
};

/// Tokenize `source`. Never throws on malformed input: unterminated
/// literals and comments extend to end-of-file, unknown bytes become
/// single-char punctuators. Garbage in, tokens out — a linter must not
/// die on the code it is judging.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace shmd::lint
