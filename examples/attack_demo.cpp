// Attack demo: the full two-stage black-box evasion pipeline of the paper
// (§V, §VII), run once against an undefended HMD and once against the
// Stochastic-HMD.
//
//   Stage 1 — reverse engineering: query the victim, train a proxy MLP.
//   Stage 2 — evasion: mutate a malware program by add-only instruction
//             injection (with benign mimicry) until the proxy says benign,
//             then ship it against the real victim.
#include <cstdio>

#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "hmd/builders.hpp"
#include "hmd/space_exploration.hpp"

int main() {
  using namespace shmd;

  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 800;
  dataset_config.corpus.n_benign = 160;
  std::printf("building corpus and training the victim...\n");
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  hmd::BaselineHmd baseline = hmd::make_baseline(dataset, folds.victim_training, features);
  const auto explored =
      hmd::explore_error_rate(dataset, folds.victim_training, baseline.network(), features);
  hmd::StochasticHmd stochastic(baseline.network(), features, explored.error_rate);
  std::printf("victim ready (Stochastic-HMD operating at er = %.2f)\n\n",
              explored.error_rate);

  attack::ReverseEngineer re(dataset);
  attack::ReverseEngineerConfig re_config;
  re_config.kind = attack::ProxyKind::kMlp;
  re_config.proxy_configs = {features};

  attack::EvasionConfig evasion;
  evasion.mimicry_mix = attack::benign_category_mix(dataset, folds.attacker_training,
                                                    features.period);

  const std::vector<std::size_t> targets = [&] {
    std::vector<std::size_t> out;
    for (std::size_t idx : folds.testing) {
      if (dataset.samples()[idx].malware() && out.size() < 60) out.push_back(idx);
    }
    return out;
  }();

  for (const bool defended : {false, true}) {
    hmd::Detector& victim = defended ? static_cast<hmd::Detector&>(stochastic)
                                     : static_cast<hmd::Detector&>(baseline);
    std::printf("=== attacking the %s ===\n", defended ? "Stochastic-HMD" : "baseline HMD");

    // Stage 1: reverse engineering with the attacker's own data.
    const auto proxy = re.run(victim, folds.attacker_training, folds.testing, re_config);
    std::printf("stage 1: proxy trained on %zu victim queries, "
                "agreement with the live victim: %.1f%%\n",
                proxy.query_count, 100.0 * proxy.effectiveness);

    // Stage 2: craft one sample verbosely, then the whole batch.
    attack::EvasionConfig ec = evasion;
    ec.craft_threshold = proxy.craft_threshold;
    {
      const attack::EvasionAttack attack(ec);
      const auto original = dataset.trace_of(targets.front());
      const auto crafted = attack.craft(original, *proxy.proxy, re_config.proxy_configs);
      std::printf("stage 2 (sample #%zu): injected %zu instructions over %d rounds, "
                  "proxy score %.3f -> %s the proxy\n",
                  targets.front(), crafted.injected, crafted.rounds,
                  crafted.final_proxy_score, crafted.proxy_evaded ? "EVADED" : "did not evade");
      const auto mutated_features =
          trace::extract_feature_set(crafted.trace, dataset.config().periods);
      std::printf("         shipping it: the real victim says %s\n",
                  victim.detect(mutated_features) ? "MALWARE (caught)" : "benign (evaded!)");
    }

    const auto result = attack::TransferabilityEval(dataset, ec)
                            .run(victim, *proxy.proxy, targets, re_config.proxy_configs);
    std::printf("batch: %zu/%zu evaded the proxy; transfer success %.1f%% — "
                "victim detected %.1f%% of the evasive malware\n\n",
                result.proxy_evaded, result.malware_tested, 100.0 * result.success_rate(),
                100.0 * result.detected_rate());
  }

  std::printf("The same attack pipeline that walks through the deterministic baseline\n"
              "collapses against the moving-target boundary.\n");
  return 0;
}
