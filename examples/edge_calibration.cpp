// Edge-device deployment: the paper's motivation for undervolting-based
// defense is mobile/edge/IoT hardware, where the by-product power savings
// matter as much as the security (§I, §III).
//
// This example walks the full per-device bring-up the paper's §IX calls
// for on three simulated chips of the same SKU:
//   1. sample the device's silicon profile (process variation),
//   2. characterize its undervolt fault window on the multiplier,
//   3. build a temperature-indexed calibration table for the target error
//      rate (the VR firmware adjusts the offset as the die heats up),
//   4. claim the rail (trusted control) and deploy,
//   5. report the power/energy budget against an RHMD alternative.
#include <cstdio>

#include "faultsim/fault_injector.hpp"
#include "hmd/builders.hpp"
#include "sys/energy_meter.hpp"
#include "sys/memory_model.hpp"
#include "volt/calibration.hpp"

int main() {
  using namespace shmd;

  constexpr double kTargetErrorRate = 0.10;

  // A shared model: trained once at the factory, shipped to every device.
  std::printf("training the fleet model once (factory side)...\n\n");
  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 500;
  dataset_config.corpus.n_benign = 100;
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  hmd::BaselineHmd factory_model =
      hmd::make_baseline(dataset, folds.victim_training, features);

  const sys::PowerModel power;
  const sys::LatencyModel latency;
  const sys::EnergyMeter meter{power, latency};
  const std::vector<std::size_t> paper_topology{16, 232, 60, 1};
  const nn::Network deployed_scale_net(paper_topology, nn::Activation::kSigmoid,
                                       nn::Activation::kSigmoid, 1);

  for (std::uint64_t device_serial : {0xED6E01ULL, 0xED6E02ULL, 0xED6E03ULL}) {
    std::printf("=== device %06llx ===\n", static_cast<unsigned long long>(device_serial));

    // 1-2. Fresh silicon; its fault window differs chip to chip.
    const volt::DeviceProfile profile = volt::DeviceProfile::sample(device_serial);
    volt::MsrInterface msr;
    volt::VoltageDomain domain(msr, /*core plane=*/0, volt::VoltFaultModel(profile), 45.0);
    std::printf("fault window: onset %.0f mV, saturation %.0f mV, freeze %.0f mV\n",
                -profile.fault_onset_mv, -profile.fault_saturation_mv, -profile.freeze_mv);

    // 3. Temperature-indexed calibration for the target error rate.
    volt::CalibrationController calibration(domain, /*trials=*/30000, device_serial);
    const auto table = calibration.calibration_table(kTargetErrorRate, 35.0, 75.0, 10.0);
    std::printf("calibration table (er target %.2f):\n", kTargetErrorRate);
    for (const auto& [temp, result] : table) {
      std::printf("  %4.0f C -> offset %7.1f mV (measured er %.3f)\n", temp,
                  result.offset_mv, result.measured_er);
    }

    // 4. Trusted deployment at the current die temperature.
    const double die_temp = 55.0;
    domain.set_temperature_c(die_temp);
    const double offset = calibration.calibrate(kTargetErrorRate).offset_mv;
    const std::uint64_t token = domain.acquire_exclusive();
    hmd::StochasticHmd detector(factory_model.network(), features, 0.0);
    detector.attach_domain(domain, offset, token);

    // One detection burst, to show the rail round-trip.
    const auto& probe = dataset.samples()[folds.testing.front()];
    const bool verdict = detector.detect(probe.features);
    std::printf("deployed at %.0f C, offset %.1f mV (measured er %.3f); probe verdict: %s; "
                "rail restored to %+.1f mV\n",
                die_temp, offset, detector.fault_stats().fault_rate(),
                verdict ? "malware" : "benign", domain.offset_mv());

    // 5. Power story at deployed-model scale.
    const double v = power.config().nominal_voltage_v + offset / 1000.0;
    const auto nominal = meter.detection(deployed_scale_net, power.config().nominal_voltage_v);
    const auto undervolted = meter.detection(deployed_scale_net, v);
    const auto rhmd = meter.rhmd_detection(deployed_scale_net, 2);
    std::printf("per-detection energy: nominal %.1f uJ, undervolted %.1f uJ "
                "(%.1f%% saved), RHMD-2F %.1f uJ (%.1f%% saved vs RHMD); storage saved vs "
                "RHMD-2F: %.0f%%\n\n",
                nominal.energy_uj, undervolted.energy_uj,
                100.0 * (1.0 - undervolted.energy_uj / nominal.energy_uj), rhmd.energy_uj,
                100.0 * (1.0 - undervolted.energy_uj / rhmd.energy_uj),
                100.0 * sys::MemoryModel::storage_savings(2));

    detector.detach_domain();
    domain.release_exclusive(token);
  }

  std::printf("Each chip lands on its own offset for the same security target —\n"
              "the per-device, per-temperature calibration §IX prescribes.\n");
  return 0;
}
