// shmd-served: the scoring service as an actual network daemon.
//
// Everything the serving stack provides in-process — bounded admission,
// deadline-aware scoring, moving-target epoch reconfiguration — behind
// real sockets: a TCP endpoint for remote monitors and an optional
// Unix-domain socket for same-host collectors. Clients speak the framed
// wire protocol in src/net/frame.hpp (NetClient implements it; so does
// bench/net_loadgen.cpp).
//
// The daemon re-rolls the detector's stochastic operating point every
// --epoch-period-ms, so a connected attacker probes a moving target: the
// boundary they reverse-engineer this epoch is gone the next. Runs until
// --duration-s elapses, or until SIGINT/SIGTERM when --duration-s=0.
//
//   shmd-served --listen 127.0.0.1:7433 --unix /tmp/shmd.sock --er 0.10
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "admit/policy.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "net/server.hpp"
#include "nn/network.hpp"
#include "redteam/campaign.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/scoring_service.hpp"
#include "util/cli.hpp"

namespace {

using namespace shmd;

// SIGINT/SIGTERM land here; the main loop polls it. A handler may only
// touch lock-free sig_atomic storage, hence no condition variable.
volatile std::sig_atomic_t g_stop = 0;
extern "C" void handle_stop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("listen", "TCP endpoint, host:port (port 0 = ephemeral)", "127.0.0.1:7433");
  cli.add_flag("unix", "also serve a unix-domain socket at this path", "");
  cli.add_flag("workers", "scoring workers (0 = all cores)", "0");
  cli.add_flag("queue", "admission ring capacity", "256");
  cli.add_flag("er", "stochastic error rate of the detector", "0.10");
  cli.add_flag("seed", "service seed (fault-stream anchor)", "24942");
  cli.add_flag("epoch-period-ms", "moving-target re-roll period (0 = static)", "250");
  cli.add_flag("duration-s", "run time in seconds (0 = until SIGINT/SIGTERM)", "0");
  cli.add_flag("policy", "overload policy: fifo | drop-oldest | lifo", "fifo");
  cli.add_flag("throttle-rps",
               "per-connection fair-share limit, requests/s (0 = unlimited)", "0");
  cli.add_bool("no-raw-scores",
               "refuse kScore from untrusted (TCP) endpoints; they get the "
               "decision-only kVerdict channel (the unix listener stays trusted)");
  if (!cli.parse(argc, argv)) return 0;

  const double er = cli.get_double("er");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::optional<admit::PolicyKind> policy = admit::parse_policy(cli.get("policy"));
  if (!policy.has_value()) {
    std::fprintf(stderr, "shmd-served: unknown --policy '%s' (want fifo | drop-oldest | lifo)\n",
                 cli.get("policy").c_str());
    return 1;
  }
  const std::chrono::milliseconds epoch_period(cli.get_int("epoch-period-ms"));
  const double duration_s = cli.get_double("duration-s");

  // The reference network lives in redteam::served_reference_network so
  // red-team tooling can replicate this daemon's boundary from --seed.
  const trace::FeatureConfig fc = redteam::kServedFeatureConfig;
  const nn::Network net = redteam::served_reference_network(seed);
  const hmd::StochasticHmd hmd(net, fc, er);

  serve::ServeConfig config;
  config.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  config.seed = seed;
  config.admission_policy = *policy;
  serve::ScoringService service(serve::make_epoch(hmd), config);

  net::NetServerConfig net_config;
  net_config.allow_raw_scores = !cli.get_bool("no-raw-scores");
  net_config.throttle_rps = cli.get_double("throttle-rps");
  net::NetServer server(service, net_config);
  // Trust split under --no-raw-scores: remote (TCP) clients are the §V
  // adversary and get decisions only; the same-host unix socket is the
  // defender's own collector and keeps the raw-score channel.
  const util::Endpoint tcp =
      server.add_listener(util::parse_endpoint(cli.get("listen")), /*trusted=*/false);
  std::optional<util::Endpoint> uds;
  if (!cli.get("unix").empty()) {
    uds = server.add_listener(util::parse_endpoint("unix:" + cli.get("unix")),
                              /*trusted=*/true);
  }
  server.start();
  std::printf("shmd-served: scoring on %s%s%s  (workers=%zu queue=%zu er=%.3f)\n",
              tcp.to_string().c_str(), uds ? " and " : "",
              uds ? uds->to_string().c_str() : "", service.num_workers(),
              config.queue_capacity, er);
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  // Moving-target schedule: alternate operating points around the
  // configured rate, a fresh epoch each period. In-flight requests finish
  // on the epoch they were admitted under (RCU slot), so reconfiguration
  // never tears a score.
  const std::vector<double> schedule = {er, er * 0.5, er * 1.5};
  std::size_t epoch_i = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::microseconds(static_cast<std::int64_t>(duration_s * 1e6));
  auto next_roll = start + epoch_period;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now = std::chrono::steady_clock::now();
    if (duration_s > 0.0 && now >= deadline) break;
    if (epoch_period.count() > 0 && now >= next_roll) {
      const hmd::StochasticHmd moved(net, fc, schedule[++epoch_i % schedule.size()]);
      service.install_epoch(serve::make_epoch(moved));
      next_roll = now + epoch_period;
    }
  }

  server.stop();
  service.close();
  const serve::ServiceStatsSnapshot stats = service.stats();
  const net::NetServerStats nstats = server.stats();
  std::printf(
      "shmd-served: done. conns=%llu frames_in=%llu scored=%llu shed=%llu "
      "epoch_swaps=%llu protocol_errors=%llu\n",
      static_cast<unsigned long long>(nstats.accepted_connections),
      static_cast<unsigned long long>(nstats.frames_in),
      static_cast<unsigned long long>(stats.scored),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.epoch_swaps),
      static_cast<unsigned long long>(nstats.protocol_errors));
  return 0;
}
