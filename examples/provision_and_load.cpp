// Provisioning pipeline: the factory/device split of a real rollout.
//
//   FACTORY: build the corpus, train the model at nominal voltage, run the
//            §VI space exploration to pick the operating error rate, run
//            the §IX per-device temperature calibration, and pack it all
//            into one deployment bundle (the network travels in FANN
//            interchange format).
//   DEVICE:  load the bundle from disk, claim the detection core's rail,
//            program the offset for the current die temperature, and start
//            detecting.
#include <cstdio>
#include <fstream>

#include "hmd/builders.hpp"
#include "hmd/deployment.hpp"
#include "hmd/space_exploration.hpp"
#include "volt/calibration.hpp"
#include "volt/cpu_package.hpp"

int main() {
  using namespace shmd;
  const char* bundle_path = "stochastic_hmd_bundle.txt";

  // ------------------------------------------------------------- factory
  std::printf("[factory] training fleet model...\n");
  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 500;
  dataset_config.corpus.n_benign = 100;
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  hmd::BaselineHmd trained = hmd::make_baseline(dataset, folds.victim_training, features);

  const auto explored =
      hmd::explore_error_rate(dataset, folds.victim_training, trained.network(), features);
  std::printf("[factory] space exploration selected er* = %.2f\n", explored.error_rate);

  // Per-device calibration on the target chip (here: simulated SKU).
  volt::MsrInterface factory_msr;
  volt::VoltageDomain factory_rail(factory_msr, 0,
                                   volt::VoltFaultModel(volt::DeviceProfile::sample(0xD117)),
                                   49.0);
  volt::CalibrationController calibration(factory_rail, 25000);
  hmd::DeploymentBundle bundle{trained.network(), features, explored.error_rate, {}};
  for (const auto& [temp, result] :
       calibration.calibration_table(explored.error_rate, 35.0, 75.0, 10.0)) {
    bundle.calibration[temp] = result.offset_mv;
  }
  {
    std::ofstream out(bundle_path);
    hmd::save_deployment(bundle, out);
  }
  std::printf("[factory] bundle written to %s (%zu calibration points)\n\n", bundle_path,
              bundle.calibration.size());

  // -------------------------------------------------------------- device
  std::ifstream in(bundle_path);
  const hmd::DeploymentBundle loaded = hmd::load_deployment(in);
  std::printf("[device] bundle loaded: view=%s period=%zu er=%.2f\n",
              trace::view_name(loaded.feature_config.view).data(),
              loaded.feature_config.period, loaded.target_error_rate);

  volt::CpuPackage package(4, volt::DeviceProfile::sample(0xD117));
  const std::uint64_t token = package.dedicate_detection_core(3);
  const double die_temp = 58.0;
  package.core(3).set_temperature_c(die_temp);
  const double offset = loaded.offset_for_temperature(die_temp);
  std::printf("[device] die at %.0f C -> programming %.1f mV on core %u\n", die_temp, offset,
              package.detection_core());

  hmd::StochasticHmd detector = loaded.make_detector();
  detector.attach_domain(package.core(3), offset, token);

  std::size_t flagged = 0;
  std::size_t scanned = 0;
  for (std::size_t idx : folds.testing) {
    if (scanned >= 40) break;
    const auto& sample = dataset.samples()[idx];
    flagged += detector.detect(sample.features);
    ++scanned;
  }
  std::printf("[device] scanned %zu programs, flagged %zu; application cores nominal: %s\n",
              scanned, flagged, package.application_cores_nominal() ? "yes" : "NO");
  std::printf("[device] effective error rate during bursts: %.3f\n", detector.error_rate());

  detector.detach_domain();
  std::remove(bundle_path);
  std::printf("\nOne artifact carries the model (FANN format), the operating point, and\n"
              "the silicon calibration — everything the enclave firmware needs.\n");
  return 0;
}
