// Quickstart: train a hardware malware detector, harden it with
// undervolting, and classify programs.
//
//   1. build a corpus of program behavior (the paper's dataset substrate),
//   2. train the baseline HMD at nominal voltage,
//   3. wrap the SAME trained network as a Stochastic-HMD (no retraining),
//   4. pick the operating error rate via space exploration,
//   5. classify — and watch the decision scores move run to run.
#include <cstdio>

#include "eval/metrics.hpp"
#include "hmd/builders.hpp"
#include "hmd/space_exploration.hpp"

int main() {
  using namespace shmd;

  // 1. Corpus: 500 malware (5 theZoo-style families) + 100 benign programs.
  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 500;
  dataset_config.corpus.n_benign = 100;
  std::printf("building corpus (%zu programs)...\n",
              dataset_config.corpus.n_malware + dataset_config.corpus.n_benign);
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);

  // 2. Train the baseline detector on instruction-category frequencies.
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  std::printf("training baseline HMD...\n");
  hmd::BaselineHmd baseline = hmd::make_baseline(dataset, folds.victim_training, features);

  // 3+4. Space exploration, then deploy the same network stochastic.
  const hmd::SpaceExplorationResult explored =
      hmd::explore_error_rate(dataset, folds.victim_training, baseline.network(), features);
  std::printf("space exploration: er* = %.2f (accuracy %.1f%% -> %.1f%%)\n",
              explored.error_rate, 100.0 * explored.baseline_accuracy,
              100.0 * explored.selected_accuracy);
  hmd::StochasticHmd detector(baseline.network(), features, explored.error_rate);

  // 5a. Test-set accuracy of both detectors.
  eval::ConfusionMatrix base_cm;
  eval::ConfusionMatrix sto_cm;
  for (std::size_t idx : folds.testing) {
    const auto& sample = dataset.samples()[idx];
    base_cm.add(sample.malware(), baseline.detect(sample.features));
    sto_cm.add(sample.malware(), detector.detect(sample.features));
  }
  std::printf("\n                    accuracy   FPR     FNR\n");
  std::printf("baseline HMD        %5.1f%%   %5.1f%%  %5.1f%%\n", 100 * base_cm.accuracy(),
              100 * base_cm.fpr(), 100 * base_cm.fnr());
  std::printf("Stochastic-HMD      %5.1f%%   %5.1f%%  %5.1f%%\n", 100 * sto_cm.accuracy(),
              100 * sto_cm.fpr(), 100 * sto_cm.fnr());

  // 5b. The moving target: repeated scores on one malware program.
  for (std::size_t idx : folds.testing) {
    const auto& sample = dataset.samples()[idx];
    if (!sample.malware()) continue;
    std::printf("\nprogram #%u (%s): repeated detection scores under undervolting:\n",
                sample.program.id(), trace::family_name(sample.program.family()).data());
    std::printf("  nominal (fault-free): %.3f\n",
                baseline.program_score(sample.features));
    for (int run = 0; run < 5; ++run) {
      std::printf("  undervolted run %d:    %.3f\n", run,
                  detector.program_score(sample.features));
    }
    break;
  }
  std::printf("\nSame program, same model — different scores every run: that is the\n"
              "moving-target boundary an attacker has to reverse-engineer.\n");
  return 0;
}
