// Online monitoring: the "always on" HMD deployment the paper's
// introduction motivates. A dedicated, undervolted core re-classifies
// every running program each detection round; deterministic detectors give
// an attacker a permanent win once evaded, while the stochastic boundary
// re-rolls every round.
//
// The scenario: a workload of benign programs, ordinary malware, and one
// EVASIVE malware sample crafted (via the attack library) to slip past the
// baseline detector. We monitor the mix for several rounds with both
// detectors and print the alarm log.
#include <cstdio>
#include <set>
#include <string>

#include "attack/reverse_engineer.hpp"
#include "hmd/alarm.hpp"
#include "attack/evasion.hpp"
#include "hmd/builders.hpp"
#include "hmd/space_exploration.hpp"
#include "runtime/batch_scorer.hpp"

int main() {
  using namespace shmd;

  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 500;
  dataset_config.corpus.n_benign = 100;
  std::printf("preparing detectors and workload...\n");
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  hmd::BaselineHmd baseline = hmd::make_baseline(dataset, folds.victim_training, features);
  const auto explored =
      hmd::explore_error_rate(dataset, folds.victim_training, baseline.network(), features);
  hmd::StochasticHmd stochastic(baseline.network(), features, explored.error_rate);

  // Craft the evasive sample against a reverse-engineered proxy of the
  // BASELINE (the attacker's best case: a deterministic victim).
  attack::ReverseEngineer re(dataset);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = {features};
  const auto proxy = re.run(baseline, folds.attacker_training, folds.testing, rc);
  attack::EvasionConfig ec;
  ec.mimicry_mix =
      attack::benign_category_mix(dataset, folds.attacker_training, features.period);
  ec.craft_threshold = proxy.craft_threshold;
  const attack::EvasionAttack attack(ec);

  struct MonitoredProgram {
    std::string label;
    bool is_malicious;
    trace::FeatureSet features;
  };
  std::vector<MonitoredProgram> workload;

  std::size_t benign_added = 0;
  std::size_t malware_added = 0;
  bool evasive_added = false;
  std::set<trace::Family> families_seen;
  for (std::size_t idx : folds.testing) {
    const auto& sample = dataset.samples()[idx];
    const std::string family(trace::family_name(sample.program.family()));
    const bool fresh_family = families_seen.insert(sample.program.family()).second;
    if (!sample.malware() && benign_added < 4 && fresh_family) {
      workload.push_back({family, false, sample.features});
      ++benign_added;
    } else if (sample.malware() && malware_added < 3 && fresh_family) {
      workload.push_back({family, true, sample.features});
      ++malware_added;
    } else if (sample.malware() && malware_added >= 3 && !evasive_added) {
      const auto crafted = attack.craft(dataset.trace_of(idx), *proxy.proxy, rc.proxy_configs);
      if (crafted.proxy_evaded) {
        workload.push_back({family + " (EVASIVE)", true,
                            trace::extract_feature_set(crafted.trace,
                                                       dataset.config().periods)});
        evasive_added = true;
      }
    }
    if (benign_added == 4 && malware_added == 3 && evasive_added) break;
  }

  // Operational alarms: don't page on one flagged round — require 3 of the
  // last 8 (debounces benign flicker, accumulates evidence on evasives).
  constexpr int kRounds = 24;
  hmd::AlarmPolicyConfig alarm_config;
  alarm_config.threshold = 3;
  alarm_config.window = 8;
  alarm_config.cooldown = 8;

  // The detection core serves the whole workload: each round, every
  // monitored program is scored as one batch through the inference
  // runtime (per-worker fault streams, allocation-free forward path) —
  // the shape a production deployment with thousands of monitored
  // programs takes.
  runtime::BatchScorer scorer(stochastic, runtime::RuntimeConfig{});
  std::vector<const trace::FeatureSet*> batch;
  batch.reserve(workload.size());
  for (const auto& program : workload) batch.push_back(&program.features);

  std::printf("\nmonitoring %zu programs for %d detection rounds (er = %.2f, "
              "%zu batch workers, alarm = 3-of-8 with cooldown)\n\n",
              workload.size(), kRounds, explored.error_rate, scorer.num_workers());
  std::printf("%-28s %-10s %-16s %-16s %-14s\n", "program", "truth", "baseline flags",
              "stochastic flags", "pages raised");

  std::vector<int> base_flags(workload.size(), 0);
  std::vector<int> sto_flags(workload.size(), 0);
  std::vector<hmd::AlarmPolicy> pagers(workload.size(), hmd::AlarmPolicy(alarm_config));
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<bool> flagged = scorer.detect_batch(batch);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      base_flags[i] += baseline.detect(workload[i].features);
      sto_flags[i] += flagged[i];
      (void)pagers[i].observe(flagged[i]);
    }
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const auto flags = [&](int n) {
      return std::to_string(n) + "/" + std::to_string(kRounds);
    };
    std::printf("%-28s %-10s %-16s %-16s %-14s\n", workload[i].label.c_str(),
                workload[i].is_malicious ? "malware" : "benign",
                flags(base_flags[i]).c_str(), flags(sto_flags[i]).c_str(),
                pagers[i].alarms_raised() > 0
                    ? ("PAGE x" + std::to_string(pagers[i].alarms_raised())).c_str()
                    : "-");
  }

  std::printf("\nThe evasive sample stays quiet on the deterministic baseline in EVERY\n"
              "round — one crafted binary defeats it forever. The stochastic boundary\n"
              "re-rolls per round: the same sample accumulates flagged rounds and pages\n"
              "the operator, while the 3-of-8 policy debounces benign flicker.\n");
  return 0;
}
