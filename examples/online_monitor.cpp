// Online monitoring: the "always on" HMD deployment the paper's
// introduction motivates. A dedicated, undervolted core re-classifies
// every running program each detection round; deterministic detectors give
// an attacker a permanent win once evaded, while the stochastic boundary
// re-rolls every round.
//
// The scenario: a workload of benign programs, ordinary malware, and one
// EVASIVE malware sample crafted (via the attack library) to slip past the
// baseline detector. The monitored programs flow through the resident
// serve::ScoringService — the always-on front-end — while a moving-target
// schedule swaps the detector's operating point (a fresh DetectorEpoch)
// underneath the in-flight requests every few rounds.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "attack/evasion.hpp"
#include "attack/reverse_engineer.hpp"
#include "hmd/alarm.hpp"
#include "hmd/builders.hpp"
#include "hmd/space_exploration.hpp"
#include "serve/scoring_service.hpp"

int main() {
  using namespace shmd;

  trace::DatasetConfig dataset_config;
  dataset_config.corpus.n_malware = 500;
  dataset_config.corpus.n_benign = 100;
  std::printf("preparing detectors and workload...\n");
  const trace::Dataset dataset = trace::Dataset::build(dataset_config);
  const trace::FoldSplit folds = dataset.folds(0);
  const trace::FeatureConfig features{trace::FeatureView::kInsnCategory,
                                      dataset.config().periods.front()};
  hmd::BaselineHmd baseline = hmd::make_baseline(dataset, folds.victim_training, features);
  const auto explored =
      hmd::explore_error_rate(dataset, folds.victim_training, baseline.network(), features);
  hmd::StochasticHmd stochastic(baseline.network(), features, explored.error_rate);

  // Craft the evasive sample against a reverse-engineered proxy of the
  // BASELINE (the attacker's best case: a deterministic victim).
  attack::ReverseEngineer re(dataset);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = {features};
  const auto proxy = re.run(baseline, folds.attacker_training, folds.testing, rc);
  attack::EvasionConfig ec;
  ec.mimicry_mix =
      attack::benign_category_mix(dataset, folds.attacker_training, features.period);
  ec.craft_threshold = proxy.craft_threshold;
  const attack::EvasionAttack attack(ec);

  struct MonitoredProgram {
    std::string label;
    bool is_malicious;
    trace::FeatureSet features;
  };
  std::vector<MonitoredProgram> workload;

  std::size_t benign_added = 0;
  std::size_t malware_added = 0;
  bool evasive_added = false;
  std::set<trace::Family> families_seen;
  for (std::size_t idx : folds.testing) {
    const auto& sample = dataset.samples()[idx];
    const std::string family(trace::family_name(sample.program.family()));
    const bool fresh_family = families_seen.insert(sample.program.family()).second;
    if (!sample.malware() && benign_added < 4 && fresh_family) {
      workload.push_back({family, false, sample.features});
      ++benign_added;
    } else if (sample.malware() && malware_added < 3 && fresh_family) {
      workload.push_back({family, true, sample.features});
      ++malware_added;
    } else if (sample.malware() && malware_added >= 3 && !evasive_added) {
      const auto crafted = attack.craft(dataset.trace_of(idx), *proxy.proxy, rc.proxy_configs);
      if (crafted.proxy_evaded) {
        workload.push_back({family + " (EVASIVE)", true,
                            trace::extract_feature_set(crafted.trace,
                                                       dataset.config().periods)});
        evasive_added = true;
      }
    }
    if (benign_added == 4 && malware_added == 3 && evasive_added) break;
  }

  // Operational alarms: don't page on one flagged round — require 3 of the
  // last 8 (debounces benign flicker, accumulates evidence on evasives).
  constexpr int kRounds = 24;
  hmd::AlarmPolicyConfig alarm_config;
  alarm_config.threshold = 3;
  alarm_config.window = 8;
  alarm_config.cooldown = 8;

  // The detection core is the always-on scoring service: every monitored
  // program is submitted each round and scored by the resident worker
  // pool (per-request fault streams, allocation-free forward path). A
  // moving-target schedule perturbs the operating point every few rounds:
  // a fresh DetectorEpoch is published atomically, so re-rolls never
  // stall or tear in-flight scores.
  serve::ScoringService service(serve::make_epoch(stochastic));
  std::vector<const trace::FeatureSet*> batch;
  batch.reserve(workload.size());
  for (const auto& program : workload) batch.push_back(&program.features);
  // The moving-target schedule cycles the stochastic boundary around the
  // explored operating point (±20%): each point stays inside the
  // accuracy-preserving regime the space exploration mapped out.
  const std::vector<double> schedule = {explored.error_rate, explored.error_rate * 0.8,
                                        explored.error_rate * 1.2};
  constexpr int kRoundsPerEpoch = 4;

  std::printf("\nmonitoring %zu programs for %d detection rounds (er = %.2f, "
              "%zu service workers, epoch swap every %d rounds, alarm = 3-of-8)\n\n",
              workload.size(), kRounds, explored.error_rate, service.num_workers(),
              kRoundsPerEpoch);
  std::printf("%-28s %-10s %-16s %-16s %-14s\n", "program", "truth", "baseline flags",
              "stochastic flags", "pages raised");

  std::vector<int> base_flags(workload.size(), 0);
  std::vector<int> sto_flags(workload.size(), 0);
  std::vector<hmd::AlarmPolicy> pagers(workload.size(), hmd::AlarmPolicy(alarm_config));
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0 && round % kRoundsPerEpoch == 0) {
      hmd::StochasticHmd moved(baseline.network(), features,
                               schedule[static_cast<std::size_t>(round / kRoundsPerEpoch) %
                                        schedule.size()]);
      service.install_epoch(serve::make_epoch(moved));
    }
    const std::vector<bool> flagged = service.detect_all(batch);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      base_flags[i] += baseline.detect(workload[i].features);
      sto_flags[i] += flagged[i];
      (void)pagers[i].observe(flagged[i]);
    }
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const auto flags = [&](int n) {
      return std::to_string(n) + "/" + std::to_string(kRounds);
    };
    std::printf("%-28s %-10s %-16s %-16s %-14s\n", workload[i].label.c_str(),
                workload[i].is_malicious ? "malware" : "benign",
                flags(base_flags[i]).c_str(), flags(sto_flags[i]).c_str(),
                pagers[i].alarms_raised() > 0
                    ? ("PAGE x" + std::to_string(pagers[i].alarms_raised())).c_str()
                    : "-");
  }

  const serve::ServiceStatsSnapshot stats = service.stats();
  std::printf("\nservice: %llu scored, %llu shed, %llu epochs, p50 %.0f us, p99 %.0f us\n",
              static_cast<unsigned long long>(stats.scored),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.epoch_swaps),
              static_cast<double>(stats.latency.p50_ns()) / 1e3,
              static_cast<double>(stats.latency.p99_ns()) / 1e3);

  std::printf("\nThe evasive sample stays quiet on the deterministic baseline in EVERY\n"
              "round — one crafted binary defeats it forever. The stochastic boundary\n"
              "re-rolls per round AND the operating point itself moves between epochs:\n"
              "the same sample accumulates flagged rounds and pages the operator, while\n"
              "the 3-of-8 policy debounces benign flicker.\n");
  return 0;
}
