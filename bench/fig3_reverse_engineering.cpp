// Figure 3 — Reverse-engineering effectiveness: proxy/victim agreement on
// the testing fold, for proxy model in {MLP, LR, DT}, attacker training
// data in {victim-training fold, attacker-training fold}, and victim in
// {baseline HMD, Stochastic-HMD(er=0.1)}.
//
// Both victims are queried through explicit attack::QueryOracles — the
// deterministic baseline behind a DetectorOracle, the stochastic victim
// behind the request-anchored InProcessOracle (the exact replica of the
// scoring service's per-request noise streams). That is the same code
// path redteam::NetOracle drives over a socket, so this figure and an
// over-the-wire campaign against shmd-served measure the same attacker.
#include <cstdio>

#include "common.hpp"

#include "attack/oracle.hpp"

namespace {

using namespace shmd;

// Fault-stream anchor for the stochastic victim's oracle; matches
// shmd-served's default --seed so the in-process numbers line up with a
// freshly started daemon.
constexpr std::uint64_t kServiceSeed = 24942;

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);

  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  const hmd::StochasticHmd stochastic(baseline.network(), fc, er);

  std::printf("Fig. 3 — reverse-engineering effectiveness (er=%.2f)\n\n", er);
  attack::ReverseEngineer re(ds);
  util::Table table({"proxy", "attacker data", "baseline HMD", "Stochastic-HMD", "drop",
                     "victim queries"});
  for (auto kind : {attack::ProxyKind::kMlp, attack::ProxyKind::kLr, attack::ProxyKind::kDt}) {
    for (const bool use_victim_data : {true, false}) {
      const auto& query_fold =
          use_victim_data ? folds.victim_training : folds.attacker_training;
      attack::ReverseEngineerConfig rc;
      rc.kind = kind;
      rc.proxy_configs = {fc};
      // Fresh oracles per measurement: each run re-anchors its noise
      // stream, so every cell is reproducible in isolation.
      attack::DetectorOracle base_oracle(baseline);
      const double base_eff =
          re.run(base_oracle, query_fold, folds.testing, rc).effectiveness;
      attack::InProcessOracle sto_oracle(stochastic, kServiceSeed);
      const double sto_eff =
          re.run(sto_oracle, query_fold, folds.testing, rc).effectiveness;
      table.add_row({std::string(attack::proxy_kind_name(kind)),
                     use_victim_data ? "victim training" : "attacker training",
                     util::Table::pct(base_eff, 1), util::Table::pct(sto_eff, 1),
                     util::Table::pct(base_eff - sto_eff, 1),
                     std::to_string(sto_oracle.queries_used())});
    }
  }
  bench::emit(table, cfg);
  std::printf("\nPaper shape check: the stochastic victim costs every proxy 8-25 points of\n"
              "effectiveness (paper: MLP 99%%->86/75.5%%, LR 92%%->76/71%%, DT 92%%->70/68%%).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "Stochastic-HMD error rate", "0.1");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
