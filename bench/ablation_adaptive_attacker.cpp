// Ablation — the adaptive attacker the paper does not model: repeated
// queries. A Stochastic-HMD's answer is a noisy sample of a fixed
// underlying boundary, so an attacker willing to query each window k times
// and take the MAJORITY label averages the noise away (the
// expectation-over-transformations attack, in HMD form).
//
// This bench quantifies both sides of that trade: how much proxy fidelity
// and evasion success the attacker buys per k, and what it costs in victim
// queries — the detection-side opportunity (each query is an observable
// probe of a security monitor). The whole kill chain runs as a
// redteam::Campaign through an attack::InProcessOracle, i.e. the same
// code path an over-the-wire campaign drives against shmd-served, with
// every victim contact (labeling, the effectiveness measurement, AND the
// transfer measurement) on one query meter.
#include <cstdio>

#include "common.hpp"

#include "attack/oracle.hpp"
#include "hmd/space_exploration.hpp"
#include "redteam/campaign.hpp"

namespace {

using namespace shmd;

// Fault-stream anchor; matches shmd-served's default --seed.
constexpr std::uint64_t kServiceSeed = 24942;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  const auto explored =
      hmd::explore_error_rate(ds, folds.victim_training, baseline.network(), fc);
  const hmd::StochasticHmd victim(baseline.network(), fc, explored.error_rate);
  const std::vector<std::size_t> targets =
      bench::malware_subset(ds, folds, cfg.attack_samples);
  const attack::EvasionConfig evasion_base = bench::make_evasion_config(ds, folds);

  std::printf("Ablation — adaptive (repeat-query, majority-label) attacker "
              "vs Stochastic-HMD at er=%.2f\n\n", explored.error_rate);

  util::Table table({"queries per window", "label queries", "total victim queries",
                     "RE effectiveness", "evasion success", "detected"});
  for (int k : {1, 3, 8, 16}) {
    redteam::CampaignConfig ccfg;
    ccfg.re.kind = attack::ProxyKind::kMlp;
    ccfg.re.proxy_configs = {fc};
    ccfg.re.repeat_queries = k;
    ccfg.re.label_rule = k == 1 ? attack::ReverseEngineerConfig::LabelRule::kSingle
                                : attack::ReverseEngineerConfig::LabelRule::kMajority;
    ccfg.evasion = evasion_base;
    attack::InProcessOracle oracle(victim, kServiceSeed);
    const redteam::CampaignResult res =
        redteam::Campaign(ds, ccfg)
            .run(oracle, nullptr, folds.victim_training, folds.testing, targets);
    table.add_row({std::to_string(k), std::to_string(res.label_queries),
                   std::to_string(res.queries_used),
                   util::Table::pct(res.re_effectiveness, 1),
                   util::Table::pct(res.transfer.success_rate(), 1),
                   util::Table::pct(res.transfer.detected_rate(), 1)});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nTakeaway: majority-of-k querying denoises the moving boundary — proxy\n"
      "fidelity and evasion success climb with k, at k-times the query volume\n"
      "against a live security monitor. Randomization defenses buy effort, not\n"
      "impossibility; deployments should pair them with query-rate anomaly\n"
      "detection. (The paper's threat model is the single-query attacker.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
