// Figure 2(b) — Confidence (output-score) distributions of the
// Stochastic-HMD for benign and malware samples at er in {0.1, 0.5, 1.0}:
// the higher the error rate, the wider the score distribution — the
// injected uncertainty the moving-target defense is built on.
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::StochasticHmd det = hmd::make_stochastic(ds, folds.victim_training, fc, 0.0, cfg.train);

  std::printf("Fig. 2(b) — window-score distributions per class and error rate\n\n");

  constexpr int kBins = 10;
  util::Table table({"class", "er", "mean", "std", "score histogram 0..1"});
  for (const bool malware_class : {false, true}) {
    for (double er : {0.1, 0.5, 1.0}) {
      det.set_error_rate(er);
      util::Histogram hist(0.0, 1.0, kBins);
      util::RunningStats stats;
      for (int rep = 0; rep < cfg.repeats; ++rep) {
        for (std::size_t idx : folds.testing) {
          const auto& s = ds.samples()[idx];
          if (s.malware() != malware_class) continue;
          for (double score : det.window_scores(s.features)) {
            hist.add(score);
            stats.add(score);
          }
        }
      }
      std::string sketch;
      for (std::size_t b = 0; b < hist.bins(); ++b) {
        static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
        const double d = hist.density(b);
        const auto level = std::min<std::size_t>(9, static_cast<std::size_t>(d * 25.0));
        sketch += kLevels[level];
      }
      table.add_row({malware_class ? "malware" : "benign", util::Table::fmt(er, 1),
                     util::Table::fmt(stats.mean(), 3), util::Table::fmt(stats.stddev(), 3),
                     "[" + sketch + "]"});
    }
  }
  bench::emit(table, cfg);
  std::printf("\nPaper shape check: score std grows with er for both classes, while the\n"
              "class means stay separated at er=0.1 (accuracy nearly intact).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
