// Ablation — §IV's collection-framework choice: what would happen if the
// HMD consumed HPC-measured features (non-deterministic, per Das et al.
// S&P'19) instead of deterministic Pin-style instrumentation?
//
// We train the detector on clean (deterministic) features and evaluate it
// on (a) clean features and (b) HPC measurements of the SAME programs,
// sweeping the number of physical counters. Measurement noise alone —
// no adversary — costs detection accuracy and makes verdicts flicker
// across runs, which is why the paper "make[s] sure that our feature
// collection framework is deterministic".
#include <cstdio>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "trace/hpc_collector.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd detector = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);

  std::printf("Ablation — HPC-measured features vs deterministic instrumentation\n\n");

  // Clean reference.
  eval::ConfusionMatrix clean_cm;
  for (std::size_t idx : folds.testing) {
    const auto& s = ds.samples()[idx];
    clean_cm.add(s.malware(), detector.detect(s.features));
  }

  util::Table table({"feature source", "accuracy", "FPR", "FNR", "verdict flicker"});
  table.add_row({"Pin-style (deterministic)", util::Table::pct(clean_cm.accuracy(), 2),
                 util::Table::pct(clean_cm.fpr(), 2), util::Table::pct(clean_cm.fnr(), 2),
                 "0.00%"});

  for (unsigned counters : {8u, 4u, 2u}) {
    trace::HpcConfig hpc_cfg;
    hpc_cfg.physical_counters = counters;
    const trace::HpcCollector hpc(hpc_cfg);

    eval::ConfusionMatrix cm;
    std::size_t flicker = 0;
    std::size_t programs = 0;
    for (std::size_t idx : folds.testing) {
      const auto& s = ds.samples()[idx];
      // Program-level verdict from the HPC-measured whole-trace profile
      // (HPC sampling cannot give clean per-window cuts, which is itself
      // part of the problem).
      const auto run1 = hpc.collect_frequencies(s.program, ds.config().trace_length,
                                                2 * idx);
      const auto run2 = hpc.collect_frequencies(s.program, ds.config().trace_length,
                                                2 * idx + 1);
      const bool verdict1 = detector.score_window(run1) >= 0.5;
      const bool verdict2 = detector.score_window(run2) >= 0.5;
      cm.add(s.malware(), verdict1);
      flicker += verdict1 != verdict2;
      ++programs;
    }
    table.add_row({"HPC, " + std::to_string(counters) + " physical counters",
                   util::Table::pct(cm.accuracy(), 2), util::Table::pct(cm.fpr(), 2),
                   util::Table::pct(cm.fnr(), 2),
                   util::Table::pct(static_cast<double>(flicker) /
                                        static_cast<double>(programs), 2)});
  }
  bench::emit(table, cfg);
  std::printf("\nTakeaway: HPC measurement noise alone degrades the detector and makes\n"
              "verdicts disagree between two runs on the SAME program ('flicker') —\n"
              "an adversary-free reliability failure. Unlike undervolting noise, this\n"
              "randomness is not under the defender's control: it cannot be calibrated,\n"
              "turned off for validation, or traded against robustness.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
