// Ablation (DESIGN.md choice #1 and the §III argument): does the SHAPE and
// STOCHASTICITY of the fault model matter, or is any perturbation enough?
//
//   measured  — the Fig.-1 bump (the paper's physics);
//   uniform   — same eligibility mask, flat location distribution;
//   stuck-at  — one fixed bit flips every fault: a *deterministic*
//               approximate-computing design (the alternatives §III rejects
//               because "their behavior is deterministic").
//
// For each profile: accuracy at er, reverse-engineering effectiveness, and
// transferability. The stuck-at detector still loses accuracy but its
// boundary is a FIXED (if shifted) target — repeat-queries show no
// variance, and evasion transfers like against any deterministic model.
#include <cstdio>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "eval/metrics.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  const std::vector<std::size_t> targets =
      bench::malware_subset(ds, folds, cfg.attack_samples);
  const attack::EvasionConfig evasion_base = bench::make_evasion_config(ds, folds);

  struct Profile {
    const char* name;
    faultsim::BitFaultDistribution distribution;
  };
  const Profile profiles[] = {
      {"measured (Fig. 1 bump)", faultsim::BitFaultDistribution::measured()},
      {"uniform over eligible bits", faultsim::BitFaultDistribution::uniform()},
      {"stuck-at bit 36 (deterministic AC)", faultsim::BitFaultDistribution::stuck_at(36)},
  };

  std::printf("Ablation — fault-location profile at er=%.2f\n\n", er);
  util::Table table({"profile", "accuracy", "repeat-query variance", "RE effectiveness",
                     "evasion success", "detected"});
  attack::ReverseEngineer re(ds);
  for (const Profile& profile : profiles) {
    hmd::StochasticHmd victim(baseline.network(), fc, er, profile.distribution);

    eval::ConfusionMatrix cm;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      for (std::size_t idx : folds.testing) {
        const auto& s = ds.samples()[idx];
        cm.add(s.malware(), victim.detect(s.features));
      }
    }

    // Repeat-query variance: how often do two queries on the same window
    // disagree? A deterministic fault model shows (near) zero — the
    // attacker sees a stable, learnable boundary.
    std::size_t disagreements = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < std::min<std::size_t>(folds.testing.size(), 50); ++k) {
      const auto& s = ds.samples()[folds.testing[k]];
      const auto first = victim.window_scores(s.features);
      const auto second = victim.window_scores(s.features);
      for (std::size_t w = 0; w < first.size(); ++w) {
        disagreements += (first[w] >= 0.5) != (second[w] >= 0.5);
        ++total;
      }
    }

    attack::ReverseEngineerConfig rc;
    rc.kind = attack::ProxyKind::kMlp;
    rc.proxy_configs = {fc};
    const auto proxy = re.run(victim, folds.victim_training, folds.testing, rc);
    attack::EvasionConfig ec = evasion_base;
    ec.craft_threshold = proxy.craft_threshold;
    const auto transfer = attack::TransferabilityEval(ds, ec)
                              .run(victim, *proxy.proxy, targets, rc.proxy_configs);

    table.add_row({profile.name, util::Table::pct(cm.accuracy(), 1),
                   util::Table::pct(static_cast<double>(disagreements) /
                                        static_cast<double>(total), 2),
                   util::Table::pct(proxy.effectiveness, 1),
                   util::Table::pct(transfer.success_rate(), 1),
                   util::Table::pct(transfer.detected_rate(), 1)});
  }
  bench::emit(table, cfg);
  std::printf("\nTakeaway: the stuck-at (deterministic) fault model pays the accuracy cost\n"
              "of approximation WITHOUT the moving-target benefit — zero repeat-query\n"
              "variance means the shifted boundary is still a fixed target. Stochastic\n"
              "location profiles (measured/uniform) buy the actual defense.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "error rate for all profiles", "0.1");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
