// redteam_campaign: the end-to-end adaptive adversary against the live
// service, over the wire.
//
// Every attack bench so far measured the kill chain in-process. This one
// runs redteam::Campaign (label -> proxy -> craft -> ship) through BOTH
// oracles for every configuration cell:
//
//   * attack::InProcessOracle  — the request-anchored replica, and
//   * redteam::NetOracle       — a real NetServer over a Unix socket,
//     decision-only kVerdict frames, pipelined queries,
//
// and asserts the two runs are bit-identical (equal decision hashes, equal
// transfer counts). On top of the parity probe it sweeps the three
// campaign knobs — epoch roll period (in queries), query budget, and the
// repeat-query label rule — so the report carries the evasion-transfer
// vs. epoch-period series (the moving target's headline: shorter epochs
// buy lower transfer), plus a fleet section: one evasive set crafted
// against the reference die, shipped to N served instances whose volt/
// profiles put each die at a different effective error rate.
//
// Default mode is self-hosted (the bench owns every service). --connect
// <endpoint> instead drives ONE parity cell against an external
// shmd-served — the CI attack-smoke split. The daemon must be freshly
// started with --epoch-period-ms=0 and the same --seed/--er, because the
// parity contract anchors per-request noise to the admission sequence.
//
// Emits a raw JSON report (stdout or --out); CI reduces it to
// BENCH_attack.json with bench/emit_bench_json.py --attack.
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "common.hpp"

#include "attack/oracle.hpp"
#include "attack/transferability.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "redteam/campaign.hpp"
#include "redteam/fleet.hpp"
#include "redteam/net_oracle.hpp"
#include "serve/scoring_service.hpp"

namespace {

using namespace shmd;
using attack::ReverseEngineerConfig;

/// One point of the sweep lattice.
struct Cell {
  std::uint64_t epoch_period_queries = 0;
  std::uint64_t query_budget = 0;
  ReverseEngineerConfig::LabelRule rule = ReverseEngineerConfig::LabelRule::kSingle;
  int repeat_queries = 1;
};

const char* rule_name(ReverseEngineerConfig::LabelRule rule) {
  switch (rule) {
    case ReverseEngineerConfig::LabelRule::kSingle: return "single";
    case ReverseEngineerConfig::LabelRule::kAny: return "any";
    case ReverseEngineerConfig::LabelRule::kMajority: return "majority";
  }
  return "?";
}

/// Wire-side bookkeeping for one cell: the campaign outcome plus the
/// server's own view of it.
struct WireOutcome {
  redteam::CampaignResult result;
  serve::ServiceStatsSnapshot stats;
  std::uint64_t shed = 0;
  bool accounting_ok = false;
};

struct CellReport {
  Cell cell;
  redteam::CampaignResult inproc;
  WireOutcome wire;
  bool parity_ok = false;
};

redteam::CampaignConfig campaign_config(const Cell& cell, const trace::FeatureConfig& fc,
                                        const attack::EvasionConfig& evasion) {
  redteam::CampaignConfig ccfg;
  ccfg.re.kind = attack::ProxyKind::kMlp;
  ccfg.re.proxy_configs = {fc};
  ccfg.re.repeat_queries = cell.repeat_queries;
  ccfg.re.label_rule = cell.rule;
  ccfg.evasion = evasion;
  ccfg.query_budget = cell.query_budget;
  ccfg.epoch_period_queries = cell.epoch_period_queries;
  return ccfg;
}

/// The in-process leg: replica oracle + in-process epoch roller.
redteam::CampaignResult run_inproc(const trace::Dataset& ds, const hmd::StochasticHmd& victim,
                                   std::uint64_t service_seed,
                                   const std::vector<double>& schedule,
                                   const redteam::CampaignConfig& ccfg,
                                   const trace::FoldSplit& folds,
                                   const std::vector<std::size_t>& targets) {
  attack::InProcessOracle oracle(victim, service_seed);
  redteam::InProcessEpochController controller(oracle, schedule);
  const redteam::Campaign campaign(ds, ccfg);
  return campaign.run(oracle, ccfg.epoch_period_queries > 0 ? &controller : nullptr,
                      folds.attacker_training, folds.testing, targets);
}

/// The wire leg: a fresh service + NetServer per cell (the parity contract
/// anchors noise to the admission sequence, which restarts at 0 with the
/// service), decision-only listener, campaign through a NetOracle.
WireOutcome run_wire(const trace::Dataset& ds, const nn::Network& net,
                     const trace::FeatureConfig& fc, double er, std::uint64_t service_seed,
                     std::size_t workers, const std::vector<double>& schedule,
                     const redteam::CampaignConfig& ccfg, const trace::FoldSplit& folds,
                     const std::vector<std::size_t>& targets, const std::string& uds_path) {
  serve::ServeConfig config;
  config.num_workers = workers;
  config.seed = service_seed;
  serve::ScoringService service(serve::make_epoch(hmd::StochasticHmd(net, fc, er)), config);
  net::NetServerConfig net_config;
  net_config.allow_raw_scores = false;  // the §V posture shmd-served deploys
  net::NetServer server(service, net_config);
  const util::Endpoint ep =
      server.add_listener(util::parse_endpoint("unix:" + uds_path), /*trusted=*/false);
  server.start();

  WireOutcome out;
  {
    net::NetClient client;
    client.connect(ep);
    redteam::NetOracleConfig ocfg;
    ocfg.features = fc;
    ocfg.recv_timeout = std::chrono::milliseconds(30000);
    redteam::NetOracle oracle(client, ocfg);
    redteam::ServiceEpochController controller(service, net, fc, schedule);
    const redteam::Campaign campaign(ds, ccfg);
    out.result = campaign.run(oracle, ccfg.epoch_period_queries > 0 ? &controller : nullptr,
                              folds.attacker_training, folds.testing, targets);
  }
  server.stop();
  service.close();
  out.stats = service.stats();
  const net::NetServerStats nstats = server.stats();
  out.shed = out.stats.shed;
  // Wire accounting: the campaign's query count must be exactly what the
  // server scored AND what it scored decision-only — no raw-score leak,
  // no shed reply silently counted as a verdict, nothing lost in flight.
  out.accounting_ok = out.stats.failed == 0 && out.stats.in_flight() == 0 &&
                      out.stats.shed == 0 && nstats.protocol_errors == 0 &&
                      out.stats.scored == out.result.queries_used &&
                      out.stats.verdict_queries == out.result.queries_used;
  return out;
}

bool results_match(const redteam::CampaignResult& a, const redteam::CampaignResult& b) {
  return a.decision_hash == b.decision_hash && a.queries_used == b.queries_used &&
         a.epochs_rolled == b.epochs_rolled &&
         a.transfer.transferred == b.transfer.transferred &&
         a.transfer.proxy_evaded == b.transfer.proxy_evaded &&
         a.train_programs == b.train_programs;
}

void print_result(std::FILE* out, const char* key, const redteam::CampaignResult& r,
                  bool last) {
  std::fprintf(out,
               "      \"%s\": {\n"
               "        \"re_effectiveness\": %.6f,\n"
               "        \"train_programs\": %zu,\n"
               "        \"label_queries\": %llu,\n"
               "        \"malware_tested\": %zu,\n"
               "        \"proxy_evaded\": %zu,\n"
               "        \"transferred\": %zu,\n"
               "        \"transfer_rate\": %.6f,\n"
               "        \"detected_rate\": %.6f,\n"
               "        \"queries_used\": %llu,\n"
               "        \"epochs_rolled\": %llu,\n"
               "        \"decision_hash\": \"0x%016llx\"\n"
               "      }%s\n",
               key, r.re_effectiveness, r.train_programs,
               static_cast<unsigned long long>(r.label_queries), r.transfer.malware_tested,
               r.transfer.proxy_evaded, r.transfer.transferred, r.transfer.success_rate(),
               r.transfer.detected_rate(), static_cast<unsigned long long>(r.queries_used),
               static_cast<unsigned long long>(r.epochs_rolled),
               static_cast<unsigned long long>(r.decision_hash), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("connect", "drive an external shmd-served at this endpoint instead", "");
  cli.add_flag("er", "victim stochastic error rate", "0.10");
  cli.add_flag("service-seed", "service fault-stream anchor (must match the daemon's --seed "
               "in --connect mode)", "24942");
  cli.add_flag("budget", "query budget for the --connect parity cell (0 = unlimited)", "0");
  cli.add_flag("fleet-devices", "fleet size for the cross-device section (0 = skip)", "4");
  cli.add_flag("fleet-seed", "device-profile sampling seed", "61423");
  cli.add_flag("fleet-temp", "fleet die temperature, Celsius", "45");
  cli.add_flag("out", "write the JSON report here instead of stdout", "");
  const auto cfg = bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;

  const std::string connect = cli.get("connect");
  const double er = cli.get_double("er");
  const auto service_seed = static_cast<std::uint64_t>(cli.get_int("service-seed"));
  // shmd-served's moving-target schedule, translated to the query clock.
  const std::vector<double> schedule = {er * 0.5, er * 1.5, er};

  const trace::Dataset ds = trace::Dataset::build(cfg->dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  const std::vector<std::size_t> targets = bench::malware_subset(ds, folds, cfg->attack_samples);
  const attack::EvasionConfig evasion = bench::make_evasion_config(ds, folds);

  // The victim boundary. Self-hosted trains the fig3-style detector;
  // --connect replicates the daemon's untrained reference network from
  // its seed (the parity probe needs the boundary, not a good detector).
  const nn::Network net =
      connect.empty()
          ? hmd::make_baseline(ds, folds.victim_training, fc, cfg->train).network()
          : redteam::served_reference_network(service_seed);
  const hmd::StochasticHmd victim(net, fc, er);

  // Scale-invariant sweep values: the epoch periods and budgets are
  // derived from the fold sizes so the same trend is probed at --quick
  // and --paper-scale alike.
  const std::uint64_t n_train = folds.attacker_training.size();
  const std::uint64_t reserved = folds.testing.size() + targets.size();
  const std::uint64_t total_est = n_train + reserved;
  std::vector<Cell> cells;
  if (connect.empty()) {
    // Epoch series (the headline): static victim down to ~32 rolls/run.
    for (const std::uint64_t p : {std::uint64_t{0}, total_est / 2, total_est / 8,
                                  total_est / 32}) {
      cells.push_back({p, 0, ReverseEngineerConfig::LabelRule::kSingle, 1});
    }
    // Budget series: unlimited is above; mid and starved attackers.
    cells.push_back({0, reserved + n_train / 2, ReverseEngineerConfig::LabelRule::kSingle, 1});
    cells.push_back({0, reserved + n_train / 5, ReverseEngineerConfig::LabelRule::kSingle, 1});
    // Label-rule series: the repeat-query adaptive attackers.
    cells.push_back({0, 0, ReverseEngineerConfig::LabelRule::kMajority, 3});
    cells.push_back({0, 0, ReverseEngineerConfig::LabelRule::kAny, 3});
    // Cross term: rolling victim vs budgeted majority attacker.
    cells.push_back({total_est / 8, reserved + 3 * n_train / 2,
                     ReverseEngineerConfig::LabelRule::kMajority, 3});
  } else {
    cells.push_back({0, static_cast<std::uint64_t>(cli.get_int("budget")),
                     ReverseEngineerConfig::LabelRule::kSingle, 1});
  }

  const std::string uds_base =
      "/tmp/shmd_redteam_" + std::to_string(::getpid()) + "_";
  std::vector<CellReport> reports;
  reports.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::fprintf(stderr,
                 "cell %zu/%zu: period=%llu budget=%llu rule=%s x%d ...\n", i + 1,
                 cells.size(), static_cast<unsigned long long>(cell.epoch_period_queries),
                 static_cast<unsigned long long>(cell.query_budget), rule_name(cell.rule),
                 cell.repeat_queries);
    const redteam::CampaignConfig ccfg = campaign_config(cell, fc, evasion);
    CellReport report;
    report.cell = cell;
    report.inproc = run_inproc(ds, victim, service_seed, schedule, ccfg, folds, targets);
    if (connect.empty()) {
      report.wire = run_wire(ds, net, fc, er, service_seed, cfg->workers, schedule, ccfg,
                             folds, targets, uds_base + std::to_string(i) + ".sock");
    } else {
      // External daemon: one campaign against the remote endpoint. Server
      // stats are out of reach; accounting reduces to "every query got a
      // scored reply", which NetOracle already enforces by throwing.
      net::NetClient client;
      client.connect(util::parse_endpoint(connect));
      redteam::NetOracleConfig ocfg;
      ocfg.features = redteam::kServedFeatureConfig;
      ocfg.recv_timeout = std::chrono::milliseconds(30000);
      redteam::NetOracle oracle(client, ocfg);
      const redteam::Campaign campaign(ds, ccfg);
      report.wire.result =
          campaign.run(oracle, nullptr, folds.attacker_training, folds.testing, targets);
      report.wire.accounting_ok = true;
    }
    report.parity_ok = results_match(report.inproc, report.wire.result);
    std::fprintf(stderr, "  transfer wire=%.3f inproc=%.3f parity=%s accounting=%s\n",
                 report.wire.result.transfer.success_rate(),
                 report.inproc.transfer.success_rate(), report.parity_ok ? "ok" : "MISMATCH",
                 report.wire.accounting_ok ? "ok" : "FAIL");
    reports.push_back(std::move(report));
  }

  // Fleet section (self-hosted only): craft ONE evasive set against the
  // reference die's boundary, then ship it to every served instance.
  const auto n_fleet =
      connect.empty() ? static_cast<std::size_t>(cli.get_int("fleet-devices")) : 0;
  std::vector<redteam::FleetDevice> fleet;
  std::vector<redteam::FleetDeviceOutcome> fleet_outcomes;
  std::size_t fleet_crafted = 0;
  bool fleet_accounting_ok = true;
  if (n_fleet > 0) {
    const double temp_c = cli.get_double("fleet-temp");
    fleet = redteam::sample_fleet(n_fleet, static_cast<std::uint64_t>(cli.get_int("fleet-seed")),
                                  er, temp_c);
    std::fprintf(stderr, "fleet: %zu devices at %.0f C, rail %.1f mV ...\n", fleet.size(),
                 temp_c, fleet.front().offset_mv);
    // Attacker side, against device 0 (the die the rail was calibrated on).
    attack::InProcessOracle ref_oracle(victim, service_seed);
    attack::ReverseEngineerConfig rc;
    rc.proxy_configs = {fc};
    const auto proxy = attack::ReverseEngineer(ds).run(ref_oracle, folds.attacker_training,
                                                       folds.testing, rc);
    attack::EvasionConfig ec = evasion;
    ec.craft_threshold = proxy.craft_threshold;
    const attack::CraftOutcome crafted =
        attack::TransferabilityEval(ds, ec).craft(*proxy.proxy, targets, rc.proxy_configs);
    fleet_crafted = crafted.evasive.size();

    // Defender side: one served instance per viable die, each at its own
    // effective error rate, each with its own connection.
    std::vector<std::unique_ptr<serve::ScoringService>> services(fleet.size());
    std::vector<std::unique_ptr<net::NetServer>> servers(fleet.size());
    std::vector<std::unique_ptr<net::NetClient>> clients(fleet.size());
    for (const redteam::FleetDevice& dev : fleet) {
      if (dev.frozen) continue;
      serve::ServeConfig sc;
      sc.num_workers = cfg->workers;
      sc.seed = service_seed + dev.index;  // each die streams its own noise
      services[dev.index] = std::make_unique<serve::ScoringService>(
          serve::make_epoch(hmd::StochasticHmd(net, fc, dev.error_rate)), sc);
      net::NetServerConfig nc;
      nc.allow_raw_scores = false;
      servers[dev.index] = std::make_unique<net::NetServer>(*services[dev.index], nc);
      const util::Endpoint ep = servers[dev.index]->add_listener(
          util::parse_endpoint("unix:" + uds_base + "fleet" + std::to_string(dev.index) +
                               ".sock"),
          /*trusted=*/false);
      servers[dev.index]->start();
      clients[dev.index] = std::make_unique<net::NetClient>();
      clients[dev.index]->connect(ep);
    }
    redteam::NetOracleConfig ocfg;
    ocfg.features = fc;
    ocfg.recv_timeout = std::chrono::milliseconds(30000);
    fleet_outcomes = redteam::measure_fleet_transfer(
        ds, crafted, fleet,
        [&](const redteam::FleetDevice& dev) {
          return std::make_unique<redteam::NetOracle>(*clients[dev.index], ocfg);
        },
        ec);
    for (const redteam::FleetDevice& dev : fleet) {
      if (dev.frozen) continue;
      servers[dev.index]->stop();
      services[dev.index]->close();
      const serve::ServiceStatsSnapshot stats = services[dev.index]->stats();
      if (stats.failed != 0 || stats.in_flight() != 0 || stats.shed != 0 ||
          stats.verdict_queries != stats.scored) {
        fleet_accounting_ok = false;
      }
    }
  }

  bool parity_ok = true;
  bool accounting_ok = fleet_accounting_ok;
  for (const CellReport& r : reports) {
    parity_ok = parity_ok && r.parity_ok;
    accounting_ok = accounting_ok && r.wire.accounting_ok;
  }

  const std::string out_path = cli.get("out");
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr)
      throw std::runtime_error("redteam_campaign: cannot open " + out_path);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"config\": {\n"
               "    \"mode\": \"%s\",\n"
               "    \"er\": %.4f,\n"
               "    \"service_seed\": %llu,\n"
               "    \"train_fold\": %llu,\n"
               "    \"test_fold\": %zu,\n"
               "    \"attack_samples\": %zu\n"
               "  },\n",
               connect.empty() ? "self_hosted" : "connect", er,
               static_cast<unsigned long long>(service_seed),
               static_cast<unsigned long long>(n_train), folds.testing.size(),
               targets.size());
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CellReport& r = reports[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"epoch_period_queries\": %llu,\n"
                 "      \"query_budget\": %llu,\n"
                 "      \"label_rule\": \"%s\",\n"
                 "      \"repeat_queries\": %d,\n"
                 "      \"parity_ok\": %s,\n"
                 "      \"wire_accounting_ok\": %s,\n"
                 "      \"server_shed\": %llu,\n",
                 static_cast<unsigned long long>(r.cell.epoch_period_queries),
                 static_cast<unsigned long long>(r.cell.query_budget),
                 rule_name(r.cell.rule), r.cell.repeat_queries,
                 r.parity_ok ? "true" : "false",
                 r.wire.accounting_ok ? "true" : "false",
                 static_cast<unsigned long long>(r.wire.shed));
    print_result(out, "wire", r.wire.result, /*last=*/false);
    print_result(out, "inproc", r.inproc, /*last=*/true);
    std::fprintf(out, "    }%s\n", i + 1 == reports.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"fleet\": {\n"
               "    \"devices\": %zu,\n"
               "    \"crafted_evasive\": %zu,\n"
               "    \"accounting_ok\": %s,\n"
               "    \"members\": [\n",
               fleet.size(), fleet_crafted, fleet_accounting_ok ? "true" : "false");
  for (std::size_t i = 0; i < fleet_outcomes.size(); ++i) {
    const redteam::FleetDeviceOutcome& o = fleet_outcomes[i];
    std::fprintf(out,
                 "      {\"device\": %zu, \"offset_mv\": %.2f, \"error_rate\": %.6f, "
                 "\"frozen\": %s, \"proxy_evaded\": %zu, \"transferred\": %zu, "
                 "\"transfer_rate\": %.6f, \"queries_used\": %llu, "
                 "\"decision_hash\": \"0x%016llx\"}%s\n",
                 o.device.index, o.device.offset_mv, o.device.error_rate,
                 o.device.frozen ? "true" : "false", o.transfer.proxy_evaded,
                 o.transfer.transferred, o.transfer.success_rate(),
                 static_cast<unsigned long long>(o.queries_used),
                 static_cast<unsigned long long>(o.decision_hash),
                 i + 1 == fleet_outcomes.size() ? "" : ",");
  }
  std::fprintf(out, "    ]\n  },\n");
  std::fprintf(out,
               "  \"totals\": {\n"
               "    \"cells\": %zu,\n"
               "    \"parity_ok\": %s,\n"
               "    \"accounting_ok\": %s\n"
               "  }\n}\n",
               reports.size(), parity_ok ? "true" : "false",
               accounting_ok ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return parity_ok && accounting_ok ? 0 : 1;
}
