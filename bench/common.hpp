// Shared experiment environment for the per-figure bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation. They share: the synthetic corpus configuration (default is a
// 40%-scale corpus that runs in seconds; --paper-scale switches to the
// paper's 3000/600), the trained victim detectors, and the attack
// configuration. All randomness is seeded, so each bench is reproducible.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "attack/evasion.hpp"
#include "attack/reverse_engineer.hpp"
#include "hmd/builders.hpp"
#include "trace/dataset.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace shmd::bench {

struct BenchConfig {
  trace::DatasetConfig dataset;
  hmd::HmdTrainOptions train;
  /// Malware programs attacked per transferability measurement.
  std::size_t attack_samples = 100;
  /// Repeats for mean/stddev aggregation (the paper uses 50).
  int repeats = 5;
  /// 3-fold CV rotations to run (paper: all 3).
  int rotations = 3;
  /// Worker threads for the batch inference runtime (0 = all cores).
  /// Scores are bit-reproducible per (seed, workers) pair; pin this when
  /// comparing CSVs across machines.
  std::size_t workers = 0;
  std::optional<std::string> csv_path;
};

/// Register the standard flags on `cli`.
void add_common_flags(util::CliParser& cli);

/// Build the configuration from parsed flags.
[[nodiscard]] BenchConfig config_from_cli(const util::CliParser& cli);

/// Parse + build in one step; returns nullopt when --help was requested.
[[nodiscard]] std::optional<BenchConfig> parse_bench_args(int argc, const char* const* argv,
                                                          util::CliParser& cli);

/// Print the table and optionally persist it as CSV.
void emit(const util::Table& table, const BenchConfig& config);

/// The victim's feature configuration (instruction-category view at the
/// shorter detection period), as in the paper.
[[nodiscard]] trace::FeatureConfig victim_config(const trace::Dataset& ds);

/// Default evasion configuration: benign-mimicry mix measured on the
/// attacker fold, calibrated craft threshold filled in by the caller.
[[nodiscard]] attack::EvasionConfig make_evasion_config(const trace::Dataset& ds,
                                                        const trace::FoldSplit& folds);

/// First `limit` malware programs of the testing fold.
[[nodiscard]] std::vector<std::size_t> malware_subset(const trace::Dataset& ds,
                                                      const trace::FoldSplit& folds,
                                                      std::size_t limit);

}  // namespace shmd::bench
