// Figure 6 — Baseline detection accuracy of the RHMD constructions versus
// the most resilient Stochastic-HMD (er = 0.1): correctly classified
// benign and non-evasive malware on the testing fold.
#include <cstdio>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace shmd;

void measure(const trace::Dataset& ds, const trace::FoldSplit& folds, hmd::Detector& det,
             int repeats, util::Table& table) {
  util::RunningStats acc;
  util::RunningStats fpr;
  util::RunningStats fnr;
  for (int rep = 0; rep < repeats; ++rep) {
    eval::ConfusionMatrix cm;
    for (std::size_t idx : folds.testing) {
      const auto& s = ds.samples()[idx];
      cm.add(s.malware(), det.detect(s.features));
    }
    acc.add(cm.accuracy());
    fpr.add(cm.fpr());
    fnr.add(cm.fnr());
  }
  table.add_row({std::string(det.name()), util::Table::pct(acc.mean(), 2),
                 util::Table::pct(fpr.mean(), 2), util::Table::pct(fnr.mean(), 2),
                 util::ascii_bar(acc.mean(), 1.0, 25)});
}

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  const auto periods = ds.config().periods;

  std::printf("Fig. 6 — baseline accuracy: RHMD constructions vs Stochastic-HMD "
              "(er=%.2f, %d repeats)\n\n", er, cfg.repeats);

  util::Table table({"detector", "accuracy", "FPR", "FNR", "bar"});
  {
    hmd::BaselineHmd base = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
    measure(ds, folds, base, 1, table);
    hmd::StochasticHmd sto(base.network(), fc, er);
    measure(ds, folds, sto, cfg.repeats, table);
  }
  for (const auto& construction :
       {hmd::rhmd_2f(periods[0]), hmd::rhmd_3f(periods[0]),
        hmd::rhmd_2f2p(periods[0], periods[1]), hmd::rhmd_3f2p(periods[0], periods[1])}) {
    hmd::Rhmd det = hmd::make_rhmd(ds, folds.victim_training, construction, cfg.train);
    measure(ds, folds, det, cfg.repeats, table);
  }
  bench::emit(table, cfg);
  std::printf("\nPaper shape check: Stochastic-HMD stays within ~2 points of the most\n"
              "resilient RHMD (it runs ONE detector; RHMDs dilute per-view accuracy\n"
              "across their base models).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "Stochastic-HMD error rate", "0.1");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
