// Figure 1 — Probability distribution of faulty-bit locations for
// undervolted multiplication results (i7-5557U at 2.2 GHz, 49 °C,
// undervolted by -130 mV), plus the §II characterization claims:
//   * fault onset between -103 mV and -145 mV depending on inputs,
//   * sign bit and 8 LSBs never flip,
//   * fault locations are stochastic (approximate-entropy test),
//   * add/sub/bitwise operations never fault.
#include <bit>
#include <cstdio>

#include "common.hpp"
#include "faultsim/fault_injector.hpp"
#include "faultsim/faulty_alu.hpp"
#include "rng/entropy.hpp"
#include "rng/xoshiro256ss.hpp"
#include "util/table.hpp"
#include "volt/voltage_domain.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, double offset_mv, double temp_c,
        std::size_t operand_sets, std::size_t runs_per_set, bool uniform_ablation) {
  const volt::DeviceProfile profile;  // the paper's characterized device
  const volt::VoltFaultModel model(profile);

  auto distribution = uniform_ablation ? faultsim::BitFaultDistribution::uniform()
                                       : faultsim::BitFaultDistribution::measured();
  faultsim::FaultInjector injector(0.0, distribution);
  faultsim::FaultyAlu alu(injector);
  alu.set_operand_probability([&](std::uint64_t a, std::uint64_t b) {
    return model.operand_fault_probability(a, b, offset_mv, temp_c);
  });
  injector.set_error_rate(1.0);  // gate per-op probability via operands

  // Repeatedly run multiply on the same operands across many operand sets
  // (paper: "repeatedly run multiply operations on same operands several
  // times for 100k sets of operands").
  rng::Xoshiro256ss gen(cfg.dataset.corpus.master_seed);
  std::vector<std::uint8_t> location_parity;
  std::size_t nonmul_faults = 0;
  for (std::size_t set = 0; set < operand_sets; ++set) {
    const std::uint64_t a = gen();
    const std::uint64_t b = gen();
    for (std::size_t run = 0; run < runs_per_set; ++run) {
      const std::uint64_t product = alu.mul(a, b);
      const std::uint64_t diff = product ^ (a * b);
      if (diff != 0) {
        location_parity.push_back(static_cast<std::uint8_t>(std::countr_zero(diff) & 1));
      }
      // §II control experiment: other ALU ops at the same voltage.
      nonmul_faults += (alu.add(a, b) != a + b);
      nonmul_faults += (alu.sub(a, b) != a - b);
      nonmul_faults += (alu.bit_xor(a, b) != (a ^ b));
    }
  }

  const auto& stats = injector.stats();
  std::printf("Fig. 1 — bit-wise error rate of undervolted multiplications\n");
  std::printf("device: onset %.0f mV, saturation %.0f mV; operating point %.0f mV @ %.0f C\n",
              -profile.fault_onset_mv, -profile.fault_saturation_mv, offset_mv, temp_c);
  std::printf("multiplications: %llu, faulty: %llu (rate %.4f); non-mul faults: %zu\n\n",
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.faults), stats.fault_rate(), nonmul_faults);

  util::Table table({"bit", "error rate", "profile"});
  double max_rate = 0.0;
  for (int b = 63; b >= 0; --b) max_rate = std::max(max_rate, stats.bit_error_rate(b));
  for (int b = 63; b >= 0; --b) {
    const double rate = stats.bit_error_rate(b);
    table.add_row({std::to_string(b), util::Table::pct(rate, 4),
                   util::ascii_bar(rate, max_rate, 36)});
  }
  bench::emit(table, cfg);

  // Stochasticity validation, as in §II.
  if (location_parity.size() >= 128) {
    const auto apen = rng::apen_test(location_parity, 2);
    std::printf("\nApEn test on fault locations: ApEn=%.4f p=%.4f -> %s\n", apen.apen,
                apen.p_value, apen.random() ? "stochastic (passes)" : "NOT random");
  }

  // Onset window: shallowest / deepest offsets where individual operand
  // pairs start faulting (paper: -103 mV .. -145 mV "depending on inputs").
  double shallowest = -1e9;
  double deepest = 0.0;
  rng::Xoshiro256ss probe(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = probe();
    const std::uint64_t b = probe();
    for (double depth = 95.0; depth <= 155.0; depth += 1.0) {
      if (model.operand_fault_probability(a, b, -depth, temp_c) > 0.5) {
        shallowest = std::max(shallowest, -depth);
        deepest = std::min(deepest, -depth);
        break;
      }
    }
  }
  std::printf("operand-dependent fault onset observed between %.0f mV and %.0f mV\n",
              shallowest, deepest);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("offset-mv", "undervolt offset in mV (negative)", "-130");
  cli.add_flag("temperature", "CPU temperature in deg C", "49");
  cli.add_flag("operand-sets", "number of operand sets", "100000");
  cli.add_flag("runs-per-set", "repeated multiplications per operand set", "4");
  cli.add_bool("uniform", "ablation: uniform fault-location profile");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  std::size_t sets = static_cast<std::size_t>(cli.get_int("operand-sets"));
  if (cli.get_bool("quick")) sets = 10000;
  return run(*cfg, cli.get_double("offset-mv"), cli.get_double("temperature"), sets,
             static_cast<std::size_t>(cli.get_int("runs-per-set")), cli.get_bool("uniform"));
}
