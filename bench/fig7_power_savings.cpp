// Figure 7 — Power savings of the Stochastic-HMD over (a) the baseline HMD
// at nominal voltage and (b) RHMD-2F, for supply voltages from 1.18 V
// (nominal) down to 0.68 V in 0.1 V steps, measured over a 100k-detection
// run with the Power-Gadget-style energy meter.
#include <cstdio>

#include "common.hpp"
#include "sys/energy_meter.hpp"
#include "volt/volt_fault_model.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, std::size_t detections) {
  // Paper-scale model (71 KB) — the footprint the latency/power models are
  // calibrated against.
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);

  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  const volt::VoltFaultModel fault_model{volt::DeviceProfile{}};

  // Reference energies per detection at nominal voltage. RHMD burns the
  // same core power for LONGER (model selection + L1 refill), so the
  // per-inference comparison — what Power Gadget's "average consumed power
  // per inference" captures — is energy-based.
  sys::EnergyMeter rhmd_meter{sys::PowerModel{}, sys::LatencyModel{}};
  for (std::size_t i = 0; i < detections; ++i) {
    rhmd_meter.record(rhmd_meter.rhmd_detection(net, 2));
  }
  const double rhmd_energy_uj =
      rhmd_meter.total_energy_uj() / static_cast<double>(detections);
  const double nominal_energy_uj = meter.detection(net, 1.18).energy_uj;

  std::printf("Fig. 7 — power savings vs supply voltage (%zu detections per point)\n", detections);
  std::printf("per-detection energy at 1.18 V: baseline HMD %.1f uJ, RHMD-2F %.1f uJ\n\n",
              nominal_energy_uj, rhmd_energy_uj);

  util::Table table({"supply (V)", "undervolt (mV)", "energy/det (uJ)", "er at 49C",
                     "savings vs baseline", "savings vs RHMD-2F", "stable?"});
  for (double v = 1.18; v >= 0.679; v -= 0.1) {
    const double offset_mv = (v - 1.18) * 1000.0;
    meter.reset();
    for (std::size_t i = 0; i < detections; ++i) meter.record(meter.detection(net, v));
    const double energy = meter.total_energy_uj() / static_cast<double>(detections);
    const bool frozen = fault_model.freezes(offset_mv, 49.0);
    const double er = frozen ? 1.0 : fault_model.fault_probability(offset_mv, 49.0);
    table.add_row({util::Table::fmt(v, 2), util::Table::fmt(offset_mv, 0),
                   util::Table::fmt(energy, 1),
                   frozen ? "-" : util::Table::fmt(er, 3),
                   util::Table::pct(1.0 - energy / nominal_energy_uj, 1),
                   util::Table::pct(1.0 - energy / rhmd_energy_uj, 1),
                   frozen ? "no (freeze)" : "yes"});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nPaper shape check: ~15-20%% savings at the er=0.1 operating point (~1.07 V);\n"
      ">75%% savings vs RHMD under 40%% voltage scaling (0.71 V). Points below the\n"
      "freeze threshold are power-model extrapolations — a real core locks up there,\n"
      "which is why deployment stays inside the calibrated window.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("detections", "detections per measurement run", "100000");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, static_cast<std::size_t>(cli.get_int("detections")));
}
