// Ablation — operating-point analysis: how much RANKING quality does the
// undervolting noise cost, independent of where the alarm threshold sits?
//
// Fig. 2(a) fixes the threshold at 0.5; the ROC view separates two effects
// the accuracy numbers conflate: boundary blur (AUC loss) and threshold
// miscalibration (recoverable by moving the operating point — which the
// deployment layer can do, e.g. via Youden's J on the defender's own
// validation data).
#include <cstdio>

#include "common.hpp"
#include "eval/roc.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  hmd::StochasticHmd stochastic(baseline.network(), fc, 0.0);

  std::printf("Ablation — ROC / operating point vs error rate (program-level scores)\n\n");

  util::Table table({"er", "AUC", "Youden threshold", "TPR @ Youden", "FPR @ Youden",
                     "TPR @ 0.5", "FPR @ 0.5"});
  for (double er : {0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    stochastic.set_error_rate(er);
    std::vector<eval::ScoredSample> scored;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      for (std::size_t idx : folds.testing) {
        const auto& s = ds.samples()[idx];
        scored.push_back({stochastic.program_score(s.features), s.malware()});
      }
    }
    const auto curve = eval::roc_curve(scored);
    const auto youden = eval::best_youden(curve);

    // Rates at the conventional 0.5 threshold, from the same scores.
    std::size_t tp = 0;
    std::size_t fn = 0;
    std::size_t fp = 0;
    std::size_t tn = 0;
    for (const auto& s : scored) {
      const bool flagged = s.score >= 0.5;
      if (s.positive) ++(flagged ? tp : fn);
      else ++(flagged ? fp : tn);
    }
    table.add_row({util::Table::fmt(er, 2), util::Table::fmt(eval::auc(curve), 3),
                   util::Table::fmt(youden.threshold, 3), util::Table::pct(youden.tpr, 1),
                   util::Table::pct(youden.fpr, 1),
                   util::Table::pct(static_cast<double>(tp) / static_cast<double>(tp + fn), 1),
                   util::Table::pct(static_cast<double>(fp) / static_cast<double>(fp + tn), 1)});
  }
  bench::emit(table, cfg);
  std::printf("\nTakeaway: at the deployed error rates (er <= ~0.2) the AUC is nearly\n"
              "untouched — the noise moves scores around but barely reorders programs —\n"
              "so a defender can recover threshold calibration for free. Past er ~0.4\n"
              "the ranking itself erodes: that loss no threshold can undo.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
