// §VIII table — cost of the noise-injection alternatives: modifying the
// baseline HMD to add Gaussian noise after each MAC, with the randomness
// drawn per MAC from (a) an off-core TRNG (paper: ~62x latency, ~112x
// energy) or (b) an on-core PRNG [Lewis-Goodman-Miller] (paper: ~4x
// latency, ~5.7x energy). Undervolting provides the noise for free — and
// SAVES energy instead.
#include <cstdio>

#include "common.hpp"
#include "nn/arithmetic.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/trng_sim.hpp"
#include "sys/energy_meter.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, std::size_t detections) {
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};

  rng::TrngSim trng;
  rng::LgmPrng prng;

  std::printf("§VIII — per-MAC noise-injection defense overheads "
              "(%zu MACs per inference, %zu detections)\n\n",
              net.mac_count(), detections);

  const auto baseline = meter.detection(net, 1.18);
  const auto undervolt = meter.detection(net, 1.18 - 0.113);
  const auto trng_run = meter.noise_detection(net, trng);
  const auto prng_run = meter.noise_detection(net, prng);

  util::Table table({"defense", "randomness source", "time/inf (us)", "time overhead",
                     "energy/inf (uJ)", "energy overhead"});
  table.add_row({"baseline HMD (no defense)", "-", util::Table::fmt(baseline.time_us, 2),
                 "1.00x", util::Table::fmt(baseline.energy_uj, 1), "1.00x"});
  table.add_row({"noise injection", "TRNG (off-core)", util::Table::fmt(trng_run.time_us, 1),
                 util::Table::fmt(trng_run.time_us / baseline.time_us, 1) + "x",
                 util::Table::fmt(trng_run.energy_uj, 0),
                 util::Table::fmt(trng_run.energy_uj / baseline.energy_uj, 1) + "x"});
  table.add_row({"noise injection", "PRNG (Lewis-Goodman-Miller)",
                 util::Table::fmt(prng_run.time_us, 2),
                 util::Table::fmt(prng_run.time_us / baseline.time_us, 2) + "x",
                 util::Table::fmt(prng_run.energy_uj, 1),
                 util::Table::fmt(prng_run.energy_uj / baseline.energy_uj, 2) + "x"});
  table.add_row({"Stochastic-HMD (undervolt)", "timing faults (free)",
                 util::Table::fmt(undervolt.time_us, 2), "1.00x",
                 util::Table::fmt(undervolt.energy_uj, 1),
                 util::Table::fmt(undervolt.energy_uj / baseline.energy_uj, 2) + "x"});
  bench::emit(table, cfg);

  // Sanity: exercise the actual inference path with each context so the
  // query accounting is real, not just model arithmetic.
  nn::NoiseContext trng_ctx(trng, 0.02);
  nn::NoiseContext prng_ctx(prng, 0.02);
  std::vector<double> x(net.input_dim(), 0.25);
  const std::size_t probe_runs = std::min<std::size_t>(detections, 50);
  for (std::size_t i = 0; i < probe_runs; ++i) {
    (void)net.forward(x, trng_ctx);
    (void)net.forward(x, prng_ctx);
  }
  std::printf("\nrandomness queries issued during %zu probe inferences: TRNG=%llu PRNG=%llu\n"
              "(one per MAC, as the defense requires)\n",
              probe_runs, static_cast<unsigned long long>(trng.query_count()),
              static_cast<unsigned long long>(prng.query_count()));
  std::printf("\nPaper check: TRNG ~62x / ~112x, PRNG ~4x / ~5.7x — while undervolting adds\n"
              "zero latency and REDUCES energy by ~15-20%%.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("detections", "detections per measurement run", "100000");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, static_cast<std::size_t>(cli.get_int("detections")));
}
