// serve_loadgen: load generator for the always-on scoring service.
//
// Two client models, both standard serving-bench practice:
//
//   * closed loop — N clients, each submits one request, waits for the
//     verdict, and immediately submits the next. Measures peak sustainable
//     throughput (the queue never overflows; clients self-throttle).
//   * open loop — a pacer fires try_submit at a fixed target rate
//     regardless of completions, the way real traffic arrives. Measures
//     behaviour *past* saturation: shed fraction and tail latency under
//     overload, which the closed loop structurally cannot see.
//
// An optional epoch thread re-rolls the detector's operating point every
// --epoch-period-ms, so the numbers include the cost of moving-target
// reconfiguration under sustained load (it should be invisible).
//
// Emits a raw JSON report (stdout or --out); CI reduces it to
// BENCH_serve.json with bench/emit_bench_json.py --serve.
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "admit/policy.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/network.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/scoring_service.hpp"
#include "trace/dataset.hpp"
#include "util/cli.hpp"

namespace {

using namespace shmd;
using Clock = serve::ServiceClock;

constexpr std::size_t kInputs = 16;

nn::Network make_net() {
  const std::vector<std::size_t> topo{kInputs, 32, 16, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

std::vector<trace::FeatureSet> make_workload(std::size_t n_programs,
                                             std::size_t windows_per_program,
                                             const trace::FeatureConfig& fc) {
  rng::Xoshiro256ss gen(7);
  std::vector<trace::FeatureSet> workload(n_programs);
  for (trace::FeatureSet& fs : workload) {
    std::vector<std::vector<double>> windows(windows_per_program,
                                             std::vector<double>(kInputs));
    for (auto& window : windows) {
      for (double& x : window) x = gen.uniform01();
    }
    fs.put(fc, std::move(windows));
  }
  return workload;
}

/// Histogram of the requests scored within one phase: bucket-wise diff of
/// two cumulative snapshots.
serve::LatencyHistogram diff_hist(const serve::LatencyHistogram& after,
                                  const serve::LatencyHistogram& before) {
  serve::LatencyHistogram d;
  for (std::size_t b = 0; b < serve::LatencyHistogram::kBuckets; ++b) {
    d.counts[b] = after.counts[b] - before.counts[b];
  }
  d.total = after.total - before.total;
  return d;
}

struct PhaseReport {
  std::string mode;
  double duration_s = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;        ///< admission-control rejections (at the door)
  std::uint64_t evicted = 0;         ///< drop-oldest displacements
  std::uint64_t scored_late = 0;     ///< scored past the deadline (excluded from goodput)
  std::uint64_t deadline_missed = 0;
  std::uint64_t epoch_swaps = 0;
  double goodput_rps = 0.0;     ///< requests scored WITHIN deadline per second — the
                                ///< headline metric; == throughput when no deadline
  double throughput_rps = 0.0;  ///< raw scored per second (work done, useful or not)
  double achieved_rate_rps = 0.0;  ///< offered rate the pacer actually sustained
  double p50_us = 0.0;
  double p99_us = 0.0;
  double missed_wait_p50_us = 0.0;  ///< queue wait of deadline-missed requests
  double missed_wait_p99_us = 0.0;
};

PhaseReport phase_report(std::string mode, double duration_s, std::uint64_t submitted,
                         const serve::ServiceStatsSnapshot& before,
                         const serve::ServiceStatsSnapshot& after) {
  PhaseReport r;
  r.mode = std::move(mode);
  r.duration_s = duration_s;
  r.submitted = submitted;
  r.scored = after.scored - before.scored;
  r.shed = after.shed - before.shed;
  r.rejected = after.rejected_on_admission - before.rejected_on_admission;
  r.evicted = after.evicted - before.evicted;
  r.scored_late = after.scored_late - before.scored_late;
  r.deadline_missed = after.deadline_missed - before.deadline_missed;
  r.epoch_swaps = after.epoch_swaps - before.epoch_swaps;
  const std::uint64_t good = r.scored - r.scored_late;
  r.goodput_rps = duration_s > 0.0 ? static_cast<double>(good) / duration_s : 0.0;
  r.throughput_rps = duration_s > 0.0 ? static_cast<double>(r.scored) / duration_s : 0.0;
  r.achieved_rate_rps = duration_s > 0.0 ? static_cast<double>(submitted) / duration_s : 0.0;
  const serve::LatencyHistogram hist = diff_hist(after.latency, before.latency);
  r.p50_us = hist.p50_ns() / 1e3;
  r.p99_us = hist.p99_ns() / 1e3;
  const serve::LatencyHistogram missed = diff_hist(after.missed_wait, before.missed_wait);
  r.missed_wait_p50_us = missed.p50_ns() / 1e3;
  r.missed_wait_p99_us = missed.p99_ns() / 1e3;
  return r;
}

void print_phase(std::FILE* out, const PhaseReport& r, bool last) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"duration_s\": %.3f,\n"
               "    \"submitted\": %llu,\n"
               "    \"scored\": %llu,\n"
               "    \"shed\": %llu,\n"
               "    \"rejected\": %llu,\n"
               "    \"evicted\": %llu,\n"
               "    \"scored_late\": %llu,\n"
               "    \"deadline_missed\": %llu,\n"
               "    \"epoch_swaps\": %llu,\n"
               "    \"goodput_rps\": %.1f,\n"
               "    \"throughput_rps\": %.1f,\n"
               "    \"achieved_rate_rps\": %.1f,\n"
               "    \"p50_us\": %.1f,\n"
               "    \"p99_us\": %.1f,\n"
               "    \"missed_wait_p50_us\": %.1f,\n"
               "    \"missed_wait_p99_us\": %.1f\n"
               "  }%s\n",
               r.mode.c_str(), r.duration_s, static_cast<unsigned long long>(r.submitted),
               static_cast<unsigned long long>(r.scored),
               static_cast<unsigned long long>(r.shed),
               static_cast<unsigned long long>(r.rejected),
               static_cast<unsigned long long>(r.evicted),
               static_cast<unsigned long long>(r.scored_late),
               static_cast<unsigned long long>(r.deadline_missed),
               static_cast<unsigned long long>(r.epoch_swaps), r.goodput_rps,
               r.throughput_rps, r.achieved_rate_rps, r.p50_us, r.p99_us,
               r.missed_wait_p50_us, r.missed_wait_p99_us, last ? "" : ",");
}

/// FNV-1a over the raw bit patterns of every score double, in request
/// order — a stable fingerprint of the full score tensor.
std::uint64_t score_hash(const std::vector<std::vector<double>>& scores) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::vector<double>& request : scores) {
    for (const double s : request) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(s);
      for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
      }
    }
  }
  return h;
}

/// Determinism probe: a fresh service with a FIXED seed scores a fixed
/// workload in a fixed admission order. Scores are a pure function of
/// (seed, admission order) — per-request fault streams re-anchor at
/// request boundaries within each tile — so the hash must be identical
/// for ANY --batch and ANY --workers. CI runs the loadgen at --batch 1
/// and --batch 16 and asserts the two hashes match bit-for-bit.
std::uint64_t determinism_probe(const nn::Network& net, const trace::FeatureConfig& fc,
                                std::size_t max_batch, admit::PolicyKind policy) {
  const hmd::StochasticHmd det(net, fc, 0.10);
  serve::ServeConfig config;
  config.num_workers = 2;
  config.queue_capacity = 256;
  config.max_batch = max_batch;
  config.seed = 0xD5EEDULL;
  config.admission_policy = policy;
  serve::ScoringService probe(serve::make_epoch(det), config);
  const std::vector<trace::FeatureSet> workload = make_workload(48, 8, fc);
  std::vector<const trace::FeatureSet*> ptrs;
  ptrs.reserve(workload.size());
  for (const trace::FeatureSet& fs : workload) ptrs.push_back(&fs);
  return score_hash(probe.score_all(ptrs));
}

/// Re-rolls the operating point every `period` until `stop`: the bench's
/// stand-in for the thermal governor / re-exploration control plane.
void epoch_roller(serve::ScoringService& service, const nn::Network& net,
                  const trace::FeatureConfig& fc, std::chrono::milliseconds period,
                  const std::atomic<bool>& stop) {
  const std::vector<double> schedule = {0.10, 0.05, 0.15};
  std::size_t i = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    if (stop.load(std::memory_order_relaxed)) break;
    hmd::StochasticHmd moved(net, fc, schedule[i++ % schedule.size()]);
    service.install_epoch(serve::make_epoch(moved));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("workers", "scoring workers (0 = all cores)", "0");
  cli.add_flag("clients", "closed-loop client threads", "8");
  cli.add_flag("queue", "ring capacity", "256");
  cli.add_flag("duration-s", "seconds per phase", "2");
  cli.add_flag("rate", "open-loop target rate, requests/s", "200000");
  cli.add_flag("windows", "windows per feature set", "16");
  cli.add_flag("batch", "max requests a worker drains per queue pop", "16");
  cli.add_flag("epoch-period-ms", "epoch re-roll period (0 = no roller)", "100");
  cli.add_flag("deadline-ms", "open-loop per-request deadline (0 = none)", "0");
  cli.add_flag("policy", "admission policy: fifo | drop-oldest | lifo", "fifo");
  cli.add_flag("out", "write the JSON report here instead of stdout", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const auto n_clients = static_cast<std::size_t>(cli.get_int("clients"));
  const auto queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  const double duration_s = cli.get_double("duration-s");
  const double rate = cli.get_double("rate");
  const auto windows = static_cast<std::size_t>(cli.get_int("windows"));
  const auto max_batch = static_cast<std::size_t>(cli.get_int("batch"));
  const std::chrono::milliseconds epoch_period(cli.get_int("epoch-period-ms"));
  const std::chrono::milliseconds deadline_ms(cli.get_int("deadline-ms"));
  const std::optional<admit::PolicyKind> policy = admit::parse_policy(cli.get("policy"));
  if (!policy.has_value()) {
    std::fprintf(stderr, "serve_loadgen: unknown --policy '%s' (want fifo | drop-oldest | lifo)\n",
                 cli.get("policy").c_str());
    return 1;
  }
  const std::string out_path = cli.get("out");

  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, 2048};
  const nn::Network net = make_net();
  const hmd::StochasticHmd hmd(net, fc, 0.10);
  const std::vector<trace::FeatureSet> workload = make_workload(64, windows, fc);

  // Deterministic fingerprint before the load phases: same (seed,
  // admission order) must hash identically no matter the batch size.
  const std::uint64_t probe_hash = determinism_probe(net, fc, max_batch, *policy);

  serve::ServeConfig config;
  config.num_workers = workers;
  config.queue_capacity = queue_capacity;
  config.max_batch = max_batch;
  config.admission_policy = *policy;
  serve::ScoringService service(serve::make_epoch(hmd), config);

  std::atomic<bool> stop_roller{false};
  std::thread roller;
  if (epoch_period.count() > 0) {
    roller = std::thread(epoch_roller, std::ref(service), std::cref(net), std::cref(fc),
                         epoch_period, std::cref(stop_roller));
  }

  // ---- closed loop: peak sustainable throughput -------------------------
  std::fprintf(stderr, "closed loop: %zu clients x %.1fs against %zu workers...\n",
               n_clients, duration_s, service.num_workers());
  const serve::ServiceStatsSnapshot closed_before = service.stats();
  std::atomic<std::uint64_t> closed_submitted{0};
  const Clock::time_point closed_start = Clock::now();
  const Clock::time_point closed_end =
      closed_start + std::chrono::microseconds(static_cast<std::int64_t>(duration_s * 1e6));
  {
    std::vector<std::thread> clients;
    clients.reserve(n_clients);
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        serve::ScoreTicket ticket;
        std::uint64_t sent = 0;
        std::size_t i = c;  // stagger which feature set each client hammers
        while (Clock::now() < closed_end) {
          if (service.submit(workload[i++ % workload.size()], ticket) !=
              serve::SubmitStatus::kAccepted) {
            break;
          }
          ticket.wait();
          ++sent;
        }
        closed_submitted.fetch_add(sent, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double closed_elapsed =
      std::chrono::duration<double>(Clock::now() - closed_start).count();
  const PhaseReport closed =
      phase_report("closed_loop", closed_elapsed, closed_submitted.load(),
                   closed_before, service.stats());

  // ---- open loop: fixed arrival rate, shed past saturation --------------
  std::fprintf(stderr, "open loop: %.0f req/s x %.1fs...\n", rate, duration_s);
  const serve::ServiceStatsSnapshot open_before = service.stats();
  std::uint64_t open_submitted = 0;
  std::uint64_t open_shed_client = 0;
  const Clock::time_point open_start = Clock::now();
  const Clock::time_point open_end =
      open_start + std::chrono::microseconds(static_cast<std::int64_t>(duration_s * 1e6));
  {
    // In-flight accepted requests never exceed capacity + workers (the
    // ring bounds them), so a round-robin pool a bit larger than that
    // almost always has its next slot free. If it does not (completions
    // run slightly out of order across workers), the request is shed at
    // the client — the pacer must NEVER block, or the "open" loop
    // silently degrades into a closed one and overload becomes invisible.
    std::vector<serve::ScoreTicket> pool(queue_capacity + 4 * service.num_workers() + 8);
    const std::chrono::nanoseconds period(static_cast<std::int64_t>(1e9 / rate));
    // Batched catch-up pacing. The old per-request `sleep_until(next_send)`
    // oversleeps by the scheduler quantum (tens of µs) at µs periods, so at
    // 50k+ rps it silently capped the *achieved* rate far below target. The
    // schedule is absolute — request k is due at open_start + k*period — and
    // each wake submits EVERY request already due as one burst, so oversleep
    // shifts individual send times but never loses offered load. Sleep only
    // when ahead by more than one scheduler quantum; spin across the residue.
    constexpr std::chrono::microseconds kSleepSlack(150);
    Clock::time_point next_send = open_start;
    std::size_t slot = 0;
    std::size_t i = 0;
    for (;;) {
      const Clock::time_point now = Clock::now();
      if (now >= open_end) break;
      if (next_send > now) {
        if (next_send - now > kSleepSlack) {
          std::this_thread::sleep_until(next_send - kSleepSlack);
        }
        continue;  // spin (re-check the clock) through the final stretch
      }
      const auto deadline =
          deadline_ms.count() > 0 ? std::optional<Clock::time_point>(now + deadline_ms)
                                  : std::nullopt;
      do {  // submit the whole overdue burst before looking at the clock again
        next_send += period;
        serve::ScoreTicket& ticket = pool[slot++ % pool.size()];
        ++open_submitted;
        if (!ticket.done()) {
          ++open_shed_client;
          continue;
        }
        (void)service.try_submit(workload[i++ % workload.size()], ticket, deadline);
      } while (next_send <= now);
    }
    for (serve::ScoreTicket& ticket : pool) ticket.wait();
  }
  const double open_elapsed =
      std::chrono::duration<double>(Clock::now() - open_start).count();
  PhaseReport open = phase_report("open_loop", open_elapsed, open_submitted, open_before,
                                  service.stats());
  open.shed += open_shed_client;  // client-side sheds (no free ticket) count too

  if (roller.joinable()) {
    stop_roller.store(true, std::memory_order_relaxed);
    roller.join();
  }
  service.close();
  const serve::ServiceStatsSnapshot final_stats = service.stats();

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) throw std::runtime_error("serve_loadgen: cannot open " + out_path);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"config\": {\n"
               "    \"workers\": %zu,\n"
               "    \"clients\": %zu,\n"
               "    \"queue_capacity\": %zu,\n"
               "    \"windows_per_request\": %zu,\n"
               "    \"target_rate_rps\": %.0f,\n"
               "    \"batch\": %zu,\n"
               "    \"epoch_period_ms\": %lld,\n"
               "    \"deadline_ms\": %lld,\n"
               "    \"policy\": \"%s\",\n"
               "    \"mac_per_request\": %zu\n"
               "  },\n",
               service.num_workers(), n_clients, queue_capacity, windows, rate, max_batch,
               static_cast<long long>(epoch_period.count()),
               static_cast<long long>(deadline_ms.count()),
               std::string(admit::policy_name(*policy)).c_str(),
               windows * net.mac_count());
  print_phase(out, closed, /*last=*/false);
  print_phase(out, open, /*last=*/false);
  std::fprintf(out,
               "  \"totals\": {\n"
               "    \"enqueued\": %llu,\n"
               "    \"scored\": %llu,\n"
               "    \"shed\": %llu,\n"
               "    \"rejected_on_admission\": %llu,\n"
               "    \"evicted\": %llu,\n"
               "    \"scored_late\": %llu,\n"
               "    \"throttled\": %llu,\n"
               "    \"goodput\": %llu,\n"
               "    \"deadline_missed\": %llu,\n"
               "    \"failed\": %llu,\n"
               "    \"epoch_swaps\": %llu,\n"
               "    \"in_flight\": %llu,\n"
               "    \"score_hash\": \"0x%016llx\"\n"
               "  }\n",
               static_cast<unsigned long long>(final_stats.enqueued),
               static_cast<unsigned long long>(final_stats.scored),
               static_cast<unsigned long long>(final_stats.shed),
               static_cast<unsigned long long>(final_stats.rejected_on_admission),
               static_cast<unsigned long long>(final_stats.evicted),
               static_cast<unsigned long long>(final_stats.scored_late),
               static_cast<unsigned long long>(final_stats.throttled),
               static_cast<unsigned long long>(final_stats.goodput()),
               static_cast<unsigned long long>(final_stats.deadline_missed),
               static_cast<unsigned long long>(final_stats.failed),
               static_cast<unsigned long long>(final_stats.epoch_swaps),
               static_cast<unsigned long long>(final_stats.in_flight()),
               static_cast<unsigned long long>(probe_hash));
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
