// Figure 5 — Percentage of evasive malware detected: the four RHMD
// constructions (2F, 3F, 2F2P, 3F2P) versus the most resilient
// Stochastic-HMD (er = 0.1).
//
// Attack methodology per §VII.C: each RHMD is reverse-engineered "using
// all the feature vectors used in the construction". Our attacker
// additionally exploits that RHMD randomness is a FINITE set: it queries
// each window repeatedly and learns the union of the base boundaries
// (any-flag labels) — the strongest practical proxy. The evasion budget is
// raised for ensemble victims (clearing several views takes far more
// injected instructions than crossing one boundary).
#include <cstdio>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "hmd/space_exploration.hpp"

namespace {

using namespace shmd;

struct Row {
  std::string name;
  std::size_t evaded = 0;
  std::size_t tested = 0;
  double detected = 0.0;
  double mean_injected = 0.0;
};

Row attack_victim(const trace::Dataset& ds, const trace::FoldSplit& folds,
                  hmd::Detector& victim, const std::vector<trace::FeatureConfig>& proxy_cfgs,
                  const std::vector<std::size_t>& targets, attack::EvasionConfig evasion,
                  bool union_learning) {
  attack::ReverseEngineer re(ds);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = proxy_cfgs;
  if (union_learning) {
    rc.repeat_queries = 8;
    rc.label_rule = attack::ReverseEngineerConfig::LabelRule::kAny;
  }
  const auto proxy = re.run(victim, folds.victim_training, folds.testing, rc);
  evasion.craft_threshold = proxy.craft_threshold;
  const auto result = attack::TransferabilityEval(ds, evasion)
                          .run(victim, *proxy.proxy, targets, rc.proxy_configs);
  Row row;
  row.name = std::string(victim.name());
  row.evaded = result.proxy_evaded;
  row.tested = result.malware_tested;
  row.detected = result.detected_rate();
  row.mean_injected = static_cast<double>(result.mean_injected);
  return row;
}

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  const auto periods = ds.config().periods;
  const std::vector<std::size_t> targets =
      bench::malware_subset(ds, folds, cfg.attack_samples);

  attack::EvasionConfig evasion = bench::make_evasion_config(ds, folds);
  evasion.max_injection_fraction = 6.0;  // ensembles need deep budgets
  evasion.max_rounds = 400;

  std::printf("Fig. 5 — %% of evasive malware detected (%zu malware attacked)\n\n",
              targets.size());

  std::vector<Row> rows;
  {
    hmd::BaselineHmd base = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
    double selected_er = er;
    if (er <= 0.0) {
      const auto explored =
          hmd::explore_error_rate(ds, folds.victim_training, base.network(), fc);
      selected_er = explored.error_rate;
      std::printf("explored er* = %.2f\n\n", selected_er);
    }
    hmd::StochasticHmd stochastic(base.network(), fc, selected_er);
    rows.push_back(attack_victim(ds, folds, stochastic, {fc}, targets, evasion,
                                 /*union_learning=*/false));
  }
  for (const auto& construction :
       {hmd::rhmd_2f(periods[0]), hmd::rhmd_3f(periods[0]),
        hmd::rhmd_2f2p(periods[0], periods[1]), hmd::rhmd_3f2p(periods[0], periods[1])}) {
    hmd::Rhmd victim = hmd::make_rhmd(ds, folds.victim_training, construction, cfg.train);
    // Proxy views: every view in the construction at the epoch period.
    std::vector<trace::FeatureConfig> proxy_cfgs;
    for (const auto& c : construction.configs) {
      if (c.period == victim.epoch_period()) proxy_cfgs.push_back(c);
    }
    rows.push_back(attack_victim(ds, folds, victim, proxy_cfgs, targets, evasion,
                                 /*union_learning=*/true));
  }

  util::Table table({"defense", "proxy evaded", "evasive malware detected", "bar",
                     "mean injected insns"});
  for (const Row& row : rows) {
    table.add_row({row.name, std::to_string(row.evaded) + "/" + std::to_string(row.tested),
                   util::Table::pct(row.detected, 1), util::ascii_bar(row.detected, 1.0, 25),
                   util::Table::fmt(row.mean_injected, 0)});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nPaper shape check: Stochastic-HMD detects the bulk (~94%% in the paper) of the\n"
      "evasive malware with ONE model. Known deviation: our three synthetic feature\n"
      "views are more orthogonal than the paper's, so 3-view RHMDs resist the\n"
      "instruction-injection attack outright (few/no proxy evasions) — at 6x the\n"
      "memory and ~10%% higher latency; the paper's 3F2P missed far more.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "Stochastic-HMD error rate (0 = space exploration)", "0");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
