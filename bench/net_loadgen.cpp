// net_loadgen: load generator for the socket front-end (src/net/).
//
// Measures what the in-process serve_loadgen structurally cannot: the
// cost of the wire. Two client models per transport, both against a real
// NetServer over loopback:
//
//   * closed loop — N connections, each scores one request and waits for
//     its reply before the next. Per-request latency here is the full
//     round trip: encode, kernel, reactor, ring, worker, reply.
//   * pipelined — ONE connection with a fixed window of in-flight
//     requests. Throughput without per-request round-trip stalls; this is
//     how a production collector should drive the daemon.
//
// Default mode is self-hosted: the bench owns the service and serves it
// over an ephemeral TCP port AND a temp Unix socket, phases run against
// both so the report separates TCP-stack cost from protocol cost.
// --connect <endpoint> instead drives an external shmd-served (the CI
// net-smoke job runs this two-process split).
//
// Emits a raw JSON report (stdout or --out); CI reduces it to
// BENCH_net.json with bench/emit_bench_json.py --net.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "hmd/stochastic_hmd.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/network.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/scoring_service.hpp"
#include "util/cli.hpp"

namespace {

using namespace shmd;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kInputs = 16;

nn::Network make_net() {
  const std::vector<std::size_t> topo{kInputs, 32, 16, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

std::vector<net::ScoreRequest> make_workload(std::size_t n_programs,
                                             std::size_t windows_per_program) {
  rng::Xoshiro256ss gen(7);
  std::vector<net::ScoreRequest> workload(n_programs);
  for (net::ScoreRequest& req : workload) {
    req.view = static_cast<std::uint8_t>(trace::FeatureView::kInsnCategory);
    req.period = 2048;
    req.width = kInputs;
    req.windows.assign(windows_per_program, std::vector<double>(kInputs));
    for (auto& window : req.windows) {
      for (double& x : window) x = gen.uniform01();
    }
  }
  return workload;
}

struct PhaseResult {
  std::string name;
  double duration_s = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t throttled = 0;  ///< kThrottled error replies (fair-share limiter)
  std::uint64_t rejected = 0;   ///< result frames with outcome kRejected (admission)
  std::uint64_t errors = 0;     ///< any other error reply (should stay 0)
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double quantile_us(std::vector<double>& lat_us, double q) {
  if (lat_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(lat_us.size() - 1));
  std::nth_element(lat_us.begin(), lat_us.begin() + static_cast<std::ptrdiff_t>(idx),
                   lat_us.end());
  return lat_us[idx];
}

void finish(PhaseResult& r, double elapsed_s, std::vector<double>& lat_us) {
  r.duration_s = elapsed_s;
  r.throughput_rps = elapsed_s > 0.0 ? static_cast<double>(r.scored) / elapsed_s : 0.0;
  r.p50_us = quantile_us(lat_us, 0.50);
  r.p99_us = quantile_us(lat_us, 0.99);
}

void count_reply(const net::Reply& reply, PhaseResult& r) {
  if (reply.type == net::FrameType::kScoreResult) {
    if (reply.result &&
        reply.result->outcome == static_cast<std::uint8_t>(serve::RequestOutcome::kRejected)) {
      ++r.rejected;  // admission control said no — still a result frame, not an error
    } else {
      ++r.scored;
    }
  } else if (reply.type == net::FrameType::kError && reply.error &&
             reply.error->code == net::ErrorCode::kShed) {
    ++r.shed;
  } else if (reply.type == net::FrameType::kError && reply.error &&
             reply.error->code == net::ErrorCode::kThrottled) {
    ++r.throttled;  // fair-share limiter; the connection stays open
  } else {
    ++r.errors;
  }
}

/// Closed loop: n_clients connections, one outstanding request each.
PhaseResult run_closed(const util::Endpoint& ep, std::size_t n_clients, double duration_s,
                       const std::vector<net::ScoreRequest>& workload, std::string name) {
  PhaseResult result;
  result.name = std::move(name);
  std::mutex mu;  // folds per-thread tallies; uncontended until the end
  std::vector<double> all_lat_us;
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::microseconds(static_cast<std::int64_t>(duration_s * 1e6));
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      net::NetClient client;
      client.connect(ep);
      PhaseResult local;
      std::vector<double> lat_us;
      std::size_t i = c;  // stagger which request each connection hammers
      while (Clock::now() < end) {
        const Clock::time_point t0 = Clock::now();
        const net::Reply reply = client.score(workload[i++ % workload.size()]);
        lat_us.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        ++local.sent;
        count_reply(reply, local);
      }
      const std::scoped_lock lock(mu);
      result.sent += local.sent;
      result.scored += local.scored;
      result.shed += local.shed;
      result.throttled += local.throttled;
      result.rejected += local.rejected;
      result.errors += local.errors;
      all_lat_us.insert(all_lat_us.end(), lat_us.begin(), lat_us.end());
    });
  }
  for (std::thread& t : clients) t.join();
  finish(result, std::chrono::duration<double>(Clock::now() - start).count(), all_lat_us);
  return result;
}

/// Pipelined: one connection, `window` requests in flight at all times.
PhaseResult run_pipelined(const util::Endpoint& ep, std::size_t window, double duration_s,
                          const std::vector<net::ScoreRequest>& workload,
                          std::string name) {
  PhaseResult result;
  result.name = std::move(name);
  net::NetClient client;
  client.connect(ep);
  std::vector<double> lat_us;
  std::map<std::uint64_t, Clock::time_point> sent_at;
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::microseconds(static_cast<std::int64_t>(duration_s * 1e6));
  std::size_t i = 0;
  const auto send_one = [&] {
    sent_at[client.send_score(workload[i++ % workload.size()])] = Clock::now();
    ++result.sent;
  };
  for (std::size_t w = 0; w < window; ++w) send_one();
  while (Clock::now() < end) {
    const net::Reply reply = client.recv_reply();
    const auto it = sent_at.find(reply.request_id);
    if (it != sent_at.end()) {
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - it->second).count());
      sent_at.erase(it);
    }
    count_reply(reply, result);
    send_one();  // keep the window full
  }
  while (!sent_at.empty()) {  // drain the tail: every send gets its reply
    const net::Reply reply = client.recv_reply();
    sent_at.erase(reply.request_id);
    count_reply(reply, result);
  }
  finish(result, std::chrono::duration<double>(Clock::now() - start).count(), lat_us);
  return result;
}

void print_phase(std::FILE* out, const PhaseResult& r, bool last) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"duration_s\": %.3f,\n"
               "    \"sent\": %llu,\n"
               "    \"scored\": %llu,\n"
               "    \"shed\": %llu,\n"
               "    \"throttled\": %llu,\n"
               "    \"rejected\": %llu,\n"
               "    \"errors\": %llu,\n"
               "    \"throughput_rps\": %.1f,\n"
               "    \"p50_us\": %.1f,\n"
               "    \"p99_us\": %.1f\n"
               "  }%s\n",
               r.name.c_str(), r.duration_s, static_cast<unsigned long long>(r.sent),
               static_cast<unsigned long long>(r.scored),
               static_cast<unsigned long long>(r.shed),
               static_cast<unsigned long long>(r.throttled),
               static_cast<unsigned long long>(r.rejected),
               static_cast<unsigned long long>(r.errors), r.throughput_rps, r.p50_us,
               r.p99_us, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("connect", "drive an external server at this endpoint instead", "");
  cli.add_flag("workers", "scoring workers, self-hosted mode (0 = all cores)", "0");
  cli.add_flag("queue", "ring capacity, self-hosted mode", "256");
  cli.add_flag("clients", "closed-loop connections", "4");
  cli.add_flag("window", "pipelined in-flight requests", "64");
  cli.add_flag("duration-s", "seconds per phase", "2");
  cli.add_flag("windows", "feature windows per request", "16");
  cli.add_flag("epoch-period-ms", "epoch re-roll period, self-hosted (0 = static)", "100");
  cli.add_flag("throttle-rps", "per-connection fair-share limit; >0 switches to the "
                               "sustained-hostile-traffic scenario (self-hosted only)", "0");
  cli.add_flag("out", "write the JSON report here instead of stdout", "");
  if (!cli.parse(argc, argv)) return 0;

  const std::string connect = cli.get("connect");
  const auto n_clients = static_cast<std::size_t>(cli.get_int("clients"));
  const auto window = static_cast<std::size_t>(cli.get_int("window"));
  const double duration_s = cli.get_double("duration-s");
  const auto windows = static_cast<std::size_t>(cli.get_int("windows"));
  const std::chrono::milliseconds epoch_period(cli.get_int("epoch-period-ms"));
  const double throttle_rps = cli.get_double("throttle-rps");
  const bool hostile = throttle_rps > 0.0;
  if (hostile && !connect.empty()) {
    std::fprintf(stderr, "net_loadgen: --throttle-rps requires self-hosted mode\n");
    return 1;
  }
  const std::vector<net::ScoreRequest> workload = make_workload(64, windows);

  // Self-hosted plumbing (unused in --connect mode).
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, 2048};
  const nn::Network network = make_net();
  std::optional<serve::ScoringService> service;
  std::optional<net::NetServer> server;
  std::vector<std::pair<std::string, util::Endpoint>> transports;
  const std::string uds_path =
      "/tmp/shmd_net_loadgen_" + std::to_string(::getpid()) + ".sock";
  if (connect.empty()) {
    serve::ServeConfig config;
    config.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
    config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
    service.emplace(serve::make_epoch(hmd::StochasticHmd(network, fc, 0.10)), config);
    net::NetServerConfig net_config;
    net_config.throttle_rps = throttle_rps;  // 0 disables the limiter
    server.emplace(*service, net_config);
    transports.emplace_back("tcp", server->add_listener(util::parse_endpoint("127.0.0.1:0")));
    transports.emplace_back("uds", server->add_listener(util::parse_endpoint("unix:" + uds_path)));
    server->start();
  } else {
    transports.emplace_back("remote", util::parse_endpoint(connect));
  }

  // Moving-target roller, self-hosted only: the wire numbers should not
  // flinch when the operating point re-rolls underneath them.
  std::atomic<bool> stop_roller{false};
  std::thread roller;
  if (service && epoch_period.count() > 0) {
    roller = std::thread([&] {
      const std::vector<double> schedule = {0.10, 0.05, 0.15};
      std::size_t i = 0;
      while (!stop_roller.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(epoch_period);
        if (stop_roller.load(std::memory_order_relaxed)) break;
        const hmd::StochasticHmd moved(network, fc, schedule[i++ % schedule.size()]);
        service->install_epoch(serve::make_epoch(moved));
      }
    });
  }

  std::vector<PhaseResult> phases;
  if (hostile) {
    // Sustained-hostile-traffic scenario: one flooding pipelined connection
    // races the fair-share limiter while polite closed-loop clients share
    // the same server. The limiter should absorb the flood as kThrottled
    // replies (never a disconnect) and leave the polite clients' goodput
    // intact — the flooder's in-window frames beyond its budget bounce
    // cheaply before payload decode.
    const auto& [tag, ep] = transports.front();
    std::fprintf(stderr,
                 "%s hostile: 1 flooder (window %zu) vs %zu polite clients x %.1fs, "
                 "%.0f rps/conn budget...\n",
                 tag.c_str(), window, n_clients, duration_s, throttle_rps);
    PhaseResult flood;
    std::thread flooder([&] {
      flood = run_pipelined(ep, window, duration_s, workload, "hostile_flood");
    });
    PhaseResult polite = run_closed(ep, n_clients, duration_s, workload, "hostile_polite");
    flooder.join();
    phases.push_back(std::move(flood));
    phases.push_back(std::move(polite));
  } else {
    for (const auto& [tag, ep] : transports) {
      std::fprintf(stderr, "%s closed loop: %zu connections x %.1fs against %s...\n",
                   tag.c_str(), n_clients, duration_s, ep.to_string().c_str());
      phases.push_back(run_closed(ep, n_clients, duration_s, workload, tag + "_closed"));
      std::fprintf(stderr, "%s pipelined: window %zu x %.1fs...\n", tag.c_str(), window,
                   duration_s);
      phases.push_back(run_pipelined(ep, window, duration_s, workload, tag + "_pipelined"));
    }
  }

  if (roller.joinable()) {
    stop_roller.store(true, std::memory_order_relaxed);
    roller.join();
  }

  // Accounting: every frame sent came back as exactly one reply (the
  // phase loops guarantee it structurally — make the claim checkable),
  // and nothing in the stack failed or leaked in flight.
  bool accounting_ok = true;
  for (const PhaseResult& r : phases) {
    if (r.sent != r.scored + r.shed + r.throttled + r.rejected + r.errors ||
        r.errors != 0) {
      accounting_ok = false;
    }
  }
  std::uint64_t server_failed = 0;
  std::uint64_t server_in_flight = 0;
  std::uint64_t epoch_swaps = 0;
  std::uint64_t server_throttled = 0;
  if (server) {
    const net::NetServerStats net_stats = server->stats();
    server_throttled = net_stats.throttled_responses;
    server->stop();
    service->close();
    const serve::ServiceStatsSnapshot stats = service->stats();
    server_failed = stats.failed;
    server_in_flight = stats.in_flight();
    epoch_swaps = stats.epoch_swaps;
    if (stats.failed != 0 || stats.in_flight() != 0) accounting_ok = false;
  }

  const std::string out_path = cli.get("out");
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) throw std::runtime_error("net_loadgen: cannot open " + out_path);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"config\": {\n"
               "    \"mode\": \"%s\",\n"
               "    \"clients\": %zu,\n"
               "    \"window\": %zu,\n"
               "    \"windows_per_request\": %zu,\n"
               "    \"epoch_period_ms\": %lld,\n"
               "    \"throttle_rps\": %.0f\n"
               "  },\n",
               connect.empty() ? "self_hosted" : "connect", n_clients, window, windows,
               static_cast<long long>(epoch_period.count()), throttle_rps);
  for (const PhaseResult& r : phases) print_phase(out, r, /*last=*/false);
  std::fprintf(out,
               "  \"totals\": {\n"
               "    \"accounting_ok\": %s,\n"
               "    \"server_failed\": %llu,\n"
               "    \"server_in_flight\": %llu,\n"
               "    \"server_throttled\": %llu,\n"
               "    \"epoch_swaps\": %llu\n"
               "  }\n}\n",
               accounting_ok ? "true" : "false",
               static_cast<unsigned long long>(server_failed),
               static_cast<unsigned long long>(server_in_flight),
               static_cast<unsigned long long>(server_throttled),
               static_cast<unsigned long long>(epoch_swaps));
  if (out != stdout) std::fclose(out);
  return accounting_ok ? 0 : 1;
}
