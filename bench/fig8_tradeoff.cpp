// Figure 8 — The Stochastic-HMD trade-off: detection accuracy,
// transferability robustness (% of evasive malware that FAILS to evade the
// victim), and reverse-engineering robustness (100% - RE effectiveness),
// all as a function of the error rate. Identifies the practical region
// (the paper's area "1", er <~ 0.2) where security rises steeply at
// negligible accuracy cost.
#include <cstdio>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "eval/metrics.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);

  std::printf("Fig. 8 — accuracy / transferability robustness / RE robustness vs er "
              "(%d rotations)\n\n", cfg.rotations);

  // Per-rotation victims and attack scaffolding; transferability is a
  // high-variance quantity, so every point aggregates all rotations.
  std::vector<trace::FoldSplit> splits;
  std::vector<hmd::BaselineHmd> baselines;
  std::vector<std::vector<std::size_t>> target_sets;
  std::vector<attack::EvasionConfig> evasion_bases;
  for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
    splits.push_back(ds.folds(rotation));
    baselines.push_back(
        hmd::make_baseline(ds, splits.back().victim_training, fc, cfg.train));
    target_sets.push_back(bench::malware_subset(ds, splits.back(), cfg.attack_samples));
    evasion_bases.push_back(bench::make_evasion_config(ds, splits.back()));
  }

  util::Table table({"er", "accuracy", "transfer robustness", "RE robustness", "accuracy bar"});
  for (double er : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0}) {
    eval::ConfusionMatrix cm;
    std::size_t evaded = 0;
    std::size_t transferred = 0;
    double effectiveness = 0.0;
    for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
      const trace::FoldSplit& folds = splits[static_cast<std::size_t>(rotation)];
      hmd::StochasticHmd victim(baselines[static_cast<std::size_t>(rotation)].network(), fc,
                                er);
      for (int rep = 0; rep < cfg.repeats; ++rep) {
        for (std::size_t idx : folds.testing) {
          const auto& s = ds.samples()[idx];
          cm.add(s.malware(), victim.detect(s.features));
        }
      }

      attack::ReverseEngineer re(ds);
      attack::ReverseEngineerConfig rc;
      rc.kind = attack::ProxyKind::kMlp;
      rc.proxy_configs = {fc};
      rc.seed = 0xA77AC4ULL + static_cast<std::uint64_t>(rotation);
      const auto proxy = re.run(victim, folds.victim_training, folds.testing, rc);
      effectiveness += proxy.effectiveness;
      attack::EvasionConfig ec = evasion_bases[static_cast<std::size_t>(rotation)];
      ec.craft_threshold = proxy.craft_threshold;
      const auto transfer =
          attack::TransferabilityEval(ds, ec)
              .run(victim, *proxy.proxy, target_sets[static_cast<std::size_t>(rotation)],
                   rc.proxy_configs);
      evaded += transfer.proxy_evaded;
      transferred += static_cast<std::size_t>(
          transfer.success_rate() * static_cast<double>(transfer.proxy_evaded) + 0.5);
    }
    effectiveness /= static_cast<double>(cfg.rotations);
    const double robustness =
        evaded == 0 ? 1.0
                    : 1.0 - static_cast<double>(transferred) / static_cast<double>(evaded);
    table.add_row({util::Table::fmt(er, 2), util::Table::pct(cm.accuracy(), 1),
                   util::Table::pct(robustness, 1),
                   util::Table::pct(1.0 - effectiveness, 1),
                   util::ascii_bar(cm.accuracy(), 1.0, 25)});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nPaper shape check: in area (1), er <= ~0.2, transfer and RE robustness climb\n"
      "steeply while accuracy stays within ~1 point of baseline; beyond er ~0.3\n"
      "(area 2) accuracy decays faster than security improves — and at very high er\n"
      "the 'robustness' numbers become meaningless because the detector itself is\n"
      "near-random. The deployable sweet spot is the er ~0.1-0.2 shelf.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
