// Ablation — the monitoring horizon: HMDs are "always on", so an evasive
// sample must survive EVERY detection round, while the defender only needs
// one hit. A deterministic baseline's verdict never changes; the
// stochastic boundary re-rolls per round.
//
// Sweeps the number of rounds and reports (a) the fraction of evasive
// malware caught within the horizon and (b) the benign false-alarm
// probability over the same horizon — the operational trade-off a deployer
// actually tunes.
#include <cstdio>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "hmd/space_exploration.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  const auto explored =
      hmd::explore_error_rate(ds, folds.victim_training, baseline.network(), fc);
  hmd::StochasticHmd stochastic(baseline.network(), fc, explored.error_rate);

  // One batch of evasive traces, crafted once against the stochastic
  // victim's proxy; reusable across horizons.
  attack::ReverseEngineer re(ds);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = {fc};
  const auto proxy = re.run(stochastic, folds.victim_training, folds.testing, rc);
  attack::EvasionConfig ec = bench::make_evasion_config(ds, folds);
  ec.craft_threshold = proxy.craft_threshold;
  const attack::EvasionAttack attack(ec);

  std::vector<trace::FeatureSet> evasive;
  for (std::size_t idx : bench::malware_subset(ds, folds, cfg.attack_samples)) {
    attack::EvasionConfig per_sample = ec;
    per_sample.seed = ec.seed ^ (0x9E3779B97F4A7C15ULL * (idx + 1));
    const attack::EvasionAttack sample_attack(per_sample);
    const auto crafted =
        sample_attack.craft(ds.trace_of(idx), *proxy.proxy, rc.proxy_configs);
    if (crafted.proxy_evaded) {
      evasive.push_back(trace::extract_feature_set(crafted.trace, ds.config().periods));
    }
  }

  std::vector<const trace::FeatureSet*> benign;
  for (std::size_t idx : folds.testing) {
    if (!ds.samples()[idx].malware()) benign.push_back(&ds.samples()[idx].features);
  }

  std::printf("Ablation — monitoring horizon (er=%.2f, %zu evasive samples, %zu benign)\n\n",
              explored.error_rate, evasive.size(), benign.size());

  util::Table table({"rounds", "evasive caught (stochastic)", "evasive caught (baseline)",
                     "benign false alarm (stochastic)"});
  for (int rounds : {1, 2, 4, 8, 16, 32}) {
    std::size_t caught_sto = 0;
    for (const auto& features : evasive) {
      bool detected = false;
      for (int r = 0; r < rounds && !detected; ++r) detected = stochastic.detect(features);
      caught_sto += detected;
    }
    std::size_t caught_base = 0;
    for (const auto& features : evasive) caught_base += baseline.detect(features);

    std::size_t benign_alarms = 0;
    for (const auto* features : benign) {
      bool alarmed = false;
      for (int r = 0; r < rounds && !alarmed; ++r) alarmed = stochastic.detect(*features);
      benign_alarms += alarmed;
    }

    table.add_row(
        {std::to_string(rounds),
         util::Table::pct(static_cast<double>(caught_sto) /
                              static_cast<double>(evasive.size()), 1),
         util::Table::pct(static_cast<double>(caught_base) /
                              static_cast<double>(evasive.size()), 1),
         util::Table::pct(static_cast<double>(benign_alarms) /
                              static_cast<double>(benign.size()), 1)});
  }
  bench::emit(table, cfg);
  std::printf("\nTakeaway: the deterministic baseline's column is flat — fooled once,\n"
              "fooled forever. The stochastic column climbs with the horizon (every\n"
              "round is a fresh boundary), at the cost of benign false alarms also\n"
              "accumulating; deployments pick the horizon/alarm-threshold trade-off.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
