#!/usr/bin/env python3
"""Reduce raw benchmark output to the BENCH_*.json scorecards.

Usage: emit_bench_json.py <benchmark_out.json> [BENCH_micro.json]
       emit_bench_json.py --serve <serve_loadgen_out.json> [BENCH_serve.json]
       emit_bench_json.py --net <net_loadgen_out.json> [BENCH_net.json]
       emit_bench_json.py --attack <redteam_campaign_out.json> [BENCH_attack.json]

Micro mode: the CI bench-smoke job runs micro_inference with
--benchmark_out and feeds the raw google-benchmark dump through this
script, which keeps only the items-per-second series the project tracks
release over release: exact inference, faulty inference at
er = 0 / 10% / 50%, the PRNG additive-noise baseline, and the raw dot()
kernels the span-level arithmetic API added.

Serve mode (--serve): reduces a serve_loadgen JSON report to the
BENCH_serve.json scorecard. The headline is GOODPUT — requests scored
within their deadline per second — not raw throughput: past saturation a
server can stay "busy" scoring requests whose deadlines already passed,
and only goodput tells those apart. Also carries open-loop shed/reject
fractions, survivor tail latency, and the accounting invariant (every
request terminal, nothing lost). Stdlib only — CI installs no Python
packages.

Net mode (--net): reduces a net_loadgen JSON report to the BENCH_net.json
scorecard — closed-loop round-trip latency and pipelined throughput per
transport (TCP vs Unix socket, or the remote endpoint in --connect runs),
shed/throttle fractions, and the wire accounting invariant (every frame
sent came back as exactly one reply; nothing failed in the stack).

Attack mode (--attack): reduces a redteam_campaign JSON report to the
BENCH_attack.json scorecard — the evasion-transfer vs. epoch-period
series measured over the wire (the moving-target headline: shorter epochs
buy lower transfer), the query-budget and label-rule series, the
cross-device fleet row, and three gates: cross-transport bit parity
(every cell's in-process and over-the-wire campaigns produced identical
decision hashes), wire accounting (every campaign query scored exactly
once, decision-only), and the epoch trend.
"""

import json
import sys

# BENCH_micro.json key -> benchmark name in the raw dump.
SERIES = {
    "inference_exact": "BM_InferenceExact",
    "inference_faulty_er0": "BM_InferenceFaulty/0",
    "inference_faulty_er10": "BM_InferenceFaulty/10",
    "inference_faulty_er50": "BM_InferenceFaulty/50",
    "inference_noise_prng": "BM_InferenceNoisePrng",
    "dot_exact": "BM_DotExact",
    "dot_faulty_skipahead_er0": "BM_DotFaultySkipAhead/0",
    "dot_faulty_skipahead_er1": "BM_DotFaultySkipAhead/10",
    "dot_faulty_skipahead_er5": "BM_DotFaultySkipAhead/50",
    "dot_faulty_scalar_er1": "BM_DotFaultyScalar/10",
    "dot_faulty_scalar_er5": "BM_DotFaultyScalar/50",
    "dot_portable": "BM_DotPortable",
    "dot_avx2": "BM_DotAvx2",
    "gemm_kernel_portable_rows16": "BM_GemmKernelPortable/16",
    "gemm_kernel_avx2_rows16": "BM_GemmKernelAvx2/16",
    "forward_batch_exact_rows1": "BM_ForwardBatchExact/1",
    "forward_batch_exact_rows16": "BM_ForwardBatchExact/16",
    "forward_batch_faulty_rows16": "BM_ForwardBatchFaulty/16",
}

# Series that legitimately vanish on hosts without the ISA (the bench
# reports error_occurred via SkipWithError): absent -> recorded as null,
# not a CI failure. Everything else missing is still an error.
OPTIONAL_SERIES = {"dot_avx2", "gemm_kernel_avx2_rows16"}


def emit_serve(argv):
    if len(argv) < 1 or len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw_path = argv[0]
    out_path = argv[1] if len(argv) == 2 else "BENCH_serve.json"

    with open(raw_path, encoding="utf-8") as f:
        raw = json.load(f)

    def phase(name):
        p = raw.get(name)
        if p is None:
            print(f"emit_bench_json: missing phase: {name}", file=sys.stderr)
            return None
        submitted = p.get("submitted", 0)
        return {
            # Headline: useful work per second. Old reports (pre-v5) lack
            # the field; fall back to raw throughput so diffs stay readable.
            "goodput_rps": p.get("goodput_rps", p.get("throughput_rps")),
            "throughput_rps": p.get("throughput_rps"),
            "achieved_rate_rps": p.get("achieved_rate_rps"),
            "p50_us": p.get("p50_us"),
            "p99_us": p.get("p99_us"),
            "shed_fraction": (p.get("shed", 0) / submitted) if submitted else 0.0,
            "rejected_fraction": (p.get("rejected", 0) / submitted) if submitted else 0.0,
            "evicted": p.get("evicted", 0),
            "scored_late": p.get("scored_late", 0),
            "deadline_missed": p.get("deadline_missed", 0),
            "missed_wait_p50_us": p.get("missed_wait_p50_us"),
            "missed_wait_p99_us": p.get("missed_wait_p99_us"),
            "epoch_swaps": p.get("epoch_swaps", 0),
        }

    closed, open_ = phase("closed_loop"), phase("open_loop")
    if closed is None or open_ is None:
        return 1

    totals = raw.get("totals", {})
    scorecard = {
        "goodput_rps": open_.get("goodput_rps"),  # the headline serving metric
        "closed_loop": closed,
        "open_loop": open_,
        "epoch_swaps": totals.get("epoch_swaps"),
        "rejected_on_admission": totals.get("rejected_on_admission"),
        "evicted": totals.get("evicted"),
        "throttled": totals.get("throttled"),
        # The serving layer's core promise: after the drain every accepted
        # request reached a terminal state and nothing was silently lost.
        "accounting_ok": totals.get("in_flight") == 0 and totals.get("failed") == 0,
        # Determinism probe digest: FNV-1a over the score bits of a fixed
        # (seed, admission order) workload. Two runs at different --batch
        # values must print the same hash — CI compares them.
        "score_hash": totals.get("score_hash"),
        "config": raw.get("config", {}),
    }

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(scorecard, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"emit_bench_json: wrote serve scorecard to {out_path}")
    return 0


def emit_net(argv):
    if len(argv) < 1 or len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw_path = argv[0]
    out_path = argv[1] if len(argv) == 2 else "BENCH_net.json"

    with open(raw_path, encoding="utf-8") as f:
        raw = json.load(f)

    # Phase names are <transport>_<model>; keep whichever transports ran
    # (tcp+uds self-hosted, or just "remote" in --connect mode).
    phases = {}
    for name, p in raw.items():
        if name in ("config", "totals") or not isinstance(p, dict):
            continue
        sent = p.get("sent", 0)
        phases[name] = {
            "throughput_rps": p.get("throughput_rps"),
            "p50_us": p.get("p50_us"),
            "p99_us": p.get("p99_us"),
            "shed_fraction": (p.get("shed", 0) / sent) if sent else 0.0,
            "throttled_fraction": (p.get("throttled", 0) / sent) if sent else 0.0,
            "rejected": p.get("rejected", 0),
            "errors": p.get("errors", 0),
        }
    if not phases:
        print("emit_bench_json: no phases in net report", file=sys.stderr)
        return 1

    totals = raw.get("totals", {})
    scorecard = {
        "phases": phases,
        # The transport's core promise: replies == sends, no frame lost or
        # failed anywhere between the socket and the scoring ring.
        "accounting_ok": bool(totals.get("accounting_ok"))
        and totals.get("server_failed", 0) == 0
        and totals.get("server_in_flight", 0) == 0,
        "server_throttled": totals.get("server_throttled", 0),
        "epoch_swaps": totals.get("epoch_swaps"),
        "config": raw.get("config", {}),
    }

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(scorecard, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"emit_bench_json: wrote net scorecard to {out_path}")
    return 0


def emit_attack(argv):
    if len(argv) < 1 or len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw_path = argv[0]
    out_path = argv[1] if len(argv) == 2 else "BENCH_attack.json"

    with open(raw_path, encoding="utf-8") as f:
        raw = json.load(f)

    cells = raw.get("cells", [])
    if not cells:
        print("emit_bench_json: no cells in attack report", file=sys.stderr)
        return 1

    def is_base(c):
        return c.get("label_rule") == "single" and c.get("query_budget", 0) == 0

    def series_point(c, key):
        wire, inproc = c.get("wire", {}), c.get("inproc", {})
        return {
            key: c.get(key),
            "wire_transfer_rate": wire.get("transfer_rate"),
            "inproc_transfer_rate": inproc.get("transfer_rate"),
            "re_effectiveness": wire.get("re_effectiveness"),
            "queries_used": wire.get("queries_used"),
            "epochs_rolled": wire.get("epochs_rolled"),
            "parity_ok": bool(c.get("parity_ok")),
        }

    # The headline series: transfer over the wire as the defender's epoch
    # clock tightens (base label rule, unlimited budget).
    epoch_series = sorted(
        (series_point(c, "epoch_period_queries") for c in cells if is_base(c)),
        key=lambda p: p["epoch_period_queries"],
        reverse=True,
    )
    budget_series = sorted(
        (
            series_point(c, "query_budget")
            for c in cells
            if c.get("label_rule") == "single" and c.get("query_budget", 0) > 0
            and c.get("epoch_period_queries", 0) == 0
        ),
        key=lambda p: p["query_budget"],
    )
    rule_series = [
        dict(series_point(c, "label_rule"), repeat_queries=c.get("repeat_queries"))
        for c in cells
        if c.get("epoch_period_queries", 0) == 0 and c.get("query_budget", 0) == 0
    ]

    # Trend gate: the static victim (period 0 sorts first) must transfer at
    # least as much as the fastest-rolling one, modulo a small-sample
    # slack. Only checkable when the sweep actually ran (self-hosted mode;
    # the --connect smoke has a single cell and passes vacuously).
    trend_ok = True
    statics = [p for p in epoch_series if p["epoch_period_queries"] == 0]
    rolling = [p for p in epoch_series if p["epoch_period_queries"] > 0]
    if statics and rolling:
        fastest = min(rolling, key=lambda p: p["epoch_period_queries"])
        trend_ok = fastest["wire_transfer_rate"] <= statics[0]["wire_transfer_rate"] + 0.05

    totals = raw.get("totals", {})
    fleet = raw.get("fleet", {})
    members = fleet.get("members", [])
    rates = [m.get("transfer_rate", 0.0) for m in members if not m.get("frozen")]
    scorecard = {
        "epoch_transfer_series": epoch_series,
        "budget_series": budget_series,
        "label_rule_series": rule_series,
        "fleet": {
            "devices": fleet.get("devices", 0),
            "crafted_evasive": fleet.get("crafted_evasive", 0),
            "transfer_rate_min": min(rates) if rates else None,
            "transfer_rate_max": max(rates) if rates else None,
            "members": members,
        },
        # Cross-transport bit parity: for every cell the in-process replica
        # and the over-the-wire campaign observed identical decisions
        # (equal FNV-1a hashes). This is the subsystem's core promise.
        "parity_ok": bool(totals.get("parity_ok")),
        # Wire accounting: queries == scored == decision-only verdicts per
        # served instance; nothing shed, failed, or in flight.
        "accounting_ok": bool(totals.get("accounting_ok")),
        "trend_ok": trend_ok,
        "config": raw.get("config", {}),
    }
    ok = scorecard["parity_ok"] and scorecard["accounting_ok"] and trend_ok

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(scorecard, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"emit_bench_json: wrote attack scorecard to {out_path}")
    if not ok:
        print("emit_bench_json: attack gates failed "
              f"(parity_ok={scorecard['parity_ok']} "
              f"accounting_ok={scorecard['accounting_ok']} trend_ok={trend_ok})",
              file=sys.stderr)
        return 1
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--serve":
        return emit_serve(argv[2:])
    if len(argv) >= 2 and argv[1] == "--net":
        return emit_net(argv[2:])
    if len(argv) >= 2 and argv[1] == "--attack":
        return emit_attack(argv[2:])
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw_path = argv[1]
    out_path = argv[2] if len(argv) == 3 else "BENCH_micro.json"

    with open(raw_path, encoding="utf-8") as f:
        raw = json.load(f)

    by_name = {b.get("name"): b for b in raw.get("benchmarks", [])}
    items_per_second = {}
    missing = []
    for key, bench_name in SERIES.items():
        bench = by_name.get(bench_name)
        if bench is None or "items_per_second" not in bench:
            if key in OPTIONAL_SERIES:
                items_per_second[key] = None
                continue
            missing.append(bench_name)
            continue
        items_per_second[key] = bench["items_per_second"]

    if missing:
        print(f"emit_bench_json: missing series: {', '.join(missing)}", file=sys.stderr)
        return 1

    context = raw.get("context", {})
    scorecard = {
        "unit": "items_per_second (MAC products/s)",
        "items_per_second": items_per_second,
        "speedup_dot_skipahead_vs_scalar_er1": (
            items_per_second["dot_faulty_skipahead_er1"] / items_per_second["dot_faulty_scalar_er1"]
            if items_per_second.get("dot_faulty_scalar_er1")
            else None
        ),
        # Lane-blocked kernel vs the portable lane-blocked reference —
        # the honest SIMD win, same summation order on both sides.
        "speedup_dot_avx2_vs_portable": (
            items_per_second["dot_avx2"] / items_per_second["dot_portable"]
            if items_per_second.get("dot_avx2") and items_per_second.get("dot_portable")
            else None
        ),
        # How far the live fault stream at er = 5% sits above the exact
        # SIMD path (slowdown factor, exact / faulty; honest, not a goal
        # metric — the per-fault RNG work is irreducible).
        "slowdown_dot_faulty_er5_vs_exact": (
            items_per_second["dot_exact"] / items_per_second["dot_faulty_skipahead_er5"]
            if items_per_second.get("dot_faulty_skipahead_er5")
            else None
        ),
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
    }

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(scorecard, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"emit_bench_json: wrote {len(items_per_second)} series to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
