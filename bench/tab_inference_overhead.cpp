// §VIII table — implementation overhead of Stochastic-HMD vs RHMD over a
// 100k-detection run: inference time (paper: 7 / 7.7 / 7.8 us for
// Stochastic-HMD / RHMD-2F / RHMD-2F2P), model storage (Eq. 1 savings;
// 71 KB per model vs 32 KB L1), and per-inference energy.
#include <cstdio>

#include "common.hpp"
#include "sys/energy_meter.hpp"
#include "sys/memory_model.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, std::size_t detections) {
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  sys::MemoryModel memory;

  const double stochastic_voltage = 1.18 - 0.113;  // er = 0.1 operating point

  std::printf("§VIII — implementation overhead over %zu detections "
              "(model: %zu params, %.1f KB, L1 = %zu KB)\n\n",
              detections, net.parameter_count(),
              static_cast<double>(net.memory_bytes()) / 1024.0,
              memory.l1_size_bytes() / 1024);

  struct Entry {
    const char* name;
    std::size_t models;
    bool undervolted;
  };
  const Entry entries[] = {
      {"Stochastic-HMD", 1, true},
      {"RHMD-2F", 2, false},
      {"RHMD-2F2P", 4, false},
      {"RHMD-3F2P", 6, false},
  };

  util::Table table({"detector", "models", "storage", "Eq.1 savings", "inference (us)",
                     "time overhead", "energy/inf (uJ)"});
  double base_time = 0.0;
  double base_energy = 0.0;
  for (const Entry& e : entries) {
    meter.reset();
    for (std::size_t i = 0; i < detections; ++i) {
      meter.record(e.undervolted ? meter.detection(net, stochastic_voltage)
                                 : meter.rhmd_detection(net, e.models));
    }
    const double time_us = meter.total_time_us() / static_cast<double>(detections);
    const double energy_uj = meter.total_energy_uj() / static_cast<double>(detections);
    if (e.undervolted) {
      base_time = time_us;
      base_energy = energy_uj;
    }
    table.add_row(
        {e.name, std::to_string(e.models),
         util::Table::fmt(static_cast<double>(sys::MemoryModel::rhmd_bytes(net, e.models)) /
                              1024.0, 0) + " KB",
         e.models > 1 ? util::Table::pct(sys::MemoryModel::storage_savings(e.models), 0) : "-",
         util::Table::fmt(time_us, 2),
         e.undervolted ? "1.00x" : util::Table::fmt(time_us / base_time, 2) + "x",
         util::Table::fmt(energy_uj, 1)});
  }
  bench::emit(table, cfg);
  std::printf("\nPaper check: 7 us vs 7.7 us vs 7.8 us; >=10%% RHMD time overhead; Eq. 1\n"
              "storage savings 50%% (2F) / 75%% (2F2P); undervolting leaves the clock --\n"
              "and thus inference time -- untouched while cutting energy (here %.1f%%).\n",
              100.0 * (1.0 - base_energy / (meter.power().power_w(1.18) * base_time)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("detections", "detections per measurement run", "100000");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, static_cast<std::size_t>(cli.get_int("detections")));
}
