// google-benchmark microbenchmarks: raw host-side cost of the simulation
// itself (not the modeled i7-5557U numbers — those come from
// sys::LatencyModel). Useful for keeping the fault-injection hot path
// fast: FaultyContext must stay cheap enough to sweep er x repeats x folds
// in the figure benches.
#include <benchmark/benchmark.h>

#include "faultsim/fault_injector.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/arithmetic.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/network.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/trng_sim.hpp"
#include "rng/xoshiro256ss.hpp"
#include "runtime/batch_scorer.hpp"
#include "trace/dataset.hpp"
#include "trace/features.hpp"
#include "trace/program.hpp"

namespace {

using namespace shmd;

nn::Network make_net() {
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

void BM_InferenceExact(benchmark::State& state) {
  const nn::Network net = make_net();
  nn::ExactContext ctx;
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceExact);

void BM_InferenceFaulty(benchmark::State& state) {
  const nn::Network net = make_net();
  faultsim::FaultInjector inj(static_cast<double>(state.range(0)) / 100.0,
                              faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceFaulty)->Arg(0)->Arg(10)->Arg(50)->Arg(100);

void BM_InferenceNoisePrng(benchmark::State& state) {
  const nn::Network net = make_net();
  rng::LgmPrng prng;
  nn::NoiseContext ctx(prng, 0.02);
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceNoisePrng);

void BM_InferenceFaultyScratch(benchmark::State& state) {
  // The allocation-free hot path: same faulty inference as
  // BM_InferenceFaulty, but activations live in a reused ForwardScratch.
  const nn::Network net = make_net();
  faultsim::FaultInjector inj(static_cast<double>(state.range(0)) / 100.0,
                              faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  nn::ForwardScratch scratch;
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx, scratch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceFaultyScratch)->Arg(0)->Arg(10)->Arg(50)->Arg(100);

void BM_ForwardBatchExact(benchmark::State& state) {
  // The GEMM-shaped tile forward vs. row-at-a-time: Arg is the tile
  // height (windows per call). At rows=1 this measures the batched path's
  // overhead over plain forward; at rows=16 the blocked exact kernel's
  // weight-reuse payoff.
  const nn::Network net = make_net();
  nn::ExactContext ctx;
  nn::ForwardScratch scratch;
  const auto rows = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256ss gen(3);
  std::vector<double> tile(rows * net.input_dim());
  for (double& v : tile) v = gen.uniform(-1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward_batch(tile, rows, ctx, scratch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_ForwardBatchExact)->Arg(1)->Arg(4)->Arg(16);

void BM_ForwardBatchFaulty(benchmark::State& state) {
  // Faulty tile forward at the paper's er=0.10 operating point: the fault
  // stream is live, so the kernel stays row-wise — the win here is
  // amortized dispatch and cache-warm weights, not reblocking.
  const nn::Network net = make_net();
  faultsim::FaultInjector inj(0.10, faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  nn::ForwardScratch scratch;
  const auto rows = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256ss gen(3);
  std::vector<double> tile(rows * net.input_dim());
  for (double& v : tile) v = gen.uniform(-1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward_batch(tile, rows, ctx, scratch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_ForwardBatchFaulty)->Arg(1)->Arg(4)->Arg(16);

std::vector<trace::FeatureSet> make_batch(std::size_t n_programs,
                                          std::size_t windows_per_program) {
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, 2048};
  rng::Xoshiro256ss gen(7);
  std::vector<trace::FeatureSet> batch(n_programs);
  for (trace::FeatureSet& fs : batch) {
    std::vector<std::vector<double>> windows(windows_per_program, std::vector<double>(16));
    for (auto& window : windows) {
      for (double& x : window) x = gen.uniform01();
    }
    fs.put(fc, std::move(windows));
  }
  return batch;
}

void BM_BatchInference(benchmark::State& state) {
  // Thread sweep over the batch runtime: 256 programs x 16 windows on the
  // seed 16-32-16-1 topology at er=0.1. Throughput should scale with the
  // worker count up to the physical core count.
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, 2048};
  hmd::StochasticHmd hmd(make_net(), fc, 0.1);
  runtime::RuntimeConfig rt;
  rt.num_workers = static_cast<std::size_t>(state.range(0));
  rt.seed = 42;
  runtime::BatchScorer scorer(hmd, rt);
  const std::vector<trace::FeatureSet> batch = make_batch(256, 16);
  for (auto _ : state) benchmark::DoNotOptimize(scorer.score_batch(batch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256 * 16 *
                          static_cast<std::int64_t>(hmd.network().mac_count()));
}
BENCHMARK(BM_BatchInference)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ------------------------------------------------------- raw dot() kernels
//
// Isolate the span API from network plumbing: one 1024-wide dot product per
// iteration. BM_DotFaultyScalar is the pre-span baseline (per-MAC mul()
// through the base-class fallback); BM_DotFaultySkipAhead is the shipped
// FaultyContext kernel (geometric skip-ahead below kSkipAheadMaxRate, dense
// per-product draws above). Args are the error rate in permille.

/// Pre-span reference: routes every product through mul()/corrupt_product,
/// inheriting the base-class dot() fallback.
class ScalarFaultyContext final : public nn::ArithmeticContext {
 public:
  explicit ScalarFaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }
  [[nodiscard]] const char* name() const noexcept override { return "scalar-faulty"; }

 private:
  faultsim::FaultInjector* injector_;
};

constexpr std::size_t kDotLen = 1024;

std::vector<double> dot_operand(std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<double> v(kDotLen);
  for (double& x : v) x = gen.uniform(-1.0, 1.0);
  return v;
}

void BM_DotExact(benchmark::State& state) {
  const std::vector<double> w = dot_operand(1);
  const std::vector<double> x = dot_operand(2);
  nn::ExactContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(ctx.dot(w.data(), x.data(), kDotLen));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDotLen));
}
BENCHMARK(BM_DotExact);

void BM_DotFaultySkipAhead(benchmark::State& state) {
  const std::vector<double> w = dot_operand(1);
  const std::vector<double> x = dot_operand(2);
  faultsim::FaultInjector inj(static_cast<double>(state.range(0)) / 1000.0,
                              faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.dot(w.data(), x.data(), kDotLen));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDotLen));
}
BENCHMARK(BM_DotFaultySkipAhead)->Arg(0)->Arg(10)->Arg(50)->Arg(100)->Arg(500);

void BM_DotFaultyScalar(benchmark::State& state) {
  const std::vector<double> w = dot_operand(1);
  const std::vector<double> x = dot_operand(2);
  faultsim::FaultInjector inj(static_cast<double>(state.range(0)) / 1000.0,
                              faultsim::BitFaultDistribution::measured());
  ScalarFaultyContext ctx(inj);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.dot(w.data(), x.data(), kDotLen));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDotLen));
}
BENCHMARK(BM_DotFaultyScalar)->Arg(0)->Arg(10)->Arg(50)->Arg(100)->Arg(500);

// --------------------------------------------------- raw kernel tables
//
// The dispatched tables themselves, no ArithmeticContext accounting in
// the loop: BM_DotPortable vs BM_DotAvx2 is the honest SIMD speedup
// (both obey the same lane-blocked contract, so this is reblocking-free
// apples-to-apples), and BM_GemmKernel* shows the 4-row weight-reuse
// payoff on a model-shaped (rows x 1024) x (1024 -> 32) tile.

void bench_kernel_dot(benchmark::State& state, const nn::kernels::KernelTable* kt) {
  if (kt == nullptr) {
    state.SkipWithError("kernel table not runnable on this host");
    return;
  }
  const std::vector<double> w = dot_operand(1);
  const std::vector<double> x = dot_operand(2);
  for (auto _ : state) benchmark::DoNotOptimize(kt->dot(w.data(), x.data(), kDotLen));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDotLen));
}

void BM_DotPortable(benchmark::State& state) {
  bench_kernel_dot(state, &nn::kernels::portable_table());
}
BENCHMARK(BM_DotPortable);

void BM_DotAvx2(benchmark::State& state) {
  bench_kernel_dot(state, nn::kernels::avx2_if_supported());
}
BENCHMARK(BM_DotAvx2);

void bench_kernel_gemm(benchmark::State& state, const nn::kernels::KernelTable* kt) {
  if (kt == nullptr) {
    state.SkipWithError("kernel table not runnable on this host");
    return;
  }
  const auto rows = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kIn = kDotLen;
  constexpr std::size_t kOut = 32;
  rng::Xoshiro256ss gen(9);
  std::vector<double> w(kOut * kIn), bias(kOut), x(rows * kIn), y(rows * kOut);
  for (double& v : w) v = gen.uniform(-1.0, 1.0);
  for (double& v : bias) v = gen.uniform(-1.0, 1.0);
  for (double& v : x) v = gen.uniform(-1.0, 1.0);
  for (auto _ : state) {
    kt->gemm(w.data(), bias.data(), x.data(), rows, kIn, kOut, y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * kIn * kOut));
}

void BM_GemmKernelPortable(benchmark::State& state) {
  bench_kernel_gemm(state, &nn::kernels::portable_table());
}
BENCHMARK(BM_GemmKernelPortable)->Arg(1)->Arg(16);

void BM_GemmKernelAvx2(benchmark::State& state) {
  bench_kernel_gemm(state, nn::kernels::avx2_if_supported());
}
BENCHMARK(BM_GemmKernelAvx2)->Arg(1)->Arg(16);

void BM_CorruptProduct(benchmark::State& state) {
  faultsim::FaultInjector inj(1.0, faultsim::BitFaultDistribution::measured());
  double x = 0.372;
  for (auto _ : state) {
    x = inj.corrupt_product(0.372);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CorruptProduct);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::Program program(0, trace::Family::kWorm, 42);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(program.generate(n));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(2048)->Arg(32768);

void BM_FeatureExtraction(benchmark::State& state) {
  const trace::Program program(0, trace::Family::kBrowser, 7);
  const auto trace_data = program.generate(32768);
  const auto view = static_cast<trace::FeatureView>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_windows(trace_data, view, 2048));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
