// google-benchmark microbenchmarks: raw host-side cost of the simulation
// itself (not the modeled i7-5557U numbers — those come from
// sys::LatencyModel). Useful for keeping the fault-injection hot path
// fast: FaultyContext must stay cheap enough to sweep er x repeats x folds
// in the figure benches.
#include <benchmark/benchmark.h>

#include "faultsim/fault_injector.hpp"
#include "nn/arithmetic.hpp"
#include "nn/network.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/trng_sim.hpp"
#include "trace/features.hpp"
#include "trace/program.hpp"

namespace {

using namespace shmd;

nn::Network make_net() {
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

void BM_InferenceExact(benchmark::State& state) {
  const nn::Network net = make_net();
  nn::ExactContext ctx;
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceExact);

void BM_InferenceFaulty(benchmark::State& state) {
  const nn::Network net = make_net();
  faultsim::FaultInjector inj(static_cast<double>(state.range(0)) / 100.0,
                              faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.mac_count()));
}
BENCHMARK(BM_InferenceFaulty)->Arg(0)->Arg(10)->Arg(50)->Arg(100);

void BM_InferenceNoisePrng(benchmark::State& state) {
  const nn::Network net = make_net();
  rng::LgmPrng prng;
  nn::NoiseContext ctx(prng, 0.02);
  const std::vector<double> x(16, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x, ctx));
}
BENCHMARK(BM_InferenceNoisePrng);

void BM_CorruptProduct(benchmark::State& state) {
  faultsim::FaultInjector inj(1.0, faultsim::BitFaultDistribution::measured());
  double x = 0.372;
  for (auto _ : state) {
    x = inj.corrupt_product(0.372);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CorruptProduct);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::Program program(0, trace::Family::kWorm, 42);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(program.generate(n));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(2048)->Arg(32768);

void BM_FeatureExtraction(benchmark::State& state) {
  const trace::Program program(0, trace::Family::kBrowser, 7);
  const auto trace_data = program.generate(32768);
  const auto view = static_cast<trace::FeatureView>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_windows(trace_data, view, 2048));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
