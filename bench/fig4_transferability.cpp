// Figure 4 — "Transferability attack" success rate: evasive malware is
// crafted against each reverse-engineered proxy (MLP/LR/DT, trained on the
// victim-training or attacker-training fold) and shipped against the live
// victim. Success = the shipped sample evades the victim's detection.
#include <cstdio>
#include <map>
#include <tuple>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "eval/metrics.hpp"
#include "hmd/space_exploration.hpp"
#include "runtime/batch_scorer.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);

  // Adversarial transferability of individual crafted samples is a
  // high-variance quantity: one proxy instance can transfer twice as well
  // as another of equal fidelity. Aggregate over the 3-fold CV rotations
  // (fresh victim, proxy, and attack set per rotation), as the paper does.
  struct Cell {
    std::size_t evaded = 0;
    std::size_t tested = 0;
    std::size_t transferred = 0;
  };
  std::map<std::tuple<int, bool, bool>, Cell> cells;

  const std::string er_label = er <= 0.0 ? "auto" : util::Table::fmt(er, 2);
  std::printf("Fig. 4 — evasive-malware transferability success rate "
              "(er=%s, %zu malware per rotation, %d rotations)\n\n", er_label.c_str(),
              cfg.attack_samples, cfg.rotations);

  attack::ReverseEngineer re(ds);
  for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
    const trace::FoldSplit folds = ds.folds(rotation);
    hmd::BaselineHmd baseline =
        hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
    double rotation_er = er;
    if (er <= 0.0) {
      // Defender-side space exploration (§VI): deepest er within a 2%
      // accuracy-loss budget, calibrated on the defender's own fold.
      const auto explored =
          hmd::explore_error_rate(ds, folds.victim_training, baseline.network(), fc);
      rotation_er = explored.error_rate;
      std::printf("rotation %d: explored er* = %.2f (accuracy %.1f%% -> %.1f%%)\n", rotation,
                  rotation_er, 100.0 * explored.baseline_accuracy,
                  100.0 * explored.selected_accuracy);
    }
    hmd::StochasticHmd stochastic(baseline.network(), fc, rotation_er);

    // Context line for the attack numbers below: the stochastic victim's
    // live accuracy on the testing fold, scored as one batch across the
    // runtime's workers (per-worker jump()-derived fault streams).
    {
      runtime::RuntimeConfig rt;
      rt.num_workers = cfg.workers;
      rt.seed = 0xF164ULL + static_cast<std::uint64_t>(rotation);
      runtime::BatchScorer scorer(stochastic, rt);
      std::vector<const trace::FeatureSet*> test_batch;
      for (std::size_t idx : folds.testing) test_batch.push_back(&ds.samples()[idx].features);
      const std::vector<bool> verdicts = scorer.detect_batch(test_batch);
      eval::ConfusionMatrix cm;
      for (std::size_t i = 0; i < verdicts.size(); ++i) {
        cm.add(ds.samples()[folds.testing[i]].malware(), verdicts[i]);
      }
      std::printf("rotation %d: stochastic victim live accuracy %.1f%% on %zu test programs "
                  "(er=%.2f, %zu workers)\n",
                  rotation, 100.0 * cm.accuracy(), test_batch.size(), rotation_er,
                  scorer.num_workers());
    }

    const std::vector<std::size_t> targets =
        bench::malware_subset(ds, folds, cfg.attack_samples);
    const attack::EvasionConfig evasion_base = bench::make_evasion_config(ds, folds);

    for (auto kind :
         {attack::ProxyKind::kMlp, attack::ProxyKind::kLr, attack::ProxyKind::kDt}) {
      for (const bool use_victim_data : {true, false}) {
        const auto& query_fold =
            use_victim_data ? folds.victim_training : folds.attacker_training;
        attack::ReverseEngineerConfig rc;
        rc.kind = kind;
        rc.proxy_configs = {fc};
        rc.seed = 0xA77AC4ULL + static_cast<std::uint64_t>(rotation);
        for (const bool stochastic_victim : {false, true}) {
          hmd::Detector& victim =
              stochastic_victim ? static_cast<hmd::Detector&>(stochastic)
                                : static_cast<hmd::Detector&>(baseline);
          const auto proxy = re.run(victim, query_fold, folds.testing, rc);
          attack::EvasionConfig ec = evasion_base;
          ec.craft_threshold = proxy.craft_threshold;
          const auto result = attack::TransferabilityEval(ds, ec)
                                  .run(victim, *proxy.proxy, targets, rc.proxy_configs);
          Cell& cell = cells[{static_cast<int>(kind), use_victim_data, stochastic_victim}];
          cell.evaded += result.proxy_evaded;
          cell.tested += result.malware_tested;
          cell.transferred +=
              static_cast<std::size_t>(result.success_rate() *
                                       static_cast<double>(result.proxy_evaded) + 0.5);
        }
      }
    }
  }

  util::Table table({"proxy", "attacker data", "victim", "proxy evaded", "success rate",
                     "detected"});
  for (auto kind : {attack::ProxyKind::kMlp, attack::ProxyKind::kLr, attack::ProxyKind::kDt}) {
    for (const bool use_victim_data : {true, false}) {
      for (const bool stochastic_victim : {false, true}) {
        const Cell& cell = cells[{static_cast<int>(kind), use_victim_data, stochastic_victim}];
        const double success =
            cell.evaded == 0 ? 0.0
                             : static_cast<double>(cell.transferred) /
                                   static_cast<double>(cell.evaded);
        table.add_row({std::string(attack::proxy_kind_name(kind)),
                       use_victim_data ? "victim training" : "attacker training",
                       stochastic_victim ? "Stochastic-HMD" : "baseline",
                       std::to_string(cell.evaded) + "/" + std::to_string(cell.tested),
                       util::Table::pct(success, 1),
                       util::Table::pct(cell.evaded == 0 ? 1.0 : 1.0 - success, 1)});
      }
    }
  }
  bench::emit(table, cfg);
  std::printf("\nPaper shape check: success collapses against the Stochastic-HMD "
              "(paper: MLP 84%%->5.9%%, LR 72%%->4.3%%, DT 33%%->6.2%%).\n"
              "Known deviation: our LR proxy fits the (more nonlinear) victim at only ~80%%\n"
              "agreement, so LR-guided evasion rarely transfers even to the baseline.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "Stochastic-HMD error rate (0 = per-rotation space exploration)", "0");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
