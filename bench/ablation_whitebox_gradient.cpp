// Ablation — §I claim (ii): "a stochastic gradient over the input ...
// makes the estimation of the gradient direction challenging for the
// adversary."
//
// This attacker is far stronger than the paper's: white-box feature-space
// gradient descent on LIVE victim queries (no instruction-realization
// constraint, no proxy). Against the deterministic baseline the gradient
// is exact and evasion is cheap; against the Stochastic-HMD every probe
// samples fresh fault noise and the attacker must buy gradient quality
// with query volume — and still descends a blurred landscape.
#include <cstdio>

#include "common.hpp"

#include "attack/whitebox.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg, double er) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  hmd::StochasticHmd stochastic(baseline.network(), fc, er);

  // Attack windows: flagged malware windows from the testing fold.
  std::vector<std::vector<double>> windows;
  for (std::size_t idx : folds.testing) {
    const auto& sample = ds.samples()[idx];
    if (!sample.malware() || windows.size() >= cfg.attack_samples) continue;
    const auto& w = sample.features.windows(fc).front();
    if (baseline.score_window(w) >= 0.6) windows.push_back(w);
  }

  std::printf("Ablation — white-box stochastic-gradient attack "
              "(er=%.2f, %zu flagged malware windows)\n\n", er, windows.size());

  const auto measure = [&](attack::WhiteBoxFeatureAttack::QueryFn query, int samples) {
    attack::WhiteBoxConfig wc;
    wc.gradient_samples = samples;
    // Tight movement budget: with room to spare, even a noisy gradient
    // eventually drifts across the boundary — the interesting regime is
    // where gradient PRECISION decides success.
    wc.max_l1_distance = 0.45;
    const attack::WhiteBoxFeatureAttack attack(wc);
    std::size_t evaded = 0;
    std::size_t queries = 0;
    double moved = 0.0;
    for (const auto& w : windows) {
      const auto result = attack.attack(query, w);
      evaded += result.evaded;
      queries += result.queries;
      moved += result.l1_distance;
    }
    return std::tuple{evaded, queries / windows.size(), moved / windows.size()};
  };

  util::Table table({"victim", "gradient samples", "evaded", "queries/window",
                     "mean L1 moved"});
  {
    const auto [evaded, queries, moved] = measure(
        [&](std::span<const double> x) { return baseline.score_window(x); }, 1);
    table.add_row({"baseline (exact gradient)", "1",
                   std::to_string(evaded) + "/" + std::to_string(windows.size()),
                   std::to_string(queries), util::Table::fmt(moved, 3)});
  }
  for (int k : {1, 4, 16}) {
    const auto [evaded, queries, moved] = measure(
        [&](std::span<const double> x) { return stochastic.score_window(x); }, k);
    table.add_row({"Stochastic-HMD", std::to_string(k),
                   std::to_string(evaded) + "/" + std::to_string(windows.size()),
                   std::to_string(queries), util::Table::fmt(moved, 3)});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nTakeaway: a white-box feature-space attacker — strictly stronger than the\n"
      "paper's threat model — still gets through, but the moving boundary extorts\n"
      "a 5-30x query toll for the same success (and the resulting feature points\n"
      "must additionally be REALIZED as instruction streams, which the black-box\n"
      "pipeline shows is where evasions die). Stochasticity is a cost multiplier\n"
      "on the attacker, not an impossibility proof.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  cli.add_flag("error-rate", "Stochastic-HMD error rate", "0.2");
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg, cli.get_double("error-rate"));
}
