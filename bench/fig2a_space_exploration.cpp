// Figure 2(a) — Space exploration: Stochastic-HMD accuracy, FPR, and FNR
// versus the error rate er in {0, 0.1, ..., 1}, with mean and standard
// deviation over repeated runs and 3-fold cross-validation (the paper
// repeats each experiment 50 times; --repeats / --paper-scale control it).
//
// The er x repeats x folds sweep runs through the batch inference runtime:
// each rotation's testing fold is scored as one batch across --workers
// threads, with per-worker jump()-derived fault streams keeping the sweep
// reproducible for a fixed (seed, workers) pair.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "runtime/batch_scorer.hpp"
#include "util/stats.hpp"

namespace {

using namespace shmd;

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);

  std::printf("Fig. 2(a) — accuracy / FPR / FNR vs error rate "
              "(%d-fold rotations x %d repeats, corpus %zu/%zu)\n\n",
              cfg.rotations, cfg.repeats, cfg.dataset.corpus.n_malware,
              cfg.dataset.corpus.n_benign);

  // One trained detector per CV rotation; the error-rate sweep reuses it
  // (the defense never retrains — §III). Each rotation also gets a batch
  // scorer over its testing fold and the truth labels for that fold.
  std::vector<trace::FoldSplit> fold_splits;
  std::vector<hmd::StochasticHmd> detectors;
  for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
    fold_splits.push_back(ds.folds(rotation));
    detectors.push_back(hmd::make_stochastic(ds, fold_splits.back().victim_training, fc, 0.0,
                                             cfg.train));
  }
  std::vector<std::unique_ptr<runtime::BatchScorer>> scorers;
  std::vector<std::vector<const trace::FeatureSet*>> batches;
  std::vector<std::vector<bool>> truths;
  for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
    runtime::RuntimeConfig rt;
    rt.num_workers = cfg.workers;
    rt.seed = 0xF16A2ULL + static_cast<std::uint64_t>(rotation);
    scorers.push_back(std::make_unique<runtime::BatchScorer>(
        detectors[static_cast<std::size_t>(rotation)], rt));
    std::vector<const trace::FeatureSet*> batch;
    std::vector<bool> truth;
    for (std::size_t idx : fold_splits[static_cast<std::size_t>(rotation)].testing) {
      batch.push_back(&ds.samples()[idx].features);
      truth.push_back(ds.samples()[idx].malware());
    }
    batches.push_back(std::move(batch));
    truths.push_back(std::move(truth));
  }
  std::printf("batch runtime: %zu workers per rotation\n\n", scorers.front()->num_workers());

  util::Table table({"er", "accuracy", "acc std", "FPR", "FNR", "accuracy bar"});
  for (double er = 0.0; er <= 1.0001; er += 0.1) {
    util::RunningStats acc_stats;
    util::RunningStats fpr_stats;
    util::RunningStats fnr_stats;
    for (int rotation = 0; rotation < cfg.rotations; ++rotation) {
      const auto r = static_cast<std::size_t>(rotation);
      detectors[r].set_error_rate(er);
      for (int rep = 0; rep < cfg.repeats; ++rep) {
        const std::vector<bool> verdicts = scorers[r]->detect_batch(batches[r]);
        eval::ConfusionMatrix cm;
        for (std::size_t i = 0; i < verdicts.size(); ++i) cm.add(truths[r][i], verdicts[i]);
        acc_stats.add(cm.accuracy());
        fpr_stats.add(cm.fpr());
        fnr_stats.add(cm.fnr());
      }
    }
    table.add_row({util::Table::fmt(er, 1), util::Table::pct(acc_stats.mean(), 2),
                   util::Table::fmt(acc_stats.stddev(), 4),
                   util::Table::pct(fpr_stats.mean(), 2),
                   util::Table::pct(fnr_stats.mean(), 2),
                   util::ascii_bar(acc_stats.mean(), 1.0, 30)});
  }
  bench::emit(table, cfg);
  std::printf("\nPaper shape check: <2%% accuracy loss at er=0.1; degradation stays mild\n"
              "until er~0.2-0.3 and then diverges toward er=1 (never below random).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
