// Ablation — the defense landscape the paper positions itself in: how do
// the related HMD-hardening ideas fare under the SAME two-stage attack?
//
//   baseline HMD      — undefended MLP;
//   ND-HMD (DT)       — non-differentiability as the defense [14]: a
//                       decision-tree detector (no gradients to follow);
//   Ensemble-HMD      — specialized per-family ensemble [21,22]:
//                       deterministic accuracy booster;
//   RHMD-2F           — randomized model switching [19];
//   Stochastic-HMD    — this paper: undervolting noise.
//
// Columns: clean accuracy, reverse-engineering effectiveness, evasion
// transfer success, plus the resource bill (models stored, noise source).
#include <cstdio>

#include "common.hpp"

#include "attack/transferability.hpp"
#include "eval/data_adapter.hpp"
#include "eval/metrics.hpp"
#include "hmd/classifier_hmd.hpp"
#include "hmd/ensemble_hmd.hpp"
#include "hmd/space_exploration.hpp"
#include "nn/decision_tree.hpp"

namespace {

using namespace shmd;

struct DefenseRow {
  std::string name;
  double accuracy = 0.0;
  double re_effectiveness = 0.0;
  double transfer_success = 0.0;
  std::size_t proxy_evaded = 0;
  std::string models;
};

DefenseRow evaluate(const trace::Dataset& ds, const trace::FoldSplit& folds,
                    hmd::Detector& victim, const std::vector<trace::FeatureConfig>& proxy_cfgs,
                    const std::vector<std::size_t>& targets,
                    const attack::EvasionConfig& evasion_base, std::string models,
                    bool union_learning = false) {
  DefenseRow row;
  row.name = std::string(victim.name());
  row.models = std::move(models);

  eval::ConfusionMatrix cm;
  for (std::size_t idx : folds.testing) {
    const auto& s = ds.samples()[idx];
    cm.add(s.malware(), victim.detect(s.features));
  }
  row.accuracy = cm.accuracy();

  attack::ReverseEngineer re(ds);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = proxy_cfgs;
  if (union_learning) {
    rc.repeat_queries = 8;
    rc.label_rule = attack::ReverseEngineerConfig::LabelRule::kAny;
  }
  const auto proxy = re.run(victim, folds.victim_training, folds.testing, rc);
  row.re_effectiveness = proxy.effectiveness;

  attack::EvasionConfig ec = evasion_base;
  ec.craft_threshold = proxy.craft_threshold;
  const auto transfer = attack::TransferabilityEval(ds, ec)
                            .run(victim, *proxy.proxy, targets, rc.proxy_configs);
  row.transfer_success = transfer.success_rate();
  row.proxy_evaded = transfer.proxy_evaded;
  return row;
}

int run(const bench::BenchConfig& cfg) {
  const trace::Dataset ds = trace::Dataset::build(cfg.dataset);
  const trace::FeatureConfig fc = bench::victim_config(ds);
  const trace::FoldSplit folds = ds.folds(0);
  const std::vector<std::size_t> targets =
      bench::malware_subset(ds, folds, cfg.attack_samples);
  const attack::EvasionConfig evasion = bench::make_evasion_config(ds, folds);

  std::printf("Ablation — related HMD defenses under the same two-stage attack "
              "(%zu malware attacked)\n\n", targets.size());

  std::vector<DefenseRow> rows;
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, cfg.train);
  rows.push_back(evaluate(ds, folds, baseline, {fc}, targets, evasion, "1 MLP"));

  {
    auto dt = std::make_unique<nn::DecisionTree>();
    dt->fit(eval::window_samples(ds, folds.victim_training, fc));
    hmd::ClassifierHmd nd_hmd(std::move(dt), fc, "nd-hmd-dt");
    rows.push_back(evaluate(ds, folds, nd_hmd, {fc}, targets, evasion, "1 DT"));
  }
  {
    hmd::EnsembleHmd ensemble = hmd::make_ensemble(ds, folds.victim_training, fc, cfg.train);
    rows.push_back(evaluate(ds, folds, ensemble, {fc}, targets, evasion,
                            std::to_string(ensemble.member_count()) + " MLP"));
  }
  {
    hmd::Rhmd rhmd = hmd::make_rhmd(ds, folds.victim_training,
                                    hmd::rhmd_2f(ds.config().periods[0]), cfg.train);
    attack::EvasionConfig deep = evasion;
    deep.max_injection_fraction = 6.0;
    deep.max_rounds = 400;
    rows.push_back(evaluate(ds, folds, rhmd, hmd::rhmd_2f(ds.config().periods[0]).configs,
                            targets, deep, "2 MLP", /*union_learning=*/true));
  }
  {
    const auto explored =
        hmd::explore_error_rate(ds, folds.victim_training, baseline.network(), fc);
    hmd::StochasticHmd stochastic(baseline.network(), fc, explored.error_rate);
    rows.push_back(evaluate(ds, folds, stochastic, {fc}, targets, evasion,
                            "1 MLP + undervolt (er " + util::Table::fmt(explored.error_rate, 2) +
                                ")"));
  }

  util::Table table({"defense", "models", "accuracy", "RE effectiveness",
                     "proxy evaded", "evasion transfer"});
  for (const DefenseRow& row : rows) {
    table.add_row({row.name, row.models, util::Table::pct(row.accuracy, 1),
                   util::Table::pct(row.re_effectiveness, 1),
                   std::to_string(row.proxy_evaded) + "/" + std::to_string(targets.size()),
                   util::Table::pct(row.transfer_success, 1)});
  }
  bench::emit(table, cfg);
  std::printf(
      "\nTakeaway: non-differentiability (ND-HMD) and specialization (Ensemble-HMD)\n"
      "keep or improve accuracy but stay DETERMINISTIC — a trained proxy replicates\n"
      "them and evasion transfers. Randomization (RHMD, Stochastic-HMD) is what cuts\n"
      "transfer, and undervolting gets there with one model and an energy credit.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  shmd::util::CliParser cli;
  const auto cfg = shmd::bench::parse_bench_args(argc, argv, cli);
  if (!cfg) return 0;
  return run(*cfg);
}
