#include "common.hpp"

#include <iostream>

namespace shmd::bench {

void add_common_flags(util::CliParser& cli) {
  cli.add_flag("malware", "number of malware programs in the corpus", "1200");
  cli.add_flag("benign", "number of benign programs in the corpus", "240");
  cli.add_flag("trace-length", "instructions traced per program", "32768");
  cli.add_flag("epochs", "training epochs for detector networks", "150");
  cli.add_flag("attack-samples", "malware programs attacked per measurement", "100");
  cli.add_flag("repeats", "repeats for mean/std aggregation", "5");
  cli.add_flag("rotations", "3-fold cross-validation rotations to run (1..3)", "3");
  cli.add_flag("workers", "batch-runtime worker threads (0 = all cores)", "0");
  cli.add_flag("seed", "master seed for the corpus", "12648430");  // 0xC0FFEE
  cli.add_flag("csv", "write the result table to this CSV file", "");
  cli.add_bool("paper-scale", "use the paper's full 3000/600 corpus and 50 repeats");
  cli.add_bool("quick", "tiny corpus for smoke runs");
}

BenchConfig config_from_cli(const util::CliParser& cli) {
  BenchConfig cfg;
  cfg.dataset.corpus.n_malware = static_cast<std::size_t>(cli.get_int("malware"));
  cfg.dataset.corpus.n_benign = static_cast<std::size_t>(cli.get_int("benign"));
  cfg.dataset.corpus.master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.dataset.trace_length = static_cast<std::size_t>(cli.get_int("trace-length"));
  cfg.train.train.epochs = cli.get_int("epochs");
  cfg.attack_samples = static_cast<std::size_t>(cli.get_int("attack-samples"));
  cfg.repeats = cli.get_int("repeats");
  cfg.rotations = cli.get_int("rotations");
  cfg.workers = static_cast<std::size_t>(cli.get_int("workers"));
  if (cli.get_bool("paper-scale")) {
    cfg.dataset.corpus.n_malware = 3000;
    cfg.dataset.corpus.n_benign = 600;
    cfg.repeats = 50;
    cfg.attack_samples = 400;
  }
  if (cli.get_bool("quick")) {
    cfg.dataset.corpus.n_malware = 300;
    cfg.dataset.corpus.n_benign = 60;
    cfg.dataset.trace_length = 16384;
    cfg.train.train.epochs = 80;
    cfg.repeats = 2;
    cfg.rotations = 1;
    cfg.attack_samples = 40;
  }
  if (const std::string path = cli.get("csv"); !path.empty()) cfg.csv_path = path;
  return cfg;
}

std::optional<BenchConfig> parse_bench_args(int argc, const char* const* argv,
                                            util::CliParser& cli) {
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return std::nullopt;
  if (cli.get_int("workers") < 0) {
    std::cerr << "error: --workers must be >= 0 (0 = all cores)\n";
    return std::nullopt;
  }
  return config_from_cli(cli);
}

void emit(const util::Table& table, const BenchConfig& config) {
  table.print(std::cout);
  if (config.csv_path) {
    table.save_csv(*config.csv_path);
    std::printf("(csv written to %s)\n", config.csv_path->c_str());
  }
}

trace::FeatureConfig victim_config(const trace::Dataset& ds) {
  return trace::FeatureConfig{trace::FeatureView::kInsnCategory, ds.config().periods.front()};
}

attack::EvasionConfig make_evasion_config(const trace::Dataset& ds,
                                          const trace::FoldSplit& folds) {
  attack::EvasionConfig cfg;
  cfg.mimicry_mix =
      attack::benign_category_mix(ds, folds.attacker_training, ds.config().periods.front());
  return cfg;
}

std::vector<std::size_t> malware_subset(const trace::Dataset& ds,
                                        const trace::FoldSplit& folds, std::size_t limit) {
  std::vector<std::size_t> out;
  for (std::size_t idx : folds.testing) {
    if (out.size() >= limit) break;
    if (ds.samples()[idx].malware()) out.push_back(idx);
  }
  return out;
}

}  // namespace shmd::bench
