#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "faultsim/fault_injector.hpp"
#include "nn/activation.hpp"
#include "nn/arithmetic.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::nn {
namespace {

// --------------------------------------------------------------- activations

TEST(Activation, SigmoidValuesAndRange) {
  EXPECT_DOUBLE_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
  EXPECT_NEAR(activate(Activation::kSigmoid, 10.0), 1.0, 1e-4);
  EXPECT_NEAR(activate(Activation::kSigmoid, -10.0), 0.0, 1e-4);
}

TEST(Activation, TanhAndReluAndLinear) {
  EXPECT_DOUBLE_EQ(activate(Activation::kTanh, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kLinear, -1.5), -1.5);
}

TEST(Activation, DerivativesMatchNumericalGradient) {
  for (auto a : {Activation::kSigmoid, Activation::kTanh, Activation::kLinear}) {
    for (double x : {-2.0, -0.5, 0.3, 1.7}) {
      const double eps = 1e-6;
      const double numeric = (activate(a, x + eps) - activate(a, x - eps)) / (2.0 * eps);
      const double analytic = activate_derivative(a, x, activate(a, x));
      EXPECT_NEAR(analytic, numeric, 1e-6) << activation_name(a) << " at " << x;
    }
  }
}

TEST(Activation, NameRoundTrip) {
  for (auto a : {Activation::kSigmoid, Activation::kTanh, Activation::kRelu,
                 Activation::kLinear}) {
    EXPECT_EQ(activation_from_name(activation_name(a)), a);
  }
  EXPECT_THROW((void)activation_from_name("swish"), std::invalid_argument);
}

// ------------------------------------------------------------------- network

TEST(Network, TopologyAccounting) {
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  EXPECT_EQ(net.input_dim(), 16u);
  EXPECT_EQ(net.output_dim(), 1u);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.mac_count(), 16u * 32 + 32 * 16 + 16);
  EXPECT_EQ(net.parameter_count(), net.mac_count() + 32 + 16 + 1);
  EXPECT_EQ(net.memory_bytes(), net.parameter_count() * 4);
}

TEST(Network, PaperScaleModelIs71KB) {
  // §VIII: "every HMD takes 71 KB of memory".
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  EXPECT_NEAR(static_cast<double>(net.memory_bytes()) / 1024.0, 71.0, 2.0);
}

TEST(Network, RejectsDegenerateTopologies) {
  const std::vector<std::size_t> single{4};
  EXPECT_THROW(Network(single, Activation::kSigmoid, Activation::kSigmoid, 1),
               std::invalid_argument);
  const std::vector<std::size_t> zero{4, 0, 1};
  EXPECT_THROW(Network(zero, Activation::kSigmoid, Activation::kSigmoid, 1),
               std::invalid_argument);
}

TEST(Network, ForwardDimensionMismatchThrows) {
  const std::vector<std::size_t> topo{3, 2, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW((void)net.forward(wrong), std::invalid_argument);
}

TEST(Network, DeterministicInitAndForward) {
  const std::vector<std::size_t> topo{4, 8, 1};
  Network a(topo, Activation::kSigmoid, Activation::kSigmoid, 99);
  Network b(topo, Activation::kSigmoid, Activation::kSigmoid, 99);
  const std::vector<double> x{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(a.forward(x)[0], b.forward(x)[0]);
}

TEST(Network, HandComputedForward) {
  // 2-1 net, linear output: y = w0*x0 + w1*x1 + b.
  const std::vector<std::size_t> topo{2, 1};
  Network net(topo, Activation::kLinear, Activation::kLinear, 1);
  net.layer(0).w(0, 0) = 2.0;
  net.layer(0).w(0, 1) = -1.0;
  net.layer(0).biases[0] = 0.5;
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(net.forward(x)[0], 2.0 * 3.0 - 1.0 * 4.0 + 0.5);
}

TEST(Network, SerializationRoundTrip) {
  const std::vector<std::size_t> topo{5, 7, 3, 1};
  Network net(topo, Activation::kTanh, Activation::kSigmoid, 123);
  std::stringstream ss;
  net.save(ss);
  const Network loaded = Network::load(ss);
  ASSERT_EQ(loaded.num_layers(), net.num_layers());
  const std::vector<double> x{0.3, -0.2, 0.8, 0.0, 0.55};
  EXPECT_NEAR(loaded.forward(x)[0], net.forward(x)[0], 1e-15);
}

TEST(Network, LoadRejectsGarbage) {
  std::stringstream ss("NOT-A-NET 9");
  EXPECT_THROW((void)Network::load(ss), std::runtime_error);
  std::stringstream truncated("SHMD-NET 1\n3\n4 2 1\nsigmoid\nsigmoid\n0.5 0.5");
  EXPECT_THROW((void)Network::load(truncated), std::runtime_error);
}

TEST(Network, LoadRejectsMalformedLayerDims) {
  // Regression: load() accepted zero-width layers (which the constructor
  // rejects) and unbounded dims, letting a malformed model file drive a
  // multi-GB resize or an in_dim * out_dim overflow.
  std::stringstream zero("SHMD-NET 1\n3\n16 0 1\nsigmoid\nsigmoid\n");
  EXPECT_THROW((void)Network::load(zero), std::runtime_error);
  std::stringstream huge("SHMD-NET 1\n3\n16 4294967295 1\nsigmoid\nsigmoid\n");
  EXPECT_THROW((void)Network::load(huge), std::runtime_error);
  std::stringstream overflow("SHMD-NET 1\n3\n4294967295 4294967295 1\nsigmoid\nsigmoid\n");
  EXPECT_THROW((void)Network::load(overflow), std::runtime_error);
  std::stringstream missing_dims("SHMD-NET 1\n3\n16");
  EXPECT_THROW((void)Network::load(missing_dims), std::runtime_error);
}

TEST(Network, ScratchForwardMatchesAllocatingForward) {
  const std::vector<std::size_t> topo{5, 7, 3, 1};
  const Network net(topo, Activation::kTanh, Activation::kSigmoid, 123);
  ExactContext ctx;
  ForwardScratch scratch;
  const std::vector<std::vector<double>> inputs{
      {0.3, -0.2, 0.8, 0.0, 0.55}, {1.0, 1.0, 1.0, 1.0, 1.0}, {-0.4, 0.1, 0.0, 0.9, -0.7}};
  for (const auto& x : inputs) {
    const std::vector<double> reference = net.forward(x, ctx);
    const std::span<const double> scratch_out = net.forward(x, ctx, scratch);
    ASSERT_EQ(scratch_out.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_DOUBLE_EQ(scratch_out[i], reference[i]) << i;
    }
  }
}

TEST(Network, ForwardBatchBitIdenticalToPerRowForwardExact) {
  const std::vector<std::size_t> topo{6, 9, 4, 2};
  const Network net(topo, Activation::kTanh, Activation::kSigmoid, 99);
  rng::Xoshiro256ss gen(5);
  // 7 rows: exercises both the 4-wide blocked kernel and the remainder loop.
  const std::size_t rows = 7;
  std::vector<double> tile(rows * net.input_dim());
  for (double& v : tile) v = gen.uniform(-1.0, 1.0);

  ExactContext ctx;
  ForwardScratch scratch;
  const std::span<const double> batched = net.forward_batch(tile, rows, ctx, scratch);
  ASSERT_EQ(batched.size(), rows * net.output_dim());
  const std::vector<double> batched_copy(batched.begin(), batched.end());
  EXPECT_EQ(ctx.mac_count(), rows * net.mac_count());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> row(tile.data() + r * net.input_dim(), net.input_dim());
    const std::vector<double> reference = net.forward(row, ctx);
    for (std::size_t o = 0; o < net.output_dim(); ++o) {
      EXPECT_EQ(batched_copy[r * net.output_dim() + o], reference[o]) << r << "," << o;
    }
  }
}

TEST(Network, ForwardBatchFaultyMatchesDotLoopFallbackOrder) {
  // The gemm contract: every override consumes the stream in the
  // documented fallback order — per layer, rows ascending, one dot() per
  // output, each dot accumulating lane-blocked per kernels.hpp — so
  // FaultyContext::gemm must be bit-identical to a hand-rolled
  // dot() loop in that order, in both the skip-ahead (er = 0.05) and
  // dense-Bernoulli (er = 0.5) regimes, and at er = 0 where the blocked
  // exact kernel takes over without touching the RNG.
  const std::vector<std::size_t> topo{6, 9, 2};
  const Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 3);
  rng::Xoshiro256ss gen(6);
  const std::size_t rows = 5;
  std::vector<double> tile(rows * net.input_dim());
  for (double& v : tile) v = gen.uniform(-1.0, 1.0);

  for (const double er : {0.0, 0.05, 0.5}) {
    const auto dist = faultsim::BitFaultDistribution::measured();
    faultsim::FaultInjector ref_inj(er, dist, 0xABCDEF);
    FaultyContext ref_ctx(ref_inj);
    std::vector<double> cur(tile.begin(), tile.end());
    std::vector<double> nxt;
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const Layer& layer = net.layer(l);
      nxt.resize(rows * layer.out_dim);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t o = 0; o < layer.out_dim; ++o) {
          const double acc = layer.biases[o] + ref_ctx.dot(&layer.weights[o * layer.in_dim],
                                                           &cur[r * layer.in_dim], layer.in_dim);
          nxt[r * layer.out_dim + o] = activate(layer.activation, acc);
        }
      }
      cur = nxt;
    }

    faultsim::FaultInjector inj(er, dist, 0xABCDEF);
    FaultyContext ctx(inj);
    ForwardScratch scratch;
    const std::span<const double> batched = net.forward_batch(tile, rows, ctx, scratch);
    ASSERT_EQ(batched.size(), cur.size()) << er;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      EXPECT_EQ(batched[i], cur[i]) << "er=" << er << " i=" << i;
    }
    // Span-kernel accounting matches too: same fault opportunities either way.
    EXPECT_EQ(inj.stats().operations, ref_inj.stats().operations) << er;
  }
}

TEST(Network, ForwardBatchRejectsMismatchedTile) {
  const std::vector<std::size_t> topo{4, 3, 1};
  const Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  ExactContext ctx;
  ForwardScratch scratch;
  const std::vector<double> tile(4 * 2 + 1);  // not a whole number of rows
  EXPECT_THROW((void)net.forward_batch(tile, 2, ctx, scratch), std::invalid_argument);
  EXPECT_TRUE(net.forward_batch(std::span<const double>{}, 0, ctx, scratch).empty());
}

// ------------------------------------------------------- arithmetic contexts

TEST(Arithmetic, ExactContextIsExactAndCounts) {
  ExactContext ctx;
  EXPECT_DOUBLE_EQ(ctx.mul(3.0, 4.0), 12.0);
  EXPECT_DOUBLE_EQ(ctx.mul(-0.5, 0.25), -0.125);
  EXPECT_EQ(ctx.mac_count(), 2u);
  ctx.reset_mac_count();
  EXPECT_EQ(ctx.mac_count(), 0u);
}

TEST(Arithmetic, FaultyContextPerturbsAtFullRate) {
  faultsim::FaultInjector inj(1.0, faultsim::BitFaultDistribution::measured());
  FaultyContext ctx(inj);
  int perturbed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (ctx.mul(0.5, 0.5) != 0.25) ++perturbed;
  }
  EXPECT_EQ(perturbed, 1000);
}

TEST(Arithmetic, FaultyContextTransparentAtZeroRate) {
  faultsim::FaultInjector inj(0.0, faultsim::BitFaultDistribution::measured());
  FaultyContext ctx(inj);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(ctx.mul(0.5, 0.5), 0.25);
}

TEST(Arithmetic, NoiseContextQueriesSourcePerMac) {
  rng::LgmPrng prng;
  NoiseContext ctx(prng, 0.05);
  for (int i = 0; i < 64; ++i) (void)ctx.mul(1.0, 1.0);
  EXPECT_EQ(prng.query_count(), 64u);
  EXPECT_EQ(ctx.mac_count(), 64u);
}

TEST(Arithmetic, NoiseContextPerturbationScalesWithSigma) {
  rng::LgmPrng prng;
  NoiseContext small(prng, 0.01);
  NoiseContext large(prng, 1.0);
  double small_dev = 0.0;
  double large_dev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    small_dev += std::abs(small.mul(1.0, 1.0) - 1.0);
    large_dev += std::abs(large.mul(1.0, 1.0) - 1.0);
  }
  EXPECT_GT(large_dev, 10.0 * small_dev);
}

TEST(Arithmetic, NetworkUnderFaultsDiffersAcrossRuns) {
  // The moving-target property at the network level: two inferences on the
  // same input under undervolting give different outputs.
  const std::vector<std::size_t> topo{8, 16, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 7);
  const std::vector<double> x{0.2, 0.4, 0.1, 0.9, 0.5, 0.3, 0.8, 0.6};
  faultsim::FaultInjector inj(0.3, faultsim::BitFaultDistribution::measured());
  FaultyContext ctx(inj);
  const double y1 = net.forward(x, ctx)[0];
  const double y2 = net.forward(x, ctx)[0];
  EXPECT_NE(y1, y2);
  // And both differ from the clean output with overwhelming probability.
  const double clean = net.forward(x)[0];
  EXPECT_TRUE(y1 != clean || y2 != clean);
}

// ------------------------------------------------------------------- trainer

std::vector<TrainSample> xor_data() {
  return {
      {{0.0, 0.0}, 0.0},
      {{0.0, 1.0}, 1.0},
      {{1.0, 0.0}, 1.0},
      {{1.0, 1.0}, 0.0},
  };
}

TEST(Trainer, RpropLearnsXor) {
  const std::vector<std::size_t> topo{2, 8, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 3);
  TrainConfig cfg;
  cfg.algorithm = TrainAlgorithm::kRprop;
  cfg.epochs = 400;
  cfg.patience = 0;
  cfg.l2 = 0.0;
  Trainer trainer(cfg);
  const auto data = xor_data();
  trainer.fit(net, data);
  for (const TrainSample& s : data) {
    EXPECT_NEAR(net.forward(s.x)[0], s.y, 0.2) << s.x[0] << "," << s.x[1];
  }
}

TEST(Trainer, SgdLearnsXor) {
  const std::vector<std::size_t> topo{2, 8, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 5);
  TrainConfig cfg;
  cfg.algorithm = TrainAlgorithm::kSgd;
  cfg.epochs = 3000;
  cfg.learning_rate = 0.5;
  cfg.batch_size = 4;
  cfg.patience = 0;
  cfg.l2 = 0.0;
  Trainer trainer(cfg);
  const auto data = xor_data();
  trainer.fit(net, data);
  for (const TrainSample& s : data) {
    EXPECT_NEAR(net.forward(s.x)[0], s.y, 0.25);
  }
}

TEST(Trainer, LossDecreasesDuringTraining) {
  const std::vector<std::size_t> topo{2, 6, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 11);
  const auto data = xor_data();
  const double initial = Trainer::loss(net, data);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.patience = 0;
  Trainer trainer(cfg);
  const TrainReport report = trainer.fit(net, data);
  EXPECT_LT(report.final_train_loss, initial);
  EXPECT_EQ(report.epochs_run, 200);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  const std::vector<std::size_t> topo{2, 4, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 13);
  const auto data = xor_data();
  TrainConfig cfg;
  cfg.epochs = 5000;
  cfg.patience = 10;
  Trainer trainer(cfg);
  const TrainReport report = trainer.fit(net, data, data);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LT(report.epochs_run, 5000);
}

TEST(Trainer, RejectsBadInputs) {
  const std::vector<std::size_t> topo{2, 2, 1};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  Trainer trainer;
  EXPECT_THROW(trainer.fit(net, {}), std::invalid_argument);
  const std::vector<TrainSample> ragged{{{1.0, 2.0, 3.0}, 0.0}};
  EXPECT_THROW(trainer.fit(net, ragged), std::invalid_argument);
  TrainConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(Trainer{bad}, std::invalid_argument);
}

TEST(Trainer, ClassBalancingReducesMajorityBias) {
  // 10:1 imbalanced blobs: unweighted training over-favors the majority
  // class; balancing recovers minority (negative-class) accuracy.
  rng::Xoshiro256ss gen(31);
  std::vector<TrainSample> data;
  for (int i = 0; i < 550; ++i) {
    const bool positive = i % 11 != 0;
    const double c = positive ? 0.62 : 0.38;
    data.push_back(TrainSample{{c + 0.1 * gen.gaussian(), c + 0.1 * gen.gaussian()},
                               positive ? 1.0 : 0.0});
  }
  const auto negative_accuracy = [&](bool balance) {
    const std::vector<std::size_t> topo{2, 8, 1};
    Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 9);
    TrainConfig cfg;
    cfg.epochs = 120;
    cfg.patience = 0;
    cfg.balance_classes = balance;
    Trainer trainer(cfg);
    trainer.fit(net, data);
    std::size_t correct = 0;
    std::size_t negatives = 0;
    for (const TrainSample& s : data) {
      if (s.y > 0.5) continue;
      ++negatives;
      correct += net.forward(s.x)[0] < 0.5;
    }
    return static_cast<double>(correct) / static_cast<double>(negatives);
  };
  EXPECT_GE(negative_accuracy(true), negative_accuracy(false));
  EXPECT_GT(negative_accuracy(true), 0.75);
}

TEST(Trainer, MultiOutputHeadRejected) {
  const std::vector<std::size_t> topo{2, 3, 2};
  Network net(topo, Activation::kSigmoid, Activation::kSigmoid, 1);
  Trainer trainer;
  const auto data = xor_data();
  EXPECT_THROW(trainer.fit(net, data), std::invalid_argument);
}

}  // namespace
}  // namespace shmd::nn
