#include <gtest/gtest.h>

#include <sstream>

#include "eval/dataset_io.hpp"
#include "eval/roc.hpp"
#include "hmd/builders.hpp"
#include "hmd/deployment.hpp"
#include "nn/fann_io.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/test_corpus.hpp"

namespace shmd {
namespace {

// --------------------------------------------------------------------- ROC

TEST(Roc, PerfectSeparationGivesAucOne) {
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 20; ++i) samples.push_back({0.9 + 0.001 * i, true});
  for (int i = 0; i < 20; ++i) samples.push_back({0.1 + 0.001 * i, false});
  EXPECT_DOUBLE_EQ(eval::auc(samples), 1.0);
}

TEST(Roc, ReversedSeparationGivesAucZero) {
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 10; ++i) samples.push_back({0.1, true});
  for (int i = 0; i < 10; ++i) samples.push_back({0.9, false});
  EXPECT_NEAR(eval::auc(samples), 0.0, 1e-12);
}

TEST(Roc, RandomScoresGiveChanceAuc) {
  rng::Xoshiro256ss gen(7);
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back({gen.uniform01(), i % 2 == 0});
  EXPECT_NEAR(eval::auc(samples), 0.5, 0.03);
}

TEST(Roc, AucEqualsWilcoxonStatistic) {
  // AUC must equal P(score_pos > score_neg) + 0.5 P(equal): check against
  // a brute-force pairwise count on a small mixed sample.
  rng::Xoshiro256ss gen(11);
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 60; ++i) {
    const bool positive = gen.bernoulli(0.4);
    const double base = positive ? 0.6 : 0.4;
    samples.push_back({base + 0.3 * gen.gaussian(), positive});
  }
  double pairs = 0.0;
  double wins = 0.0;
  for (const auto& p : samples) {
    if (!p.positive) continue;
    for (const auto& n : samples) {
      if (n.positive) continue;
      pairs += 1.0;
      if (p.score > n.score) wins += 1.0;
      else if (p.score == n.score) wins += 0.5;
    }
  }
  EXPECT_NEAR(eval::auc(samples), wins / pairs, 1e-9);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  rng::Xoshiro256ss gen(13);
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 200; ++i) samples.push_back({gen.uniform01(), gen.bernoulli(0.5)});
  const auto curve = eval::roc_curve(samples);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 0.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].tpr, curve[i - 1].tpr + 1e-12);
    EXPECT_LE(curve[i].fpr, curve[i - 1].fpr + 1e-12);
  }
}

TEST(Roc, SingleClassRejected) {
  std::vector<eval::ScoredSample> all_positive{{0.5, true}, {0.6, true}};
  EXPECT_THROW((void)eval::roc_curve(all_positive), std::invalid_argument);
}

TEST(Roc, YoudenPicksTheSeparatingThreshold) {
  std::vector<eval::ScoredSample> samples;
  for (int i = 0; i < 50; ++i) samples.push_back({0.8, true});
  for (int i = 0; i < 50; ++i) samples.push_back({0.2, false});
  const auto curve = eval::roc_curve(samples);
  const auto best = eval::best_youden(curve);
  EXPECT_DOUBLE_EQ(best.tpr, 1.0);
  EXPECT_DOUBLE_EQ(best.fpr, 0.0);
}

TEST(Roc, StochasticNoiseCostsRankingQualityGracefully) {
  // The undervolted detector's AUC at er=0.1 must stay close to the
  // baseline's; at er=1.0 it must sit clearly lower but above chance.
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 60;
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, opt);
  hmd::StochasticHmd stochastic(baseline.network(), fc, 0.0);

  const auto auc_at = [&](double er) {
    stochastic.set_error_rate(er);
    std::vector<eval::ScoredSample> scored;
    for (std::size_t idx : folds.testing) {
      const auto& s = ds.samples()[idx];
      scored.push_back({stochastic.program_score(s.features), s.malware()});
    }
    return eval::auc(scored);
  };

  const double clean = auc_at(0.0);
  const double mild = auc_at(0.1);
  const double extreme = auc_at(1.0);
  EXPECT_GT(clean, 0.9);
  EXPECT_GT(mild, clean - 0.06);
  EXPECT_LT(extreme, clean);
  EXPECT_GT(extreme, 0.5);  // above chance even at er = 1
}

// ------------------------------------------------------- parser robustness

/// Mutating serialized artifacts must produce exceptions, never crashes or
/// silently-wrong objects that violate basic invariants.
template <typename LoadFn>
void fuzz_text_format(const std::string& good, LoadFn&& load, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  int parsed_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const int op = static_cast<int>(gen.below(3));
    if (op == 0 && mutated.size() > 2) {
      // Truncate at a random point.
      mutated.resize(gen.below(mutated.size()));
    } else if (op == 1) {
      // Flip a random byte to a random printable character.
      mutated[gen.below(mutated.size())] =
          static_cast<char>('!' + gen.below(93));
    } else {
      // Duplicate a random chunk in place.
      const std::size_t pos = gen.below(mutated.size());
      const std::size_t len = std::min<std::size_t>(16, mutated.size() - pos);
      mutated.insert(pos, mutated.substr(pos, len));
    }
    std::istringstream is(mutated);
    try {
      load(is);
      ++parsed_ok;  // mutation happened to stay valid — acceptable
    } catch (const std::exception&) {
      // expected for most mutations
    }
  }
  // A majority of random mutations must be rejected (sanity that the
  // parser actually validates rather than accepting garbage).
  EXPECT_LT(parsed_ok, 200);
}

TEST(ParserFuzz, NetworkNativeFormat) {
  const std::vector<std::size_t> topo{4, 5, 1};
  nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 3);
  std::stringstream ss;
  net.save(ss);
  fuzz_text_format(ss.str(), [](std::istream& is) { (void)nn::Network::load(is); }, 101);
}

TEST(ParserFuzz, FannFormat) {
  const std::vector<std::size_t> topo{4, 5, 1};
  nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 3);
  std::stringstream ss;
  nn::save_fann(net, ss);
  fuzz_text_format(ss.str(), [](std::istream& is) { (void)nn::load_fann(is); }, 202);
}

TEST(ParserFuzz, DeploymentBundle) {
  const std::vector<std::size_t> topo{16, 4, 1};
  nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 3);
  hmd::DeploymentBundle bundle{net,
                               {trace::FeatureView::kInsnCategory, 2048},
                               0.1,
                               {{40.0, -120.0}, {60.0, -110.0}}};
  std::stringstream ss;
  hmd::save_deployment(bundle, ss);
  fuzz_text_format(ss.str(), [](std::istream& is) { (void)hmd::load_deployment(is); }, 303);
}

TEST(ParserFuzz, WindowCsv) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  const std::vector<std::size_t> indices{0, 1};
  std::stringstream ss;
  eval::export_windows_csv(ds, indices, fc, ss);
  fuzz_text_format(ss.str(), [](std::istream& is) { (void)eval::import_windows_csv(is); },
                   404);
}

}  // namespace
}  // namespace shmd
