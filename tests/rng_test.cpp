#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "rng/lgm_prng.hpp"
#include "rng/splitmix64.hpp"
#include "rng/trng_sim.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::rng {
namespace {

TEST(SplitMix64, KnownReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm(), 6457827717110365317ULL);
  EXPECT_EQ(sm(), 3203168211198807973ULL);
  EXPECT_EQ(sm(), 9817491932198370423ULL);
}

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, Uniform01InRangeAndWellSpread) {
  Xoshiro256ss gen(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = gen.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256ss gen(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = gen.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Xoshiro, BelowIsUnbiasedOverSmallRange) {
  Xoshiro256ss gen(11);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
  }
}

TEST(Xoshiro, BelowZeroAndOne) {
  Xoshiro256ss gen(3);
  EXPECT_EQ(gen.below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.below(1), 0u);
}

TEST(Xoshiro, GaussianMomentsAreStandard) {
  Xoshiro256ss gen(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = gen.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256ss gen(17);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
  }
}

TEST(Xoshiro, BernoulliFrequencyTracksP) {
  Xoshiro256ss gen(19);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += gen.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(first.contains(b()));
}

TEST(LgmPrng, MinimalStandardRecurrence) {
  // x_{n+1} = 16807 x_n mod (2^31 - 1), x_0 = 1.
  LgmPrng prng(1);
  EXPECT_EQ(prng.next_u31(), 16807u);
  EXPECT_EQ(prng.next_u31(), 282475249u);
  EXPECT_EQ(prng.next_u31(), 1622650073u);
}

TEST(LgmPrng, TenThousandthValueMatchesParkMiller) {
  // Park & Miller's classic acceptance check: from x_0 = 1,
  // x_10000 = 1043618065.
  LgmPrng prng(1);
  std::uint32_t x = 0;
  for (int i = 0; i < 10000; ++i) x = prng.next_u31();
  EXPECT_EQ(x, 1043618065u);
}

TEST(LgmPrng, ZeroSeedIsRemapped) {
  LgmPrng prng(0);
  EXPECT_NE(prng.next_u31(), 0u);
}

TEST(LgmPrng, CountsQueries) {
  LgmPrng prng(5);
  EXPECT_EQ(prng.query_count(), 0u);
  (void)prng.next_u64();
  (void)prng.next_u64();
  EXPECT_EQ(prng.query_count(), 2u);
  prng.reset_query_count();
  EXPECT_EQ(prng.query_count(), 0u);
}

TEST(RandomSourceCosts, TrngIsOrdersOfMagnitudePricier) {
  LgmPrng prng;
  TrngSim trng;
  EXPECT_GT(trng.query_cost().latency_cycles, 10.0 * prng.query_cost().latency_cycles);
  EXPECT_GT(trng.query_cost().energy_nj, 10.0 * prng.query_cost().energy_nj);
}

TEST(TrngSim, RefillStallAccumulates) {
  TrngConfig cfg;
  cfg.pool_words = 4;
  cfg.refill_cycles = 100.0;
  TrngSim trng(cfg);
  for (int i = 0; i < 8; ++i) (void)trng.next_u64();
  EXPECT_DOUBLE_EQ(trng.refill_stall_cycles(), 200.0);
}

TEST(RandomSource, GaussianUsesSingleQuery) {
  LgmPrng prng;
  (void)prng.gaussian();
  EXPECT_EQ(prng.query_count(), 1u);
}

TEST(RandomSource, GaussianMoments) {
  TrngSim trng;
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = trng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.04);
}

}  // namespace
}  // namespace shmd::rng
