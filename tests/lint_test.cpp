// Fixture tests for shmd-lint (tools/shmd-lint): each rule gets
// known-violating and known-clean snippets, asserting exact rule-id/line
// diagnostics, plus the suppression and malformed-annotation (R0) paths.
//
// The acceptance-criterion fixture mirrors src/nn/network.cpp's forward
// path: introducing a raw floating-point multiply there must produce an R1
// diagnostic, and routing the same product through ArithmeticContext::mul
// must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "shmd-lint/linter.hpp"
#include "shmd-lint/rules.hpp"

namespace shmd::lint {
namespace {

std::vector<Diagnostic> lint(const std::string& path, const std::string& content) {
  return Linter{}.lint_source(path, content);
}

/// Lint a set of fixtures as one project (per-file + cross-file rules).
std::vector<Diagnostic> lint_project(std::vector<RawSource> sources, std::size_t jobs = 1) {
  return Linter{}.lint_project(std::move(sources), jobs);
}

/// Lines (1-based) on which a diagnostic with `rule_id` fires.
std::vector<int> lines_of(const std::vector<Diagnostic>& diags, const std::string& rule_id) {
  std::vector<int> lines;
  for (const auto& d : diags) {
    if (d.rule_id == rule_id) lines.push_back(d.line);
  }
  return lines;
}

// ------------------------------------------------------- R1 fault coverage

// The acceptance criterion: a raw multiply in a forward path shaped like
// src/nn/network.cpp must be flagged...
TEST(LintR1, RawMultiplyInForwardPathIsFlagged) {
  const std::string fixture =
      "#include \"nn/network.hpp\"\n"                      // line 1
      "namespace shmd::nn {\n"                             // line 2
      "std::vector<double> Network::forward(\n"            // line 3
      "    std::span<const double> x, ArithmeticContext& ctx) const {\n"
      "  double acc = bias;\n"                             // line 5
      "  for (std::size_t i = 0; i < x.size(); ++i) {\n"   // line 6
      "    acc += weights[i] * x[i];\n"                    // line 7: bypasses the defense
      "  }\n"
      "  return {acc};\n"
      "}\n"
      "}  // namespace shmd::nn\n";
  const auto diags = lint("src/nn/network.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{7}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "R1");
  EXPECT_EQ(diags[0].file, "src/nn/network.cpp");
  EXPECT_FALSE(diags[0].hint.empty()) << "R1 must carry a fix hint";
}

// ...and the shipped shape — every product through the context — is clean.
TEST(LintR1, ContextRoutedProductIsClean) {
  const std::string fixture =
      "#include \"nn/network.hpp\"\n"
      "namespace shmd::nn {\n"
      "std::vector<double> Network::forward(\n"
      "    std::span<const double> x, ArithmeticContext& ctx) const {\n"
      "  double acc = bias;\n"
      "  for (std::size_t i = 0; i < x.size(); ++i) {\n"
      "    acc += ctx.mul(weights[i], x[i]);\n"
      "  }\n"
      "  return {acc};\n"
      "}\n"
      "}  // namespace shmd::nn\n";
  EXPECT_TRUE(lint("src/nn/network.cpp", fixture).empty());
}

TEST(LintR1, IntegerIndexArithmeticIsNotFlagged) {
  const std::string fixture =
      "void f() {\n"
      "  layer.weights.resize(layer.in_dim * layer.out_dim);\n"  // integer shape math
      "  const double w = weights[o * in_dim + i];\n"            // subscript index math
      "  double* p = &w;\n"                                      // pointer declarator
      "  const double y = 3 * w;\n"                              // integer literal operand
      "}\n";
  EXPECT_TRUE(lint("src/nn/fixture.cpp", fixture).empty());
}

TEST(LintR1, TrailingAnnotationSuppressesItsOwnLine) {
  const std::string fixture =
      "void f(double a, double b) {\n"
      "  const double y = a * b;  // shmd-lint: exact-ok(training-time only)\n"
      "  const double z = a * b;\n"  // line 3: not covered by the line-2 annotation
      "}\n";
  const auto diags = lint("src/hmd/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{3}));
}

TEST(LintR1, StandaloneAnnotationCoversTheFollowingStatement) {
  const std::string fixture =
      "void f(double a, double b, double c) {\n"
      "  // shmd-lint: exact-ok(wrapped training statement)\n"
      "  const double y = a * b +\n"  // statement wraps: both product lines are
      "                   a * c;\n"   // covered through the terminating ';'
      "  const double z = a * b;\n"   // line 5: outside the annotation's span
      "}\n";
  const auto diags = lint("src/nn/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{5}));
}

TEST(LintR1, DotOverrideInArithmeticContextSubclassIsSanctioned) {
  // A span kernel — raw products inside a dot() override of an
  // ArithmeticContext subclass — IS the fault-model implementation; the
  // override contract binds it to per-product semantics, so R1 stays quiet
  // even outside the arithmetic.hpp path exemption.
  const std::string fixture =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class FusedContext final : public ArithmeticContext {\n"
      " public:\n"
      "  double mul(double a, double b) override { return a * b; }\n"  // line 5: NOT a dot body
      "  double dot(const double* w, const double* x, std::size_t n) override {\n"
      "    double acc = 0.0;\n"
      "    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];\n"  // sanctioned
      "    return acc;\n"
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  const auto diags = lint("src/nn/fused_context.hpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{5}))
      << "only the dot() override body is sanctioned, not sibling members";
}

TEST(LintR1, DotOutsideArithmeticContextSubclassIsStillFlagged) {
  // Same kernel body, but the class derives from nothing relevant — the
  // structural sanction must not fire.
  const std::string unrelated_class =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class Blas {\n"
      " public:\n"
      "  double dot(const double* w, const double* x, std::size_t n) {\n"
      "    double acc = 0.0;\n"
      "    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];\n"  // line 7
      "    return acc;\n"
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  EXPECT_EQ(lines_of(lint("src/nn/blas.hpp", unrelated_class), "R1"), (std::vector<int>{7}));

  // And a dot() member of an ArithmeticContext subclass that is NOT an
  // override (no contract binding it to the fault model) stays flagged.
  const std::string non_override =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class Helper final : public ArithmeticContext {\n"
      " public:\n"
      "  double dot(const double* w, const double* x, std::size_t n) {\n"
      "    double acc = 0.0;\n"
      "    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];\n"  // line 7
      "    return acc;\n"
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  EXPECT_EQ(lines_of(lint("src/nn/helper.hpp", non_override), "R1"), (std::vector<int>{7}));
}

TEST(LintR1, GemmOverrideInArithmeticContextSubclassIsSanctioned) {
  // The batched span kernel: a gemm() override of an ArithmeticContext
  // subclass is bound by the same per-product contract as dot(), so its
  // body is sanctioned the same way.
  const std::string fixture =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class TiledContext final : public ArithmeticContext {\n"
      " public:\n"
      "  double mul(double a, double b) override { return a * b; }\n"  // line 5: NOT sanctioned
      "  void gemm(const double* w, const double* bias, const double* x, std::size_t rows,\n"
      "            std::size_t in_dim, std::size_t out_dim, double* y) override {\n"
      "    for (std::size_t r = 0; r < rows; ++r)\n"
      "      for (std::size_t o = 0; o < out_dim; ++o) {\n"
      "        double acc = bias[o];\n"
      "        for (std::size_t i = 0; i < in_dim; ++i) acc += w[o * in_dim + i] * x[i];\n"
      "        y[r * out_dim + o] = acc;\n"
      "      }\n"
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  const auto diags = lint("src/nn/tiled_context.hpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{5}))
      << "only the gemm() override body is sanctioned, not sibling members";
}

TEST(LintR1, GemmWithoutOverrideOrContextIsStillFlagged) {
  // gemm() in an unrelated class, or a non-override gemm member of a
  // context subclass, gets no structural sanction.
  const std::string unrelated_class =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class Blas {\n"
      " public:\n"
      "  void gemm(const double* w, const double* x, std::size_t n, double* y) {\n"
      "    y[0] = w[0] * x[0];\n"  // line 6
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  EXPECT_EQ(lines_of(lint("src/nn/blas.hpp", unrelated_class), "R1"), (std::vector<int>{6}));

  const std::string non_override =
      "#pragma once\n"
      "namespace shmd::nn {\n"
      "class Helper final : public ArithmeticContext {\n"
      " public:\n"
      "  void gemm(const double* w, const double* x, std::size_t n, double* y) {\n"
      "    y[0] = w[0] * x[0];\n"  // line 6
      "  }\n"
      "};\n"
      "}  // namespace shmd::nn\n";
  EXPECT_EQ(lines_of(lint("src/nn/helper.hpp", non_override), "R1"), (std::vector<int>{6}));
}

TEST(LintR1, SpanKernelTagSuppressesLikeExactOk) {
  const std::string fixture =
      "void accumulate(double* acc, const double* w, const double* x, std::size_t n) {\n"
      "  for (std::size_t i = 0; i < n; ++i)\n"
      "    acc[0] += w[i] * x[i];  // shmd-lint: span-kernel(free function span helper)\n"
      "  acc[1] = w[0] * x[0];\n"  // line 4: outside the annotation
      "}\n";
  const auto diags = lint("src/nn/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{4}));
}

TEST(LintR1, KernelNamespaceInKernelsTreeIsSanctioned) {
  // The lane-blocked kernel tables (src/nn/kernels/) are the span
  // contract's implementation: bodies inside their `kernels` namespace
  // are structurally sanctioned, while a multiply in the same file but
  // OUTSIDE the namespace stays in scope.
  const std::string fixture =
      "#include \"nn/kernels/kernels.hpp\"\n"
      "static double leak(double a, double b) { return a * b; }\n"  // line 2: outside
      "namespace shmd::nn::kernels {\n"
      "namespace {\n"
      "double dot_portable(const double* w, const double* x, std::size_t n) {\n"
      "  double acc = 0.0;\n"
      "  for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];\n"  // sanctioned
      "  return acc;\n"
      "}\n"
      "}  // namespace\n"
      "}  // namespace shmd::nn::kernels\n";
  EXPECT_EQ(lines_of(lint("src/nn/kernels/fixture.cpp", fixture), "R1"), (std::vector<int>{2}));
}

TEST(LintR1, KernelNamespaceOutsideKernelsTreeEarnsNoExemption) {
  // The structural sanction is scoped to src/nn/kernels/ — naming a
  // namespace `kernels` elsewhere must not launder raw products.
  const std::string fixture =
      "namespace shmd::hmd::kernels {\n"
      "double dot(const double* w, const double* x, std::size_t n) {\n"
      "  double acc = 0.0;\n"
      "  for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];\n"  // line 4: flagged
      "  return acc;\n"
      "}\n"
      "}  // namespace shmd::hmd::kernels\n";
  EXPECT_EQ(lines_of(lint("src/hmd/fixture.cpp", fixture), "R1"), (std::vector<int>{4}));
}

TEST(LintR1, OnlyFaultInjectableDirectoriesAreInScope) {
  const std::string fixture = "double f(double a, double b) { return a * b; }\n";
  EXPECT_TRUE(lint("src/attack/fixture.cpp", fixture).empty());
  EXPECT_TRUE(lint("src/eval/fixture.cpp", fixture).empty());
  EXPECT_TRUE(lint("src/nn/arithmetic.hpp", "#pragma once\n" + fixture).empty())
      << "ArithmeticContext implementations are the one exempt file";
  EXPECT_EQ(lines_of(lint("src/nn/fixture.cpp", fixture), "R1"), (std::vector<int>{1}));
  EXPECT_EQ(lines_of(lint("src/hmd/fixture.cpp", fixture), "R1"), (std::vector<int>{1}));
}

// --------------------------------------------------------- R2 rng discipline

TEST(LintR2, RawRandIsFlaggedOutsideEntropy) {
  const std::string fixture =
      "#include <cstdlib>\n"
      "int f() {\n"
      "  return std::rand();\n"  // line 3
      "}\n";
  const auto diags = lint("src/util/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R2"), (std::vector<int>{3}));
}

TEST(LintR2, EntropyImplementationIsExempt) {
  const std::string fixture =
      "#include <random>\n"
      "unsigned f() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(lint("src/rng/entropy.cpp", "#include \"rng/entropy.hpp\"\n\n" + fixture).empty());
  EXPECT_EQ(lines_of(lint("src/rng/other.cpp", fixture), "R2"), (std::vector<int>{2}));
}

TEST(LintR2, SuppressionTagClearsTheDiagnostic) {
  const std::string fixture =
      "int f() {\n"
      "  return std::rand();  // shmd-lint: rng-ok(seeding comparison harness)\n"
      "}\n";
  EXPECT_TRUE(lint("src/util/fixture.cpp", fixture).empty());
}

// --------------------------------------------------------- R3 stream hygiene

TEST(LintR3, CoutAndPrintfAreFlaggedInLibraryCode) {
  const std::string fixture =
      "#include <cstdio>\n"
      "#include <iostream>\n"
      "void f() {\n"
      "  std::cout << 1;\n"            // line 4
      "  std::printf(\"x\");\n"        // line 5
      "  std::fprintf(stderr, \"\");"  // stderr is fine for library code
      "\n}\n";
  const auto diags = lint("src/volt/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R3"), (std::vector<int>{4, 5}));
}

TEST(LintR3, FprintfToStdoutIsFlagged) {
  const std::string fixture =
      "#include <cstdio>\n"
      "void f() { std::fprintf(stdout, \"x\"); }\n";
  EXPECT_EQ(lines_of(lint("src/volt/fixture.cpp", fixture), "R3"), (std::vector<int>{2}));
}

TEST(LintR3, SuppressionTagClearsTheDiagnostic) {
  const std::string fixture =
      "#include <cstdio>\n"
      "void print_help() {\n"
      "  // shmd-lint: stream-ok(usage text belongs on stdout)\n"
      "  std::printf(\"usage\\n\");\n"
      "}\n";
  EXPECT_TRUE(lint("src/util/fixture.cpp", fixture).empty());
}

// --------------------------------------------------------- R4 header hygiene

TEST(LintR4, MissingPragmaOnceIsFlaggedAtLineOne) {
  const std::string fixture = "#include <vector>\nint x;\n";
  const auto diags = lint("src/util/fixture.hpp", fixture);
  EXPECT_EQ(lines_of(diags, "R4"), (std::vector<int>{1}));
  EXPECT_TRUE(lint("src/util/fixture.cpp", fixture).empty())
      << "translation units do not need #pragma once";
}

TEST(LintR4, UnsortedIncludeBlockIsFlagged) {
  const std::string fixture =
      "#pragma once\n"
      "#include <optional>\n"
      "#include <map>\n"  // line 3: out of order within its block
      "#include <vector>\n";
  const auto diags = lint("src/util/fixture.hpp", fixture);
  EXPECT_EQ(lines_of(diags, "R4"), (std::vector<int>{3}));
}

TEST(LintR4, SeparateIncludeBlocksSortIndependently) {
  const std::string fixture =
      "#pragma once\n"
      "#include <map>\n"
      "#include <vector>\n"
      "\n"
      "#include \"nn/network.hpp\"\n"  // new block: restarting the alphabet is fine
      "#include \"util/cli.hpp\"\n";
  EXPECT_TRUE(lint("src/util/fixture.hpp", fixture).empty());
}

TEST(LintR4, DuplicateIncludeIsFlagged) {
  const std::string fixture =
      "#pragma once\n"
      "#include <vector>\n"
      "#include <vector>\n";  // line 3
  EXPECT_EQ(lines_of(lint("src/util/fixture.hpp", fixture), "R4"), (std::vector<int>{3}));
}

TEST(LintR4, AppliesToBenchAndExamplesButDefenseRulesDoNot) {
  // R4 hygiene covers the bench/ and examples/ trees too...
  const std::string unsorted =
      "#include <vector>\n"
      "#include <map>\n";  // line 2: out of order
  EXPECT_EQ(lines_of(lint("bench/fixture.cpp", unsorted), "R4"), (std::vector<int>{2}));
  EXPECT_EQ(lines_of(lint("examples/fixture.cpp", unsorted), "R4"), (std::vector<int>{2}));
  // ...while the defense rules (R1-R3) stay scoped to src/: harness code
  // legitimately multiplies, prints to stdout, and so on.
  const std::string harness =
      "#include <cstdio>\n"
      "double f(double a, double b) { std::printf(\"x\"); return a * b; }\n";
  EXPECT_TRUE(lint("bench/fixture.cpp", harness).empty());
  EXPECT_TRUE(lint("examples/fixture.cpp", harness).empty());
  // Outside all covered trees nothing fires at all.
  EXPECT_TRUE(lint("tests/fixture.cpp", unsorted).empty());
}

// ------------------------------------------------------ R5 socket discipline

TEST(LintR5, SocketCallOutsideNetIsFlagged) {
  const std::string fixture =
      "#include <sys/socket.h>\n"
      "int f() {\n"
      "  return socket(2, 1, 0);\n"  // line 3
      "}\n";
  EXPECT_EQ(lines_of(lint("src/serve/fixture.cpp", fixture), "R5"), (std::vector<int>{3}));
  EXPECT_TRUE(lint("src/net/fixture.cpp", fixture).empty())
      << "src/net/ is the sanctioned transport layer";
}

TEST(LintR5, NonCallUsesAndCommentsAreNotFlagged) {
  const std::string fixture =
      "// discussing connect() or epoll_wait() in a comment is fine\n"
      "void f(Widget& w) {\n"
      "  w.accept = true;\n"          // field access, not a call
      "  const char* s = \"listen\";\n"  // string literal
      "  (void)s;\n"
      "}\n";
  EXPECT_TRUE(lint("src/serve/fixture.cpp", fixture).empty());
}

TEST(LintR5, SuppressionTagClearsTheDiagnostic) {
  const std::string fixture =
      "int f(int fd) {\n"
      "  return shutdown(fd, 2);  // shmd-lint: socket-ok(harness teardown path)\n"
      "}\n";
  EXPECT_TRUE(lint("src/serve/fixture.cpp", fixture).empty());
}

TEST(LintR5, HarnessTreesAreOutOfScope) {
  // Benches and examples legitimately drive NetClient::connect() etc.
  const std::string fixture = "void f(NetClient& c, Endpoint e) { c.connect(e); }\n";
  EXPECT_TRUE(lint("bench/fixture.cpp", fixture).empty());
  EXPECT_TRUE(lint("examples/fixture.cpp", fixture).empty());
  EXPECT_EQ(lines_of(lint("src/runtime/fixture.cpp", fixture), "R5"), (std::vector<int>{1}));
}

// ------------------------------------------------------- R6 lock discipline

TEST(LintR6, RawStdSyncPrimitivesAreFlagged) {
  const std::string fixture =
      "#pragma once\n"
      "#include <mutex>\n"
      "class Foo {\n"
      "  void f() { const std::lock_guard lock(mu_); }\n"  // line 4
      "  std::mutex mu_;\n"                                // line 5
      "  std::condition_variable cv_;\n"                   // line 6
      "};\n";
  EXPECT_EQ(lines_of(lint("src/serve/fixture.hpp", fixture), "R6"), (std::vector<int>{4, 5, 6}));
  EXPECT_TRUE(lines_of(lint("src/volt/fixture.hpp", fixture), "R6").empty())
      << "R6 scopes to the concurrent layers (serve/net/runtime) only";
}

TEST(LintR6, UnguardedMutexIsFlaggedAndAnnotatedOneIsClean) {
  const std::string unguarded =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n"
      "class Foo {\n"
      "  util::Mutex mu_;\n"  // line 4: guards nothing annotated
      "  int count_ = 0;\n"
      "};\n";
  EXPECT_EQ(lines_of(lint("src/runtime/fixture.hpp", unguarded), "R6"), (std::vector<int>{4}));

  const std::string guarded =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n"
      "#include \"util/thread_annotations.hpp\"\n"
      "class Foo {\n"
      "  util::Mutex mu_;\n"
      "  int count_ SHMD_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(lint("src/runtime/fixture.hpp", guarded).empty());
}

TEST(LintR6, CondVarMustDeclareItsMutex) {
  const std::string unpaired =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n"
      "class Foo {\n"
      "  util::Mutex mu_;\n"
      "  util::CondVar cv_;\n"  // line 5: which mutex does it wait on?
      "  int n_ SHMD_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_EQ(lines_of(lint("src/serve/fixture.hpp", unpaired), "R6"), (std::vector<int>{5}));

  const std::string paired =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n"
      "#include \"util/thread_annotations.hpp\"\n"
      "class Foo {\n"
      "  util::Mutex mu_;\n"
      "  util::CondVar cv_ SHMD_CV_WAITS_ON(mu_);\n"
      "  int n_ SHMD_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(lint("src/serve/fixture.hpp", paired).empty());
}

TEST(LintR6, LockFreeTagSuppresses) {
  const std::string fixture =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n"
      "class Foo {\n"
      "  util::Mutex mu_;  // shmd-lint: lock-free(serializes an external resource, no state)\n"
      "};\n";
  EXPECT_TRUE(lint("src/net/fixture.hpp", fixture).empty());
}

// ---------------------------------------------- R7 atomic ordering (project)

TEST(LintR7, CrossFileAtomicMemberUseIsChecked) {
  // The member is declared in the header; the defaulted-order call sits in
  // the .cpp — only the whole-project registry can connect the two.
  const std::string header =
      "#pragma once\n"
      "#include <atomic>\n"
      "class Stats {\n"
      " public:\n"
      "  std::uint64_t read() const;\n"
      "  std::atomic<std::uint64_t> hits_{0};\n"
      "};\n";
  const std::string bad_cpp =
      "#include \"serve/stats.hpp\"\n"
      "std::uint64_t Stats::read() const {\n"
      "  return hits_.load();\n"  // line 3: implicit seq_cst
      "}\n";
  const auto diags = lint_project({{"src/serve/stats.hpp", header}, {"src/serve/stats.cpp", bad_cpp}});
  EXPECT_EQ(lines_of(diags, "R7"), (std::vector<int>{3}));

  const std::string good_cpp =
      "#include \"serve/stats.hpp\"\n"
      "std::uint64_t Stats::read() const {\n"
      "  return hits_.load(std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_TRUE(
      lint_project({{"src/serve/stats.hpp", header}, {"src/serve/stats.cpp", good_cpp}}).empty());
}

TEST(LintR7, UnambiguousAtomicMethodsNeedNoRegistry) {
  const std::string fixture =
      "void f(Counter& c) {\n"
      "  c.count.fetch_add(1);\n"  // line 2: only atomics have fetch_add
      "  c.count.fetch_add(1, std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_EQ(lines_of(lint_project({{"src/util/fixture.cpp", fixture}}), "R7"),
            (std::vector<int>{2}));
}

TEST(LintR7, SubscriptedAtomicArrayReceiverIsResolved) {
  const std::string fixture =
      "#include <atomic>\n"
      "struct H {\n"
      "  std::array<std::atomic<std::uint64_t>, 8> buckets_{};\n"
      "  void hit(std::size_t b) { buckets_[b].store(1); }\n"  // line 4
      "};\n";
  EXPECT_EQ(lines_of(lint_project({{"src/serve/fixture.hpp", "#pragma once\n" + fixture}}), "R7"),
            (std::vector<int>{5}));
}

TEST(LintR7, NonAtomicLoadAndFreeExchangeAreNotFlagged) {
  const std::string fixture =
      "#include <utility>\n"
      "void f(Network& net, int& err) {\n"
      "  net.load(\"weights.bin\");\n"          // Network::load is file I/O
      "  auto e = std::exchange(err, 0);\n"     // free function, not atomic
      "  (void)e;\n"
      "}\n";
  EXPECT_TRUE(lint_project({{"src/nn/fixture.cpp", fixture}}).empty());
}

TEST(LintR7, SeqCstOkTagSuppresses) {
  const std::string fixture =
      "#include <atomic>\n"
      "struct F {\n"
      "  std::atomic<bool> ready_{false};\n"
      "  // shmd-lint: seq-cst-ok(publication must order with every prior write)\n"
      "  void go() { ready_.store(true); }\n"
      "};\n";
  EXPECT_TRUE(lint_project({{"src/serve/fixture.hpp", "#pragma once\n" + fixture}}).empty());
}

// ------------------------------------------------------ R8 determinism taint

TEST(LintR8, ClocksAndThreadStateAreFlaggedInPureLayers) {
  const std::string fixture =
      "#include <chrono>\n"
      "#include <thread>\n"
      "double jitter() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"           // line 4
      "  auto id = std::this_thread::get_id();\n"                // line 5
      "  thread_local double scratch = 0.0;\n"                   // line 6
      "  (void)t; (void)id; return scratch;\n"
      "}\n";
  for (const char* path : {"src/nn/fixture.cpp", "src/hmd/fixture.cpp",
                           "src/faultsim/fixture.cpp", "src/rng/fixture.cpp"}) {
    EXPECT_EQ(lines_of(lint(path, fixture), "R8"), (std::vector<int>{4, 5, 6})) << path;
  }
  // The serving layers measure latency by design; entropy.* is the one
  // sanctioned nondeterminism source in rng/.
  EXPECT_TRUE(lines_of(lint("src/serve/fixture.cpp", fixture), "R8").empty());
  EXPECT_TRUE(lines_of(lint("src/rng/entropy.cpp", fixture), "R8").empty());
}

TEST(LintR8, GlobalTimeCallIsFlaggedButTimeNamedVariablesAreNot) {
  const std::string fixture =
      "#include <ctime>\n"
      "double f(double time) {\n"     // a parameter named `time` is fine
      "  auto t = ::time(nullptr);\n"  // line 3: the libc call is not
      "  return time + t;\n"
      "}\n";
  EXPECT_EQ(lines_of(lint("src/faultsim/fixture.cpp", fixture), "R8"), (std::vector<int>{3}));
}

TEST(LintR8, DeterminismOkTagSuppresses) {
  const std::string fixture =
      "#include <chrono>\n"
      "// shmd-lint: determinism-ok(debug-build watchdog, compiled out of scoring)\n"
      "auto deadline() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(lint("src/hmd/fixture.cpp", fixture).empty());
}

// ------------------------------------------------------- R9 layering (project)

TEST(LintR9, UpwardIncludeViolatesTheDag) {
  // serve (layer 7) reaching up into net (layer 8) — the DAG-violating
  // fixture: the scoring plane must never know about the transport.
  const std::string fixture =
      "#pragma once\n"
      "#include \"net/frame.hpp\"\n"  // line 2
      "#include \"util/cli.hpp\"\n";  // downward: fine
  EXPECT_EQ(lines_of(lint_project({{"src/serve/fixture.hpp", fixture}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, SameLayerIncludeIsSideways) {
  // trace and faultsim are both layer 1: mutually independent by design.
  const std::string fixture =
      "#pragma once\n"
      "#include \"faultsim/fault_injector.hpp\"\n";  // line 2
  EXPECT_EQ(lines_of(lint_project({{"src/trace/fixture.hpp", fixture}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, DownwardIncludesAndUnconstrainedTreesAreClean) {
  const std::string net_down =
      "#pragma once\n"
      "#include \"serve/scoring_service.hpp\"\n"
      "#include \"util/cli.hpp\"\n";
  const std::string bench_any =
      "#include \"net/server.hpp\"\n"
      "#include \"serve/scoring_service.hpp\"\n";
  const std::string same_dir =
      "#pragma once\n"
      "#include \"serve/epoch.hpp\"\n";
  EXPECT_TRUE(lint_project({{"src/net/fixture.hpp", net_down},
                            {"bench/fixture.cpp", bench_any},
                            {"src/serve/fixture.hpp", same_dir}})
                  .empty());
}

TEST(LintR9, KernelsSubmoduleIsALeafOnlyNnMayReach) {
  // nn -> nn/kernels is the sanctioned parent -> nested-submodule edge;
  // the reverse (kernels reaching back up into nn) and a sideways reach
  // from another layer-2+ consumer's subordinate position are violations.
  const std::string parent_down =
      "#pragma once\n"
      "#include \"faultsim/fault_injector.hpp\"\n"  // downward: fine
      "#include \"nn/kernels/kernels.hpp\"\n";  // parent -> child: fine
  const std::string child_up =
      "#pragma once\n"
      "#include \"nn/arithmetic.hpp\"\n";  // line 2: child -> parent
  const std::string child_sideways =
      "#pragma once\n"
      "#include \"trace/features.hpp\"\n";  // child downward: fine (layer 2 > 1)
  EXPECT_TRUE(lint_project({{"src/nn/arithmetic.hpp", parent_down},
                            {"src/nn/kernels/fixture.hpp", child_sideways}})
                  .empty());
  EXPECT_EQ(lines_of(lint_project({{"src/nn/kernels/fixture.hpp", child_up}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, SiblingLayersMayNotReachIntoTheKernelsSubmodule) {
  // hmd sits above nn so plain "nn/..." includes are legal — but the
  // nested submodule is nn-private only in the sideways/same-layer sense:
  // an eval/sys-or-above consumer descending the DAG may still use it,
  // while a same-layer module may not.
  const std::string from_hmd =
      "#pragma once\n"
      "#include \"nn/kernels/kernels.hpp\"\n";  // layer 4 > 2: descends the DAG
  EXPECT_TRUE(lint_project({{"src/hmd/fixture.hpp", from_hmd}}).empty());
  const std::string from_trace =
      "#pragma once\n"
      "#include \"nn/kernels/kernels.hpp\"\n";  // line 2: layer 1 reaching up
  EXPECT_EQ(lines_of(lint_project({{"src/trace/fixture.hpp", from_trace}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, RedteamIsTheTopOfTheDag) {
  // redteam (layer 9) may reach everything below it...
  const std::string redteam_down =
      "#pragma once\n"
      "#include \"attack/oracle.hpp\"\n"
      "#include \"net/client.hpp\"\n"
      "#include \"serve/scoring_service.hpp\"\n";
  EXPECT_TRUE(lint_project({{"src/redteam/fixture.hpp", redteam_down}}).empty());
  // ...but nothing may reach up into the adversary tooling — the victim
  // stack must not depend on its own red team.
  const std::string net_up =
      "#pragma once\n"
      "#include \"redteam/net_oracle.hpp\"\n";  // line 2: layer 8 reaching up
  EXPECT_EQ(lines_of(lint_project({{"src/net/fixture.hpp", net_up}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, AdmitSitsBetweenRuntimeAndServe) {
  // admit (layer 6) is the admission-control plane: serve (7) and net (8)
  // consume it, and it may reach only the pure layers below runtime.
  const std::string serve_down =
      "#pragma once\n"
      "#include \"admit/policy.hpp\"\n"
      "#include \"admit/wait_predictor.hpp\"\n";
  const std::string admit_down =
      "#pragma once\n"
      "#include \"util/sync.hpp\"\n";
  EXPECT_TRUE(lint_project({{"src/serve/fixture.hpp", serve_down},
                            {"src/admit/fixture.hpp", admit_down}})
                  .empty());
  // The reverse edges break the DAG: admission logic reading serve state
  // (or runtime reaching up into policy) would make the determinism
  // contract circular.
  const std::string admit_up =
      "#pragma once\n"
      "#include \"serve/request_queue.hpp\"\n";  // line 2: layer 6 reaching up
  EXPECT_EQ(lines_of(lint_project({{"src/admit/fixture.hpp", admit_up}}), "R9"),
            (std::vector<int>{2}));
  const std::string runtime_up =
      "#pragma once\n"
      "#include \"admit/token_bucket.hpp\"\n";  // line 2: layer 5 reaching up
  EXPECT_EQ(lines_of(lint_project({{"src/runtime/fixture.hpp", runtime_up}}), "R9"),
            (std::vector<int>{2}));
}

TEST(LintR9, LayerOkTagSuppressesOnTheIncludeLine) {
  const std::string fixture =
      "#pragma once\n"
      "#include \"net/frame.hpp\"  // shmd-lint: layer-ok(wire-format reuse, reviewed)\n";
  EXPECT_TRUE(lint_project({{"src/serve/fixture.hpp", fixture}}).empty());
}

// ----------------------------------------------------- R0 annotation hygiene

TEST(LintR0, AnnotationWithoutReasonIsMalformed) {
  const std::string fixture =
      "void f(double a, double b) {\n"
      "  const double y = a * b;  // shmd-lint: exact-ok\n"  // line 2: no (reason)
      "}\n";
  const auto diags = lint("src/nn/fixture.cpp", fixture);
  EXPECT_EQ(lines_of(diags, "R0"), (std::vector<int>{2}));
  EXPECT_EQ(lines_of(diags, "R1"), (std::vector<int>{2}))
      << "a malformed annotation must not suppress the underlying diagnostic";
}

TEST(LintR0, UnknownTagIsReported) {
  const std::string fixture =
      "void f() {\n"
      "  int x = 0;  // shmd-lint: speed-ok(not a real tag)\n"  // line 2
      "}\n";
  const auto diags = lint("src/util/fixture.cpp", fixture);
  ASSERT_EQ(lines_of(diags, "R0"), (std::vector<int>{2}));
  EXPECT_NE(diags[0].hint.find("exact-ok"), std::string::npos)
      << "the R0 hint should list the valid tags";
  EXPECT_NE(diags[0].hint.find("span-kernel"), std::string::npos)
      << "the hint is built from the registry, so R1's secondary tag appears too";
}

TEST(LintDriver, EveryRuleListsItsPrimaryTagFirst) {
  const Linter linter;
  for (const auto& rule : linter.rules()) {
    const auto tags = rule->suppression_tags();
    ASSERT_FALSE(tags.empty()) << rule->id();
    EXPECT_EQ(tags.front(), rule->suppression_tag()) << rule->id();
  }
  for (const auto& rule : linter.project_rules()) {
    const auto tags = rule->suppression_tags();
    ASSERT_FALSE(tags.empty()) << rule->id();
    EXPECT_EQ(tags.front(), rule->suppression_tag()) << rule->id();
  }
}

TEST(LintDriver, ProjectRuleTagsAreKnownToTheAnnotationChecker) {
  // A seq-cst-ok annotation in a file is legal even though only the
  // project pass consumes it — the R0 unknown-tag check must span both
  // registries.
  const std::string fixture =
      "void f() {\n"
      "  int x = 0;  // shmd-lint: seq-cst-ok(placed for a future atomic)\n"
      "}\n";
  EXPECT_TRUE(lines_of(lint("src/util/fixture.cpp", fixture), "R0").empty());
}

// ------------------------------------------------------------ driver details

TEST(LintDriver, DiagnosticsAreSortedByLine) {
  const std::string fixture =
      "#include <cstdlib>\n"
      "double f(double a, double b) {\n"
      "  std::srand(7);\n"       // line 3: R2
      "  return a * b;\n"        // line 4: R1
      "}\n";
  const auto diags = lint("src/nn/fixture.cpp", fixture);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule_id, "R2");
  EXPECT_EQ(diags[1].rule_id, "R1");
  EXPECT_TRUE(std::is_sorted(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    return a.line < b.line;
  }));
}

TEST(LintDriver, FormatDiagnosticIsClickable) {
  const Diagnostic d{"src/nn/network.cpp", 42, "R1", "raw multiply", "route through ctx.mul"};
  const std::string text = format_diagnostic(d);
  EXPECT_NE(text.find("src/nn/network.cpp:42: [R1] raw multiply"), std::string::npos);
  EXPECT_NE(text.find("route through ctx.mul"), std::string::npos);
}

TEST(LintDriver, RegistryShipsAllRulesInIdOrder) {
  const Linter linter;
  std::vector<std::string> ids;
  for (const auto& rule : linter.rules()) {
    ids.emplace_back(rule->id());
    EXPECT_FALSE(rule->rationale().empty()) << rule->id();
    EXPECT_FALSE(rule->suppression_tag().empty()) << rule->id();
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"R1", "R2", "R3", "R4", "R5", "R6", "R8"}));

  std::vector<std::string> project_ids;
  for (const auto& rule : linter.project_rules()) {
    project_ids.emplace_back(rule->id());
    EXPECT_FALSE(rule->rationale().empty()) << rule->id();
    EXPECT_FALSE(rule->suppression_tag().empty()) << rule->id();
  }
  EXPECT_EQ(project_ids, (std::vector<std::string>{"R7", "R9"}));
}

TEST(LintDriver, ProjectOutputIsIdenticalAcrossJobCounts) {
  // The parallel per-file phase must not leak scheduling order into the
  // output: any --jobs value yields byte-identical diagnostics.
  std::vector<RawSource> sources;
  for (int i = 0; i < 12; ++i) {
    const std::string tag = std::to_string(i);
    sources.push_back({"src/nn/fix" + tag + ".cpp",
                       "#include <cstdlib>\n"
                       "double f" + tag + "(double a, double b) {\n"
                       "  std::srand(7);\n"
                       "  return a * b;\n"
                       "}\n"});
  }
  sources.push_back({"src/serve/up.hpp", "#pragma once\n#include \"net/frame.hpp\"\n"});
  const auto serial = lint_project(sources, 1);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const auto parallel = lint_project(sources, jobs);
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].file, serial[i].file) << "jobs=" << jobs;
      EXPECT_EQ(parallel[i].line, serial[i].line) << "jobs=" << jobs;
      EXPECT_EQ(parallel[i].rule_id, serial[i].rule_id) << "jobs=" << jobs;
      EXPECT_EQ(parallel[i].message, serial[i].message) << "jobs=" << jobs;
    }
  }
  // And the project sees violations at all: 12 files x (R1 + R2) + one R9.
  EXPECT_EQ(serial.size(), 25u);
}

TEST(LintDriver, LexerSurvivesAdversarialInput) {
  // Unterminated constructs must not throw or hang — the linter runs on
  // whatever the tree contains, including mid-edit files.
  const char* nasty[] = {
      "\"unterminated string\n int x;",
      "R\"delim(never closed",
      "/* unterminated block comment",
      "#define WRAPPED \\\n  continued \\\n  again\n",
      "'\\",
      "a */ b",
  };
  for (const char* content : nasty) {
    EXPECT_NO_THROW((void)lint("src/util/fixture.cpp", content)) << content;
  }
}

// The shipped tree must lint clean (the same invariant `--target lint`
// enforces); run it here too so plain ctest catches regressions. This is
// the full project pass — per-file rules plus the cross-file R7/R9 over
// the real include/declaration graph.
#ifdef SHMD_LINT_SOURCE_DIR
TEST(LintDriver, ShippedTreeIsClean) {
  const std::filesystem::path root = SHMD_LINT_SOURCE_DIR;
  auto sources = collect_sources(root / "src");
  ASSERT_GT(sources.size(), 50u) << "source tree not found under " << root;
  // bench/ and examples/ are in R4's scope now — keep them clean too.
  for (const char* tree : {"bench", "examples"}) {
    const auto extra = collect_sources(root / tree);
    sources.insert(sources.end(), extra.begin(), extra.end());
  }
  const Linter linter;
  for (const auto& d : linter.lint_project_files(sources, root)) {
    ADD_FAILURE() << format_diagnostic(d);
  }
}
#endif

}  // namespace
}  // namespace shmd::lint
