#include <gtest/gtest.h>

#include <cmath>

#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"
#include "volt/thermal_governor.hpp"

namespace shmd::volt {
namespace {

VoltageDomain make_domain(MsrInterface& msr, double temp = 49.0) {
  return VoltageDomain(msr, 0, VoltFaultModel(DeviceProfile{}), temp);
}

TEST(ThermalGovernor, ClaimsAndReleasesTheRail) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  {
    ThermalGovernor governor(domain);
    EXPECT_TRUE(domain.exclusively_controlled());
    EXPECT_THROW(domain.set_offset_mv(-50.0), VoltageControlError);
  }
  EXPECT_FALSE(domain.exclusively_controlled());
  EXPECT_NEAR(domain.offset_mv(), 0.0, 0.5);  // parked at nominal
  domain.set_offset_mv(-50.0);                // rail usable again
}

TEST(ThermalGovernor, FirstUpdateCalibrates) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernor governor(domain);
  EXPECT_TRUE(governor.update_temperature(49.0));
  EXPECT_EQ(governor.calibrations_run(), 1u);
  // The offset sits inside the device's fault window.
  EXPECT_LT(governor.current_offset_mv(), -100.0);
  EXPECT_GT(governor.current_offset_mv(), -150.0);
  // And achieves the target error rate at this temperature.
  const double er = domain.model().fault_probability(governor.current_offset_mv(), 49.0);
  EXPECT_NEAR(er, 0.10, 0.03);
}

TEST(ThermalGovernor, SmallDriftStaysPut) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernor governor(domain);
  ASSERT_TRUE(governor.update_temperature(49.0));
  const double offset = governor.current_offset_mv();
  EXPECT_FALSE(governor.update_temperature(50.0));  // inside the guard band
  EXPECT_DOUBLE_EQ(governor.current_offset_mv(), offset);
  EXPECT_EQ(governor.calibrations_run(), 1u);
}

TEST(ThermalGovernor, HotterDieGetsShallowerOffset) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernor governor(domain);
  ASSERT_TRUE(governor.update_temperature(40.0));
  const double cold_offset = governor.current_offset_mv();
  ASSERT_TRUE(governor.update_temperature(75.0));
  const double hot_offset = governor.current_offset_mv();
  EXPECT_GT(hot_offset, cold_offset);  // less deep undervolt when hot
  EXPECT_EQ(governor.calibrations_run(), 2u);
}

TEST(ThermalGovernor, InterpolatesBetweenNearbyPoints) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernorConfig cfg;
  cfg.max_interpolation_gap_c = 15.0;
  ThermalGovernor governor(domain, cfg);
  ASSERT_TRUE(governor.update_temperature(45.0));
  ASSERT_TRUE(governor.update_temperature(55.0));
  const std::size_t calibrations = governor.calibrations_run();
  // 50 °C sits between two calibrated points within the gap: interpolate,
  // no new calibration.
  ASSERT_TRUE(governor.update_temperature(50.0));
  EXPECT_EQ(governor.calibrations_run(), calibrations);
  const double mid = governor.current_offset_mv();
  EXPECT_GT(mid, governor.table().at(45.0));
  EXPECT_LT(mid, governor.table().at(55.0));
}

TEST(ThermalGovernor, ErrorRateHeldAcrossTemperatureRamp) {
  // The §IX requirement end-to-end: as the die heats, the governor keeps
  // the operating error rate pinned near the target.
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernor governor(domain);
  for (double temp = 40.0; temp <= 80.0; temp += 5.0) {
    governor.update_temperature(temp);
    const double er = domain.model().fault_probability(governor.current_offset_mv(), temp);
    EXPECT_NEAR(er, 0.10, 0.04) << "at " << temp << " C";
  }
}

TEST(ThermalGovernor, DrivesAStochasticHmdThroughItsToken) {
  MsrInterface msr;
  VoltageDomain domain = make_domain(msr);
  ThermalGovernor governor(domain);
  governor.update_temperature(49.0);

  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 40;
  hmd::StochasticHmd detector =
      hmd::make_stochastic(ds, folds.victim_training, fc, 0.0, opt);
  detector.attach_domain(domain, governor.current_offset_mv(), governor.token());

  const auto& features = ds.samples()[folds.testing[0]].features;
  EXPECT_NO_THROW((void)detector.window_scores(features));
  // The burst ran at the governor's target rate (the fault statistics
  // show it); the configured direct-er rate is restored afterwards.
  EXPECT_NEAR(detector.fault_stats().fault_rate(), 0.10, 0.04);
  EXPECT_DOUBLE_EQ(detector.error_rate(), 0.0);
  EXPECT_NEAR(domain.offset_mv(), 0.0, 0.5);  // guard restored the rail
  detector.detach_domain();
}

}  // namespace
}  // namespace shmd::volt
