#include <gtest/gtest.h>

#include "hmd/builders.hpp"
#include "hmd/space_exploration.hpp"
#include "support/test_corpus.hpp"

namespace shmd::hmd {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

struct ExplorationFixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);
  FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  BaselineHmd baseline;

  ExplorationFixture()
      : baseline([&] {
          HmdTrainOptions opt;
          opt.train.epochs = 80;
          opt.train.l2 = 2e-3;
          return make_baseline(test::small_dataset(), test::small_dataset().folds(0).victim_training,
                               FeatureConfig{FeatureView::kInsnCategory,
                                             test::small_dataset().config().periods[0]},
                               opt);
        }()) {}

  static const ExplorationFixture& instance() {
    static const ExplorationFixture f;
    return f;
  }
};

TEST(SpaceExploration, SelectedPointRespectsLossBudget) {
  const auto& fx = ExplorationFixture::instance();
  SpaceExplorationOptions opt;
  opt.max_accuracy_loss = 0.03;
  const auto result = explore_error_rate(fx.ds, fx.folds.victim_training,
                                         fx.baseline.network(), fx.fc, opt);
  EXPECT_GT(result.error_rate, 0.0);
  EXPECT_GE(result.selected_accuracy, result.baseline_accuracy - opt.max_accuracy_loss - 0.02);
  EXPECT_EQ(result.candidate_accuracy.size(), opt.candidates.size());
}

TEST(SpaceExploration, TighterBudgetSelectsShallowerPoint) {
  const auto& fx = ExplorationFixture::instance();
  SpaceExplorationOptions tight;
  tight.max_accuracy_loss = 0.005;
  SpaceExplorationOptions loose;
  loose.max_accuracy_loss = 0.10;
  const auto tight_result = explore_error_rate(fx.ds, fx.folds.victim_training,
                                               fx.baseline.network(), fx.fc, tight);
  const auto loose_result = explore_error_rate(fx.ds, fx.folds.victim_training,
                                               fx.baseline.network(), fx.fc, loose);
  EXPECT_LE(tight_result.error_rate, loose_result.error_rate);
}

TEST(SpaceExploration, ZeroBudgetCanStayAtZero) {
  // An impossible budget leaves the detector deterministic rather than
  // violating the constraint.
  const auto& fx = ExplorationFixture::instance();
  SpaceExplorationOptions opt;
  opt.max_accuracy_loss = -1.0;  // nothing is admissible
  const auto result = explore_error_rate(fx.ds, fx.folds.victim_training,
                                         fx.baseline.network(), fx.fc, opt);
  EXPECT_DOUBLE_EQ(result.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.selected_accuracy, result.baseline_accuracy);
}

TEST(SpaceExploration, RejectsDegenerateInputs) {
  const auto& fx = ExplorationFixture::instance();
  EXPECT_THROW((void)explore_error_rate(fx.ds, {}, fx.baseline.network(), fx.fc),
               std::invalid_argument);
  SpaceExplorationOptions no_candidates;
  no_candidates.candidates.clear();
  EXPECT_THROW((void)explore_error_rate(fx.ds, fx.folds.victim_training,
                                        fx.baseline.network(), fx.fc, no_candidates),
               std::invalid_argument);
  SpaceExplorationOptions no_repeats;
  no_repeats.repeats = 0;
  EXPECT_THROW((void)explore_error_rate(fx.ds, fx.folds.victim_training,
                                        fx.baseline.network(), fx.fc, no_repeats),
               std::invalid_argument);
}

TEST(SpaceExploration, CandidateAccuracyTrendsDownward) {
  // Not strictly monotone (stochastic), but the deep end must sit clearly
  // below the shallow end.
  const auto& fx = ExplorationFixture::instance();
  SpaceExplorationOptions opt;
  opt.candidates = {0.05, 0.5, 1.0};
  opt.repeats = 4;
  const auto result = explore_error_rate(fx.ds, fx.folds.victim_training,
                                         fx.baseline.network(), fx.fc, opt);
  ASSERT_EQ(result.candidate_accuracy.size(), 3u);
  EXPECT_GT(result.candidate_accuracy[0], result.candidate_accuracy[2]);
}

}  // namespace
}  // namespace shmd::hmd
