#include <gtest/gtest.h>

#include <map>

#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"
#include "util/stats.hpp"

namespace shmd::hmd {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

struct RhmdFixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);

  static const RhmdFixture& instance() {
    static const RhmdFixture f;
    return f;
  }
};

TEST(RhmdDetail, ConstructionNamesMatchPaper) {
  EXPECT_EQ(rhmd_2f(2048).name, "rhmd-2f");
  EXPECT_EQ(rhmd_3f(2048).name, "rhmd-3f");
  EXPECT_EQ(rhmd_2f2p(2048, 4096).name, "rhmd-2f2p");
  EXPECT_EQ(rhmd_3f2p(2048, 4096).name, "rhmd-3f2p");
}

TEST(RhmdDetail, ConstructionViewsAreDiverse) {
  const auto c = rhmd_3f(2048);
  std::map<FeatureView, int> views;
  for (const auto& cfg : c.configs) ++views[cfg.view];
  EXPECT_EQ(views.size(), 3u);  // three distinct views
  for (const auto& [view, count] : views) EXPECT_EQ(count, 1) << static_cast<int>(view);
}

TEST(RhmdDetail, TwoPeriodConstructionCoversBothPeriods) {
  const auto c = rhmd_3f2p(2048, 4096);
  std::map<std::size_t, int> periods;
  for (const auto& cfg : c.configs) ++periods[cfg.period];
  EXPECT_EQ(periods[2048], 3);
  EXPECT_EQ(periods[4096], 3);
}

TEST(RhmdDetail, SelectionFrequenciesAreRoughlyUniform) {
  // The switch RNG must pick each base detector with ~equal probability —
  // bias would both skew accuracy and leak which model answered.
  const auto& fx = RhmdFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 30;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training,
                       rhmd_2f(fx.ds.config().periods[0]), opt);

  // Bases trained on different views produce different scores on most
  // windows; track which base must have been selected by matching the
  // score to each base's own output.
  const auto& sample = fx.ds.samples()[fx.folds.testing[0]];
  std::size_t base0 = 0;
  std::size_t base1 = 0;
  std::size_t ambiguous = 0;
  for (int round = 0; round < 200; ++round) {
    const auto scores = det.window_scores(sample.features);
    for (std::size_t e = 0; e < scores.size(); ++e) {
      const double s0 =
          det.base(0).net.forward(sample.features.windows(det.base(0).config)[e])[0];
      const double s1 =
          det.base(1).net.forward(sample.features.windows(det.base(1).config)[e])[0];
      if (scores[e] == s0 && scores[e] != s1) ++base0;
      else if (scores[e] == s1 && scores[e] != s0) ++base1;
      else ++ambiguous;
    }
  }
  const double total = static_cast<double>(base0 + base1);
  ASSERT_GT(total, 100.0);
  EXPECT_NEAR(static_cast<double>(base0) / total, 0.5, 0.05);
}

TEST(RhmdDetail, SwitchSeedReproducesSelections) {
  const auto& fx = RhmdFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 30;
  Rhmd a = make_rhmd(fx.ds, fx.folds.victim_training, rhmd_2f(fx.ds.config().periods[0]),
                     opt, /*switch_seed=*/777);
  Rhmd b = make_rhmd(fx.ds, fx.folds.victim_training, rhmd_2f(fx.ds.config().periods[0]),
                     opt, /*switch_seed=*/777);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  EXPECT_EQ(a.window_scores(features), b.window_scores(features));
  EXPECT_EQ(a.window_scores(features), b.window_scores(features));
}

TEST(RhmdDetail, NominalIsMeanOfBaseScores) {
  const auto& fx = RhmdFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 30;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training,
                       rhmd_2f(fx.ds.config().periods[0]), opt);
  const auto& sample = fx.ds.samples()[fx.folds.testing[0]];
  const auto nominal = det.window_scores_nominal(sample.features);
  for (std::size_t e = 0; e < nominal.size(); ++e) {
    const double s0 =
        det.base(0).net.forward(sample.features.windows(det.base(0).config)[e])[0];
    const double s1 =
        det.base(1).net.forward(sample.features.windows(det.base(1).config)[e])[0];
    EXPECT_NEAR(nominal[e], 0.5 * (s0 + s1), 1e-12);
  }
}

TEST(RhmdDetail, BaseDetectorsAreDiverse) {
  // The defense requires *diverse* base models: two bases of a 2F
  // construction must disagree on a nontrivial fraction of windows.
  const auto& fx = RhmdFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 30;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training,
                       rhmd_2f(fx.ds.config().periods[0]), opt);
  std::size_t disagreements = 0;
  std::size_t total = 0;
  for (std::size_t idx : fx.folds.testing) {
    const auto& sample = fx.ds.samples()[idx];
    const auto& w0 = sample.features.windows(det.base(0).config);
    const auto& w1 = sample.features.windows(det.base(1).config);
    for (std::size_t e = 0; e < w0.size(); ++e) {
      const bool v0 = det.base(0).net.forward(w0[e])[0] >= 0.5;
      const bool v1 = det.base(1).net.forward(w1[e])[0] >= 0.5;
      disagreements += v0 != v1;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(disagreements) / static_cast<double>(total), 0.02);
}

}  // namespace
}  // namespace shmd::hmd
