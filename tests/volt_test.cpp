#include <gtest/gtest.h>

#include <cmath>

#include "rng/xoshiro256ss.hpp"
#include "volt/calibration.hpp"
#include "volt/msr.hpp"
#include "volt/volt_fault_model.hpp"
#include "volt/voltage_domain.hpp"

namespace shmd::volt {
namespace {

// ------------------------------------------------------------------- MSR

TEST(Msr, EncodeDecodeRoundTrip) {
  for (double mv : {0.0, -50.0, -130.0, -250.0, 100.0}) {
    const std::uint64_t value = MsrInterface::encode_write(0, mv);
    EXPECT_NEAR(MsrInterface::decode_offset_mv(value), mv, 0.5) << mv;
  }
}

TEST(Msr, WriteThenReadBack) {
  MsrInterface msr;
  msr.wrmsr(kVoltagePlaneMsr, MsrInterface::encode_write(0, -130.0));
  msr.wrmsr(kVoltagePlaneMsr, MsrInterface::encode_read_request(0));
  EXPECT_NEAR(MsrInterface::decode_offset_mv(msr.rdmsr(kVoltagePlaneMsr)), -130.0, 0.5);
  EXPECT_NEAR(msr.plane_offset_mv(0), -130.0, 0.5);
}

TEST(Msr, PlanesAreIndependent) {
  MsrInterface msr;
  msr.wrmsr(kVoltagePlaneMsr, MsrInterface::encode_write(0, -100.0));
  msr.wrmsr(kVoltagePlaneMsr, MsrInterface::encode_write(2, -40.0));
  EXPECT_NEAR(msr.plane_offset_mv(0), -100.0, 0.5);
  EXPECT_NEAR(msr.plane_offset_mv(2), -40.0, 0.5);
  EXPECT_NEAR(msr.plane_offset_mv(1), 0.0, 0.5);
}

TEST(Msr, RejectsBadCommands) {
  MsrInterface msr;
  EXPECT_THROW(msr.wrmsr(0x151, 0), MsrError);                       // wrong address
  EXPECT_THROW(msr.wrmsr(kVoltagePlaneMsr, 0), MsrError);            // missing magic
  EXPECT_THROW((void)MsrInterface::encode_write(7, -10.0), MsrError);      // bad plane
  EXPECT_THROW((void)MsrInterface::encode_write(0, -2000.0), MsrError);    // out of range
  EXPECT_THROW((void)msr.plane_offset_mv(9), MsrError);
}

TEST(Msr, OffsetUnitsMatchHardwareGranularity) {
  // 1/1.024 mV per LSB: -103 mV encodes to round(-105.472) = -105 units.
  const std::uint64_t v = MsrInterface::encode_write(0, -103.0);
  const auto code = static_cast<std::int32_t>((v >> 21) & 0x7FF);
  const std::int32_t sign_extended = (code & 0x400) ? code - 0x800 : code;
  EXPECT_EQ(sign_extended, -105);
}

// --------------------------------------------------------------- fault model

class VoltModelTest : public ::testing::Test {
 protected:
  VoltFaultModel model_{DeviceProfile{}};
};

TEST_F(VoltModelTest, NoFaultsAboveOnset) {
  EXPECT_DOUBLE_EQ(model_.fault_probability(0.0, 49.0), 0.0);
  EXPECT_DOUBLE_EQ(model_.fault_probability(-50.0, 49.0), 0.0);
  EXPECT_DOUBLE_EQ(model_.fault_probability(-102.0, 49.0), 0.0);
}

TEST_F(VoltModelTest, CertainFaultsAtSaturation) {
  EXPECT_DOUBLE_EQ(model_.fault_probability(-145.0, 49.0), 1.0);
  EXPECT_DOUBLE_EQ(model_.fault_probability(-150.0, 49.0), 1.0);
}

TEST_F(VoltModelTest, MonotoneInUndervoltDepth) {
  double prev = -1.0;
  for (double depth = 100.0; depth <= 150.0; depth += 1.0) {
    const double p = model_.fault_probability(-depth, 49.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_F(VoltModelTest, HotterSiliconFaultsAtShallowerDepth) {
  // Temperature compensation (§IX): at higher temperature the onset moves
  // to smaller undervolt.
  EXPECT_LT(model_.onset_depth_mv(70.0), model_.onset_depth_mv(49.0));
  EXPECT_GT(model_.fault_probability(-110.0, 80.0), model_.fault_probability(-110.0, 49.0));
}

TEST_F(VoltModelTest, OffsetForErrorRateInverts) {
  for (double er : {0.05, 0.1, 0.3, 0.5, 0.9}) {
    const double offset = model_.offset_for_error_rate(er, 49.0);
    EXPECT_NEAR(model_.fault_probability(offset, 49.0), er, 1e-6) << er;
  }
}

TEST_F(VoltModelTest, OffsetForErrorRateRejectsOutOfRange) {
  EXPECT_THROW((void)model_.offset_for_error_rate(-0.1, 49.0), std::invalid_argument);
  EXPECT_THROW((void)model_.offset_for_error_rate(1.5, 49.0), std::invalid_argument);
}

TEST_F(VoltModelTest, FreezeBeyondStabilityLimit) {
  EXPECT_FALSE(model_.freezes(-140.0, 49.0));
  EXPECT_TRUE(model_.freezes(-158.0, 49.0));
  // Hotter silicon freezes at shallower depth.
  EXPECT_TRUE(model_.freezes(-150.0, 80.0));
}

TEST_F(VoltModelTest, OperandOnsetSpansTheCharacterizedWindow) {
  // §II: faults appear between -103 mV and -145 mV depending on inputs.
  rng::Xoshiro256ss gen(4);
  bool found_fragile = false;
  bool found_robust = false;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = gen();
    const std::uint64_t b = gen();
    const double p_shallow = model_.operand_fault_probability(a, b, -112.0, 49.0);
    if (p_shallow > 0.9) found_fragile = true;
    if (p_shallow < 0.1) found_robust = true;
  }
  EXPECT_TRUE(found_fragile);
  EXPECT_TRUE(found_robust);
}

TEST_F(VoltModelTest, OperandProbabilityIsDeterministicPerOperandPair) {
  const double p1 = model_.operand_fault_probability(123, 456, -120.0, 49.0);
  const double p2 = model_.operand_fault_probability(123, 456, -120.0, 49.0);
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(DeviceProfile, SampledProfilesVaryButStayOrdered) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const DeviceProfile p = DeviceProfile::sample(seed);
    EXPECT_GT(p.fault_saturation_mv, p.fault_onset_mv);
    EXPECT_GT(p.freeze_mv, p.fault_saturation_mv);
    EXPECT_NEAR(p.fault_onset_mv, 103.0, 5.0);
    EXPECT_NEAR(p.fault_saturation_mv, 145.0, 5.0);
  }
  // Process variation: different chips differ.
  EXPECT_NE(DeviceProfile::sample(1).fault_onset_mv, DeviceProfile::sample(2).fault_onset_mv);
}

// ------------------------------------------------------------ voltage domain

class DomainTest : public ::testing::Test {
 protected:
  MsrInterface msr_;
  VoltageDomain domain_{msr_, 0, VoltFaultModel(DeviceProfile{}), 49.0};
};

TEST_F(DomainTest, NominalVoltageAtZeroOffset) {
  EXPECT_NEAR(domain_.voltage_v(), 1.18, 1e-9);
  EXPECT_DOUBLE_EQ(domain_.error_rate(), 0.0);
}

TEST_F(DomainTest, UndervoltLowersVoltageAndRaisesErrorRate) {
  domain_.set_offset_mv(-130.0);
  EXPECT_NEAR(domain_.voltage_v(), 1.05, 0.001);
  EXPECT_GT(domain_.error_rate(), 0.0);
  EXPECT_LT(domain_.error_rate(), 1.0);
}

TEST_F(DomainTest, FreezingOffsetThrows) {
  EXPECT_THROW(domain_.set_offset_mv(-170.0), SystemFreezeError);
}

TEST_F(DomainTest, ExclusiveControlBlocksUntrustedWrites) {
  const std::uint64_t token = domain_.acquire_exclusive();
  EXPECT_TRUE(domain_.exclusively_controlled());
  // Adversary without the token cannot disable the defense (§III).
  EXPECT_THROW(domain_.set_offset_mv(0.0), VoltageControlError);
  EXPECT_THROW(domain_.set_offset_mv(0.0, token + 1), VoltageControlError);
  // The holder can.
  domain_.set_offset_mv(-110.0, token);
  EXPECT_NEAR(domain_.offset_mv(), -110.0, 0.5);
  domain_.release_exclusive(token);
  domain_.set_offset_mv(0.0);  // free again
}

TEST_F(DomainTest, DoubleAcquireFails) {
  (void)domain_.acquire_exclusive();
  EXPECT_THROW((void)domain_.acquire_exclusive(), VoltageControlError);
}

TEST_F(DomainTest, ReleaseWithWrongTokenFails) {
  const std::uint64_t token = domain_.acquire_exclusive();
  EXPECT_THROW(domain_.release_exclusive(token + 1), VoltageControlError);
  domain_.release_exclusive(token);
}

TEST_F(DomainTest, UndervoltGuardRestoresOnExit) {
  domain_.set_offset_mv(-20.0);
  {
    UndervoltGuard guard(domain_, -120.0);
    EXPECT_NEAR(domain_.offset_mv(), -120.0, 0.5);
  }
  EXPECT_NEAR(domain_.offset_mv(), -20.0, 0.5);
}

TEST_F(DomainTest, UndervoltGuardWorksUnderExclusiveControl) {
  const std::uint64_t token = domain_.acquire_exclusive();
  {
    UndervoltGuard guard(domain_, -115.0, token);
    EXPECT_NEAR(domain_.offset_mv(), -115.0, 0.5);
  }
  EXPECT_NEAR(domain_.offset_mv(), 0.0, 0.5);
  domain_.release_exclusive(token);
}

// -------------------------------------------------------------- calibration

TEST(Calibration, FindsOffsetForTargetErrorRate) {
  MsrInterface msr;
  VoltageDomain domain(msr, 0, VoltFaultModel(DeviceProfile{}), 49.0);
  CalibrationController calib(domain, /*trials=*/40000);
  const CalibrationResult r = calib.calibrate(0.10, 0.02);
  EXPECT_NEAR(r.measured_er, 0.10, 0.02);
  // The found offset must sit inside the characterized fault window.
  EXPECT_LT(r.offset_mv, -100.0);
  EXPECT_GT(r.offset_mv, -150.0);
  // Domain left at nominal.
  EXPECT_NEAR(domain.offset_mv(), 0.0, 0.5);
}

TEST(Calibration, MeasuredRateIsMonotoneInDepth) {
  MsrInterface msr;
  VoltageDomain domain(msr, 0, VoltFaultModel(DeviceProfile{}), 49.0);
  CalibrationController calib(domain, 20000);
  const double shallow = calib.measure_error_rate(-110.0);
  const double deep = calib.measure_error_rate(-135.0);
  EXPECT_LT(shallow, deep);
}

TEST(Calibration, MeasuringAFrozenPointThrows) {
  MsrInterface msr;
  VoltageDomain domain(msr, 0, VoltFaultModel(DeviceProfile{}), 49.0);
  CalibrationController calib(domain, 1000);
  EXPECT_THROW((void)calib.measure_error_rate(-170.0), SystemFreezeError);
}

TEST(Calibration, TemperatureTableTracksOnsetShift) {
  // §IX: the controller "needs to dynamically adjust the undervolting
  // level based on the current temperature". Hotter → shallower offset.
  MsrInterface msr;
  VoltageDomain domain(msr, 0, VoltFaultModel(DeviceProfile{}), 49.0);
  CalibrationController calib(domain, 20000);
  const auto table = calib.calibration_table(0.10, 40.0, 70.0, 15.0);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_GT(table.at(70.0).offset_mv, table.at(40.0).offset_mv);  // less deep when hot
  EXPECT_NEAR(domain.temperature_c(), 49.0, 1e-9);  // restored
}

TEST(Calibration, RejectsBadArguments) {
  MsrInterface msr;
  VoltageDomain domain(msr, 0, VoltFaultModel(DeviceProfile{}), 49.0);
  EXPECT_THROW(CalibrationController(domain, 0), std::invalid_argument);
  CalibrationController calib(domain, 1000);
  EXPECT_THROW((void)calib.calibrate(1.5), std::invalid_argument);
  EXPECT_THROW((void)calib.calibrate(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)calib.calibration_table(0.1, 50.0, 40.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace shmd::volt
