#include <gtest/gtest.h>

#include <cmath>

#include "attack/composite_proxy.hpp"
#include "attack/evasion.hpp"
#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"

namespace shmd::attack {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

struct AttackFixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);
  FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::BaselineHmd baseline;

  AttackFixture()
      : baseline([&] {
          hmd::HmdTrainOptions opt;
          opt.train.epochs = 80;
          opt.train.l2 = 2e-3;  // soft scores even on the tiny test corpus
          return hmd::make_baseline(test::small_dataset(),
                                    test::small_dataset().folds(0).victim_training,
                                    FeatureConfig{FeatureView::kInsnCategory,
                                                  test::small_dataset().config().periods[0]},
                                    opt);
        }()) {}

  static const AttackFixture& instance() {
    static const AttackFixture f;
    return f;
  }
};

// ------------------------------------------------------- reverse engineering

TEST(ReverseEngineer, BaselineVictimIsAccuratelyReplicated) {
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig cfg;
  cfg.kind = ProxyKind::kMlp;
  cfg.proxy_configs = {fx.fc};
  const auto result = re.run(victim, fx.folds.victim_training, fx.folds.testing, cfg);
  EXPECT_GT(result.effectiveness, 0.85);
  EXPECT_GT(result.query_count, 0u);
  ASSERT_NE(result.proxy, nullptr);
}

TEST(ReverseEngineer, StochasticVictimDegradesEffectiveness) {
  // Fig. 3's core claim: undervolting makes reverse engineering harder.
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd baseline = fx.baseline;
  hmd::StochasticHmd stochastic(fx.baseline.network(), fx.fc, 0.2);
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig cfg;
  cfg.kind = ProxyKind::kMlp;
  cfg.proxy_configs = {fx.fc};
  const double base_eff =
      re.run(baseline, fx.folds.victim_training, fx.folds.testing, cfg).effectiveness;
  const double sto_eff =
      re.run(stochastic, fx.folds.victim_training, fx.folds.testing, cfg).effectiveness;
  EXPECT_LT(sto_eff, base_eff - 0.03);
}

TEST(ReverseEngineer, HigherErrorRateHurtsReverseEngineeringMore) {
  // §VII.A: "resilience to reverse-engineering increases by increasing the
  // error rate".
  const auto& fx = AttackFixture::instance();
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig cfg;
  cfg.kind = ProxyKind::kLr;
  cfg.proxy_configs = {fx.fc};
  hmd::StochasticHmd mild(fx.baseline.network(), fx.fc, 0.05);
  hmd::StochasticHmd harsh(fx.baseline.network(), fx.fc, 0.4);
  const double mild_eff =
      re.run(mild, fx.folds.victim_training, fx.folds.testing, cfg).effectiveness;
  const double harsh_eff =
      re.run(harsh, fx.folds.victim_training, fx.folds.testing, cfg).effectiveness;
  EXPECT_LT(harsh_eff, mild_eff);
}

TEST(ReverseEngineer, AllProxyKindsTrain) {
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  for (auto kind : {ProxyKind::kMlp, ProxyKind::kLr, ProxyKind::kDt}) {
    ReverseEngineerConfig cfg;
    cfg.kind = kind;
    cfg.proxy_configs = {fx.fc};
    const auto result = re.run(victim, fx.folds.attacker_training, fx.folds.testing, cfg);
    EXPECT_GT(result.effectiveness, 0.6) << proxy_kind_name(kind);
    EXPECT_GE(result.craft_threshold, 0.30);
    EXPECT_LE(result.craft_threshold, 0.60);
  }
}

TEST(ReverseEngineer, QueryVictimLabelRules) {
  const auto& fx = AttackFixture::instance();
  hmd::StochasticHmd victim(fx.baseline.network(), fx.fc, 0.3);
  ReverseEngineer re(fx.ds);
  const std::vector<std::size_t> subset(fx.folds.victim_training.begin(),
                                        fx.folds.victim_training.begin() + 10);
  const std::vector<FeatureConfig> configs{fx.fc};
  const auto any8 = re.query_victim(victim, subset, configs, 8,
                                    ReverseEngineerConfig::LabelRule::kAny);
  const auto maj8 = re.query_victim(victim, subset, configs, 8,
                                    ReverseEngineerConfig::LabelRule::kMajority);
  ASSERT_EQ(any8.size(), maj8.size());
  // Any-flag labels dominate majority labels (more positives).
  double any_pos = 0.0;
  double maj_pos = 0.0;
  for (std::size_t i = 0; i < any8.size(); ++i) {
    any_pos += any8[i].y;
    maj_pos += maj8[i].y;
  }
  EXPECT_GE(any_pos, maj_pos);
  EXPECT_THROW((void)re.query_victim(victim, subset, configs, 0), std::invalid_argument);
}

TEST(ReverseEngineer, CompositeProxyForMultiViewVictims) {
  const auto& fx = AttackFixture::instance();
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 50;
  hmd::Rhmd victim = hmd::make_rhmd(fx.ds, fx.folds.victim_training,
                                    hmd::rhmd_2f(fx.ds.config().periods[0]), opt);
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig cfg;
  cfg.kind = ProxyKind::kMlp;
  cfg.proxy_configs = hmd::rhmd_2f(fx.ds.config().periods[0]).configs;
  cfg.per_view_composite = true;
  const auto result = re.run(victim, fx.folds.victim_training, fx.folds.testing, cfg);
  const auto* composite = dynamic_cast<const CompositeProxy*>(result.proxy.get());
  ASSERT_NE(composite, nullptr);
  EXPECT_EQ(composite->part_count(), 2u);
  EXPECT_TRUE(composite->differentiable());
}

// ------------------------------------------------------------ composite proxy

TEST(CompositeProxy, MaxCombinationOverSlices) {
  struct Constant final : nn::Classifier {
    double value;
    explicit Constant(double v) : value(v) {}
    using nn::Classifier::predict;
    double predict(std::span<const double>, nn::ArithmeticContext&) const override {
      return value;
    }
    void fit(std::span<const nn::TrainSample>) override {}
    std::string_view name() const noexcept override { return "const"; }
    bool differentiable() const noexcept override { return false; }
  };
  std::vector<CompositeProxy::Part> parts;
  parts.push_back({std::make_unique<Constant>(0.2), 0, 2, 0.5});
  parts.push_back({std::make_unique<Constant>(0.7), 2, 2, 0.5});
  const CompositeProxy proxy(std::move(parts));
  const std::vector<double> x{0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(proxy.predict(x), 0.7);
  EXPECT_FALSE(proxy.differentiable());
  EXPECT_THROW(const_cast<CompositeProxy&>(proxy).fit({}), std::logic_error);
  const std::vector<double> too_short{0.0, 0.0};
  EXPECT_THROW((void)proxy.predict(too_short), std::invalid_argument);
}

TEST(CompositeProxy, RecalibrationMapsThresholdToHalf) {
  EXPECT_DOUBLE_EQ(CompositeProxy::recalibrate(0.7, 0.7), 0.5);
  EXPECT_DOUBLE_EQ(CompositeProxy::recalibrate(0.0, 0.7), 0.0);
  EXPECT_DOUBLE_EQ(CompositeProxy::recalibrate(1.0, 0.7), 1.0);
  EXPECT_LT(CompositeProxy::recalibrate(0.35, 0.7), 0.5);
  EXPECT_GT(CompositeProxy::recalibrate(0.85, 0.7), 0.5);
}

TEST(CompositeProxy, RejectsDegenerateParts) {
  EXPECT_THROW(CompositeProxy({}), std::invalid_argument);
}

// ----------------------------------------------------------------- evasion

TEST(Evasion, InjectPreservesOriginalInstructions) {
  // The add-only constraint: the original stream must appear as a
  // subsequence of the mutated one (the payload is never touched).
  const auto& fx = AttackFixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  const auto mutated =
      EvasionAttack::inject(original, trace::InsnCategory::kSimd, 500, 42);
  ASSERT_EQ(mutated.size(), original.size() + 500);
  std::size_t oi = 0;
  for (const trace::Instruction& insn : mutated) {
    if (oi < original.size() && insn.category == original[oi].category &&
        insn.mem_read == original[oi].mem_read && insn.mem_write == original[oi].mem_write &&
        insn.control == original[oi].control) {
      ++oi;
    }
  }
  EXPECT_EQ(oi, original.size());
}

TEST(Evasion, InjectIsDeterministicInSeed) {
  const auto& fx = AttackFixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  const auto a = EvasionAttack::inject(original, trace::InsnCategory::kMisc, 100, 7);
  const auto b = EvasionAttack::inject(original, trace::InsnCategory::kMisc, 100, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].category, b[i].category);
}

TEST(Evasion, InjectRangeStaysInsideWindow) {
  const auto& fx = AttackFixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  // Inject only into [1000, 2000): everything before index 1000 unchanged.
  const auto mutated =
      EvasionAttack::inject(original, trace::InsnCategory::kSimd, 300, 9, 1000, 2000);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(mutated[i].category, original[i].category);
  }
  EXPECT_EQ(mutated.size(), original.size() + 300);
}

TEST(Evasion, InjectMixFollowsProfile) {
  const auto& fx = AttackFixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  std::vector<double> mix(trace::kNumCategories, 0.0);
  mix[static_cast<std::size_t>(trace::InsnCategory::kSimd)] = 0.5;
  mix[static_cast<std::size_t>(trace::InsnCategory::kDataMovement)] = 0.5;
  const auto mutated = EvasionAttack::inject_mix(original, mix, 2000, 11);
  std::size_t simd = 0;
  std::size_t mov = 0;
  for (const auto& insn : mutated) {
    simd += insn.category == trace::InsnCategory::kSimd;
    mov += insn.category == trace::InsnCategory::kDataMovement;
  }
  std::size_t simd0 = 0;
  std::size_t mov0 = 0;
  for (const auto& insn : original) {
    simd0 += insn.category == trace::InsnCategory::kSimd;
    mov0 += insn.category == trace::InsnCategory::kDataMovement;
  }
  EXPECT_NEAR(static_cast<double>(simd - simd0), 1000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(mov - mov0), 1000.0, 100.0);
  const std::vector<double> bad_mix{0.5, 0.5};
  EXPECT_THROW((void)EvasionAttack::inject_mix(original, bad_mix, 10, 1),
               std::invalid_argument);
}

TEST(Evasion, BenignCategoryMixIsDistribution) {
  const auto& fx = AttackFixture::instance();
  const auto mix = benign_category_mix(fx.ds, fx.folds.attacker_training,
                                       fx.ds.config().periods[0]);
  ASSERT_EQ(mix.size(), trace::kNumCategories);
  double total = 0.0;
  for (double m : mix) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Evasion, CraftDrivesProxyScoreDown) {
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kMlp;
  rc.proxy_configs = {fx.fc};
  const auto proxy = re.run(victim, fx.folds.victim_training, fx.folds.testing, rc);

  // Find one malware test program the proxy flags.
  for (std::size_t idx : fx.folds.testing) {
    if (!fx.ds.samples()[idx].malware()) continue;
    const auto original = fx.ds.trace_of(idx);
    const double before =
        EvasionAttack::proxy_program_score(original, *proxy.proxy, rc.proxy_configs);
    if (before < 0.6) continue;
    EvasionConfig cfg;
    cfg.craft_threshold = proxy.craft_threshold;
    cfg.mimicry_mix = benign_category_mix(fx.ds, fx.folds.attacker_training, fx.fc.period);
    const EvasionAttack attack(cfg);
    const EvasionResult result = attack.craft(original, *proxy.proxy, rc.proxy_configs);
    EXPECT_LT(result.final_proxy_score, before);
    EXPECT_GT(result.injected, 0u);
    EXPECT_GE(result.trace.size(), original.size());
    return;
  }
  FAIL() << "no flagged malware program found";
}

TEST(Evasion, ConfigValidation) {
  EvasionConfig bad;
  bad.chunk_window_fraction = 0.0;
  EXPECT_THROW(EvasionAttack{bad}, std::invalid_argument);
  EvasionConfig bad2;
  bad2.max_rounds = 0;
  EXPECT_THROW(EvasionAttack{bad2}, std::invalid_argument);
}

// ----------------------------------------------------------- transferability

TEST(Transferability, StochasticVictimResistsTransfer) {
  // Fig. 4: evasion success collapses against the Stochastic-HMD compared
  // to the deterministic baseline.
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd baseline = fx.baseline;
  hmd::StochasticHmd stochastic(fx.baseline.network(), fx.fc, 0.2);

  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kMlp;
  rc.proxy_configs = {fx.fc};

  std::vector<std::size_t> malware_idx;
  for (std::size_t idx : fx.folds.testing) {
    if (fx.ds.samples()[idx].malware() && malware_idx.size() < 30) malware_idx.push_back(idx);
  }

  EvasionConfig ec;
  ec.mimicry_mix = benign_category_mix(fx.ds, fx.folds.attacker_training, fx.fc.period);

  const auto base_proxy = re.run(baseline, fx.folds.victim_training, fx.folds.testing, rc);
  EvasionConfig base_ec = ec;
  base_ec.craft_threshold = base_proxy.craft_threshold;
  const TransferabilityEval base_eval(fx.ds, base_ec);
  const auto base_result =
      base_eval.run(baseline, *base_proxy.proxy, malware_idx, rc.proxy_configs);

  const auto sto_proxy = re.run(stochastic, fx.folds.victim_training, fx.folds.testing, rc);
  EvasionConfig sto_ec = ec;
  sto_ec.craft_threshold = sto_proxy.craft_threshold;
  const TransferabilityEval sto_eval(fx.ds, sto_ec);
  const auto sto_result =
      sto_eval.run(stochastic, *sto_proxy.proxy, malware_idx, rc.proxy_configs);

  EXPECT_GT(base_result.proxy_evaded, 0u);
  EXPECT_GT(sto_result.detected_rate(), base_result.detected_rate());
  EXPECT_GT(sto_result.detected_rate(), 0.5);
}

TEST(Transferability, RatesAreConsistent) {
  TransferabilityResult r;
  r.malware_tested = 10;
  r.proxy_evaded = 8;
  r.transferred = 2;
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.25);
  EXPECT_DOUBLE_EQ(r.detected_rate(), 0.75);
  TransferabilityResult none;
  EXPECT_DOUBLE_EQ(none.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(none.detected_rate(), 1.0);
}

TEST(Transferability, OnlyMalwareIsAttacked) {
  const auto& fx = AttackFixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kLr;
  rc.proxy_configs = {fx.fc};
  const auto proxy = re.run(victim, fx.folds.victim_training, fx.folds.testing, rc);
  // Hand it a mixed list: benign entries must be skipped.
  std::vector<std::size_t> mixed;
  std::size_t expected_malware = 0;
  for (std::size_t idx : fx.folds.testing) {
    if (mixed.size() >= 10) break;
    mixed.push_back(idx);
    expected_malware += fx.ds.samples()[idx].malware();
  }
  const TransferabilityEval eval(fx.ds);
  const auto result = eval.run(victim, *proxy.proxy, mixed, rc.proxy_configs);
  EXPECT_EQ(result.malware_tested, expected_malware);
}

}  // namespace
}  // namespace shmd::attack
