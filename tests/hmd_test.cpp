#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"
#include "util/stats.hpp"

namespace shmd::hmd {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

/// Shared trained detectors (training once keeps the suite fast).
struct TrainedFixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);
  FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  BaselineHmd baseline;

  TrainedFixture()
      : baseline([&] {
          HmdTrainOptions opt;
          opt.train.epochs = 80;
          opt.train.l2 = 2e-3;  // soft scores even on the tiny test corpus
          return make_baseline(test::small_dataset(), test::small_dataset().folds(0).victim_training,
                               FeatureConfig{FeatureView::kInsnCategory,
                                             test::small_dataset().config().periods[0]},
                               opt);
        }()) {}

  static const TrainedFixture& instance() {
    static const TrainedFixture f;
    return f;
  }

  double accuracy(Detector& det) const {
    eval::ConfusionMatrix cm;
    for (std::size_t idx : folds.testing) {
      const auto& s = ds.samples()[idx];
      cm.add(s.malware(), det.detect(s.features));
    }
    return cm.accuracy();
  }
};

// ---------------------------------------------------------------- vote rule

TEST(FractionVote, MajorityAndThresholds) {
  const std::vector<double> scores{0.9, 0.9, 0.1, 0.1};
  EXPECT_FALSE(fraction_vote(scores, 0.5, 0.75));
  EXPECT_TRUE(fraction_vote(scores, 0.5, 0.5));
  EXPECT_TRUE(fraction_vote(scores, 0.5, 0.25));
}

TEST(FractionVote, EdgeCases) {
  EXPECT_THROW((void)fraction_vote({}, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW((void)fraction_vote({0.5}, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fraction_vote({0.5}, 0.5, 1.5), std::invalid_argument);
  EXPECT_TRUE(fraction_vote({0.5}, 0.5, 1.0));  // score == threshold counts
}

// ------------------------------------------------------------- baseline HMD

TEST(BaselineHmd, AchievesHighCleanAccuracy) {
  const auto& fx = TrainedFixture::instance();
  BaselineHmd det = fx.baseline;
  EXPECT_GT(fx.accuracy(det), 0.85);
}

TEST(BaselineHmd, IsDeterministic) {
  const auto& fx = TrainedFixture::instance();
  BaselineHmd det = fx.baseline;
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  EXPECT_EQ(det.window_scores(features), det.window_scores(features));
  EXPECT_EQ(det.window_scores(features), det.window_scores_nominal(features));
}

TEST(BaselineHmd, ProgramScoreIsMeanOfWindows) {
  const auto& fx = TrainedFixture::instance();
  BaselineHmd det = fx.baseline;
  const auto& features = fx.ds.samples()[fx.folds.testing[1]].features;
  const auto scores = det.window_scores(features);
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  EXPECT_NEAR(det.program_score(features), mean, 1e-12);
}

// ----------------------------------------------------------- stochastic HMD

TEST(StochasticHmd, ZeroErrorRateEqualsBaseline) {
  const auto& fx = TrainedFixture::instance();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  BaselineHmd base = fx.baseline;
  EXPECT_EQ(det.window_scores(features), base.window_scores(features));
}

TEST(StochasticHmd, ScoresVaryAcrossRuns) {
  // The moving-target property: same program, different verdict scores.
  const auto& fx = TrainedFixture::instance();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.2);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  const auto s1 = det.window_scores(features);
  const auto s2 = det.window_scores(features);
  EXPECT_NE(s1, s2);
  // The nominal path stays clean and constant.
  EXPECT_EQ(det.window_scores_nominal(features), det.window_scores_nominal(features));
}

namespace {
/// Mean accuracy over several detection rounds: the 60-sample test fold
/// makes one stochastic round's accuracy +-2 samples noisy, so the Fig.
/// 2(a) shape tests average fresh fault noise instead of betting on a
/// single RNG realization.
double mean_accuracy(const TrainedFixture& fx, Detector& det, int rounds = 8) {
  double total = 0.0;
  for (int r = 0; r < rounds; ++r) total += fx.accuracy(det);
  return total / rounds;
}
}  // namespace

TEST(StochasticHmd, SmallErrorRateCostsLittleAccuracy) {
  // Fig. 2(a): small accuracy loss at er = 0.1 (the paper reports <2% on
  // the full corpus; the tiny test corpus gives ~3-4%).
  const auto& fx = TrainedFixture::instance();
  BaselineHmd base = fx.baseline;
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.1);
  const double base_acc = fx.accuracy(base);
  const double sto_acc = mean_accuracy(fx, det);
  EXPECT_GT(sto_acc, base_acc - 0.06);
}

TEST(StochasticHmd, AccuracyDegradesMonotonicallyOnAverage) {
  // Fig. 2(a) shape: low er barely hurts, er -> 1 collapses accuracy.
  const auto& fx = TrainedFixture::instance();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  det.set_error_rate(0.05);
  const double acc_low = mean_accuracy(fx, det);
  det.set_error_rate(1.0);
  const double acc_high = mean_accuracy(fx, det);
  EXPECT_GT(acc_low, acc_high + 0.08);
  EXPECT_GT(acc_high, 0.3);  // never collapses below random-ish
}

TEST(StochasticHmd, FaultStatsAccumulateDuringInference) {
  const auto& fx = TrainedFixture::instance();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.5);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  (void)det.window_scores(features);
  EXPECT_GT(det.fault_stats().operations, 0u);
  EXPECT_GT(det.fault_stats().faults, 0u);
  EXPECT_NEAR(det.fault_stats().fault_rate(), 0.5, 0.05);
}

TEST(StochasticHmd, VoltageDrivenModeUsesGuardAndRestoresRail) {
  const auto& fx = TrainedFixture::instance();
  volt::MsrInterface msr;
  volt::VoltageDomain domain(msr, 0, volt::VoltFaultModel(volt::DeviceProfile{}), 49.0);
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  const double offset = domain.model().offset_for_error_rate(0.1, 49.0);
  det.attach_domain(domain, offset);
  EXPECT_TRUE(det.voltage_driven());

  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  (void)det.window_scores(features);
  // Rail back at nominal after the detection burst (TEE exit semantics).
  EXPECT_NEAR(domain.offset_mv(), 0.0, 0.5);
  // The burst ran at the voltage-derived error rate (visible in the fault
  // statistics)...
  EXPECT_NEAR(det.fault_stats().fault_rate(), 0.1, 0.02);
  // ...and the configured direct-er rate is restored once it ends.
  EXPECT_DOUBLE_EQ(det.error_rate(), 0.0);
  det.detach_domain();
  EXPECT_FALSE(det.voltage_driven());
}

TEST(StochasticHmd, DetachDomainRestoresConfiguredErrorRate) {
  // Regression: scoring under an attached domain used to leave the last
  // domain-derived rate on the injector, so post-detach scoring silently
  // ran at the wrong (stale) operating point.
  const auto& fx = TrainedFixture::instance();
  volt::MsrInterface msr;
  volt::VoltageDomain domain(msr, 0, volt::VoltFaultModel(volt::DeviceProfile{}), 49.0);
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.05);
  const double offset = domain.model().offset_for_error_rate(0.4, 49.0);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;

  det.attach_domain(domain, offset);
  (void)det.window_scores(features);
  const faultsim::FaultStats domain_stats = det.fault_stats();
  // The burst applied the domain-derived rate, not the configured one.
  EXPECT_NEAR(domain_stats.fault_rate(), 0.4, 0.05);

  det.detach_domain();
  EXPECT_DOUBLE_EQ(det.error_rate(), 0.05);
  // Post-detach scoring runs at the configured rate again: the marginal
  // fault rate of the next burst drops back to ~0.05.
  (void)det.window_scores(features);
  const faultsim::FaultStats& after = det.fault_stats();
  const double marginal_rate =
      static_cast<double>(after.faults - domain_stats.faults) /
      static_cast<double>(after.operations - domain_stats.operations);
  EXPECT_NEAR(marginal_rate, 0.05, 0.03);

  // The single-window query primitive takes the same save/restore path.
  det.attach_domain(domain, offset);
  (void)det.score_window(features.windows(fx.fc).front());
  det.detach_domain();
  EXPECT_DOUBLE_EQ(det.error_rate(), 0.05);
}

TEST(StochasticHmd, VoltageDrivenUnderExclusiveControl) {
  const auto& fx = TrainedFixture::instance();
  volt::MsrInterface msr;
  volt::VoltageDomain domain(msr, 0, volt::VoltFaultModel(volt::DeviceProfile{}), 49.0);
  const std::uint64_t token = domain.acquire_exclusive();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  det.attach_domain(domain, -115.0, token);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  EXPECT_NO_THROW((void)det.window_scores(features));
  // Without the token the detection path is rejected by the rail.
  det.attach_domain(domain, -115.0);
  EXPECT_THROW((void)det.window_scores(features), volt::VoltageControlError);
}

TEST(StochasticHmd, ConfidenceSpreadGrowsWithErrorRate) {
  // Fig. 2(b): higher er → wider score distribution. Measured per window:
  // repeat the same inference and track the spread of its score.
  const auto& fx = TrainedFixture::instance();
  StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  const auto spread = [&](double er) {
    det.set_error_rate(er);
    const auto& s = fx.ds.samples()[fx.folds.testing[0]];
    const std::size_t n_windows = det.window_scores_nominal(s.features).size();
    std::vector<util::RunningStats> per_window(n_windows);
    for (int rep = 0; rep < 12; ++rep) {
      const auto scores = det.window_scores(s.features);
      for (std::size_t w = 0; w < n_windows; ++w) per_window[w].add(scores[w]);
    }
    double mean_spread = 0.0;
    for (const auto& rs : per_window) mean_spread += rs.stddev();
    return mean_spread / static_cast<double>(n_windows);
  };
  const double s01 = spread(0.1);
  const double s05 = spread(0.5);
  EXPECT_DOUBLE_EQ(spread(0.0), 0.0);
  EXPECT_GT(s05, s01);
  EXPECT_GT(s01, 0.0);
}

// --------------------------------------------------------------------- RHMD

TEST(Rhmd, ConstructionsHaveExpectedBaseCounts) {
  EXPECT_EQ(rhmd_2f(2048).configs.size(), 2u);
  EXPECT_EQ(rhmd_3f(2048).configs.size(), 3u);
  EXPECT_EQ(rhmd_2f2p(2048, 4096).configs.size(), 4u);
  EXPECT_EQ(rhmd_3f2p(2048, 4096).configs.size(), 6u);
}

TEST(Rhmd, RequiresNestingPeriods) {
  const auto& fx = TrainedFixture::instance();
  std::vector<Rhmd::Base> bases;
  bases.push_back(Rhmd::Base{FeatureConfig{FeatureView::kInsnCategory, 2048},
                             fx.baseline.network()});
  bases.push_back(Rhmd::Base{FeatureConfig{FeatureView::kInsnCategory, 3000},
                             fx.baseline.network()});
  EXPECT_THROW(Rhmd("bad", std::move(bases)), std::invalid_argument);
  EXPECT_THROW(Rhmd("empty", {}), std::invalid_argument);
}

TEST(Rhmd, SwitchingMakesScoresStochastic) {
  const auto& fx = TrainedFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 60;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training,
                       rhmd_2f(fx.ds.config().periods[0]), opt);
  EXPECT_EQ(det.n_base_detectors(), 2u);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  // Over several runs, the random selection must produce at least two
  // distinct score vectors.
  const auto first = det.window_scores(features);
  bool differs = false;
  for (int i = 0; i < 8 && !differs; ++i) differs = det.window_scores(features) != first;
  EXPECT_TRUE(differs);
}

TEST(Rhmd, NominalScoresAreEnsembleAverageAndStable) {
  const auto& fx = TrainedFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 60;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training,
                       rhmd_2f(fx.ds.config().periods[0]), opt);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  EXPECT_EQ(det.window_scores_nominal(features), det.window_scores_nominal(features));
}

TEST(Rhmd, TwoPeriodConstructionUsesLargestEpoch) {
  const auto& fx = TrainedFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 40;
  const auto periods = fx.ds.config().periods;
  Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training, rhmd_2f2p(periods[0], periods[1]), opt);
  EXPECT_EQ(det.epoch_period(), periods[1]);
  const auto& features = fx.ds.samples()[fx.folds.testing[0]].features;
  EXPECT_EQ(det.window_scores(features).size(), fx.ds.config().trace_length / periods[1]);
}

TEST(Rhmd, ReasonableAccuracyAcrossConstructions) {
  // Fig. 6: all constructions stay within a few points of the baseline.
  const auto& fx = TrainedFixture::instance();
  HmdTrainOptions opt;
  opt.train.epochs = 60;
  const auto periods = fx.ds.config().periods;
  for (const auto& construction :
       {rhmd_2f(periods[0]), rhmd_3f(periods[0]), rhmd_2f2p(periods[0], periods[1])}) {
    Rhmd det = make_rhmd(fx.ds, fx.folds.victim_training, construction, opt);
    EXPECT_GT(fx.accuracy(det), 0.75) << construction.name;
  }
}

}  // namespace
}  // namespace shmd::hmd
