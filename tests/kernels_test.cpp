// Property tests for the lane-blocked kernel tables (src/nn/kernels/):
// the dispatched table must equal the portable reference BIT-FOR-BIT on
// every determinate value — infinities, denormals, signed zero, the same
// non-finite care the Q16.47 to_q fix needed — with NaN results matching
// as "both NaN" (payload/sign unspecified per the kernels.hpp carve-out;
// ASan builds surfaced real scalar-vs-vector payload divergence) — and
// the lane-blocked sum must stay within the standard summation-error
// envelope of the naive ascending sum it replaced.
//
// On the tolerance: the issue's "within 1 ULP" phrasing is NOT achievable
// for a reassociated sum — two summation orders over n random terms
// differ by a rounding-error random walk of order n·eps·Σ|w_i·x_i|, tens
// of ULPs of the result at n = 5000 — and no correct implementation could
// pass it. What IS guaranteed (Higham, Accuracy and Stability of
// Numerical Algorithms, §4.2: any summation order has forward error
// ≤ (n-1)·u·Σ|terms| to first order) is that both orders sit within that
// envelope of the true sum, so they sit within twice it of each other.
// The bit-for-bit property against the portable reference is the strong
// contract; the envelope property pins the lane-blocked sum to the
// ascending one it replaced.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nn/kernels/kernels.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::nn::kernels {
namespace {

/// The contract's equality: bit-for-bit for every determinate value
/// (+0 != -0, denormals and infinities exact), with the documented NaN
/// carve-out — a NaN matches any NaN, because IEEE 754 leaves the
/// propagated payload/sign to the implementation and scalar vs vector
/// codegen legally disagree (see kernels.hpp).
bool same_bits(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Random operand vector seasoned with the special values the Q16.47
/// path had to learn to pass through: NaN, ±inf, denormals, signed zero.
std::vector<double> seasoned_vector(std::size_t n, rng::Xoshiro256ss& gen, bool specials) {
  std::vector<double> v(n);
  for (double& x : v) x = gen.uniform(-3.0, 3.0);
  if (!specials || n == 0) return v;
  const auto pick = [&] { return static_cast<std::size_t>(gen() % n); };
  v[pick()] = std::numeric_limits<double>::quiet_NaN();
  v[pick()] = std::numeric_limits<double>::infinity();
  v[pick()] = -std::numeric_limits<double>::infinity();
  v[pick()] = std::numeric_limits<double>::denorm_min();
  v[pick()] = -4.9406564584124654e-320;  // subnormal
  v[pick()] = -0.0;
  return v;
}

std::vector<std::size_t> sweep_lengths(rng::Xoshiro256ss& gen) {
  // Every tail phase 0..16, then random lengths up to the issue's 5000.
  std::vector<std::size_t> lens;
  for (std::size_t n = 0; n <= 16; ++n) lens.push_back(n);
  for (int i = 0; i < 24; ++i) lens.push_back(17 + gen() % 4984);
  return lens;
}

TEST(Kernels, ActiveDotMatchesPortableBitForBitIncludingSpecials) {
  const KernelTable& act = active();
  const KernelTable& ref = portable_table();
  rng::Xoshiro256ss gen(0xD07);
  for (const bool specials : {false, true}) {
    for (const std::size_t n : sweep_lengths(gen)) {
      const std::vector<double> w = seasoned_vector(n, gen, specials);
      const std::vector<double> x = seasoned_vector(n, gen, specials);
      const double got = act.dot(w.data(), x.data(), n);
      const double want = ref.dot(w.data(), x.data(), n);
      EXPECT_TRUE(same_bits(got, want))
          << act.name << " vs portable, n=" << n << " specials=" << specials << " got=" << got
          << " want=" << want;
    }
  }
}

TEST(Kernels, ActiveGemmMatchesPerRowPortableDotBitForBit) {
  // The gemm contract: y[r, o] = bias[o] + dot(w_o, x_r), bit-identical
  // to assembling the tile from standalone portable dots — reblocking may
  // reorder independent accumulators only.
  const KernelTable& act = active();
  const KernelTable& ref = portable_table();
  rng::Xoshiro256ss gen(0x6E33);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t rows = 1 + gen() % 9;  // crosses the 4-row blocking boundary
    const std::size_t in_dim = gen() % 67;
    const std::size_t out_dim = 1 + gen() % 9;
    const bool specials = (iter % 3) == 0 && in_dim > 0;
    const std::vector<double> w = seasoned_vector(out_dim * in_dim, gen, specials);
    const std::vector<double> bias = seasoned_vector(out_dim, gen, false);
    const std::vector<double> x = seasoned_vector(rows * in_dim, gen, specials);
    std::vector<double> y(rows * out_dim, 42.0);
    act.gemm(w.data(), bias.data(), x.data(), rows, in_dim, out_dim, y.data());
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t o = 0; o < out_dim; ++o) {
        const double want = bias[o] + ref.dot(w.data() + o * in_dim, x.data() + r * in_dim, in_dim);
        EXPECT_TRUE(same_bits(y[r * out_dim + o], want))
            << act.name << " r=" << r << " o=" << o << " rows=" << rows << " in=" << in_dim;
      }
    }
  }
}

TEST(Kernels, Avx2TableAgreesWithPortableWhenRunnable) {
  // Redundant with the Active* tests whenever dispatch picked AVX2, but
  // this pins the claim even under SHMD_FORCE_PORTABLE (where active()
  // is the portable table and the AVX2 code would otherwise go untested).
  const KernelTable* avx2 = avx2_if_supported();
  if (avx2 == nullptr) GTEST_SKIP() << "no runnable AVX2 kernel on this host";
  const KernelTable& ref = portable_table();
  rng::Xoshiro256ss gen(0xA2);
  for (const std::size_t n : sweep_lengths(gen)) {
    const std::vector<double> w = seasoned_vector(n, gen, true);
    const std::vector<double> x = seasoned_vector(n, gen, true);
    EXPECT_TRUE(same_bits(avx2->dot(w.data(), x.data(), n), ref.dot(w.data(), x.data(), n)))
        << "n=" << n;
    // accumulate_blocks from a non-trivial running state, as the faulty
    // span kernel uses it between fault sites.
    Acc4 a{{0.125, -3.5, 1e-300, 7.0}};
    Acc4 b = a;
    ref.accumulate_blocks(w.data(), x.data(), n / kLanes, a);
    avx2->accumulate_blocks(w.data(), x.data(), n / kLanes, b);
    for (std::size_t k = 0; k < kLanes; ++k) {
      EXPECT_TRUE(same_bits(a.lane[k], b.lane[k])) << "n=" << n << " lane=" << k;
    }
  }
}

TEST(Kernels, LaneBlockedSumStaysInTheAscendingErrorEnvelope) {
  const KernelTable& act = active();
  rng::Xoshiro256ss gen(0x51);
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  for (const std::size_t n : sweep_lengths(gen)) {
    const std::vector<double> w = seasoned_vector(n, gen, false);
    const std::vector<double> x = seasoned_vector(n, gen, false);
    double ascending = 0.0;
    double abs_terms = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ascending += w[i] * x[i];
      abs_terms += std::abs(w[i] * x[i]);
    }
    // Twice the (n-1)·u·Σ|terms| forward bound (one envelope per order),
    // with slack for the second-order terms the bound drops.
    const double tol = 4.0 * static_cast<double>(n) * kEps * abs_terms +
                       std::numeric_limits<double>::denorm_min();
    EXPECT_NEAR(act.dot(w.data(), x.data(), n), ascending, tol) << "n=" << n;
  }
}

TEST(Kernels, DispatchIsLatchedAndNamed) {
  const KernelTable& first = active();
  EXPECT_TRUE(std::string(first.name) == "avx2" || std::string(first.name) == "portable");
  EXPECT_EQ(&first, &active()) << "dispatch must latch one table per process";
  EXPECT_EQ(std::string(portable_table().name), "portable");
}

}  // namespace
}  // namespace shmd::nn::kernels
