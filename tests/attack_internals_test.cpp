#include <gtest/gtest.h>

#include <cmath>

#include "attack/evasion.hpp"
#include "attack/reverse_engineer.hpp"
#include "nn/logistic_regression.hpp"
#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"

namespace shmd::attack {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

struct Fixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);
  FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::BaselineHmd baseline;

  Fixture()
      : baseline([&] {
          hmd::HmdTrainOptions opt;
          opt.train.epochs = 60;
          return hmd::make_baseline(test::small_dataset(),
                                    test::small_dataset().folds(0).victim_training,
                                    FeatureConfig{FeatureView::kInsnCategory,
                                                  test::small_dataset().config().periods[0]},
                                    opt);
        }()) {}

  static const Fixture& instance() {
    static const Fixture f;
    return f;
  }
};

TEST(EvasionInternals, ProxyProgramScoreMatchesManualMean) {
  const auto& fx = Fixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kLr;
  rc.proxy_configs = {fx.fc};
  const auto proxy = re.run(victim, fx.folds.victim_training, fx.folds.testing, rc);

  const auto trace_data = fx.ds.trace_of(fx.folds.testing[0]);
  const double score =
      EvasionAttack::proxy_program_score(trace_data, *proxy.proxy, rc.proxy_configs);

  const auto windows = trace::extract_windows(trace_data, fx.fc.view, fx.fc.period);
  double manual = 0.0;
  for (const auto& w : windows) manual += proxy.proxy->predict(w);
  manual /= static_cast<double>(windows.size());
  EXPECT_NEAR(score, manual, 1e-12);
}

TEST(EvasionInternals, CraftIsDeterministicInSeed) {
  const auto& fx = Fixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kLr;
  rc.proxy_configs = {fx.fc};
  const auto proxy = re.run(victim, fx.folds.victim_training, fx.folds.testing, rc);

  std::size_t malware_idx = 0;
  for (std::size_t idx : fx.folds.testing) {
    if (fx.ds.samples()[idx].malware()) {
      malware_idx = idx;
      break;
    }
  }
  const auto original = fx.ds.trace_of(malware_idx);
  EvasionConfig cfg;
  cfg.seed = 1234;
  cfg.max_rounds = 10;
  const EvasionAttack attack(cfg);
  const auto a = attack.craft(original, *proxy.proxy, rc.proxy_configs);
  const auto b = attack.craft(original, *proxy.proxy, rc.proxy_configs);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i].category, b.trace[i].category) << i;
  }
}

TEST(EvasionInternals, InjectedCountMatchesBudgetAccounting) {
  const auto& fx = Fixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  const auto mutated =
      EvasionAttack::inject(original, trace::InsnCategory::kMisc, 1234, 99);
  EXPECT_EQ(mutated.size() - original.size(), 1234u);
}

TEST(EvasionInternals, ZeroCountInjectionIsIdentity) {
  const auto& fx = Fixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  const auto mutated = EvasionAttack::inject(original, trace::InsnCategory::kMisc, 0, 1);
  ASSERT_EQ(mutated.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(mutated[i].category, original[i].category);
  }
}

TEST(EvasionInternals, CraftRejectsEmptyProxyConfigs) {
  const auto& fx = Fixture::instance();
  const auto original = fx.ds.trace_of(fx.folds.testing[0]);
  nn::LogisticRegression lr;
  const EvasionAttack attack;
  EXPECT_THROW((void)attack.craft(original, lr, {}), std::invalid_argument);
}

TEST(ReverseEngineerInternals, EffectivenessOfSelfIsPerfect) {
  // Sanity bound: a "proxy" that IS the victim's own model must agree with
  // the live baseline victim everywhere.
  const auto& fx = Fixture::instance();
  hmd::BaselineHmd victim = fx.baseline;
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t idx : fx.folds.testing) {
    const auto& s = fx.ds.samples()[idx];
    const auto live = victim.window_scores(s.features);
    const auto& windows = s.features.windows(fx.fc);
    for (std::size_t w = 0; w < windows.size(); ++w) {
      agree += (live[w] >= 0.5) == (victim.network().forward(windows[w])[0] >= 0.5);
      ++total;
    }
  }
  EXPECT_EQ(agree, total);
}

TEST(ReverseEngineerInternals, QueryCountScalesWithRepeats) {
  const auto& fx = Fixture::instance();
  hmd::StochasticHmd victim(fx.baseline.network(), fx.fc, 0.2);
  ReverseEngineer re(fx.ds);
  ReverseEngineerConfig rc;
  rc.kind = ProxyKind::kLr;
  rc.proxy_configs = {fx.fc};
  const auto single = re.run(victim, fx.folds.attacker_training, fx.folds.testing, rc);
  rc.repeat_queries = 4;
  rc.label_rule = ReverseEngineerConfig::LabelRule::kMajority;
  const auto repeated = re.run(victim, fx.folds.attacker_training, fx.folds.testing, rc);
  EXPECT_EQ(repeated.query_count, 4 * single.query_count);
}

TEST(ReverseEngineerInternals, MimicryMixRequiresBenignPrograms) {
  const auto& fx = Fixture::instance();
  // An index list with only malware must be rejected.
  std::vector<std::size_t> malware_only;
  for (std::size_t idx : fx.folds.testing) {
    if (fx.ds.samples()[idx].malware()) malware_only.push_back(idx);
  }
  EXPECT_THROW((void)benign_category_mix(fx.ds, malware_only, fx.fc.period),
               std::invalid_argument);
}

}  // namespace
}  // namespace shmd::attack
