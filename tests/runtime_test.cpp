// Tests for the batch inference runtime: the determinism contract (same
// seed + same worker count => bit-identical scores), jump()-derived stream
// independence, per-worker fault-statistics merging, and the
// allocation-free steady state of the scratch forward path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <unordered_set>

#include "hmd/builders.hpp"
#include "runtime/batch_scorer.hpp"
#include "runtime/thread_pool.hpp"
#include "support/test_corpus.hpp"

// Allocation probe: global operator new replacement counting every heap
// allocation in the process. The zero-allocation test snapshots the
// counter around a steady-state forward loop.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace shmd::runtime {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

/// Shared trained detector + a batch of testing-fold feature sets.
struct RuntimeFixture {
  const trace::Dataset& ds = test::small_dataset();
  trace::FoldSplit folds = ds.folds(0);
  FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::BaselineHmd baseline;
  std::vector<const trace::FeatureSet*> batch;

  RuntimeFixture()
      : baseline([&] {
          hmd::HmdTrainOptions opt;
          opt.train.epochs = 60;
          return hmd::make_baseline(test::small_dataset(),
                                    test::small_dataset().folds(0).victim_training,
                                    FeatureConfig{FeatureView::kInsnCategory,
                                                  test::small_dataset().config().periods[0]},
                                    opt);
        }()) {
    for (std::size_t idx : folds.testing) {
      batch.push_back(&ds.samples()[idx].features);
      if (batch.size() >= 24) break;
    }
  }

  static const RuntimeFixture& instance() {
    static const RuntimeFixture f;
    return f;
  }
};

// -------------------------------------------------------------- thread pool

TEST(WorkerSlice, TilesAllItemsExactlyOnce) {
  for (std::size_t n_items : {0u, 1u, 7u, 24u, 100u}) {
    for (std::size_t n_workers : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t w = 0; w < n_workers; ++w) {
        const Slice s = worker_slice(n_items, w, n_workers);
        EXPECT_EQ(s.begin, prev_end);
        EXPECT_LE(s.end, n_items);
        covered += s.end - s.begin;
        prev_end = s.end;
      }
      EXPECT_EQ(covered, n_items) << n_items << "/" << n_workers;
      EXPECT_EQ(prev_end, n_items);
    }
  }
}

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(4, 0);
  pool.run([&](std::size_t w) { hits[w] += 1; });
  pool.run([&](std::size_t w) { hits[w] += 1; });
  for (int h : hits) EXPECT_EQ(h, 2);
}

TEST(ThreadPool, RejectsImplausibleWorkerCounts) {
  // A negative CLI value cast to size_t must fail with a clear error, not
  // a length_error from deep inside vector::reserve.
  EXPECT_THROW(ThreadPool(static_cast<std::size_t>(-1)), std::invalid_argument);
  EXPECT_THROW(ThreadPool(ThreadPool::kMaxWorkers + 1), std::invalid_argument);
}

TEST(ThreadPool, PropagatesWorkerExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run([](std::size_t w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.run([&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RepeatedRethrowThenReuseCyclesStayConsistent) {
  // Regression guard for the rethrow path's bookkeeping: first_error_ and
  // pending_ must reset fully on every run(), including runs where
  // SEVERAL workers throw concurrently (only the first exception
  // propagates; the rest must be swallowed without corrupting the next
  // generation).
  ThreadPool pool(4);
  for (int cycle = 0; cycle < 8; ++cycle) {
    EXPECT_THROW(pool.run([](std::size_t w) {
                   if (w % 2 == 0) throw std::runtime_error("cycle boom");
                 }),
                 std::runtime_error)
        << "cycle " << cycle;
    std::atomic<int> ran{0};
    pool.run([&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4) << "cycle " << cycle;
  }
}

TEST(ResolveWorkers, ZeroMeansAllCoresAndExplicitCountsPassThrough) {
  // Shared by ThreadPool, BatchScorer and serve::ScoringService — "0 =
  // all cores" must mean the same thing everywhere.
  EXPECT_EQ(resolve_workers(0),
            std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  EXPECT_EQ(resolve_workers(1), 1u);
  EXPECT_EQ(resolve_workers(7), 7u);
}

// -------------------------------------------------------- stream discipline

TEST(WorkerStreams, JumpDerivedStreamsDoNotOverlap) {
  // The runtime derives worker w's stream by jumping a base generator w
  // times. Over 10^5 draws per stream, the outputs must be pairwise
  // disjoint (jump() advances 2^128 steps, so any overlap is a bug).
  constexpr std::size_t kDraws = 100000;
  rng::Xoshiro256ss base(0xBA7C4ULL);
  rng::Xoshiro256ss s0 = base;
  rng::Xoshiro256ss s1 = base;
  s1.jump();
  rng::Xoshiro256ss s2 = s1;
  s2.jump();

  std::unordered_set<std::uint64_t> seen0;
  seen0.reserve(kDraws * 2);
  for (std::size_t i = 0; i < kDraws; ++i) seen0.insert(s0());
  std::size_t collisions = 0;
  std::unordered_set<std::uint64_t> seen1;
  seen1.reserve(kDraws * 2);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::uint64_t x = s1();
    collisions += seen0.count(x);
    seen1.insert(x);
  }
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::uint64_t x = s2();
    collisions += seen0.count(x);
    collisions += seen1.count(x);
  }
  EXPECT_EQ(collisions, 0u);
}

// -------------------------------------------------------------- BatchScorer

TEST(BatchScorer, SameSeedAndWorkerCountIsBitIdentical) {
  const auto& fx = RuntimeFixture::instance();
  hmd::StochasticHmd det(fx.baseline.network(), fx.fc, 0.3);
  RuntimeConfig rt;
  rt.num_workers = 4;
  rt.seed = 99;
  BatchScorer first(det, rt);
  BatchScorer second(det, rt);
  const auto scores_a = first.score_batch(fx.batch);
  const auto scores_b = second.score_batch(fx.batch);
  EXPECT_EQ(scores_a, scores_b);
  // Consecutive batches draw fresh fault noise from the same streams —
  // the moving-target property survives batching.
  EXPECT_NE(first.score_batch(fx.batch), scores_a);
}

TEST(BatchScorer, ZeroErrorRateMatchesNominalScores) {
  const auto& fx = RuntimeFixture::instance();
  hmd::StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  RuntimeConfig rt;
  rt.num_workers = 3;
  BatchScorer scorer(det, rt);
  const auto scores = scorer.score_batch(fx.batch);
  ASSERT_EQ(scores.size(), fx.batch.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], det.window_scores_nominal(*fx.batch[i])) << i;
  }
}

TEST(BatchScorer, TracksDetectorErrorRateAcrossSweeps) {
  // Space-exploration usage: set_error_rate() between batches must take
  // effect without rebuilding the scorer.
  const auto& fx = RuntimeFixture::instance();
  hmd::StochasticHmd det(fx.baseline.network(), fx.fc, 0.0);
  RuntimeConfig rt;
  rt.num_workers = 2;
  BatchScorer scorer(det, rt);
  (void)scorer.score_batch(fx.batch);
  EXPECT_EQ(scorer.merged_stats().faults, 0u);
  det.set_error_rate(0.5);
  (void)scorer.score_batch(fx.batch);
  const auto stats = scorer.merged_stats();
  EXPECT_GT(stats.faults, 0u);
  // Half the operations came from the er=0 batch, so the pooled rate sits
  // near 0.25.
  EXPECT_NEAR(stats.fault_rate(), 0.25, 0.05);
}

TEST(BatchScorer, MergedStatsEqualSumOfWorkerStats) {
  const auto& fx = RuntimeFixture::instance();
  hmd::StochasticHmd det(fx.baseline.network(), fx.fc, 0.5);
  RuntimeConfig rt;
  rt.num_workers = 3;
  BatchScorer scorer(det, rt);
  (void)scorer.score_batch(fx.batch);

  faultsim::FaultStats manual;
  bool multiple_workers_ran = false;
  for (std::size_t w = 0; w < scorer.num_workers(); ++w) {
    manual.merge(scorer.worker_stats(w));
    if (w > 0 && scorer.worker_stats(w).operations > 0) multiple_workers_ran = true;
  }
  const faultsim::FaultStats merged = scorer.merged_stats();
  EXPECT_EQ(merged.operations, manual.operations);
  EXPECT_EQ(merged.faults, manual.faults);
  EXPECT_EQ(merged.bit_flips, manual.bit_flips);
  EXPECT_TRUE(multiple_workers_ran);

  // Every window of every batch item passed through exactly one worker:
  // total operations = windows x MACs-per-inference.
  std::size_t windows = 0;
  for (const trace::FeatureSet* fs : fx.batch) windows += fs->windows(fx.fc).size();
  EXPECT_EQ(merged.operations, windows * det.network().mac_count());
}

TEST(BatchScorer, DetectBatchMatchesFractionVoteOverScores) {
  const auto& fx = RuntimeFixture::instance();
  hmd::StochasticHmd det(fx.baseline.network(), fx.fc, 0.1);
  RuntimeConfig rt;
  rt.num_workers = 2;
  rt.seed = 7;
  BatchScorer scoring(det, rt);
  BatchScorer detecting(det, rt);  // same seed: same underlying scores
  const auto scores = scoring.score_batch(fx.batch);
  const auto verdicts = detecting.detect_batch(fx.batch);
  ASSERT_EQ(verdicts.size(), scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(verdicts[i], hmd::fraction_vote(scores[i], 0.5, 0.5)) << i;
  }
}

// ---------------------------------------------------------- RhmdBatchScorer

TEST(RhmdBatchScorer, ReproducibleAndPlausible) {
  const auto& fx = RuntimeFixture::instance();
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 40;
  const hmd::Rhmd rhmd = hmd::make_rhmd(fx.ds, fx.folds.victim_training,
                                        hmd::rhmd_2f(fx.ds.config().periods[0]), opt);
  RuntimeConfig rt;
  rt.num_workers = 3;
  RhmdBatchScorer first(rhmd, rt);
  RhmdBatchScorer second(rhmd, rt);
  const auto scores_a = first.score_batch(fx.batch);
  EXPECT_EQ(scores_a, second.score_batch(fx.batch));
  ASSERT_EQ(scores_a.size(), fx.batch.size());
  for (std::size_t i = 0; i < scores_a.size(); ++i) {
    EXPECT_EQ(scores_a[i].size(), fx.batch[i]->windows(fx.fc).size()) << i;
    for (double s : scores_a[i]) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

// ------------------------------------------------------ allocation-free path

TEST(ForwardScratch, SteadyStateForwardIsAllocationFree) {
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  faultsim::FaultInjector inj(0.5, faultsim::BitFaultDistribution::measured());
  nn::FaultyContext ctx(inj);
  const std::vector<double> x(16, 0.3);
  nn::ForwardScratch scratch;
  (void)net.forward(x, ctx, scratch);  // warm-up: buffers grow here only

  double acc = 0.0;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 512; ++i) acc += net.forward(x, ctx, scratch)[0];
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state forward must not touch the heap (acc=" << acc
                           << ")";
}

}  // namespace
}  // namespace shmd::runtime
