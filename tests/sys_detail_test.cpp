#include <gtest/gtest.h>

#include <cmath>

#include "sys/energy_meter.hpp"
#include "sys/latency_model.hpp"
#include "sys/power_model.hpp"
#include "trace/hpc_collector.hpp"

namespace shmd {
namespace {

TEST(LatencyDetail, CyclesToMicrosecondsAtModelFrequency) {
  sys::LatencyModel lat;  // 2.2 GHz
  EXPECT_DOUBLE_EQ(lat.cycles_to_us(2200.0), 1.0);
  EXPECT_DOUBLE_EQ(lat.cycles_to_us(0.0), 0.0);
}

TEST(LatencyDetail, InferenceScalesLinearlyWithMacs) {
  sys::LatencyModel lat;
  const std::vector<std::size_t> small{16, 8, 1};
  const std::vector<std::size_t> large{16, 80, 1};
  const nn::Network a(small, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  const nn::Network b(large, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  const double fixed = lat.cycles_to_us(lat.config().fixed_overhead_cycles);
  const double per_mac_a = (lat.inference_us(a) - fixed) / static_cast<double>(a.mac_count());
  const double per_mac_b = (lat.inference_us(b) - fixed) / static_cast<double>(b.mac_count());
  EXPECT_NEAR(per_mac_a, per_mac_b, 1e-12);
}

TEST(EnergyDetail, AveragePowerOfSampleIsEnergyOverTime) {
  sys::EnergySample s{2.0, 30.0};
  EXPECT_DOUBLE_EQ(s.average_power_w(), 15.0);
  sys::EnergySample zero{0.0, 10.0};
  EXPECT_DOUBLE_EQ(zero.average_power_w(), 0.0);
}

TEST(PowerDetail, LeakageExponentControlsLowVoltageFloor) {
  sys::PowerModelConfig cubic;
  cubic.leakage_exponent = 3.0;
  sys::PowerModelConfig linear;
  linear.leakage_exponent = 1.0;
  const sys::PowerModel pm_cubic(cubic);
  const sys::PowerModel pm_linear(linear);
  // Same at nominal, cubic drops faster at deep undervolt.
  EXPECT_NEAR(pm_cubic.power_w(1.18), pm_linear.power_w(1.18), 1e-9);
  EXPECT_LT(pm_cubic.power_w(0.7), pm_linear.power_w(0.7));
}

TEST(HpcDetail, FullCounterComplementDisablesMultiplexError) {
  // With >= 16 physical counters nothing is multiplexed: variance across
  // runs comes only from skid, which is small.
  trace::HpcConfig cfg;
  cfg.physical_counters = 16;
  cfg.contamination_prob = 0.0;
  const trace::HpcCollector hpc(cfg);
  const trace::Program program(0, trace::Family::kBrowser, 3);
  const auto a = hpc.collect_frequencies(program, 4096, 1);
  const auto b = hpc.collect_frequencies(program, 4096, 2);
  double max_diff = 0.0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    max_diff = std::max(max_diff, std::abs(a[c] - b[c]));
  }
  EXPECT_LT(max_diff, 0.01);  // skid-only wiggle
}

}  // namespace
}  // namespace shmd
