#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "faultsim/bit_fault_distribution.hpp"
#include "faultsim/fault_injector.hpp"
#include "faultsim/faulty_alu.hpp"
#include "faultsim/fixed_point.hpp"
#include "rng/entropy.hpp"

namespace shmd::faultsim {
namespace {

// ---------------------------------------------------------------- fixed point

TEST(FixedPoint, RoundTripsTypicalProducts) {
  for (double x : {0.0, 1.0, -1.0, 0.125, -3.75, 1000.0, -0.0009765625}) {
    EXPECT_NEAR(from_q(to_q(x)), x, 1e-10) << x;
  }
}

TEST(FixedPoint, SaturatesAtRangeLimits) {
  EXPECT_EQ(to_q(1e9), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(to_q(-1e9), std::numeric_limits<std::int64_t>::min());
}

TEST(FixedPoint, NonFiniteInputsAreDefined) {
  // Regression: casting NaN (or out-of-range values) to int64 is UB; to_q
  // must define every input. ±inf saturate like any out-of-range value,
  // NaN maps to zero.
  EXPECT_EQ(to_q(std::numeric_limits<double>::infinity()),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(to_q(-std::numeric_limits<double>::infinity()),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(to_q(std::numeric_limits<double>::quiet_NaN()), 0);
}

TEST(FixedPoint, BitWeightsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(bit_weight(kFracBits), 1.0);
  EXPECT_DOUBLE_EQ(bit_weight(kFracBits + 3), 8.0);
  EXPECT_DOUBLE_EQ(bit_weight(kFracBits - 4), 0.0625);
}

// -------------------------------------------------------- fault distribution

TEST(BitFaultDistribution, ProtectedBitsHaveZeroMass) {
  const auto d = BitFaultDistribution::measured();
  EXPECT_DOUBLE_EQ(d.pmf(kSignBit), 0.0);
  for (int b = 0; b < kProtectedLsbs; ++b) EXPECT_DOUBLE_EQ(d.pmf(b), 0.0) << b;
}

TEST(BitFaultDistribution, PmfSumsToOne) {
  for (const auto& d : {BitFaultDistribution::measured(), BitFaultDistribution::uniform(),
                        BitFaultDistribution::stuck_at(30)}) {
    double total = 0.0;
    for (int b = 0; b < BitFaultDistribution::kBits; ++b) total += d.pmf(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(BitFaultDistribution, MeasuredIsUnimodalBump) {
  const auto d = BitFaultDistribution::measured(36.0, 7.0);
  EXPECT_GT(d.pmf(36), d.pmf(20));
  EXPECT_GT(d.pmf(36), d.pmf(55));
  EXPECT_GT(d.pmf(30), d.pmf(12));
}

TEST(BitFaultDistribution, UniformIsFlatOverEligibleBits) {
  const auto d = BitFaultDistribution::uniform();
  const double expected = 1.0 / (kSignBit - kProtectedLsbs);
  for (int b = kProtectedLsbs; b < kSignBit; ++b) EXPECT_NEAR(d.pmf(b), expected, 1e-12);
}

TEST(BitFaultDistribution, StuckAtConcentratesAllMass) {
  const auto d = BitFaultDistribution::stuck_at(25);
  EXPECT_DOUBLE_EQ(d.pmf(25), 1.0);
  rng::Xoshiro256ss gen(1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(d.sample(gen), 25);
}

TEST(BitFaultDistribution, StuckAtProtectedBitRejected) {
  EXPECT_THROW((void)BitFaultDistribution::stuck_at(kSignBit), std::invalid_argument);
  EXPECT_THROW((void)BitFaultDistribution::stuck_at(3), std::invalid_argument);
}

TEST(BitFaultDistribution, SamplesFollowPmf) {
  const auto d = BitFaultDistribution::measured();
  rng::Xoshiro256ss gen(77);
  std::array<int, 64> counts{};
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<std::size_t>(d.sample(gen))];
  for (int b = 0; b < 64; ++b) {
    const double freq = static_cast<double>(counts[static_cast<std::size_t>(b)]) / kDraws;
    EXPECT_NEAR(freq, d.pmf(b), 0.005) << "bit " << b;
  }
}

TEST(BitFaultDistribution, InvalidSigmaThrows) {
  EXPECT_THROW((void)BitFaultDistribution::measured(36.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)BitFaultDistribution::measured(36.0, -2.0), std::invalid_argument);
}

// ------------------------------------------------------------ fault injector

TEST(FaultInjector, ZeroErrorRateIsTransparent) {
  FaultInjector inj(0.0, BitFaultDistribution::measured());
  for (std::uint64_t v : {0ULL, 1ULL, 0xDEADBEEFULL, ~0ULL}) {
    EXPECT_EQ(inj.corrupt_u64(v), v);
  }
  EXPECT_EQ(inj.stats().faults, 0u);
  EXPECT_EQ(inj.stats().operations, 4u);
}

TEST(FaultInjector, FullErrorRateFlipsExactlyOneEligibleBit) {
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = 0x0123456789ABCDEFULL;
    const std::uint64_t corrupted = inj.corrupt_u64(v);
    const std::uint64_t diff = v ^ corrupted;
    EXPECT_EQ(std::popcount(diff), 1);
    const int bit = std::countr_zero(diff);
    EXPECT_TRUE(BitFaultDistribution::eligible(bit)) << bit;
  }
  EXPECT_EQ(inj.stats().faults, 1000u);
}

TEST(FaultInjector, SignBitNeverFlipsInProducts) {
  // §II: "We noticed that the sign bit never flipped."
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  for (int i = 0; i < 5000; ++i) {
    const double product = (i % 2 == 0) ? 0.75 : -0.75;
    const double corrupted = inj.corrupt_product(product);
    EXPECT_EQ(std::signbit(corrupted), std::signbit(product)) << corrupted;
  }
}

TEST(FaultInjector, EmpiricalFaultRateMatchesConfigured) {
  FaultInjector inj(0.25, BitFaultDistribution::measured());
  for (int i = 0; i < 100000; ++i) (void)inj.corrupt_u64(0x1234ULL);
  EXPECT_NEAR(inj.stats().fault_rate(), 0.25, 0.01);
}

TEST(FaultInjector, FaultLocationsAreStochasticAcrossRuns) {
  // §II: the fault-location sequence on identical operands passes the
  // approximate-entropy test (time-variant faults).
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  std::vector<std::uint8_t> bit_parity;
  for (int i = 0; i < 8192; ++i) {
    const std::uint64_t diff = inj.corrupt_u64(0xFFFFULL) ^ 0xFFFFULL;
    bit_parity.push_back(static_cast<std::uint8_t>(std::countr_zero(diff) & 1));
  }
  EXPECT_TRUE(rng::apen_test(bit_parity, 2).random());
}

TEST(FaultInjector, StuckAtModeIsDeterministicInLocation) {
  // The deterministic-AC ablation: same bit every time — fails ApEn.
  FaultInjector inj(1.0, BitFaultDistribution::stuck_at(30));
  std::vector<std::uint8_t> bit_lsb;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t diff = inj.corrupt_u64(0xFFFFULL) ^ 0xFFFFULL;
    EXPECT_EQ(std::countr_zero(diff), 30);
    bit_lsb.push_back(static_cast<std::uint8_t>(std::countr_zero(diff) & 1));
  }
  EXPECT_FALSE(rng::apen_test(bit_lsb, 2).random());
}

TEST(FaultInjector, CorruptProductPerturbationBoundedByBitWeights) {
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  for (int i = 0; i < 2000; ++i) {
    const double corrupted = inj.corrupt_product(0.5);
    const double delta = std::abs(corrupted - 0.5);
    EXPECT_GT(delta, 0.0);
    EXPECT_LE(delta, bit_weight(kSignBit - 1) + 1.0);
  }
}

TEST(FaultInjector, NonFiniteProductsPassThroughUncorrupted) {
  // er = 1.0 would corrupt every finite product; non-finite MAC products
  // have no Q16.47 bit image and must come back untouched (and un-faulted
  // in the statistics) instead of invoking UB.
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  EXPECT_TRUE(std::isnan(inj.corrupt_product(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(inj.corrupt_product(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(inj.corrupt_product(-std::numeric_limits<double>::infinity()),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(inj.stats().operations, 3u);
  EXPECT_EQ(inj.stats().faults, 0u);
}

TEST(FaultStats, MergeSumsAllCounters) {
  FaultInjector a(1.0, BitFaultDistribution::measured(), 1);
  FaultInjector b(1.0, BitFaultDistribution::measured(), 2);
  for (int i = 0; i < 500; ++i) (void)a.corrupt_u64(0);
  for (int i = 0; i < 300; ++i) (void)b.corrupt_u64(0);
  FaultStats total;
  total.merge(a.stats());
  total.merge(b.stats());
  EXPECT_EQ(total.operations, 800u);
  EXPECT_EQ(total.faults, 800u);
  std::uint64_t flips = 0;
  for (int bit = 0; bit < BitFaultDistribution::kBits; ++bit) {
    EXPECT_EQ(total.bit_flips[static_cast<std::size_t>(bit)],
              a.stats().bit_flips[static_cast<std::size_t>(bit)] +
                  b.stats().bit_flips[static_cast<std::size_t>(bit)])
        << bit;
    flips += total.bit_flips[static_cast<std::size_t>(bit)];
  }
  EXPECT_EQ(flips, total.faults);
}

TEST(FaultInjector, PerBitStatsMatchDistribution) {
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) (void)inj.corrupt_u64(0);
  const auto& stats = inj.stats();
  for (int b = 12; b <= 60; b += 8) {
    EXPECT_NEAR(stats.bit_error_rate(b), inj.distribution().pmf(b), 0.01) << b;
  }
}

TEST(FaultInjector, InvalidErrorRateRejected) {
  FaultInjector inj(0.5, BitFaultDistribution::measured());
  EXPECT_THROW(inj.set_error_rate(-0.1), std::invalid_argument);
  EXPECT_THROW(inj.set_error_rate(1.1), std::invalid_argument);
}

TEST(FaultInjector, NanErrorRateRejected) {
  // A NaN er would sail past `er < 0 || er > 1` checks and silently poison
  // every Bernoulli draw and the skip-ahead geometric math downstream.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  FaultInjector inj(0.5, BitFaultDistribution::measured());
  EXPECT_THROW(inj.set_error_rate(nan), std::invalid_argument);
  EXPECT_DOUBLE_EQ(inj.error_rate(), 0.5) << "a rejected update must leave the rate intact";
  EXPECT_THROW(FaultInjector(nan, BitFaultDistribution::measured()), std::invalid_argument);
}

TEST(FaultInjector, PerOperationProbabilityOverload) {
  FaultInjector inj(0.25, BitFaultDistribution::measured());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(inj.corrupt_u64(0x1234, 0.0), 0x1234u);
  for (int i = 0; i < 100; ++i) EXPECT_NE(inj.corrupt_u64(0x1234, 1.0), 0x1234u);
  EXPECT_EQ(inj.stats().operations, 200u);
  EXPECT_EQ(inj.stats().faults, 100u);
  // The one-off probability never disturbs the configured flat rate.
  EXPECT_DOUBLE_EQ(inj.error_rate(), 0.25);
  EXPECT_THROW((void)inj.corrupt_u64(1, -0.1), std::invalid_argument);
  EXPECT_THROW((void)inj.corrupt_u64(1, 1.5), std::invalid_argument);
  EXPECT_THROW((void)inj.corrupt_u64(1, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(FaultInjector, ResetStatsClearsCounters) {
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  (void)inj.corrupt_u64(1);
  inj.reset_stats();
  EXPECT_EQ(inj.stats().operations, 0u);
  EXPECT_EQ(inj.stats().faults, 0u);
}

// --------------------------------------------------------------- faulty ALU

TEST(FaultyAlu, OnlyMultiplicationsFault) {
  // §II: additions, subtractions, and bit-wise operations never faulted.
  FaultInjector inj(1.0, BitFaultDistribution::measured());
  FaultyAlu alu(inj);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(alu.add(40, 2), 42u);
    EXPECT_EQ(alu.sub(40, 2), 38u);
    EXPECT_EQ(alu.bit_and(0xF0, 0x3C), 0x30u);
    EXPECT_EQ(alu.bit_or(0xF0, 0x0F), 0xFFu);
    EXPECT_EQ(alu.bit_xor(0xFF, 0x0F), 0xF0u);
    EXPECT_NE(alu.mul(3, 5), 15u);  // er = 1: always faulty
  }
  EXPECT_EQ(alu.mul_count(), 200u);
  EXPECT_EQ(alu.nonmul_count(), 1000u);
}

TEST(FaultyAlu, OperandProbabilityOverridesFlatRate) {
  FaultInjector inj(0.0, BitFaultDistribution::measured());
  FaultyAlu alu(inj);
  alu.set_operand_probability([](std::uint64_t a, std::uint64_t) {
    return a == 7 ? 1.0 : 0.0;
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(alu.mul(3, 5), 15u);   // immune operands
    EXPECT_NE(alu.mul(7, 5), 35u);   // critical operands
  }
  // The flat rate is restored after each operand-aware corruption.
  EXPECT_DOUBLE_EQ(inj.error_rate(), 0.0);
}

TEST(FaultyAlu, ExactWhenNoFaultsConfigured) {
  FaultInjector inj(0.0, BitFaultDistribution::measured());
  FaultyAlu alu(inj);
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) EXPECT_EQ(alu.mul(a, b), a * b);
  }
}

}  // namespace
}  // namespace shmd::faultsim
