// Shared test fixtures: small synthetic corpora, built once per process.
//
// Dataset construction costs ~100 ms at this size; tests that only need
// *a* dataset (not a specific one) share these instances.
#pragma once

#include "trace/dataset.hpp"

namespace shmd::test {

/// Small corpus: 150 malware / 30 benign, 16k instructions per trace.
/// Stratified folds still contain every family.
[[nodiscard]] const trace::Dataset& small_dataset();

/// Medium corpus for integration tests: 400 malware / 80 benign.
[[nodiscard]] const trace::Dataset& medium_dataset();

}  // namespace shmd::test
