#include "support/test_corpus.hpp"

namespace shmd::test {

const trace::Dataset& small_dataset() {
  static const trace::Dataset dataset = [] {
    trace::DatasetConfig config;
    config.corpus.n_malware = 150;
    config.corpus.n_benign = 30;
    config.trace_length = 16384;
    return trace::Dataset::build(config);
  }();
  return dataset;
}

const trace::Dataset& medium_dataset() {
  static const trace::Dataset dataset = [] {
    trace::DatasetConfig config;
    config.corpus.n_malware = 400;
    config.corpus.n_benign = 80;
    config.trace_length = 32768;
    return trace::Dataset::build(config);
  }();
  return dataset;
}

}  // namespace shmd::test
