#include <gtest/gtest.h>

#include <sstream>

#include "eval/data_adapter.hpp"
#include "eval/metrics.hpp"
#include "hmd/builders.hpp"
#include "hmd/classifier_hmd.hpp"
#include "hmd/deployment.hpp"
#include "hmd/ensemble_hmd.hpp"
#include "nn/decision_tree.hpp"
#include "support/test_corpus.hpp"

namespace shmd::hmd {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

double program_accuracy(Detector& det, const trace::Dataset& ds,
                        const std::vector<std::size_t>& indices) {
  eval::ConfusionMatrix cm;
  for (std::size_t idx : indices) {
    const auto& s = ds.samples()[idx];
    cm.add(s.malware(), det.detect(s.features));
  }
  return cm.accuracy();
}

// ------------------------------------------------------------ ClassifierHmd

TEST(ClassifierHmd, DecisionTreeVictimWorksAsDetector) {
  // An ND-HMD-style victim: a decision tree behind the Detector interface.
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};

  auto dt = std::make_unique<nn::DecisionTree>();
  dt->fit(eval::window_samples(ds, folds.victim_training, fc));
  ClassifierHmd detector(std::move(dt), fc, "nd-hmd-dt");

  EXPECT_GT(program_accuracy(detector, ds, folds.testing), 0.8);
  EXPECT_EQ(detector.name(), "nd-hmd-dt");
  // Deterministic: live and nominal paths agree.
  const auto& features = ds.samples()[folds.testing[0]].features;
  EXPECT_EQ(detector.window_scores(features), detector.window_scores_nominal(features));
}

TEST(ClassifierHmd, NullModelRejected) {
  const FeatureConfig fc{FeatureView::kInsnCategory, 2048};
  EXPECT_THROW(ClassifierHmd(nullptr, fc, "x"), std::invalid_argument);
}

// -------------------------------------------------------------- EnsembleHmd

TEST(EnsembleHmd, TrainsGeneralPlusSpecializedMembers) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  HmdTrainOptions opt;
  opt.train.epochs = 40;
  EnsembleHmd ensemble = make_ensemble(ds, folds.victim_training, fc, opt);
  // 1 general + one per malware family in the fold (all 5 are present in
  // the stratified split).
  EXPECT_EQ(ensemble.member_count(), 1 + trace::kNumMalwareFamilies);
  EXPECT_EQ(ensemble.member(0).label, "general");
}

TEST(EnsembleHmd, MaxCombinationDominatesMembers) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  HmdTrainOptions opt;
  opt.train.epochs = 40;
  EnsembleHmd ensemble = make_ensemble(ds, folds.victim_training, fc, opt);
  const auto& features = ds.samples()[folds.testing[0]].features;
  const auto ensemble_scores = ensemble.window_scores(features);
  // The ensemble score is the max over members: it can never sit below the
  // general member's own score.
  const auto& windows = features.windows(fc);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_GE(ensemble_scores[w] + 1e-12, ensemble.member(0).net.forward(windows[w])[0]);
  }
}

TEST(EnsembleHmd, SensitivityAtLeastComparableToSingleDetector) {
  const trace::Dataset& ds = test::medium_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  HmdTrainOptions opt;
  opt.train.epochs = 60;
  BaselineHmd single = make_baseline(ds, folds.victim_training, fc, opt);
  EnsembleHmd ensemble = make_ensemble(ds, folds.victim_training, fc, opt);

  eval::ConfusionMatrix single_cm;
  eval::ConfusionMatrix ensemble_cm;
  for (std::size_t idx : folds.testing) {
    const auto& s = ds.samples()[idx];
    single_cm.add(s.malware(), single.detect(s.features));
    ensemble_cm.add(s.malware(), ensemble.detect(s.features));
  }
  // Specialization buys recall (ensemble FNR <= single FNR + slack).
  EXPECT_LE(ensemble_cm.fnr(), single_cm.fnr() + 0.02);
}

TEST(EnsembleHmd, EmptyMemberListRejected) {
  const FeatureConfig fc{FeatureView::kInsnCategory, 2048};
  EXPECT_THROW(EnsembleHmd({}, fc), std::invalid_argument);
}

// --------------------------------------------------------------- deployment

TEST(Deployment, BundleRoundTrip) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  HmdTrainOptions opt;
  opt.train.epochs = 40;
  BaselineHmd trained = make_baseline(ds, folds.victim_training, fc, opt);

  DeploymentBundle bundle{trained.network(), fc, 0.15,
                          {{35.0, -122.0}, {55.0, -112.0}, {75.0, -102.0}}};
  std::stringstream stream;
  save_deployment(bundle, stream);
  const DeploymentBundle loaded = load_deployment(stream);

  EXPECT_EQ(loaded.feature_config.view, fc.view);
  EXPECT_EQ(loaded.feature_config.period, fc.period);
  EXPECT_DOUBLE_EQ(loaded.target_error_rate, 0.15);
  EXPECT_EQ(loaded.calibration.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.calibration.at(55.0), -112.0);

  // The deployed network computes the same function.
  const auto& window = ds.samples()[folds.testing[0]].features.windows(fc).front();
  EXPECT_NEAR(loaded.network.forward(window)[0], trained.network().forward(window)[0], 1e-9);

  // And spins up a working detector at the bundled operating point.
  StochasticHmd detector = loaded.make_detector();
  EXPECT_DOUBLE_EQ(detector.error_rate(), 0.15);
  EXPECT_NO_THROW((void)detector.detect(ds.samples()[folds.testing[0]].features));
}

TEST(Deployment, TemperatureLookupInterpolatesAndClamps) {
  DeploymentBundle bundle{nn::Network{}, {}, 0.1,
                          {{40.0, -120.0}, {60.0, -110.0}}};
  EXPECT_DOUBLE_EQ(bundle.offset_for_temperature(40.0), -120.0);
  EXPECT_DOUBLE_EQ(bundle.offset_for_temperature(50.0), -115.0);  // interpolated
  EXPECT_DOUBLE_EQ(bundle.offset_for_temperature(20.0), -120.0);  // clamped low
  EXPECT_DOUBLE_EQ(bundle.offset_for_temperature(90.0), -110.0);  // clamped high

  DeploymentBundle empty{nn::Network{}, {}, 0.1, {}};
  EXPECT_THROW((void)empty.offset_for_temperature(50.0), std::logic_error);
}

TEST(Deployment, TemperatureLookupEdgeCases) {
  // Single-entry table: every temperature clamps to the one calibrated
  // offset — below, at, and above the key.
  DeploymentBundle single{nn::Network{}, {}, 0.1, {{50.0, -130.0}}};
  EXPECT_DOUBLE_EQ(single.offset_for_temperature(0.0), -130.0);
  EXPECT_DOUBLE_EQ(single.offset_for_temperature(50.0), -130.0);
  EXPECT_DOUBLE_EQ(single.offset_for_temperature(100.0), -130.0);

  // Exact-key hits on a multi-entry table return the calibrated offset
  // itself (interpolation weight collapses to an endpoint), including on
  // the interior key and both boundary keys.
  DeploymentBundle multi{nn::Network{}, {}, 0.1,
                         {{40.0, -120.0}, {60.0, -110.0}, {80.0, -90.0}}};
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(40.0), -120.0);
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(60.0), -110.0);
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(80.0), -90.0);
  // Interpolation picks the correct segment on either side of an
  // interior key.
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(55.0), -112.5);
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(70.0), -100.0);
  // Clamping just outside the range, not merely far outside it.
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(39.999), -120.0);
  EXPECT_DOUBLE_EQ(multi.offset_for_temperature(80.001), -90.0);
}

TEST(Deployment, RejectsCorruptBundles) {
  std::stringstream bad_magic("NOT-A-BUNDLE 1\n");
  EXPECT_THROW((void)load_deployment(bad_magic), std::runtime_error);

  std::stringstream no_network(
      "SHMD-DEPLOYMENT 1\nview insn_category\nperiod 2048\n"
      "target_error_rate 0.1\ncalibration_points 0\n");
  EXPECT_THROW((void)load_deployment(no_network), std::runtime_error);

  std::stringstream bad_view(
      "SHMD-DEPLOYMENT 1\nview telepathy\nperiod 2048\n");
  EXPECT_THROW((void)load_deployment(bad_view), std::runtime_error);

  std::stringstream bad_er(
      "SHMD-DEPLOYMENT 1\nview insn_category\nperiod 2048\ntarget_error_rate 7\n");
  EXPECT_THROW((void)load_deployment(bad_er), std::runtime_error);
}

TEST(Deployment, RejectsViewNetworkDimensionMismatch) {
  // A memory-view bundle (8 features) carrying a 16-input network.
  const std::vector<std::size_t> topo{16, 4, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  DeploymentBundle bundle{net, {FeatureView::kMemory, 2048}, 0.1, {{49.0, -115.0}}};
  std::stringstream stream;
  save_deployment(bundle, stream);
  EXPECT_THROW((void)load_deployment(stream), std::runtime_error);
}

}  // namespace
}  // namespace shmd::hmd
