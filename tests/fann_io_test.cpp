#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/fann_io.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::nn {
namespace {

Network make_net(std::vector<std::size_t> topology, Activation hidden, Activation output,
                 std::uint64_t seed = 11) {
  return Network(topology, hidden, output, seed);
}

TEST(FannIo, RoundTripPreservesFunction) {
  const Network net = make_net({4, 6, 3, 1}, Activation::kSigmoid, Activation::kSigmoid);
  std::stringstream ss;
  save_fann(net, ss);
  const Network loaded = load_fann(ss);
  ASSERT_EQ(loaded.num_layers(), net.num_layers());
  ASSERT_EQ(loaded.input_dim(), net.input_dim());
  rng::Xoshiro256ss gen(5);
  std::vector<double> x(net.input_dim());
  for (int probe = 0; probe < 32; ++probe) {
    for (double& xi : x) xi = gen.uniform01();
    EXPECT_NEAR(loaded.forward(x)[0], net.forward(x)[0], 1e-12);
  }
}

TEST(FannIo, RoundTripTanhAndLinear) {
  const Network net = make_net({3, 5, 1}, Activation::kTanh, Activation::kLinear);
  std::stringstream ss;
  save_fann(net, ss);
  const Network loaded = load_fann(ss);
  const std::vector<double> x{0.2, -0.4, 0.9};
  EXPECT_NEAR(loaded.forward(x)[0], net.forward(x)[0], 1e-12);
}

TEST(FannIo, HeaderIsFann21) {
  const Network net = make_net({2, 2, 1}, Activation::kSigmoid, Activation::kSigmoid);
  std::stringstream ss;
  save_fann(net, ss);
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "FANN_FLO_2.1");
  // Layer sizes include the FANN bias neurons.
  EXPECT_NE(ss.str().find("layer_sizes=3 3 2 "), std::string::npos);
}

TEST(FannIo, ReluIsRejectedOnSave) {
  const Network net = make_net({2, 2, 1}, Activation::kRelu, Activation::kSigmoid);
  std::stringstream ss;
  EXPECT_THROW(save_fann(net, ss), FannFormatError);
}

TEST(FannIo, RejectsWrongMagic) {
  std::stringstream ss("FANN_FIX_2.1\nnum_layers=3\n");
  EXPECT_THROW((void)load_fann(ss), FannFormatError);
}

TEST(FannIo, RejectsShortcutNetworks) {
  const Network net = make_net({2, 2, 1}, Activation::kSigmoid, Activation::kSigmoid);
  std::stringstream ss;
  save_fann(net, ss);
  std::string text = ss.str();
  const auto pos = text.find("network_type=0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "network_type=1");
  std::stringstream mutated(text);
  EXPECT_THROW((void)load_fann(mutated), FannFormatError);
}

TEST(FannIo, RejectsSparseNetworks) {
  const Network net = make_net({2, 2, 1}, Activation::kSigmoid, Activation::kSigmoid);
  std::stringstream ss;
  save_fann(net, ss);
  std::string text = ss.str();
  const auto pos = text.find("connection_rate=1.000000");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 24, "connection_rate=0.500000");
  std::stringstream mutated(text);
  EXPECT_THROW((void)load_fann(mutated), FannFormatError);
}

TEST(FannIo, LoadsHandWrittenFannFile) {
  // A minimal 2-2-1 network written by hand in FANN's own format, with
  // non-neutral steepness (0.25): the loader must fold the steepness into
  // the weights. FANN sigmoid: f(x) = 1 / (1 + exp(-2 * s * sum)).
  const char* text =
      "FANN_FLO_2.1\n"
      "num_layers=3\n"
      "connection_rate=1.000000\n"
      "network_type=0\n"
      "layer_sizes=3 3 2 \n"
      "scale_included=0\n"
      "neurons (num_inputs, activation_function, activation_steepness)="
      "(0, 0, 0.0) (0, 0, 0.0) (0, 0, 0.0) "
      "(3, 3, 0.25) (3, 3, 0.25) (0, 0, 0.0) "
      "(3, 3, 0.25) (0, 0, 0.0) \n"
      "connections (connected_to_neuron, weight)="
      "(0, 1.0) (1, -2.0) (2, 0.5) "
      "(0, 0.25) (1, 0.75) (2, -0.5) "
      "(3, 1.5) (4, -1.0) (5, 0.25) \n";
  std::stringstream ss(text);
  const Network net = load_fann(ss);
  ASSERT_EQ(net.input_dim(), 2u);
  ASSERT_EQ(net.output_dim(), 1u);
  ASSERT_EQ(net.num_layers(), 2u);

  // Reference forward pass with FANN semantics (s = 0.25).
  const auto fann_sigmoid = [](double sum, double s) {
    return 1.0 / (1.0 + std::exp(-2.0 * s * sum));
  };
  const double x0 = 0.6;
  const double x1 = -0.2;
  const double h0 = fann_sigmoid(1.0 * x0 - 2.0 * x1 + 0.5, 0.25);
  const double h1 = fann_sigmoid(0.25 * x0 + 0.75 * x1 - 0.5, 0.25);
  const double y = fann_sigmoid(1.5 * h0 - 1.0 * h1 + 0.25, 0.25);

  const std::vector<double> x{x0, x1};
  EXPECT_NEAR(net.forward(x)[0], y, 1e-12);
}

TEST(FannIo, TruncatedConnectionsRejected) {
  const Network net = make_net({2, 2, 1}, Activation::kSigmoid, Activation::kSigmoid);
  std::stringstream ss;
  save_fann(net, ss);
  std::string text = ss.str();
  // Chop off the last connection tuple.
  const auto last = text.rfind('(');
  text.resize(last);
  text += "\n";
  std::stringstream mutated(text);
  EXPECT_THROW((void)load_fann(mutated), FannFormatError);
}

}  // namespace
}  // namespace shmd::nn
