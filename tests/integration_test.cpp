// End-to-end integration: the full Stochastic-HMD lifecycle on one
// simulated device — characterize, calibrate, train, deploy under trusted
// voltage control, then survive the paper's two-stage black-box attack.
#include <gtest/gtest.h>

#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "eval/metrics.hpp"
#include "faultsim/fault_injector.hpp"
#include "faultsim/faulty_alu.hpp"
#include "hmd/builders.hpp"
#include "rng/entropy.hpp"
#include "support/test_corpus.hpp"
#include "volt/calibration.hpp"

namespace shmd {
namespace {

TEST(Integration, FullStochasticHmdLifecycle) {
  // --- 1. A fresh device: sample silicon, characterize the fault window.
  const volt::DeviceProfile profile = volt::DeviceProfile::sample(0xD01CE);
  volt::MsrInterface msr;
  volt::VoltageDomain domain(msr, /*plane=*/0, volt::VoltFaultModel(profile), /*temp=*/49.0);

  // Characterization (§II): sweep undervolt depth on the multiplier.
  faultsim::FaultInjector injector(0.0, faultsim::BitFaultDistribution::measured());
  faultsim::FaultyAlu alu(injector);
  const auto& model = domain.model();
  alu.set_operand_probability([&](std::uint64_t a, std::uint64_t b) {
    return model.operand_fault_probability(a, b, -130.0, domain.temperature_c());
  });
  injector.set_error_rate(1.0);  // gate entirely through operand probability
  rng::Xoshiro256ss operands(0x0BE7A);
  std::size_t faults = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = operands();
    const std::uint64_t b = operands();
    faults += alu.mul(a, b) != a * b;
  }
  // At -130 mV the device faults on a sizable fraction of operand pairs.
  EXPECT_GT(faults, 2000u);
  EXPECT_LT(faults, 18000u);

  // --- 2. Calibrate the rail for the paper's er = 0.1 operating point.
  volt::CalibrationController calibration(domain, 30000);
  const volt::CalibrationResult cal = calibration.calibrate(0.20, 0.03);
  EXPECT_NEAR(cal.measured_er, 0.20, 0.04);

  // --- 3. Train the HMD (at nominal voltage) and deploy it stochastic.
  const trace::Dataset& ds = test::medium_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 100;
  opt.train.l2 = 2e-3;
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, opt);

  hmd::StochasticHmd deployed(baseline.network(), fc, 0.0);
  const std::uint64_t token = domain.acquire_exclusive();
  deployed.attach_domain(domain, cal.offset_mv, token);

  // --- 4. Clean detection quality: within a few points of the baseline.
  eval::ConfusionMatrix base_cm;
  eval::ConfusionMatrix sto_cm;
  for (std::size_t idx : folds.testing) {
    const auto& sample = ds.samples()[idx];
    base_cm.add(sample.malware(), baseline.detect(sample.features));
    sto_cm.add(sample.malware(), deployed.detect(sample.features));
  }
  EXPECT_GT(base_cm.accuracy(), 0.88);
  EXPECT_GT(sto_cm.accuracy(), base_cm.accuracy() - 0.05);

  // --- 5. The two-stage attack: reverse-engineer, then craft + transfer.
  attack::ReverseEngineer re(ds);
  attack::ReverseEngineerConfig rc;
  rc.kind = attack::ProxyKind::kMlp;
  rc.proxy_configs = {fc};
  auto base_re = re.run(baseline, folds.victim_training, folds.testing, rc);
  auto sto_re = re.run(deployed, folds.victim_training, folds.testing, rc);
  EXPECT_LT(sto_re.effectiveness, base_re.effectiveness);

  std::vector<std::size_t> malware_idx;
  for (std::size_t idx : folds.testing) {
    if (ds.samples()[idx].malware() && malware_idx.size() < 40) malware_idx.push_back(idx);
  }
  attack::EvasionConfig ec;
  ec.mimicry_mix = attack::benign_category_mix(ds, folds.attacker_training, fc.period);

  attack::EvasionConfig base_ec = ec;
  base_ec.craft_threshold = base_re.craft_threshold;
  const auto base_tr = attack::TransferabilityEval(ds, base_ec)
                           .run(baseline, *base_re.proxy, malware_idx, rc.proxy_configs);
  attack::EvasionConfig sto_ec = ec;
  sto_ec.craft_threshold = sto_re.craft_threshold;
  const auto sto_tr = attack::TransferabilityEval(ds, sto_ec)
                          .run(deployed, *sto_re.proxy, malware_idx, rc.proxy_configs);

  // The headline result: the baseline is evadable, the stochastic detector
  // catches the bulk of the evasive malware.
  EXPECT_GT(base_tr.success_rate(), 0.5);
  EXPECT_GT(sto_tr.detected_rate(), 0.6);
  EXPECT_LT(sto_tr.success_rate(), base_tr.success_rate());

  // --- 6. The rail stays trusted: an adversary cannot restore nominal.
  EXPECT_THROW(domain.set_offset_mv(0.0), volt::VoltageControlError);
  deployed.detach_domain();
  domain.release_exclusive(token);
}

TEST(Integration, StochasticFaultsPassApEnWhereStuckAtFails) {
  // §II validated stochasticity with the approximate entropy test; the
  // same check separates our stochastic injector from a deterministic
  // approximate-computing fault model.
  faultsim::FaultInjector stochastic(1.0, faultsim::BitFaultDistribution::measured());
  faultsim::FaultInjector stuck(1.0, faultsim::BitFaultDistribution::stuck_at(36));
  std::vector<std::uint64_t> sto_bits;
  std::vector<std::uint64_t> stuck_bits;
  for (int i = 0; i < 8192; ++i) {
    sto_bits.push_back(stochastic.corrupt_u64(0) );
    stuck_bits.push_back(stuck.corrupt_u64(0));
  }
  // Compare the location parity sequences.
  std::vector<std::uint8_t> sto_seq;
  std::vector<std::uint8_t> stuck_seq;
  for (std::size_t i = 0; i < sto_bits.size(); ++i) {
    sto_seq.push_back(static_cast<std::uint8_t>(std::countr_zero(sto_bits[i]) & 1));
    stuck_seq.push_back(static_cast<std::uint8_t>(std::countr_zero(stuck_bits[i]) & 1));
  }
  EXPECT_TRUE(rng::apen_test(sto_seq, 2).random());
  EXPECT_FALSE(rng::apen_test(stuck_seq, 2).random());
}

TEST(Integration, ThreeFoldCrossValidationIsStable) {
  // The paper's 3-fold CV: accuracy must hold across all rotations.
  const trace::Dataset& ds = test::small_dataset();
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 60;
  for (int rotation = 0; rotation < 3; ++rotation) {
    const trace::FoldSplit folds = ds.folds(rotation);
    hmd::BaselineHmd det = hmd::make_baseline(ds, folds.victim_training, fc, opt);
    eval::ConfusionMatrix cm;
    for (std::size_t idx : folds.testing) {
      const auto& s = ds.samples()[idx];
      cm.add(s.malware(), det.detect(s.features));
    }
    EXPECT_GT(cm.accuracy(), 0.8) << "rotation " << rotation;
  }
}

}  // namespace
}  // namespace shmd
