// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole parameter ranges, not just hand-picked points.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <sstream>

#include "faultsim/fault_injector.hpp"
#include "faultsim/fixed_point.hpp"
#include "nn/network.hpp"
#include "trace/features.hpp"
#include "trace/program.hpp"
#include "volt/volt_fault_model.hpp"

namespace shmd {
namespace {

// ------------------------------------------------- fault injector invariants

class FaultRateProperty : public ::testing::TestWithParam<double> {};

TEST_P(FaultRateProperty, EmpiricalRateMatchesConfigured) {
  const double er = GetParam();
  faultsim::FaultInjector inj(er, faultsim::BitFaultDistribution::measured());
  constexpr int kOps = 60000;
  for (int i = 0; i < kOps; ++i) (void)inj.corrupt_u64(0xABCDEFULL);
  EXPECT_NEAR(inj.stats().fault_rate(), er, 0.01) << "er=" << er;
}

TEST_P(FaultRateProperty, ProtectedBitsNeverFlipAtAnyRate) {
  const double er = GetParam();
  faultsim::FaultInjector inj(er, faultsim::BitFaultDistribution::measured());
  constexpr std::uint64_t kProbe = 0x5555555555555555ULL;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t diff = inj.corrupt_u64(kProbe) ^ kProbe;
    if (diff == 0) continue;
    const int bit = std::countr_zero(diff);
    EXPECT_GE(bit, faultsim::kProtectedLsbs);
    EXPECT_LT(bit, faultsim::kSignBit);
  }
}

TEST_P(FaultRateProperty, ProductSignPreservedAtAnyRate) {
  const double er = GetParam();
  faultsim::FaultInjector inj(er, faultsim::BitFaultDistribution::measured());
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(inj.corrupt_product(0.31), 0.0);
    EXPECT_LE(inj.corrupt_product(-0.31), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, FaultRateProperty,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0));

// ----------------------------------------------------- fixed-point round trip

class FixedPointProperty : public ::testing::TestWithParam<double> {};

TEST_P(FixedPointProperty, RoundTripWithinLsb) {
  const double x = GetParam();
  EXPECT_NEAR(faultsim::from_q(faultsim::to_q(x)), x, faultsim::bit_weight(0) * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Values, FixedPointProperty,
                         ::testing::Values(0.0, 1e-9, -1e-9, 0.4999, -0.4999, 1.0, -1.0,
                                           31.25, -31.25, 4095.0, -4095.0, 65535.0,
                                           -65535.0));

// ------------------------------------------------- volt model across devices

class DeviceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceProperty, FaultCurveMonotoneAndInvertible) {
  const volt::VoltFaultModel model(volt::DeviceProfile::sample(GetParam()));
  for (double temp : {30.0, 49.0, 70.0}) {
    double prev = -1.0;
    for (double depth = 80.0; depth <= 160.0; depth += 2.0) {
      const double p = model.fault_probability(-depth, temp);
      EXPECT_GE(p, prev);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
    for (double er : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(model.fault_probability(model.offset_for_error_rate(er, temp), temp), er,
                  1e-6);
    }
  }
}

TEST_P(DeviceProperty, AggregateOperandRateMatchesCurve) {
  // The per-operand criticality distribution must integrate back to the
  // smooth curve — the property that keeps empirical calibration and
  // voltage-driven deployment consistent.
  const volt::VoltFaultModel model(volt::DeviceProfile::sample(GetParam()));
  rng::Xoshiro256ss gen(GetParam() ^ 0xFACADE);
  for (double depth : {110.0, 120.0, 135.0}) {
    double sum = 0.0;
    constexpr int kPairs = 20000;
    for (int i = 0; i < kPairs; ++i) {
      sum += model.operand_fault_probability(gen(), gen(), -depth, 49.0);
    }
    EXPECT_NEAR(sum / kPairs, model.fault_probability(-depth, 49.0), 0.02)
        << "depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, DeviceProperty,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xBEEFULL, 0xD01CEULL,
                                           0xFFFFFFFFULL));

// ------------------------------------------------ feature-extraction bounds

struct FeatureCase {
  trace::Family family;
  std::size_t period;
};

class FeatureProperty : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(FeatureProperty, AllViewsBoundedAndNormalized) {
  const auto [family, period] = GetParam();
  const trace::Program program(0, family, 0xFEA7ULL + static_cast<std::uint64_t>(period));
  const auto trace_data = program.generate(4 * period);
  for (std::size_t v = 0; v < trace::kNumViews; ++v) {
    const auto view = static_cast<trace::FeatureView>(v);
    for (const auto& window : trace::extract_windows(trace_data, view, period)) {
      ASSERT_EQ(window.size(), trace::view_dim(view));
      double category_sum = 0.0;
      for (double x : window) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
        category_sum += x;
      }
      if (view == trace::FeatureView::kInsnCategory) {
        EXPECT_NEAR(category_sum, 1.0, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndPeriods, FeatureProperty,
    ::testing::Values(FeatureCase{trace::Family::kBrowser, 512},
                      FeatureCase{trace::Family::kCpuBenchmark, 2048},
                      FeatureCase{trace::Family::kSystemUtility, 1024},
                      FeatureCase{trace::Family::kBackdoor, 2048},
                      FeatureCase{trace::Family::kTrojan, 4096},
                      FeatureCase{trace::Family::kWorm, 512},
                      FeatureCase{trace::Family::kPasswordStealer, 1024},
                      FeatureCase{trace::Family::kRogue, 4096}));

// ------------------------------------------------- network serialization

class TopologyProperty
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(TopologyProperty, SaveLoadPreservesFunction) {
  const auto& topology = GetParam();
  nn::Network net(topology, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 7);
  std::stringstream ss;
  net.save(ss);
  const nn::Network loaded = nn::Network::load(ss);
  rng::Xoshiro256ss gen(3);
  std::vector<double> x(net.input_dim());
  for (int probe = 0; probe < 16; ++probe) {
    for (double& xi : x) xi = gen.uniform01();
    EXPECT_NEAR(loaded.forward(x)[0], net.forward(x)[0], 1e-15);
  }
}

TEST_P(TopologyProperty, MacCountMatchesWeights) {
  const auto& topology = GetParam();
  nn::Network net(topology, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 7);
  nn::ExactContext ctx;
  std::vector<double> x(net.input_dim(), 0.5);
  (void)net.forward(x, ctx);
  EXPECT_EQ(ctx.mac_count(), net.mac_count());
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyProperty,
                         ::testing::Values(std::vector<std::size_t>{2, 1},
                                           std::vector<std::size_t>{16, 32, 16, 1},
                                           std::vector<std::size_t>{8, 4, 2, 1},
                                           std::vector<std::size_t>{16, 232, 60, 1},
                                           std::vector<std::size_t>{24, 24, 1}));

// --------------------------------------------- program determinism sweep

class DeterminismProperty : public ::testing::TestWithParam<trace::Family> {};

TEST_P(DeterminismProperty, EveryFamilyGeneratesDeterministically) {
  const trace::Program program(1, GetParam(), 0xDE7E21ULL);
  const auto a = program.generate(8192);
  const auto b = program.generate(8192);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].category, b[i].category) << i;
    ASSERT_EQ(a[i].branch_taken, b[i].branch_taken) << i;
    ASSERT_EQ(a[i].mem_read, b[i].mem_read) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DeterminismProperty,
                         ::testing::Values(trace::Family::kBrowser, trace::Family::kTextEditor,
                                           trace::Family::kSystemUtility,
                                           trace::Family::kCpuBenchmark,
                                           trace::Family::kMediaPlayer,
                                           trace::Family::kBackdoor, trace::Family::kRogue,
                                           trace::Family::kPasswordStealer,
                                           trace::Family::kTrojan, trace::Family::kWorm));

}  // namespace
}  // namespace shmd
