#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "support/test_corpus.hpp"
#include "trace/dataset.hpp"
#include "trace/families.hpp"
#include "trace/features.hpp"
#include "trace/isa.hpp"
#include "trace/program.hpp"
#include "trace/program_factory.hpp"
#include "trace/trace_collector.hpp"

namespace shmd::trace {
namespace {

// ----------------------------------------------------------------------- ISA

TEST(Isa, EveryCategoryHasNameAndBehavior) {
  std::set<std::string_view> names;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<InsnCategory>(c);
    names.insert(category_name(cat));
    const CategoryBehavior& b = category_behavior(cat);
    EXPECT_GE(b.mem_read_prob, 0.0);
    EXPECT_LE(b.mem_read_prob, 1.0);
    EXPECT_GE(b.mem_write_prob, 0.0);
    EXPECT_LE(b.mem_write_prob, 1.0);
  }
  EXPECT_EQ(names.size(), kNumCategories);  // names are unique
}

TEST(Isa, StrideDistributionsNormalized) {
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const CategoryBehavior& b = category_behavior(static_cast<InsnCategory>(c));
    double total = 0.0;
    for (double p : b.stride_probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << category_name(static_cast<InsnCategory>(c));
  }
}

TEST(Isa, ControlTransferHasControlMix) {
  const CategoryBehavior& b = category_behavior(InsnCategory::kControlTransfer);
  double total = 0.0;
  for (double p : b.control_mix) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ------------------------------------------------------------------ families

TEST(Families, TenFamiliesFiveMalware) {
  std::size_t malware = 0;
  for (std::size_t f = 0; f < kNumFamilies; ++f) {
    if (is_malware(static_cast<Family>(f))) ++malware;
  }
  EXPECT_EQ(malware, kNumMalwareFamilies);
}

TEST(Families, MalwarePredicateMatchesPaperTypes) {
  EXPECT_TRUE(is_malware(Family::kBackdoor));
  EXPECT_TRUE(is_malware(Family::kRogue));
  EXPECT_TRUE(is_malware(Family::kPasswordStealer));
  EXPECT_TRUE(is_malware(Family::kTrojan));
  EXPECT_TRUE(is_malware(Family::kWorm));
  EXPECT_FALSE(is_malware(Family::kBrowser));
  EXPECT_FALSE(is_malware(Family::kCpuBenchmark));
}

TEST(Families, EverySpecHasPhases) {
  for (std::size_t f = 0; f < kNumFamilies; ++f) {
    const FamilySpec& spec = family_spec(static_cast<Family>(f));
    EXPECT_GE(spec.phases.size(), 2u) << family_name(static_cast<Family>(f));
    for (const PhaseTemplate& p : spec.phases) {
      double total = 0.0;
      for (double w : p.weights) total += w;
      EXPECT_GT(total, 0.0);
      EXPECT_GT(p.mean_duration, 0u);
    }
  }
}

// ------------------------------------------------------------------- program

TEST(Program, GenerationIsDeterministic) {
  // §IV's central requirement: identical trace on every collection run.
  const Program p(1, Family::kWorm, 0xABCDEF);
  const TraceCollector collector(20000);
  EXPECT_TRUE(collector.verify_determinism(p, 4));
}

TEST(Program, DifferentSeedsGiveDifferentPrograms) {
  const Program a(1, Family::kWorm, 111);
  const Program b(2, Family::kWorm, 222);
  const auto ta = a.generate(4096);
  const auto tb = b.generate(4096);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].category != tb[i].category) ++differing;
  }
  EXPECT_GT(differing, 100u);
}

TEST(Program, TraceLengthIsExact) {
  const Program p(1, Family::kBrowser, 5);
  EXPECT_EQ(p.generate(12345).size(), 12345u);
  EXPECT_EQ(p.generate(1).size(), 1u);
  EXPECT_TRUE(p.generate(0).empty());
}

TEST(Program, PhaseIdentityIndependentOfTraceLength) {
  const Program p(9, Family::kTrojan, 4242);
  const auto long_trace = p.generate(8192);
  const auto short_trace = p.generate(1024);
  for (std::size_t i = 0; i < short_trace.size(); ++i) {
    EXPECT_EQ(long_trace[i].category, short_trace[i].category) << i;
  }
}

TEST(Program, FamilySignatureVisibleInCategoryMix) {
  // Worms should be more IO/system-heavy than CPU benchmarks, which skew
  // arithmetic/SIMD — the class signal the detectors learn.
  const auto count_frac = [](const std::vector<Instruction>& trace, InsnCategory c) {
    std::size_t n = 0;
    for (const Instruction& i : trace) n += (i.category == c);
    return static_cast<double>(n) / static_cast<double>(trace.size());
  };
  double worm_io = 0.0;
  double bench_io = 0.0;
  double worm_arith = 0.0;
  double bench_arith = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto worm = Program(0, Family::kWorm, 1000 + s).generate(16384);
    const auto bench = Program(1, Family::kCpuBenchmark, 2000 + s).generate(16384);
    worm_io += count_frac(worm, InsnCategory::kIo) + count_frac(worm, InsnCategory::kSystem);
    bench_io += count_frac(bench, InsnCategory::kIo) + count_frac(bench, InsnCategory::kSystem);
    worm_arith += count_frac(worm, InsnCategory::kBinaryArithmetic);
    bench_arith += count_frac(bench, InsnCategory::kBinaryArithmetic);
  }
  EXPECT_GT(worm_io, 2.0 * bench_io);
  EXPECT_GT(bench_arith, 2.0 * worm_arith);
}

TEST(Program, ControlFlagsOnlyOnControlTransfers) {
  const auto trace = Program(3, Family::kBrowser, 77).generate(8192);
  for (const Instruction& insn : trace) {
    if (insn.category != InsnCategory::kControlTransfer) {
      EXPECT_EQ(insn.control, ControlKind::kNone);
    } else {
      EXPECT_NE(insn.control, ControlKind::kNone);
    }
  }
}

// ------------------------------------------------------------------ features

TEST(Features, ViewDimensionsAndNames) {
  EXPECT_EQ(view_dim(FeatureView::kInsnCategory), kNumCategories);
  EXPECT_EQ(view_dim(FeatureView::kMemory), 8u);
  EXPECT_EQ(view_dim(FeatureView::kControlFlow), 8u);
  EXPECT_EQ(view_name(FeatureView::kMemory), "memory");
}

TEST(Features, CategoryFrequenciesSumToOne) {
  const auto trace = Program(1, Family::kRogue, 9).generate(4096);
  const auto f = extract_window(trace, FeatureView::kInsnCategory);
  double total = 0.0;
  for (double x : f) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Features, AllFeaturesBounded01) {
  const auto trace = Program(2, Family::kPasswordStealer, 10).generate(8192);
  for (std::size_t v = 0; v < kNumViews; ++v) {
    const auto f = extract_window(trace, static_cast<FeatureView>(v));
    for (double x : f) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(Features, WindowCountMatchesPeriod) {
  const auto trace = Program(1, Family::kBrowser, 3).generate(10000);
  EXPECT_EQ(extract_windows(trace, FeatureView::kInsnCategory, 2048).size(), 4u);
  EXPECT_EQ(extract_windows(trace, FeatureView::kInsnCategory, 4096).size(), 2u);
  EXPECT_EQ(extract_windows(trace, FeatureView::kInsnCategory, 10000).size(), 1u);
}

TEST(Features, EmptyWindowAndZeroPeriodRejected) {
  const auto trace = Program(1, Family::kBrowser, 3).generate(512);
  EXPECT_THROW((void)extract_window({}, FeatureView::kMemory), std::invalid_argument);
  EXPECT_THROW((void)extract_windows(trace, FeatureView::kMemory, 0), std::invalid_argument);
}

TEST(Features, MemoryViewTracksReadsWrites) {
  // A window of pure string ops must show high memory density; a window of
  // pure flag ops nearly none.
  std::vector<Instruction> strings(1000);
  for (auto& i : strings) {
    i.category = InsnCategory::kString;
    i.mem_read = true;
  }
  const auto f = extract_window(strings, FeatureView::kMemory);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // read fraction
  EXPECT_DOUBLE_EQ(f[7], 1.0);  // access density

  std::vector<Instruction> flags(1000);
  for (auto& i : flags) i.category = InsnCategory::kFlagControl;
  const auto g = extract_window(flags, FeatureView::kMemory);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[7], 0.0);
}

TEST(Features, ControlFlowViewTakenRatio) {
  std::vector<Instruction> trace(100);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].category = InsnCategory::kControlTransfer;
    trace[i].control = ControlKind::kCondBranch;
    trace[i].branch_taken = (i % 4 != 0);  // 75% taken
  }
  const auto f = extract_window(trace, FeatureView::kControlFlow);
  EXPECT_DOUBLE_EQ(f[0], 1.0);        // all control transfers
  EXPECT_DOUBLE_EQ(f[1], 1.0);        // all conditional
  EXPECT_NEAR(f[2], 0.75, 1e-9);      // taken ratio
}

// ------------------------------------------------------------------- dataset

TEST(Dataset, CorpusCountsAndFamilies) {
  CorpusConfig cfg;
  cfg.n_malware = 50;
  cfg.n_benign = 20;
  const auto corpus = ProgramFactory::make_corpus(cfg);
  ASSERT_EQ(corpus.size(), 70u);
  std::size_t malware = 0;
  std::map<Family, int> per_family;
  for (const Program& p : corpus) {
    malware += p.malware();
    ++per_family[p.family()];
  }
  EXPECT_EQ(malware, 50u);
  EXPECT_EQ(per_family[Family::kBackdoor], 10);
  EXPECT_EQ(per_family[Family::kBrowser], 4);
}

TEST(Dataset, UniqueIdsAndSeeds) {
  CorpusConfig cfg;
  cfg.n_malware = 40;
  cfg.n_benign = 10;
  const auto corpus = ProgramFactory::make_corpus(cfg);
  std::set<std::uint32_t> ids;
  std::set<std::uint64_t> seeds;
  for (const Program& p : corpus) {
    ids.insert(p.id());
    seeds.insert(p.seed());
  }
  EXPECT_EQ(ids.size(), corpus.size());
  EXPECT_EQ(seeds.size(), corpus.size());
}

TEST(Dataset, FoldsAreDisjointAndCoverEverything) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const FoldSplit folds = ds.folds(0);
  std::set<std::size_t> all;
  for (const auto* fold : {&folds.victim_training, &folds.attacker_training, &folds.testing}) {
    for (std::size_t idx : *fold) {
      EXPECT_TRUE(all.insert(idx).second) << "index in two folds: " << idx;
    }
  }
  EXPECT_EQ(all.size(), ds.samples().size());
}

TEST(Dataset, FoldsAreStratifiedByFamily) {
  // §IV: "the malware types and the benign application types were
  // distributed evenly and randomly across the folds".
  const trace::Dataset& ds = shmd::test::small_dataset();
  const FoldSplit folds = ds.folds(0);
  for (const auto* fold : {&folds.victim_training, &folds.attacker_training, &folds.testing}) {
    std::map<Family, int> per_family;
    for (std::size_t idx : *fold) ++per_family[ds.samples()[idx].program.family()];
    for (std::size_t f = 0; f < kNumFamilies; ++f) {
      EXPECT_GE(per_family[static_cast<Family>(f)], 1)
          << family_name(static_cast<Family>(f));
    }
  }
}

TEST(Dataset, RotationsPermuteRoles) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const FoldSplit r0 = ds.folds(0);
  const FoldSplit r1 = ds.folds(1);
  // Rotation 1's victim fold is rotation 0's attacker fold.
  EXPECT_EQ(r1.victim_training, r0.attacker_training);
  EXPECT_EQ(r1.attacker_training, r0.testing);
  EXPECT_EQ(r1.testing, r0.victim_training);
  EXPECT_THROW((void)ds.folds(3), std::invalid_argument);
}

TEST(Dataset, FeatureSetHasAllViewsAndPeriods) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const ProgramSample& sample = ds.samples().front();
  for (std::size_t v = 0; v < kNumViews; ++v) {
    for (std::size_t period : ds.config().periods) {
      const FeatureConfig fc{static_cast<FeatureView>(v), period};
      ASSERT_TRUE(sample.features.has(fc));
      const auto& windows = sample.features.windows(fc);
      EXPECT_EQ(windows.size(), ds.config().trace_length / period);
      EXPECT_EQ(windows.front().size(), view_dim(fc.view));
    }
  }
}

TEST(Dataset, MissingFeatureConfigThrows) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const FeatureConfig unknown{FeatureView::kInsnCategory, 999};
  EXPECT_THROW((void)ds.samples().front().features.windows(unknown), std::out_of_range);
}

TEST(Dataset, TraceOfRegeneratesDeterministically) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const auto t1 = ds.trace_of(3);
  const auto t2 = ds.trace_of(3);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i].category, t2[i].category);
}

TEST(Dataset, ExtractFeatureSetMatchesPrecomputed) {
  const trace::Dataset& ds = shmd::test::small_dataset();
  const auto trace = ds.trace_of(0);
  const FeatureSet fs = extract_feature_set(trace, ds.config().periods);
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  EXPECT_EQ(fs.windows(fc), ds.samples()[0].features.windows(fc));
}

TEST(Dataset, InvalidConfigRejected) {
  DatasetConfig bad;
  bad.corpus.n_malware = 2;
  bad.corpus.n_benign = 2;
  bad.periods = {};
  EXPECT_THROW((void)Dataset::build(bad), std::invalid_argument);
  bad.periods = {99999};
  bad.trace_length = 1024;
  EXPECT_THROW((void)Dataset::build(bad), std::invalid_argument);
}

}  // namespace
}  // namespace shmd::trace
