#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/entropy.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::rng {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss gen(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(gen() & 1U);
  return bits;
}

TEST(ApEn, RandomSequenceApproachesLn2) {
  const auto bits = random_bits(20000, 99);
  const double apen = approximate_entropy(bits, 2);
  EXPECT_NEAR(apen, std::log(2.0), 0.01);
}

TEST(ApEn, ConstantSequenceHasZeroEntropy) {
  const std::vector<std::uint8_t> bits(4096, 1);
  EXPECT_NEAR(approximate_entropy(bits, 2), 0.0, 1e-9);
}

TEST(ApEn, PeriodicSequenceHasLowEntropy) {
  std::vector<std::uint8_t> bits(4096);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = static_cast<std::uint8_t>(i % 2);
  // 0101... is perfectly predictable: ApEn(m=2) ~ 0.
  EXPECT_NEAR(approximate_entropy(bits, 2), 0.0, 1e-6);
}

TEST(ApEn, EmptySequenceThrows) {
  EXPECT_THROW((void)approximate_entropy({}, 2), std::invalid_argument);
  EXPECT_THROW((void)apen_test({}, 2), std::invalid_argument);
}

TEST(ApEnTest, RandomSequencePasses) {
  const auto bits = random_bits(8192, 1234);
  const ApEnResult r = apen_test(bits, 2);
  EXPECT_TRUE(r.random());
  EXPECT_GT(r.p_value, 0.01);
}

TEST(ApEnTest, StuckSequenceFails) {
  const std::vector<std::uint8_t> bits(8192, 0);
  const ApEnResult r = apen_test(bits, 2);
  EXPECT_FALSE(r.random());
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ApEnTest, BiasedSequenceFails) {
  // 90/10 biased coin: clearly non-uniform.
  Xoshiro256ss gen(5);
  std::vector<std::uint8_t> bits(8192);
  for (auto& b : bits) b = gen.bernoulli(0.9) ? 1 : 0;
  EXPECT_FALSE(apen_test(bits, 2).random());
}

TEST(ApEnTest, ZeroBlockLenRejected) {
  const auto bits = random_bits(128, 1);
  EXPECT_THROW((void)apen_test(bits, 0), std::invalid_argument);
}

TEST(ApEnTest, NistExample) {
  // SP 800-22 worked example (§2.12.8): for the 100-bit expansion of e,
  // m=2 gives ApEn = 0.665393 and p-value = 0.235301.
  const char* e_bits =
      "1100100100001111110110101010001000100001011010001100001000110100"
      "110001001100011001100010100010111000";
  std::vector<std::uint8_t> bits;
  for (const char* p = e_bits; *p; ++p) bits.push_back(static_cast<std::uint8_t>(*p - '0'));
  ASSERT_EQ(bits.size(), 100u);
  const ApEnResult r = apen_test(bits, 2);
  EXPECT_NEAR(r.apen, 0.665393, 1e-5);
  EXPECT_NEAR(r.p_value, 0.235301, 1e-4);
}

TEST(Igamc, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(igamc(1.0, 2.0), std::exp(-2.0), 1e-12);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(igamc(0.5, 1.0), std::erfc(1.0), 1e-10);
  // Boundary behavior.
  EXPECT_DOUBLE_EQ(igamc(3.0, 0.0), 1.0);
}

TEST(Igamc, LargeXDecaysToZero) { EXPECT_LT(igamc(2.0, 100.0), 1e-30); }

TEST(Igamc, InvalidArgumentsThrow) {
  EXPECT_THROW((void)igamc(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)igamc(1.0, -1.0), std::invalid_argument);
}

TEST(ToBits, ExtractsRequestedBit) {
  const std::vector<std::uint64_t> values{0b101, 0b010, 0b111};
  const auto bit0 = to_bits(values, 0);
  EXPECT_EQ(bit0, (std::vector<std::uint8_t>{1, 0, 1}));
  const auto bit1 = to_bits(values, 1);
  EXPECT_EQ(bit1, (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(ToBits, RejectsOutOfRangeBit) {
  const std::vector<std::uint64_t> values{1};
  EXPECT_THROW(to_bits(values, 64), std::invalid_argument);
}

}  // namespace
}  // namespace shmd::rng
