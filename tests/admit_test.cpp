// Tests for src/admit/: the wait predictor behind reject-on-arrival, the
// per-connection token bucket behind the fair-share limiter, and the
// pluggable overload-policy factory. All three are deliberately small,
// clock-free (time is injected) and lock-free (atomics only), so the
// tests pin exact numeric behavior rather than racing wall-clock time.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "admit/policy.hpp"
#include "admit/token_bucket.hpp"
#include "admit/wait_predictor.hpp"

namespace shmd::admit {
namespace {

using namespace std::chrono_literals;
using TimePoint = std::chrono::steady_clock::time_point;

// ---------------------------------------------------------- WaitPredictor

TEST(AdmitPredictor, ColdPredictorAdmitsEverything) {
  WaitPredictor p;
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_EQ(p.ewma_service_ns(), 0.0);
  // No samples yet -> no basis for a prediction -> predicted wait 0, so
  // reject-on-arrival never fires before the first request completes.
  EXPECT_EQ(p.predicted_wait_ns(1000, 1), 0u);
}

TEST(AdmitPredictor, FirstSampleSeedsTheEwmaDirectly) {
  WaitPredictor p(0.1);
  p.record_service_ns(8000);
  EXPECT_EQ(p.samples(), 1u);
  // Seeding (not 0.1 * 8000): a cold EWMA that averaged against zero
  // would under-predict for the first ~1/alpha requests.
  EXPECT_DOUBLE_EQ(p.ewma_service_ns(), 8000.0);
}

TEST(AdmitPredictor, EwmaConvergesWithAlpha) {
  WaitPredictor p(0.5);
  p.record_service_ns(1000);
  p.record_service_ns(2000);  // 1000 + 0.5 * (2000 - 1000)
  EXPECT_DOUBLE_EQ(p.ewma_service_ns(), 1500.0);
  p.record_service_ns(1500);
  EXPECT_DOUBLE_EQ(p.ewma_service_ns(), 1500.0);
}

TEST(AdmitPredictor, PredictedWaitIsFluidApproximation) {
  WaitPredictor p(0.5);
  p.record_service_ns(1000);
  // depth * ewma / workers: 6 queued behind 2 workers ~ 3 service times.
  EXPECT_EQ(p.predicted_wait_ns(6, 2), 3000u);
  EXPECT_EQ(p.predicted_wait_ns(0, 2), 0u);   // empty queue -> no wait
  EXPECT_EQ(p.predicted_wait_ns(4, 0), 4000u);  // workers clamped to >= 1
}

TEST(AdmitPredictor, ConcurrentRecordsStayWithinSampleRange) {
  // The relaxed CAS loop may lose interleavings but must never produce an
  // EWMA outside the convex hull of the recorded samples.
  WaitPredictor p(0.2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p, t] {
      for (int i = 0; i < kPerThread; ++i) {
        p.record_service_ns(1000 + 100 * static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(p.samples(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(p.ewma_service_ns(), 1000.0);
  EXPECT_LE(p.ewma_service_ns(), 1300.0);
}

// ------------------------------------------------------------ TokenBucket

TEST(AdmitBucket, BurstThenEmptyThenRefill) {
  TokenBucket bucket(10.0, 2.0);  // 10 tokens/s, 2 banked
  EXPECT_TRUE(bucket.enabled());
  TimePoint t{};
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_FALSE(bucket.try_take(t));  // burst exhausted at the same instant
  t += 100ms;                        // 10 rps -> exactly one token back
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_FALSE(bucket.try_take(t));
}

TEST(AdmitBucket, RefillIsCappedAtBurst) {
  TokenBucket bucket(1000.0, 4.0);
  TimePoint t{};
  EXPECT_TRUE(bucket.try_take(t));  // initializes last_ = t
  t += 10s;                         // would bank 10000 tokens uncapped
  EXPECT_DOUBLE_EQ(bucket.available(t), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_take(t)) << i;
  EXPECT_FALSE(bucket.try_take(t));
}

TEST(AdmitBucket, FractionalTokensAccumulate) {
  TokenBucket bucket(10.0, 1.0);
  TimePoint t{};
  EXPECT_TRUE(bucket.try_take(t));
  t += 50ms;  // half a token: not enough
  EXPECT_FALSE(bucket.try_take(t));
  t += 50ms;  // the two halves add up
  EXPECT_TRUE(bucket.try_take(t));
}

TEST(AdmitBucket, ZeroRateDisablesTheLimiter) {
  TokenBucket bucket(0.0, 2.0);
  EXPECT_FALSE(bucket.enabled());
  TimePoint t{};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(t));
}

TEST(AdmitBucket, BurstAndRateAreSanitized) {
  TokenBucket tiny(5.0, 0.25);  // burst below one request is useless
  TimePoint t{};
  EXPECT_TRUE(tiny.try_take(t));  // clamped up to 1
  TokenBucket negative(-3.0, 2.0);  // negative rate == disabled, not NaN
  EXPECT_FALSE(negative.enabled());
  EXPECT_TRUE(negative.try_take(t));
}

TEST(AdmitBucket, TimeGoingBackwardsIsIgnored) {
  TokenBucket bucket(10.0, 1.0);
  TimePoint t{};
  t += 1s;
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_FALSE(bucket.try_take(t - 500ms));  // no refund from the past
  EXPECT_TRUE(bucket.try_take(t + 100ms));
}

// ----------------------------------------------------------- policy table

TEST(AdmitPolicy, FactoryParseAndNamesRoundTrip) {
  for (const PolicyKind kind :
       {PolicyKind::kFifo, PolicyKind::kDropOldest, PolicyKind::kLifo}) {
    const auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->name(), policy_name(kind));
    const auto parsed = parse_policy(policy_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("FIFO").has_value());  // names are exact
  EXPECT_FALSE(parse_policy("drop_oldest").has_value());
}

TEST(AdmitPolicy, FifoNeverEvictsNorReorders) {
  const auto fifo = make_policy(PolicyKind::kFifo);
  EXPECT_FALSE(fifo->evict_oldest_on_overflow());
  for (std::size_t depth = 0; depth <= 8; ++depth) {
    EXPECT_FALSE(fifo->pop_newest_first(depth, 8));
  }
}

TEST(AdmitPolicy, DropOldestEvictsButKeepsFifoOrder) {
  const auto drop = make_policy(PolicyKind::kDropOldest);
  EXPECT_TRUE(drop->evict_oldest_on_overflow());
  EXPECT_FALSE(drop->pop_newest_first(8, 8));
}

TEST(AdmitPolicy, LifoKicksInPastHalfCapacity) {
  const auto lifo = make_policy(PolicyKind::kLifo);
  EXPECT_FALSE(lifo->evict_oldest_on_overflow());
  EXPECT_FALSE(lifo->pop_newest_first(2, 4));  // exactly half: still FIFO
  EXPECT_TRUE(lifo->pop_newest_first(3, 4));
  EXPECT_TRUE(lifo->pop_newest_first(4, 4));
  EXPECT_FALSE(lifo->pop_newest_first(0, 4));
}

}  // namespace
}  // namespace shmd::admit
