#include <gtest/gtest.h>

#include <sstream>

#include "eval/data_adapter.hpp"
#include "eval/dataset_io.hpp"
#include "hmd/alarm.hpp"
#include "hmd/builders.hpp"
#include "nn/mlp_classifier.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/test_corpus.hpp"
#include "volt/cpu_package.hpp"

namespace shmd {
namespace {

// ---------------------------------------------------------------- alarms

TEST(AlarmPolicy, FiresAtThresholdWithinWindow) {
  hmd::AlarmPolicyConfig cfg;
  cfg.threshold = 3;
  cfg.window = 5;
  cfg.cooldown = 0;
  hmd::AlarmPolicy policy(cfg);
  EXPECT_FALSE(policy.observe(true));
  EXPECT_FALSE(policy.observe(false));
  EXPECT_FALSE(policy.observe(true));
  EXPECT_TRUE(policy.observe(true));  // 3 flagged within last 5
  EXPECT_EQ(policy.alarms_raised(), 1u);
}

TEST(AlarmPolicy, OldRoundsSlideOutOfTheWindow) {
  hmd::AlarmPolicyConfig cfg;
  cfg.threshold = 2;
  cfg.window = 3;
  cfg.cooldown = 0;
  hmd::AlarmPolicy policy(cfg);
  EXPECT_FALSE(policy.observe(true));
  EXPECT_FALSE(policy.observe(false));
  EXPECT_FALSE(policy.observe(false));
  // The early flag has slid out: a single new flag must not alarm.
  EXPECT_FALSE(policy.observe(true));
  EXPECT_EQ(policy.alarms_raised(), 0u);
}

TEST(AlarmPolicy, CooldownSuppressesRetriggers) {
  hmd::AlarmPolicyConfig cfg;
  cfg.threshold = 1;
  cfg.window = 1;
  cfg.cooldown = 3;
  hmd::AlarmPolicy policy(cfg);
  EXPECT_TRUE(policy.observe(true));
  EXPECT_TRUE(policy.in_cooldown());
  EXPECT_FALSE(policy.observe(true));
  EXPECT_FALSE(policy.observe(true));
  EXPECT_FALSE(policy.observe(true));
  EXPECT_TRUE(policy.observe(true));  // cooldown expired
  EXPECT_EQ(policy.alarms_raised(), 2u);
}

TEST(AlarmPolicy, DebouncesSporadicBenignFlicker) {
  // A benign program flagged ~10% of rounds must rarely alarm under a
  // 3-of-8 policy; an evasive sample flagged ~40% must alarm quickly.
  rng::Xoshiro256ss gen(21);
  const auto alarms_over = [&](double flag_prob, int rounds) {
    hmd::AlarmPolicy policy({3, 8, 16});
    int alarms = 0;
    for (int r = 0; r < rounds; ++r) alarms += policy.observe(gen.bernoulli(flag_prob));
    return alarms;
  };
  EXPECT_LE(alarms_over(0.10, 200), 4);
  EXPECT_GE(alarms_over(0.40, 200), 5);
}

TEST(AlarmPolicy, ValidatesConfig) {
  EXPECT_THROW(hmd::AlarmPolicy({0, 4, 0}), std::invalid_argument);
  EXPECT_THROW(hmd::AlarmPolicy({5, 4, 0}), std::invalid_argument);
  EXPECT_THROW(hmd::AlarmPolicy({1, 0, 0}), std::invalid_argument);
}

TEST(AlarmPolicy, ResetClearsState) {
  hmd::AlarmPolicy policy({1, 1, 0});
  (void)policy.observe(true);
  policy.reset();
  EXPECT_EQ(policy.alarms_raised(), 0u);
  EXPECT_EQ(policy.rounds_observed(), 0u);
  EXPECT_FALSE(policy.in_cooldown());
}

// -------------------------------------------------------------- CPU package

TEST(CpuPackage, DetectionCoreUndervoltsAlone) {
  // §III: monitored applications keep running at nominal voltage while the
  // dedicated detection core undervolts.
  volt::CpuPackage package(4, volt::DeviceProfile::sample(0xCAFE));
  const std::uint64_t token = package.dedicate_detection_core(3);
  EXPECT_EQ(package.detection_core(), 3u);

  package.core(3).set_offset_mv(-115.0, token);
  EXPECT_TRUE(package.application_cores_nominal());
  EXPECT_NEAR(package.core(3).offset_mv(), -115.0, 0.5);
  for (unsigned c = 0; c < 3; ++c) EXPECT_NEAR(package.core(c).offset_mv(), 0.0, 0.5);

  // Application cores remain freely usable (e.g., DVFS by the OS)...
  package.core(0).set_offset_mv(-20.0);
  EXPECT_FALSE(package.application_cores_nominal());
  package.core(0).set_offset_mv(0.0);
  // ...but nobody can touch the detection rail without the token.
  EXPECT_THROW(package.core(3).set_offset_mv(0.0), volt::VoltageControlError);
}

TEST(CpuPackage, SingleDetectionCoreOnly) {
  volt::CpuPackage package(2, volt::DeviceProfile{});
  (void)package.dedicate_detection_core(0);
  EXPECT_THROW((void)package.dedicate_detection_core(1), std::logic_error);
}

TEST(CpuPackage, Validation) {
  EXPECT_THROW(volt::CpuPackage(0, volt::DeviceProfile{}), std::invalid_argument);
  EXPECT_THROW(volt::CpuPackage(99, volt::DeviceProfile{}), std::invalid_argument);
  volt::CpuPackage package(2, volt::DeviceProfile{});
  EXPECT_THROW((void)package.core(5), std::out_of_range);
  EXPECT_THROW((void)package.detection_core(), std::logic_error);
}

TEST(CpuPackage, StochasticHmdRunsOnDedicatedCore) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 40;
  hmd::StochasticHmd detector = hmd::make_stochastic(ds, folds.victim_training, fc, 0.0, opt);

  volt::CpuPackage package(4, volt::DeviceProfile{});
  const std::uint64_t token = package.dedicate_detection_core(1);
  const double offset = package.core(1).model().offset_for_error_rate(0.15, 45.0);
  detector.attach_domain(package.core(1), offset, token);

  (void)detector.detect(ds.samples()[folds.testing[0]].features);
  EXPECT_TRUE(package.application_cores_nominal());
  EXPECT_NEAR(package.core(1).offset_mv(), 0.0, 0.5);  // restored after burst
  detector.detach_domain();
}

// ----------------------------------------------------------- CSV interchange

TEST(DatasetIo, ExportImportRoundTrip) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  const std::vector<std::size_t> indices{0, 1, 2};

  std::stringstream csv;
  eval::export_windows_csv(ds, indices, fc, csv);
  const auto imported = eval::import_windows_csv(csv);

  const auto reference = eval::window_samples(ds, indices, fc);
  ASSERT_EQ(imported.size(), reference.size());
  for (std::size_t i = 0; i < imported.size(); ++i) {
    EXPECT_EQ(imported[i].sample.y, reference[i].y);
    ASSERT_EQ(imported[i].sample.x.size(), reference[i].x.size());
    for (std::size_t f = 0; f < reference[i].x.size(); ++f) {
      EXPECT_NEAR(imported[i].sample.x[f], reference[i].x[f], 1e-15);
    }
  }
  EXPECT_EQ(imported.front().program_id, ds.samples()[0].program.id());
  EXPECT_EQ(imported.front().family,
            std::string(trace::family_name(ds.samples()[0].program.family())));
}

TEST(DatasetIo, ImportedSamplesTrainADetector) {
  // External data can drive the normal training pipeline.
  const trace::Dataset& ds = test::small_dataset();
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  const trace::FoldSplit folds = ds.folds(0);
  std::stringstream csv;
  eval::export_windows_csv(ds, folds.victim_training, fc, csv);
  auto samples = eval::to_train_samples(eval::import_windows_csv(csv));
  ASSERT_FALSE(samples.empty());

  nn::TrainConfig train;
  train.epochs = 40;
  train.patience = 0;
  nn::MlpClassifier mlp({trace::view_dim(fc.view), 16, 1}, train, 3);
  mlp.fit(samples);
  std::size_t correct = 0;
  for (const auto& s : samples) correct += mlp.classify(s.x) == (s.y > 0.5);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(samples.size()), 0.85);
}

TEST(DatasetIo, RejectsMalformedCsv) {
  std::stringstream empty;
  EXPECT_THROW((void)eval::import_windows_csv(empty), std::runtime_error);

  std::stringstream bad_header("id,label,f0\n1,0,0.5\n");
  EXPECT_THROW((void)eval::import_windows_csv(bad_header), std::runtime_error);

  std::stringstream ragged("program_id,family,label,f0,f1\n1,worm,1,0.5\n");
  EXPECT_THROW((void)eval::import_windows_csv(ragged), std::runtime_error);

  std::stringstream bad_label("program_id,family,label,f0\n1,worm,0.7,0.5\n");
  EXPECT_THROW((void)eval::import_windows_csv(bad_label), std::runtime_error);
}

}  // namespace
}  // namespace shmd
