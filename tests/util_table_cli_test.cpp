#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace shmd::util {
namespace {

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2     |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FormattersProduceFixedPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.9412, 1), "94.1%");
}

TEST(AsciiBar, ProportionalFill) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(ascii_bar(10.0, 10.0, 4), "####");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 4), "    ");
}

TEST(AsciiBar, DegenerateInputsGiveBlank) {
  EXPECT_EQ(ascii_bar(1.0, 0.0, 4), "    ");
  EXPECT_EQ(ascii_bar(-1.0, 10.0, 4), "    ");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  CliParser cli;
  cli.add_flag("alpha", "", "0");
  cli.add_flag("beta", "", "x");
  const char* argv[] = {"prog", "--alpha=3", "--beta", "hello"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("alpha"), 3);
  EXPECT_EQ(cli.get("beta"), "hello");
}

TEST(Cli, BoolFlagForms) {
  CliParser cli;
  cli.add_bool("verbose", "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));

  CliParser cli2;
  cli2.add_bool("verbose", "");
  const char* argv2[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(cli2.parse(2, argv2));
  EXPECT_FALSE(cli2.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli;
  cli.add_flag("x", "", "0");
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli;
  cli.add_flag("x", "", "0");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  CliParser cli;
  cli.add_flag("rate", "", "0.25");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
}

TEST(Cli, UnregisteredGetThrows) {
  CliParser cli;
  EXPECT_THROW((void)cli.get("nothing"), std::invalid_argument);
}

TEST(Endpoint, ParsesTcpHostPort) {
  const Endpoint ep = parse_endpoint("127.0.0.1:7433");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7433);
  EXPECT_EQ(ep.to_string(), "127.0.0.1:7433");
  EXPECT_EQ(parse_endpoint(ep.to_string()), ep) << "to_string() round-trips";
}

TEST(Endpoint, ParsesEphemeralAndWildcard) {
  EXPECT_EQ(parse_endpoint("localhost:0").port, 0) << "port 0 = ephemeral";
  const Endpoint any = parse_endpoint(":7433");
  EXPECT_EQ(any.host, "*") << "empty host means every interface";
  EXPECT_EQ(any, parse_endpoint("*:7433"));
}

TEST(Endpoint, ParsesUnixPath) {
  const Endpoint ep = parse_endpoint("unix:/run/shmd.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/run/shmd.sock");
  EXPECT_EQ(ep.to_string(), "unix:/run/shmd.sock");
  EXPECT_EQ(parse_endpoint(ep.to_string()), ep);
}

TEST(Endpoint, RejectsMalformedSpecsWithNamedSpec) {
  // Every rejection names the offending spec so deploy-script typos are
  // diagnosable from the error alone.
  for (const char* bad : {"nocolon", "unix:", "host:", "host:notaport", "host:99999",
                          "host:65536", "host:12x"}) {
    try {
      (void)parse_endpoint(bad);
      ADD_FAILURE() << "accepted malformed spec: " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
          << "error message must name the spec: " << e.what();
    }
  }
}

TEST(Endpoint, AcceptsPortBoundaries) {
  EXPECT_EQ(parse_endpoint("h:65535").port, 65535);
  EXPECT_EQ(parse_endpoint("h:1").port, 1);
}

}  // namespace
}  // namespace shmd::util
