#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace shmd::util {
namespace {

TEST(Stats, MeanOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, VarianceUsesBesselCorrection) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance is 4 * 8/7.
  EXPECT_NEAR(variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_THROW((void)min({}), std::invalid_argument);
  EXPECT_THROW((void)max({}), std::invalid_argument);
}

TEST(Stats, MinMaxOfSample) {
  const std::vector<double> xs{3.0, -1.0, 7.5, 0.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.5);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileInterpolatesAndClamps) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 3.0);    // clamped
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW((void)pearson(xs, ys), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs{0.5, 1.5, -2.0, 4.0, 4.0, 7.25};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0};
  RunningStats ra;
  for (double x : a) ra.add(x);
  RunningStats rb;
  for (double x : b) rb.add(x);
  ra.merge(rb);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_EQ(ra.count(), all.size());
  EXPECT_NEAR(ra.mean(), mean(all), 1e-12);
  EXPECT_NEAR(ra.variance(), variance(all), 1e-12);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats ra;
  ra.add(1.0);
  ra.add(2.0);
  RunningStats empty;
  ra.merge(empty);
  EXPECT_EQ(ra.count(), 2u);
  EXPECT_NEAR(ra.mean(), 1.5, 1e-12);

  RunningStats rb;
  rb.merge(ra);
  EXPECT_EQ(rb.count(), 2u);
  EXPECT_NEAR(rb.mean(), 1.5, 1e-12);
}

TEST(Histogram, BinsAndDensity) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.35);  // bin 1
  h.add(0.9);   // bin 3
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.density(1), 0.5);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.875);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace shmd::util
