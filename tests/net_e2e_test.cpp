// End-to-end tests for the socket front-end (src/net/): a real NetServer
// over loopback TCP and Unix-domain sockets, driven by NetClient.
//
// The load-bearing property is the determinism contract: for a fixed
// (seed, admission order), scores over the wire must be BIT-identical to
// the same submissions made in-process — the transport may fragment,
// coalesce, and reorder completions, but it must never perturb a score.
// The overload tests pin the backpressure discipline: a full RequestQueue
// surfaces as kShed Error frames on a live connection, and only protocol
// garbage costs the connection. The NetE2E suite runs under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hmd/stochastic_hmd.hpp"
#include "net/client.hpp"
#include "nn/network.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/scoring_service.hpp"
#include "util/cli.hpp"

namespace shmd::net {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kInputs = 8;
const trace::FeatureConfig kFc{trace::FeatureView::kInsnCategory, 2048};

nn::Network make_net() {
  const std::vector<std::size_t> topo{kInputs, 12, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

serve::DetectorEpoch test_epoch(double error_rate) {
  const hmd::StochasticHmd det(make_net(), kFc, error_rate);
  return serve::make_epoch(det);
}

/// One program's windows, in both submission forms: the in-process
/// FeatureSet and the on-the-wire ScoreRequest carry identical doubles.
struct Workload {
  std::vector<trace::FeatureSet> features;
  std::vector<ScoreRequest> requests;
};

Workload make_workload(std::size_t n, std::size_t n_windows = 4) {
  Workload w;
  for (std::size_t i = 0; i < n; ++i) {
    rng::Xoshiro256ss gen(1000 + i);
    std::vector<std::vector<double>> windows(n_windows, std::vector<double>(kInputs));
    for (auto& window : windows) {
      for (double& x : window) x = gen.uniform01();
    }
    ScoreRequest req;
    req.view = static_cast<std::uint8_t>(kFc.view);
    req.period = static_cast<std::uint32_t>(kFc.period);
    req.width = kInputs;
    req.windows = windows;
    w.requests.push_back(std::move(req));
    trace::FeatureSet fs;
    fs.put(kFc, std::move(windows));
    w.features.push_back(std::move(fs));
  }
  return w;
}

/// Reference scores: the same workload submitted in-process, one request
/// at a time, against a fresh service with the given config.
std::vector<std::vector<double>> in_process_scores(const Workload& w,
                                                   const serve::ServeConfig& config) {
  serve::ScoringService service(test_epoch(0.05), config);
  std::vector<std::vector<double>> scores;
  for (const trace::FeatureSet& fs : w.features) {
    serve::ScoreTicket ticket;
    EXPECT_EQ(service.submit(fs, ticket), serve::SubmitStatus::kAccepted);
    ticket.wait();
    EXPECT_EQ(ticket.outcome(), serve::RequestOutcome::kScored);
    scores.push_back(ticket.scores());
  }
  return scores;
}

std::string temp_uds_path(const char* tag) {
  return "/tmp/shmd_e2e_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".sock";
}

// --------------------------------------------------------------- liveness

TEST(NetE2E, PingAndStatsOverTcp) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 2});
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  ASSERT_NE(ep.port, 0) << "ephemeral port must be resolved";
  server.start();

  NetClient client;
  client.connect(ep);
  EXPECT_TRUE(client.ping());
  const std::optional<serve::ServiceStatsSnapshot> stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->scored, 0u);
  server.stop();
}

// ------------------------------------------------------------- determinism

TEST(NetE2E, LoopbackScoresBitIdenticalToInProcessOverTcpAndUds) {
  const Workload w = make_workload(24);
  const serve::ServeConfig config{.num_workers = 2};
  const std::vector<std::vector<double>> reference = in_process_scores(w, config);

  const std::string uds = temp_uds_path("det");
  const util::Endpoint endpoints[] = {util::parse_endpoint("127.0.0.1:0"),
                                      util::parse_endpoint("unix:" + uds)};
  for (const util::Endpoint& want : endpoints) {
    // Fresh service per transport: same seed, same epoch, same admission
    // order => the wire must reproduce the reference bit-for-bit.
    serve::ScoringService service(test_epoch(0.05), config);
    NetServer server(service);
    const util::Endpoint ep = server.add_listener(want);
    server.start();
    NetClient client;
    client.connect(ep);
    for (std::size_t i = 0; i < w.requests.size(); ++i) {
      const Reply reply = client.score(w.requests[i]);
      ASSERT_EQ(reply.type, FrameType::kScoreResult) << ep.to_string();
      ASSERT_TRUE(reply.result.has_value());
      EXPECT_EQ(reply.result->outcome,
                static_cast<std::uint8_t>(serve::RequestOutcome::kScored));
      EXPECT_EQ(reply.result->scores, reference[i])
          << "score divergence over " << ep.to_string() << " at request " << i;
    }
    client.close();
    server.stop();
  }
  EXPECT_NE(::access(uds.c_str(), F_OK), 0) << "stop() must unlink the unix socket";
}

TEST(NetE2E, PipelinedSubmissionPreservesAdmissionOrderDeterminism) {
  // Many in-flight requests on one connection: completions may come back
  // out of order (4 workers race), but admission follows wire order, so
  // each request id must still map to its reference scores.
  const Workload w = make_workload(32);
  const serve::ServeConfig config{.num_workers = 4};
  const std::vector<std::vector<double>> reference = in_process_scores(w, config);

  serve::ScoringService service(test_epoch(0.05), config);
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();
  NetClient client;
  client.connect(ep);

  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    index_of[client.send_score(w.requests[i])] = i;
  }
  for (std::size_t got = 0; got < w.requests.size(); ++got) {
    const Reply reply = client.recv_reply();
    ASSERT_EQ(reply.type, FrameType::kScoreResult);
    ASSERT_TRUE(index_of.contains(reply.request_id));
    ASSERT_TRUE(reply.result.has_value());
    EXPECT_EQ(reply.result->scores, reference[index_of[reply.request_id]]);
  }
  server.stop();
}

TEST(NetE2E, PollFallbackServesIdentically) {
  // Same contract through the poll() reactor (force_poll exercises the
  // portable backend on Linux too).
  const Workload w = make_workload(8);
  const serve::ServeConfig config{.num_workers = 2};
  const std::vector<std::vector<double>> reference = in_process_scores(w, config);

  serve::ScoringService service(test_epoch(0.05), config);
  NetServer server(service, NetServerConfig{.force_poll = true});
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("localhost:0"));
  server.start();
  NetClient client;
  client.connect(ep);
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    const Reply reply = client.score(w.requests[i]);
    ASSERT_TRUE(reply.result.has_value());
    EXPECT_EQ(reply.result->scores, reference[i]);
  }
  server.stop();
}

TEST(NetE2E, VerdictRepliesCarryExactlyTheScoreDecisions) {
  // The decision-only channel must answer with precisely the decisions a
  // kScore reply implies (score >= epoch threshold), same verdict, same
  // epoch id — and no scores. Fresh service per channel: same seed, same
  // admission order, so the two channels sample identical fault streams.
  const Workload w = make_workload(12);
  const serve::ServeConfig config{.num_workers = 2};

  std::vector<ScoreResult> scored;
  {
    serve::ScoringService service(test_epoch(0.05), config);
    NetServer server(service);
    const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
    server.start();
    NetClient client;
    client.connect(ep);
    for (const ScoreRequest& req : w.requests) {
      const Reply reply = client.score(req);
      ASSERT_TRUE(reply.result.has_value());
      scored.push_back(*reply.result);
    }
    server.stop();
  }

  serve::ScoringService service(test_epoch(0.05), config);
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();
  NetClient client;
  client.connect(ep);
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    const std::uint64_t id = client.send_verdict(w.requests[i]);
    const Reply reply = client.recv_reply();
    ASSERT_EQ(reply.request_id, id);
    ASSERT_EQ(reply.type, FrameType::kVerdictResult);
    ASSERT_TRUE(reply.verdict.has_value());
    const VerdictResult& v = *reply.verdict;
    EXPECT_EQ(v.outcome, scored[i].outcome);
    EXPECT_EQ(v.verdict, scored[i].verdict);
    EXPECT_EQ(v.epoch_id, scored[i].epoch_id);
    ASSERT_EQ(v.decisions.size(), scored[i].scores.size());
    for (std::size_t k = 0; k < v.decisions.size(); ++k) {
      EXPECT_EQ(v.decisions[k], scored[i].scores[k] >= 0.5) << "request " << i;
    }
  }
  server.stop();
  // The decision-only traffic is visible to the defender's telemetry.
  EXPECT_EQ(service.stats().verdict_queries, w.requests.size());
}

TEST(NetE2E, NoRawScoresPolicyRefusesKScoreInProtocol) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service, NetServerConfig{.allow_raw_scores = false});
  const util::Endpoint untrusted =
      server.add_listener(util::parse_endpoint("127.0.0.1:0"), /*trusted=*/false);
  const std::string uds = temp_uds_path("policy");
  const util::Endpoint trusted =
      server.add_listener(util::parse_endpoint("unix:" + uds), /*trusted=*/true);
  server.start();

  const Workload w = make_workload(1);
  NetClient attacker;
  attacker.connect(untrusted);
  // kScore from the untrusted side: refused in-protocol, with the id
  // echoed — and the connection survives (a policy refusal is not abuse).
  const Reply refused = attacker.score(w.requests[0]);
  ASSERT_EQ(refused.type, FrameType::kError);
  ASSERT_TRUE(refused.error.has_value());
  EXPECT_EQ(refused.error->code, ErrorCode::kUnsupported);
  EXPECT_TRUE(attacker.ping()) << "policy refusal must not disconnect";
  // The verdict channel still works on the same connection.
  (void)attacker.send_verdict(w.requests[0]);
  const Reply verdict = attacker.recv_reply();
  EXPECT_EQ(verdict.type, FrameType::kVerdictResult);
  // The request the policy refused never reached the service.
  EXPECT_EQ(service.stats().enqueued, 1u);

  // The trusted (same-host collector) listener keeps raw scores.
  NetClient collector;
  collector.connect(trusted);
  const Reply reply = collector.score(w.requests[0]);
  ASSERT_EQ(reply.type, FrameType::kScoreResult);
  EXPECT_FALSE(reply.result->scores.empty());
  server.stop();
}

TEST(NetE2E, RecvDeadlineGuardsAgainstHalfOpenServer) {
  // A listening socket that never accept()s: connect() succeeds out of
  // the backlog, then the "server" goes silent forever. Without a recv
  // deadline the client would block indefinitely; with one it must throw
  // RecvDeadlineExpired and keep the connection for a retry.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sin.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(sin);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&sin), &len), 0);

  NetClient client;
  client.set_recv_deadline(std::chrono::milliseconds(100));
  client.connect(util::parse_endpoint("127.0.0.1:" + std::to_string(ntohs(sin.sin_port))));
  const Workload w = make_workload(1);
  (void)client.send_verdict(w.requests[0]);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.recv_reply(), RecvDeadlineExpired);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s) << "must time out, not hang";
  EXPECT_TRUE(client.connected()) << "deadline expiry is retryable, not fatal";
  EXPECT_THROW((void)client.recv_reply(), RecvDeadlineExpired) << "retry also bounded";
  ::close(listener);
}

// ----------------------------------------------------------------- overload

TEST(NetE2E, OverloadSurfacesAsShedErrorFramesOnLiveConnection) {
  serve::ScoringService service(test_epoch(0.05),
                                serve::ServeConfig{.num_workers = 1, .queue_capacity = 2});
  service.pause();  // hold the workers: the ring observably fills
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  const Workload w = make_workload(10);
  NetClient client;
  client.connect(ep);
  std::vector<std::uint64_t> ids;
  for (const ScoreRequest& req : w.requests) ids.push_back(client.send_score(req));

  // 2 fit the ring; 8 must come back as in-protocol kShed errors, on the
  // SAME connection — overload never disconnects.
  std::size_t shed = 0;
  std::size_t scored = 0;
  for (std::size_t got = 0; got < w.requests.size(); ++got) {
    if (got == 8) service.resume();  // after the 8 sheds, let the 2 queued score
    const Reply reply = client.recv_reply();
    if (reply.type == FrameType::kError) {
      ASSERT_TRUE(reply.error.has_value());
      EXPECT_EQ(reply.error->code, ErrorCode::kShed);
      ++shed;
    } else {
      ASSERT_EQ(reply.type, FrameType::kScoreResult);
      ++scored;
    }
  }
  EXPECT_EQ(shed, 8u);
  EXPECT_EQ(scored, 2u);
  EXPECT_TRUE(client.ping()) << "the connection must survive shedding";
  EXPECT_EQ(server.stats().shed_responses, 8u);

  const serve::ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.shed, 8u);
  EXPECT_EQ(stats.scored, 2u);
  server.stop();
}

TEST(NetE2E, BackpressurePausesReadsAndStaysBounded) {
  // A slow reader over a Unix socket (fixed, small kernel buffers): the
  // server's write buffer crosses its limit, reads pause, and — because
  // the ring is bounded — total buffering stays bounded instead of
  // absorbing the flood. Everything still completes once the reader
  // drains.
  const std::size_t kRequests = 64;
  const Workload w = make_workload(kRequests, /*n_windows=*/2000);  // ~16 KiB replies
  serve::ScoringService service(test_epoch(0.01), serve::ServeConfig{.num_workers = 2});
  NetServer server(service, NetServerConfig{.write_buffer_limit = 2048});
  const std::string uds = temp_uds_path("bp");
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("unix:" + uds));
  server.start();

  NetClient client;
  client.connect(ep);
  std::atomic<std::size_t> sent{0};
  std::thread sender([&client, &w, &sent] {
    for (const ScoreRequest& req : w.requests) {
      (void)client.send_score(req);
      sent.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(300ms);  // let replies pile up unread
  std::size_t replies = 0;
  for (; replies < kRequests; ++replies) {
    const Reply reply = client.recv_reply();
    ASSERT_EQ(reply.type, FrameType::kScoreResult);
    ASSERT_EQ(reply.result->scores.size(), 2000u);
  }
  sender.join();
  EXPECT_EQ(sent.load(), kRequests);
  EXPECT_EQ(replies, kRequests);
  const NetServerStats stats = server.stats();
  EXPECT_GE(stats.reads_paused, 1u) << "the write-buffer limit must engage";
  EXPECT_EQ(stats.scores_submitted, kRequests);
  server.stop();

  const serve::ServiceStatsSnapshot served = service.stats();
  EXPECT_EQ(served.scored, kRequests);
  EXPECT_EQ(served.enqueued, served.scored) << "accounting drift through the transport";
}

// ----------------------------------------------------------- protocol abuse

/// Minimal raw TCP client for sending deliberately malformed bytes.
class RawConn {
 public:
  explicit RawConn(const util::Endpoint& ep) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(ep.port);
    ::inet_pton(AF_INET, ep.host.c_str(), &sin.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)), 0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  void send_bytes(const std::vector<std::uint8_t>& bytes) const {
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  /// Read until EOF; returns everything received.
  std::vector<std::uint8_t> drain() const {
    std::vector<std::uint8_t> all;
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.insert(all.end(), buf, buf + n);
    }
    return all;
  }

 private:
  int fd_ = -1;
};

TEST(NetE2E, GarbageBytesGetBadFrameErrorThenDisconnect) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  RawConn raw(ep);
  raw.send_bytes({'G', 'E', 'T', ' ', '/', ' ', 'H', 'T', 'T', 'P', '/', '1', '.', '1',
                  '\r', '\n', '\r', '\n', 0, 0, 0, 0});
  const std::vector<std::uint8_t> reply = raw.drain();  // ends at server-side close

  FrameDecoder decoder;
  decoder.feed(reply);
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value()) << "garbage must be answered with an Error frame";
  EXPECT_EQ(frame->type, FrameType::kError);
  const std::optional<ErrorBody> body = decode_error(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, ErrorCode::kBadFrame);
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(NetE2E, MalformedScorePayloadGetsBadFrameWithEchoedId) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  Frame frame;
  frame.type = FrameType::kScore;
  frame.request_id = 0xABCD;
  frame.payload = {1, 2, 3};  // far too short for a ScoreRequest
  std::vector<std::uint8_t> wire;
  encode_frame(frame, wire);
  RawConn raw(ep);
  raw.send_bytes(wire);
  FrameDecoder decoder;
  decoder.feed(raw.drain());
  const std::optional<Frame> reply = decoder.next();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->request_id, 0xABCDu) << "the offending request id is echoed";
  const std::optional<ErrorBody> body = decode_error(reply->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, ErrorCode::kBadFrame);
  server.stop();

  // The service never saw the request.
  EXPECT_EQ(service.stats().enqueued, 0u);
}

// ---------------------------------------------------------------- lifecycle

TEST(NetE2E, StopDrainsInFlightScoresWithoutDroppingAny) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 2});
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  const Workload w = make_workload(16);
  NetClient client;
  client.connect(ep);
  for (const ScoreRequest& req : w.requests) (void)client.send_score(req);
  server.stop();  // races the in-flight scores on purpose

  const serve::ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.enqueued, stats.scored + stats.deadline_missed + stats.failed)
      << "stop() must complete every accepted request";
  EXPECT_EQ(stats.failed, 0u);
}

TEST(NetE2E, ThrottledConnectionGetsErrorFrameAndStaysUsable) {
  // Fair-share limiter: a connection that exhausts its token bucket gets
  // in-protocol kThrottled Error frames — never a disconnect — and keeps
  // working within its budget. Near-zero refill makes the test exact: the
  // burst is the whole budget for the test's lifetime.
  const Workload w = make_workload(4);
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service,
                   NetServerConfig{.throttle_rps = 1e-6, .throttle_burst = 2.0});
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  NetClient client;
  client.connect(ep);
  for (int i = 0; i < 2; ++i) {
    const Reply reply = client.score(w.requests[i]);
    ASSERT_EQ(reply.type, FrameType::kScoreResult) << "within budget at " << i;
    ASSERT_TRUE(reply.result.has_value());
    EXPECT_EQ(reply.result->outcome,
              static_cast<std::uint8_t>(serve::RequestOutcome::kScored));
  }
  for (int i = 0; i < 3; ++i) {
    const Reply reply = client.score(w.requests[2]);
    ASSERT_EQ(reply.type, FrameType::kError) << "past budget at " << i;
    ASSERT_TRUE(reply.error.has_value());
    EXPECT_EQ(reply.error->code, ErrorCode::kThrottled);
  }
  // The connection survives the refusals: control frames still flow.
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.connected());

  // A fresh connection brings a fresh bucket — the limit is per
  // connection, not per process.
  NetClient second;
  second.connect(ep);
  const Reply fresh = second.score(w.requests[3]);
  EXPECT_EQ(fresh.type, FrameType::kScoreResult);

  const NetServerStats net_stats = server.stats();
  EXPECT_EQ(net_stats.throttled_responses, 3u);
  EXPECT_EQ(net_stats.throttled_conn_peak, 3u);
  const serve::ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.throttled, 3u);   // surfaced in the service snapshot too
  EXPECT_EQ(stats.enqueued, 3u);    // throttled requests never reached the ring
  EXPECT_EQ(stats.in_flight(), 0u);
  server.stop();
}

TEST(NetE2E, HopelessDeadlineComesBackAsRejectedResultFrame) {
  // Admission control over the wire: a deadline the service cannot meet
  // is a request-level disposition — a result frame with outcome
  // kRejected — not a transport error, and not a silent deadline miss
  // after queueing.
  Workload w = make_workload(2);
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service);
  const util::Endpoint ep = server.add_listener(util::parse_endpoint("127.0.0.1:0"));
  server.start();

  NetClient client;
  client.connect(ep);
  // Warm the wait predictor so reject-on-arrival has a service-time EWMA.
  (void)client.score(w.requests[0]);
  service.pause();  // build a backlog the predictor can see
  const std::uint64_t backlog_id = client.send_score(w.requests[0]);

  w.requests[1].deadline_us = 1;  // hopeless against any backlog
  const Reply reply = client.score(w.requests[1]);
  ASSERT_EQ(reply.type, FrameType::kScoreResult);
  ASSERT_TRUE(reply.result.has_value());
  EXPECT_EQ(reply.result->outcome,
            static_cast<std::uint8_t>(serve::RequestOutcome::kRejected));
  EXPECT_TRUE(reply.result->scores.empty());
  EXPECT_TRUE(client.connected());

  service.resume();
  const Reply drained = client.recv_reply();  // the backlogged request scores
  EXPECT_EQ(drained.request_id, backlog_id);
  EXPECT_EQ(drained.type, FrameType::kScoreResult);
  const serve::ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.rejected_on_admission, 1u);
  EXPECT_EQ(stats.in_flight(), 0u);
  server.stop();
}

TEST(NetE2E, ServerRequiresAListenerAndClientReportsRefusal) {
  serve::ScoringService service(test_epoch(0.05), serve::ServeConfig{.num_workers = 1});
  NetServer server(service);
  EXPECT_THROW(server.start(), std::runtime_error);

  NetClient client;
  EXPECT_THROW(client.connect(util::parse_endpoint("127.0.0.1:1")), std::runtime_error);
  EXPECT_THROW(client.connect(util::parse_endpoint("unix:/nonexistent/shmd.sock")),
               std::runtime_error);
}

}  // namespace
}  // namespace shmd::net
