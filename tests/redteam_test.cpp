// Tests for src/redteam/: the wire-backed oracle, the query-clock epoch
// roller, the budgeted campaign driver, and the fleet model.
//
// The load-bearing property is cross-transport bit parity: a campaign
// through attack::InProcessOracle and the SAME campaign through
// redteam::NetOracle against a freshly started NetServer (same service
// seed) must observe identical decisions — identical proxy training
// sets, identical transfer counts, equal FNV-1a decision hashes — with
// or without the defender rolling epochs underneath. The RedTeam suite
// runs under TSan in CI like the rest of the serving stack.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "redteam/campaign.hpp"
#include "redteam/fleet.hpp"
#include "redteam/net_oracle.hpp"
#include "serve/scoring_service.hpp"
#include "trace/dataset.hpp"

namespace shmd::redteam {
namespace {

constexpr std::uint64_t kServiceSeed = 4242;
constexpr double kEr = 0.08;

const trace::Dataset& tiny_dataset() {
  static const trace::Dataset ds = [] {
    trace::DatasetConfig cfg;
    cfg.corpus.n_malware = 24;
    cfg.corpus.n_benign = 9;
    cfg.trace_length = 8192;
    return trace::Dataset::build(cfg);
  }();
  return ds;
}

trace::FeatureConfig victim_fc() {
  return {trace::FeatureView::kInsnCategory, tiny_dataset().config().periods.front()};
}

hmd::StochasticHmd make_victim() {
  return hmd::StochasticHmd(served_reference_network(kServiceSeed), victim_fc(), kEr);
}

/// A live decision-only server wrapping `victim`'s network at `er`, plus
/// a connected client — everything a NetOracle needs, torn down in order.
struct ServedVictim {
  explicit ServedVictim(double er, std::uint64_t seed = kServiceSeed) {
    serve::ServeConfig config;
    config.num_workers = 2;
    config.seed = seed;
    service.emplace(serve::make_epoch(hmd::StochasticHmd(served_reference_network(kServiceSeed),
                                                         victim_fc(), er)),
                    config);
    net::NetServerConfig net_config;
    net_config.allow_raw_scores = false;
    server.emplace(*service, net_config);
    path = "/tmp/shmd_redteam_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
    const util::Endpoint ep =
        server->add_listener(util::parse_endpoint("unix:" + path), /*trusted=*/false);
    server->start();
    client.connect(ep);
  }
  ~ServedVictim() {
    client.close();
    server->stop();
    service->close();
  }

  NetOracle oracle(std::size_t pipeline_depth = 8) {
    NetOracleConfig cfg;
    cfg.features = victim_fc();
    cfg.recv_timeout = std::chrono::milliseconds(10000);
    cfg.pipeline_depth = pipeline_depth;
    return NetOracle(client, cfg);
  }

  static inline int counter = 0;
  std::optional<serve::ScoringService> service;
  std::optional<net::NetServer> server;
  net::NetClient client;
  std::string path;
};

CampaignConfig small_campaign(std::uint64_t period = 0, std::uint64_t budget = 0) {
  CampaignConfig cfg;
  cfg.re.proxy_configs = {victim_fc()};
  cfg.query_budget = budget;
  cfg.epoch_period_queries = period;
  return cfg;
}

// ---------------------------------------------------------------- parity

TEST(RedTeam, ObservedLabelsIdenticalAcrossTransports) {
  // Stage-level parity: the proxy TRAINING SET an attacker assembles is
  // byte-identical whether the victim is queried in-process or over the
  // wire — same features, same labels, same order.
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const attack::ReverseEngineer re(ds);
  const std::vector<trace::FeatureConfig> configs = {victim_fc()};

  const hmd::StochasticHmd victim = make_victim();
  attack::InProcessOracle inproc(victim, kServiceSeed);
  const std::vector<nn::TrainSample> local =
      re.query_victim(inproc, folds.attacker_training, configs);

  ServedVictim served(kEr);
  NetOracle wire = served.oracle();
  const std::vector<nn::TrainSample> remote =
      re.query_victim(wire, folds.attacker_training, configs);

  ASSERT_EQ(local.size(), remote.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(local[i].x, remote[i].x) << i;
    EXPECT_EQ(local[i].y, remote[i].y) << i;
  }
  EXPECT_EQ(inproc.decision_hash(), wire.decision_hash());
  EXPECT_EQ(inproc.queries_used(), wire.queries_used());
}

TEST(RedTeam, CampaignBitIdenticalAcrossTransports) {
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  std::vector<std::size_t> targets;
  for (const std::size_t i : folds.testing) {
    if (ds.samples()[i].malware() && targets.size() < 4) targets.push_back(i);
  }
  const CampaignConfig cfg = small_campaign();
  const Campaign campaign(ds, cfg);

  attack::InProcessOracle inproc(make_victim(), kServiceSeed);
  const CampaignResult local =
      campaign.run(inproc, nullptr, folds.attacker_training, folds.testing, targets);

  ServedVictim served(kEr);
  NetOracle wire_oracle = served.oracle();
  const CampaignResult remote =
      campaign.run(wire_oracle, nullptr, folds.attacker_training, folds.testing, targets);

  EXPECT_EQ(local.decision_hash, remote.decision_hash);
  EXPECT_EQ(local.queries_used, remote.queries_used);
  EXPECT_EQ(local.train_programs, remote.train_programs);
  EXPECT_EQ(local.re_effectiveness, remote.re_effectiveness);
  EXPECT_EQ(local.transfer.proxy_evaded, remote.transfer.proxy_evaded);
  EXPECT_EQ(local.transfer.transferred, remote.transfer.transferred);
  // The wire leg really was decision-only and fully accounted.
  EXPECT_EQ(served.service->stats().verdict_queries, remote.queries_used);
}

TEST(RedTeam, CampaignBitIdenticalWhileEpochsRoll) {
  // The moving-target case: the defender re-rolls the operating point
  // every 7 queries on BOTH transports. Query-count pacing must keep the
  // two runs in lockstep — same rolls at the same sequence numbers, same
  // epoch ids on every reply, equal hashes.
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  std::vector<std::size_t> targets;
  for (const std::size_t i : folds.testing) {
    if (ds.samples()[i].malware() && targets.size() < 4) targets.push_back(i);
  }
  const std::vector<double> schedule = {kEr * 0.5, kEr * 1.5, kEr};
  const CampaignConfig cfg = small_campaign(/*period=*/7);
  const Campaign campaign(ds, cfg);

  const hmd::StochasticHmd victim = make_victim();
  attack::InProcessOracle inproc(victim, kServiceSeed);
  InProcessEpochController local_ctl(inproc, schedule);
  const CampaignResult local =
      campaign.run(inproc, &local_ctl, folds.attacker_training, folds.testing, targets);

  ServedVictim served(kEr);
  NetOracle wire_oracle = served.oracle();
  ServiceEpochController remote_ctl(*served.service, served_reference_network(kServiceSeed),
                                    victim_fc(), schedule);
  const CampaignResult remote =
      campaign.run(wire_oracle, &remote_ctl, folds.attacker_training, folds.testing, targets);

  EXPECT_GT(local.epochs_rolled, 0u);
  EXPECT_EQ(local.epochs_rolled, remote.epochs_rolled);
  EXPECT_EQ(local.decision_hash, remote.decision_hash);
  EXPECT_EQ(local.transfer.transferred, remote.transfer.transferred);
}

TEST(RedTeam, NetOracleRepliesIndependentOfPipelineDepth) {
  // Reply reordering: depth-8 pipelining races 2 workers, yet the replies
  // must come back keyed to their requests — the observed sequence equals
  // the depth-1 (strictly serial) run against an identically seeded
  // fresh server.
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const attack::ReverseEngineer re(ds);
  const std::vector<trace::FeatureConfig> configs = {victim_fc()};

  std::optional<std::uint64_t> serial_hash;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{8}}) {
    ServedVictim served(kEr);
    NetOracle oracle = served.oracle(depth);
    (void)re.query_victim(oracle, folds.attacker_training, configs);
    if (!serial_hash) {
      serial_hash = oracle.decision_hash();
    } else {
      EXPECT_EQ(oracle.decision_hash(), *serial_hash);
    }
  }
}

// ------------------------------------------------------- rolling & budget

TEST(RedTeam, RollingOracleRollsOnTheQueryClock) {
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const hmd::StochasticHmd victim = make_victim();
  attack::InProcessOracle inner(victim, kServiceSeed);
  InProcessEpochController controller(inner, {kEr * 0.5, kEr});
  RollingOracle rolling(inner, &controller, /*period=*/4);

  std::vector<const trace::FeatureSet*> batch;
  for (std::size_t i = 0; i < 10; ++i) {  // cycle the fold: only the count matters
    const std::size_t idx = folds.testing[i % folds.testing.size()];
    batch.push_back(&ds.samples()[idx].features);
  }
  ASSERT_EQ(batch.size(), 10u);
  const std::vector<attack::OracleReply> replies = rolling.query_many(batch);
  // Queries 1-4 answer on epoch 1, 5-8 on epoch 2, 9-10 on epoch 3: the
  // roll lands BETWEEN completed reply batches, exactly as over the wire.
  EXPECT_EQ(rolling.rolls(), 2u);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].epoch_id, 1 + i / 4) << i;
  }
  EXPECT_EQ(rolling.queries_used(), 10u);
}

TEST(RedTeam, OracleBudgetIsChargedUpFrontAndEnforced) {
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const hmd::StochasticHmd victim = make_victim();
  attack::InProcessOracle oracle(victim, kServiceSeed);
  oracle.set_budget(3);

  std::vector<const trace::FeatureSet*> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back(&ds.samples()[folds.testing[i]].features);
  }
  // A 4-query batch against a 3-query budget: refused whole, up front —
  // no partial spend, no partial victim contact.
  EXPECT_THROW((void)oracle.query_many(batch), attack::OracleBudgetExhausted);
  EXPECT_EQ(oracle.queries_used(), 0u);
  batch.pop_back();
  EXPECT_EQ(oracle.query_many(batch).size(), 3u);
  EXPECT_EQ(oracle.remaining(), 0u);
  EXPECT_THROW((void)oracle.query(*batch[0]), attack::OracleBudgetExhausted);
}

TEST(RedTeam, CampaignBudgetTruncatesTheLabelStage) {
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  std::vector<std::size_t> targets;
  for (const std::size_t i : folds.testing) {
    if (ds.samples()[i].malware() && targets.size() < 3) targets.push_back(i);
  }
  const std::uint64_t reserved = folds.testing.size() + targets.size();

  // Budget for the reserved measurements plus exactly 2 labeled programs.
  attack::InProcessOracle oracle(make_victim(), kServiceSeed);
  const Campaign campaign(ds, small_campaign(0, reserved + 2));
  const CampaignResult result =
      campaign.run(oracle, nullptr, folds.attacker_training, folds.testing, targets);
  EXPECT_EQ(result.train_programs, 2u);
  EXPECT_LE(result.queries_used, reserved + 2);

  // A budget that cannot cover even one labeled program is a config bug.
  attack::InProcessOracle starved(make_victim(), kServiceSeed);
  const Campaign impossible(ds, small_campaign(0, reserved));
  EXPECT_THROW((void)impossible.run(starved, nullptr, folds.attacker_training, folds.testing,
                                    targets),
               std::invalid_argument);
}

// ------------------------------------------------------------------ fleet

TEST(RedTeam, FleetSamplingIsDeterministicAndCalibratedOnDeviceZero) {
  const std::vector<FleetDevice> a = sample_fleet(4, 0xF1EE7, 0.10, 45.0);
  const std::vector<FleetDevice> b = sample_fleet(4, 0xF1EE7, 0.10, 45.0);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset_mv, b[i].offset_mv) << i;
    EXPECT_EQ(a[i].error_rate, b[i].error_rate) << i;
    EXPECT_EQ(a[i].frozen, b[i].frozen) << i;
    // One rail programming fleet-wide: the calibrated offset is shared.
    EXPECT_EQ(a[i].offset_mv, a[0].offset_mv) << i;
  }
  // The reference die runs at (approximately) the calibrated target; its
  // peers differ — process variation is the whole point of the model.
  EXPECT_NEAR(a[0].error_rate, 0.10, 0.02);
  bool any_differs = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    any_differs = any_differs || a[i].error_rate != a[0].error_rate;
  }
  EXPECT_TRUE(any_differs);
  EXPECT_THROW((void)sample_fleet(0, 1, 0.10, 45.0), std::invalid_argument);
}

TEST(RedTeam, FleetTransferMeasuresEveryViableDevice) {
  const trace::Dataset& ds = tiny_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  // A synthetic crafted set — fleet measurement only needs features.
  attack::CraftOutcome crafted;
  crafted.malware_tested = 0;
  for (const std::size_t i : folds.testing) {
    if (!ds.samples()[i].malware() || crafted.evasive.size() >= 3) continue;
    ++crafted.malware_tested;
    crafted.evasive.push_back({i, ds.samples()[i].features, 0});
  }
  ASSERT_EQ(crafted.evasive.size(), 3u);

  const std::vector<FleetDevice> fleet = sample_fleet(3, 0xF1EE7, 0.10, 45.0);
  const nn::Network net = served_reference_network(kServiceSeed);
  std::vector<std::unique_ptr<hmd::StochasticHmd>> victims;  // outlive oracles
  const std::vector<FleetDeviceOutcome> outcomes = measure_fleet_transfer(
      ds, crafted, fleet,
      [&](const FleetDevice& dev) -> std::unique_ptr<attack::QueryOracle> {
        victims.push_back(
            std::make_unique<hmd::StochasticHmd>(net, victim_fc(), dev.error_rate));
        return std::make_unique<attack::InProcessOracle>(*victims.back(),
                                                         kServiceSeed + dev.index);
      });
  ASSERT_EQ(outcomes.size(), fleet.size());
  for (const FleetDeviceOutcome& o : outcomes) {
    if (o.device.frozen) {
      EXPECT_EQ(o.queries_used, 0u);
      EXPECT_EQ(o.transfer.proxy_evaded, 0u);
      continue;
    }
    EXPECT_EQ(o.transfer.proxy_evaded, crafted.evasive.size());
    EXPECT_EQ(o.queries_used, crafted.evasive.size());
    EXPECT_NE(o.decision_hash, 0u);
  }
}

}  // namespace
}  // namespace shmd::redteam
