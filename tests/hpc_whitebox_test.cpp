#include <gtest/gtest.h>

#include <cmath>

#include "attack/whitebox.hpp"
#include "hmd/builders.hpp"
#include "support/test_corpus.hpp"
#include "trace/hpc_collector.hpp"
#include "trace/trace_collector.hpp"
#include "util/stats.hpp"

namespace shmd {
namespace {

// ------------------------------------------------------------ HPC collector

TEST(HpcCollector, MeasurementsAreNonDeterministic) {
  // The §IV justification: the same program measured twice through HPCs
  // gives different numbers; the Pin-like collector gives identical ones.
  const trace::Program program(0, trace::Family::kBrowser, 42);
  const trace::HpcCollector hpc;
  const auto run1 = hpc.collect_frequencies(program, 8192, /*run_id=*/1);
  const auto run2 = hpc.collect_frequencies(program, 8192, /*run_id=*/2);
  ASSERT_EQ(run1.size(), run2.size());
  double max_diff = 0.0;
  for (std::size_t c = 0; c < run1.size(); ++c) {
    max_diff = std::max(max_diff, std::abs(run1[c] - run2[c]));
  }
  EXPECT_GT(max_diff, 1e-6);

  const trace::TraceCollector pin(8192);
  EXPECT_TRUE(pin.verify_determinism(program, 3));
}

TEST(HpcCollector, SameRunIdIsRepeatable) {
  // Fixing the run id fixes the perturbation (a controlled experiment, not
  // a property of real HPCs).
  const trace::Program program(0, trace::Family::kWorm, 7);
  const trace::HpcCollector hpc;
  EXPECT_EQ(hpc.collect_frequencies(program, 4096, 9),
            hpc.collect_frequencies(program, 4096, 9));
}

TEST(HpcCollector, MeasurementsCenterOnGroundTruth) {
  const trace::Program program(0, trace::Family::kTrojan, 11);
  const auto trace_data = program.generate(8192);
  std::vector<double> truth(trace::kNumCategories, 0.0);
  for (const auto& insn : trace_data) truth[static_cast<std::size_t>(insn.category)] += 1.0;
  for (double& t : truth) t /= static_cast<double>(trace_data.size());

  const trace::HpcCollector hpc;
  std::vector<double> mean(trace::kNumCategories, 0.0);
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    const auto m = hpc.collect_frequencies(program, 8192, static_cast<std::uint64_t>(run));
    for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += m[c];
  }
  for (std::size_t c = 0; c < mean.size(); ++c) {
    mean[c] /= kRuns;
    EXPECT_NEAR(mean[c], truth[c], 0.03) << "category " << c;
  }
}

TEST(HpcCollector, MorePhysicalCountersLessVariance) {
  const trace::Program program(0, trace::Family::kBackdoor, 13);
  const auto variance_with = [&](unsigned counters) {
    trace::HpcConfig cfg;
    cfg.physical_counters = counters;
    cfg.contamination_prob = 0.0;  // isolate the multiplexing effect
    const trace::HpcCollector hpc(cfg);
    util::RunningStats spread;
    for (int run = 0; run < 150; ++run) {
      const auto m = hpc.collect_frequencies(program, 4096, static_cast<std::uint64_t>(run));
      spread.add(m[0]);
    }
    return spread.variance();
  };
  EXPECT_GT(variance_with(2), variance_with(16));
}

// -------------------------------------------------------- white-box attack

TEST(WhiteBox, SimplexProjectionProperties) {
  const std::vector<double> x{0.5, 0.9, -0.2, 0.1};
  const auto p = attack::WhiteBoxFeatureAttack::project_simplex(x);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // A point already on the simplex is a fixed point.
  const std::vector<double> on{0.25, 0.25, 0.25, 0.25};
  const auto same = attack::WhiteBoxFeatureAttack::project_simplex(on);
  for (std::size_t i = 0; i < on.size(); ++i) EXPECT_NEAR(same[i], on[i], 1e-12);
}

TEST(WhiteBox, DefeatsDeterministicVictim) {
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 80;
  opt.train.l2 = 2e-3;
  hmd::BaselineHmd victim = hmd::make_baseline(ds, folds.victim_training, fc, opt);

  // Attack the first malware window the victim flags.
  for (std::size_t idx : folds.testing) {
    const auto& sample = ds.samples()[idx];
    if (!sample.malware()) continue;
    const auto& window = sample.features.windows(fc).front();
    if (victim.score_window(window) < 0.7) continue;

    attack::WhiteBoxFeatureAttack attack;
    const auto result = attack.attack(
        [&](std::span<const double> x) { return victim.score_window(x); }, window);
    EXPECT_TRUE(result.evaded);
    EXPECT_LT(result.final_score, 0.45);
    EXPECT_GT(result.queries, 0u);
    return;
  }
  FAIL() << "no strongly-flagged malware window found";
}

TEST(WhiteBox, StochasticVictimExtortsMoreQueries) {
  // §I claim (ii): the stochastic gradient makes direction estimation
  // harder — single-sample gradients flail, averaged ones cost k-fold
  // query volume.
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  hmd::HmdTrainOptions opt;
  opt.train.epochs = 80;
  opt.train.l2 = 2e-3;
  hmd::BaselineHmd baseline = hmd::make_baseline(ds, folds.victim_training, fc, opt);
  hmd::StochasticHmd stochastic(baseline.network(), fc, 0.3);

  // Collect flagged malware windows.
  std::vector<std::vector<double>> windows;
  for (std::size_t idx : folds.testing) {
    const auto& sample = ds.samples()[idx];
    if (!sample.malware() || windows.size() >= 10) continue;
    const auto& w = sample.features.windows(fc).front();
    if (baseline.score_window(w) >= 0.7) windows.push_back(w);
  }
  ASSERT_GE(windows.size(), 5u);

  const auto evasions = [&](auto&& query, int gradient_samples) {
    attack::WhiteBoxConfig cfg;
    cfg.gradient_samples = gradient_samples;
    cfg.max_steps = 25;
    const attack::WhiteBoxFeatureAttack attack(cfg);
    std::size_t evaded = 0;
    std::size_t queries = 0;
    for (const auto& w : windows) {
      const auto result = attack.attack(query, w);
      evaded += result.evaded;
      queries += result.queries;
    }
    return std::pair{evaded, queries};
  };

  const auto [base_evaded, base_queries] =
      evasions([&](std::span<const double> x) { return baseline.score_window(x); }, 1);
  // An "evasion" against the stochastic victim is certified by a single
  // noisy query, so per-round counts fluctuate by +-2 out of 10 windows;
  // average a few rounds of the cheap attack instead of betting on one
  // RNG realization.
  double sto_evaded_k1 = 0.0;
  std::size_t sto_queries_k1 = 0;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    const auto [evaded, queries] =
        evasions([&](std::span<const double> x) { return stochastic.score_window(x); }, 1);
    sto_evaded_k1 += static_cast<double>(evaded);
    sto_queries_k1 = queries;
  }
  sto_evaded_k1 /= kRounds;
  const auto [sto_evaded_k8, sto_queries_k8] =
      evasions([&](std::span<const double> x) { return stochastic.score_window(x); }, 8);

  // The deterministic victim largely falls to the cheap attack.
  EXPECT_GE(base_evaded, windows.size() * 7 / 10);
  // Against the stochastic victim the cheap attack gains nothing beyond
  // single-query measurement slack, and the averaged attack pays roughly
  // 8x the queries for its progress.
  EXPECT_LE(sto_evaded_k1, static_cast<double>(base_evaded) + 1.5);
  EXPECT_GT(sto_queries_k8, 4 * sto_queries_k1 / 2);
  EXPECT_GT(sto_queries_k8, base_queries);
}

TEST(WhiteBox, RespectsMovementBudget) {
  hmd::HmdTrainOptions opt;
  const trace::Dataset& ds = test::small_dataset();
  const trace::FoldSplit folds = ds.folds(0);
  const trace::FeatureConfig fc{trace::FeatureView::kInsnCategory, ds.config().periods[0]};
  opt.train.epochs = 40;
  hmd::BaselineHmd victim = hmd::make_baseline(ds, folds.victim_training, fc, opt);

  attack::WhiteBoxConfig cfg;
  cfg.max_l1_distance = 0.05;  // nearly no movement allowed
  cfg.max_steps = 10;
  const attack::WhiteBoxFeatureAttack attack(cfg);
  const auto& window = ds.samples()[folds.testing[0]].features.windows(fc).front();
  const auto result = attack.attack(
      [&](std::span<const double> x) { return victim.score_window(x); }, window);
  EXPECT_LE(result.l1_distance, 0.05 + 1e-9);
}

TEST(WhiteBox, ConfigValidation) {
  attack::WhiteBoxConfig bad;
  bad.gradient_samples = 0;
  EXPECT_THROW(attack::WhiteBoxFeatureAttack{bad}, std::invalid_argument);
  attack::WhiteBoxConfig bad2;
  bad2.epsilon = 0.0;
  EXPECT_THROW(attack::WhiteBoxFeatureAttack{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace shmd
