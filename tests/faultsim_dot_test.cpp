// Statistical-equivalence suite for the span-level dot() kernels
// (ArithmeticContext::dot). The geometric skip-ahead kernel must be
// indistinguishable from the scalar per-MAC Bernoulli path in every
// observable the fault model defines — total fault count, bit-position
// histogram, and fault-site placement — and bit-exact where the paper
// demands exactness (er = 0, and ExactContext against the mul() fallback).
//
// All tests run on fixed seeds: the chi-square thresholds (p ~= 0.001 via
// the Wilson–Hilferty approximation) guard against a future kernel change
// silently distorting the distribution, not against unlucky draws.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "faultsim/bit_fault_distribution.hpp"
#include "faultsim/fault_injector.hpp"
#include "nn/arithmetic.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd {
namespace {

// Scalar reference: routes every product through mul() -> corrupt_product
// and inherits the base-class dot() fallback — exactly the pre-span
// FaultyContext behavior the skip-ahead kernel must reproduce.
class ScalarFaultyContext final : public nn::ArithmeticContext {
 public:
  explicit ScalarFaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }

  [[nodiscard]] const char* name() const noexcept override { return "scalar-faulty"; }

 private:
  faultsim::FaultInjector* injector_;
};

// mul()-only exact context: exercises the base-class fallback accumulation.
class FallbackExactContext final : public nn::ArithmeticContext {
 public:
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b;
  }

  [[nodiscard]] const char* name() const noexcept override { return "fallback-exact"; }
};

/// Upper critical value of chi^2 with `df` degrees of freedom at
/// p ~= 0.001, via the Wilson–Hilferty cube approximation.
double chi2_crit_p001(double df) {
  constexpr double kZ = 3.0902;  // standard normal upper 0.001 quantile
  const double a = 2.0 / (9.0 * df);
  const double c = 1.0 - a + kZ * std::sqrt(a);
  return df * c * c * c;
}

/// Two-sample chi-square statistic over pre-pooled bins (counts o1, o2 from
/// independent streams of total size n1, n2).
double two_sample_chi2(const std::vector<std::uint64_t>& o1, const std::vector<std::uint64_t>& o2,
                       double n1, double n2) {
  const double k1 = std::sqrt(n2 / n1);
  const double k2 = std::sqrt(n1 / n2);
  double chi2 = 0.0;
  for (std::size_t b = 0; b < o1.size(); ++b) {
    const double c1 = static_cast<double>(o1[b]);
    const double c2 = static_cast<double>(o2[b]);
    if (c1 + c2 == 0.0) continue;
    const double d = k1 * c1 - k2 * c2;
    chi2 += d * d / (c1 + c2);
  }
  return chi2;
}

/// Pool two parallel histograms so every pooled bin holds at least
/// `min_count` combined observations (tail bins merge into the last pool).
void pool_bins(const std::vector<std::uint64_t>& h1, const std::vector<std::uint64_t>& h2,
               std::uint64_t min_count, std::vector<std::uint64_t>& p1,
               std::vector<std::uint64_t>& p2) {
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
  for (std::size_t b = 0; b < h1.size(); ++b) {
    a1 += h1[b];
    a2 += h2[b];
    if (a1 + a2 >= min_count) {
      p1.push_back(a1);
      p2.push_back(a2);
      a1 = a2 = 0;
    }
  }
  if ((a1 + a2) > 0 && !p1.empty()) {
    p1.back() += a1;
    p2.back() += a2;
  }
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<double> v(n);
  for (double& x : v) x = gen.uniform(-2.0, 2.0);
  return v;
}

faultsim::FaultInjector make_injector(double er, std::uint64_t seed) {
  return faultsim::FaultInjector(er, faultsim::BitFaultDistribution::measured(), seed);
}

// ------------------------------------------------- fault-count equivalence

// The headline observable: over the same number of products, both kernels
// must fault at the configured marginal rate. Covers the skip-ahead regime
// (1e-4, 1e-2) and the dense per-product branch (0.5).
TEST(FaultsimDot, FaultCountMatchesScalarAcrossRates) {
  constexpr std::size_t kN = 256;
  const std::vector<double> w = random_vector(kN, 11);
  const std::vector<double> x = random_vector(kN, 22);

  for (const double er : {1e-4, 1e-2, 0.5}) {
    // Enough products for >= ~100 expected faults even at er = 1e-4.
    const std::size_t rounds = er < 1e-3 ? 4000 : 400;
    const double ops = static_cast<double>(rounds * kN);

    faultsim::FaultInjector span_inj = make_injector(er, 0xD07AAULL);
    faultsim::FaultInjector scalar_inj = make_injector(er, 0xD07BBULL);
    nn::FaultyContext span_ctx(span_inj);
    ScalarFaultyContext scalar_ctx(scalar_inj);
    for (std::size_t r = 0; r < rounds; ++r) {
      (void)span_ctx.dot(w.data(), x.data(), kN);
      (void)scalar_ctx.dot(w.data(), x.data(), kN);
    }

    ASSERT_EQ(span_inj.stats().operations, rounds * kN) << "er=" << er;
    ASSERT_EQ(scalar_inj.stats().operations, rounds * kN) << "er=" << er;

    // Two-proportion z-test at |z| < 3.29 (p ~= 0.001).
    const double f1 = static_cast<double>(span_inj.stats().faults);
    const double f2 = static_cast<double>(scalar_inj.stats().faults);
    const double pooled = (f1 + f2) / (2.0 * ops);
    const double se = std::sqrt(pooled * (1.0 - pooled) * (2.0 / ops));
    EXPECT_LT(std::abs(f1 - f2) / ops, 3.29 * se + 1e-12)
        << "er=" << er << " span=" << f1 << " scalar=" << f2;

    // And each must sit near the configured marginal rate.
    const double binom_sd = std::sqrt(er * (1.0 - er) / ops);
    EXPECT_NEAR(f1 / ops, er, 5.0 * binom_sd + 1e-12) << "er=" << er;
    EXPECT_NEAR(f2 / ops, er, 5.0 * binom_sd + 1e-12) << "er=" << er;
  }
}

// ------------------------------------------------ bit-position equivalence

// Faulted products must draw their flipped bit from the same Fig. 1
// distribution regardless of which kernel selected the fault site.
TEST(FaultsimDot, BitFlipHistogramMatchesScalar) {
  constexpr std::size_t kN = 256;
  constexpr std::size_t kRounds = 600;
  constexpr double kEr = 0.01;
  const std::vector<double> w = random_vector(kN, 33);
  const std::vector<double> x = random_vector(kN, 44);

  faultsim::FaultInjector span_inj = make_injector(kEr, 0xB17AAULL);
  faultsim::FaultInjector scalar_inj = make_injector(kEr, 0xB17BBULL);
  nn::FaultyContext span_ctx(span_inj);
  ScalarFaultyContext scalar_ctx(scalar_inj);
  for (std::size_t r = 0; r < kRounds; ++r) {
    (void)span_ctx.dot(w.data(), x.data(), kN);
    (void)scalar_ctx.dot(w.data(), x.data(), kN);
  }

  const auto& h1 = span_inj.stats().bit_flips;
  const auto& h2 = scalar_inj.stats().bit_flips;
  std::vector<std::uint64_t> p1;
  std::vector<std::uint64_t> p2;
  pool_bins({h1.begin(), h1.end()}, {h2.begin(), h2.end()}, 10, p1, p2);
  ASSERT_GE(p1.size(), 5u) << "not enough faults to form bins";

  const double n1 = static_cast<double>(span_inj.stats().faults);
  const double n2 = static_cast<double>(scalar_inj.stats().faults);
  const double chi2 = two_sample_chi2(p1, p2, n1, n2);
  EXPECT_LT(chi2, chi2_crit_p001(static_cast<double>(p1.size() - 1))) << "bins=" << p1.size();
}

// ----------------------------------------------- fault-site gap equivalence

// The skip-ahead generator's raw gaps must follow the same law as the gaps
// between successes of a per-product Bernoulli stream — this is the exact
// identity the kernel's correctness rests on.
TEST(FaultsimDot, GapDistributionMatchesBernoulliStream) {
  constexpr double kEr = 0.05;
  constexpr std::size_t kGaps = 20000;

  // Geometric gaps straight from the skip-ahead sampler.
  faultsim::FaultInjector geo_inj = make_injector(kEr, 0x6A9AAULL);
  std::vector<std::uint64_t> geo_hist;
  for (std::size_t i = 0; i < kGaps; ++i) {
    const std::size_t gap = geo_inj.next_fault_gap();
    ASSERT_NE(gap, faultsim::FaultInjector::kNoFault);
    if (geo_hist.size() <= gap) geo_hist.resize(gap + 1, 0);
    ++geo_hist[gap];
  }

  // Gaps reconstructed from a scalar Bernoulli fault stream. corrupt_u64(0)
  // returns nonzero exactly when it faulted (some bit of 0 got flipped).
  faultsim::FaultInjector ber_inj = make_injector(kEr, 0x6A9BBULL);
  std::vector<std::uint64_t> ber_hist;
  std::size_t run = 0;
  for (std::size_t got = 0; got < kGaps;) {
    if (ber_inj.corrupt_u64(0) != 0) {
      if (ber_hist.size() <= run) ber_hist.resize(run + 1, 0);
      ++ber_hist[run];
      run = 0;
      ++got;
    } else {
      ++run;
    }
  }

  const std::size_t bins = std::max(geo_hist.size(), ber_hist.size());
  geo_hist.resize(bins, 0);
  ber_hist.resize(bins, 0);
  std::vector<std::uint64_t> p1;
  std::vector<std::uint64_t> p2;
  pool_bins(geo_hist, ber_hist, 20, p1, p2);
  ASSERT_GE(p1.size(), 10u);

  const double chi2 =
      two_sample_chi2(p1, p2, static_cast<double>(kGaps), static_cast<double>(kGaps));
  EXPECT_LT(chi2, chi2_crit_p001(static_cast<double>(p1.size() - 1))) << "bins=" << p1.size();
}

// --------------------------------------------------------- exactness edges

TEST(FaultsimDot, ZeroErrorRateIsExactFreeAndConsumesNoRandomness) {
  constexpr std::size_t kN = 192;
  const std::vector<double> w = random_vector(kN, 55);
  const std::vector<double> x = random_vector(kN, 66);

  constexpr std::uint64_t kSeed = 0xC0FFEEULL;
  faultsim::FaultInjector inj = make_injector(0.0, kSeed);
  nn::FaultyContext faulty(inj);
  nn::ExactContext exact;

  const double got = faulty.dot(w.data(), x.data(), kN);
  EXPECT_EQ(got, exact.dot(w.data(), x.data(), kN))
      << "er = 0 must be bit-identical to exact arithmetic";
  EXPECT_EQ(inj.stats().operations, kN) << "opportunity accounting still advances";
  EXPECT_EQ(inj.stats().faults, 0u);

  // The fault-free span must not consume RNG: the stream continues exactly
  // where a fresh same-seed injector's stream starts.
  faultsim::FaultInjector fresh = make_injector(0.0, kSeed);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(inj.generator()(), fresh.generator()());
}

TEST(FaultsimDot, ExactDotBitIdenticalToFallback) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{256}}) {
    const std::vector<double> w = random_vector(n, 77 + n);
    const std::vector<double> x = random_vector(n, 88 + n);
    nn::ExactContext vectorized;
    FallbackExactContext fallback;
    EXPECT_EQ(vectorized.dot(w.data(), x.data(), n), fallback.dot(w.data(), x.data(), n))
        << "n=" << n;
    EXPECT_EQ(vectorized.mac_count(), n);
    EXPECT_EQ(fallback.mac_count(), n);
  }
}

TEST(FaultsimDot, AccountingAdvancesByWholeSpansInBothRegimes) {
  constexpr std::size_t kN = 100;
  const std::vector<double> w = random_vector(kN, 99);
  const std::vector<double> x = random_vector(kN, 111);

  for (const double er : {0.01, 0.5}) {  // skip-ahead and dense branches
    faultsim::FaultInjector inj = make_injector(er, 0xACCULL);
    nn::FaultyContext ctx(inj);
    for (int call = 1; call <= 3; ++call) {
      (void)ctx.dot(w.data(), x.data(), kN);
      EXPECT_EQ(ctx.mac_count(), static_cast<std::uint64_t>(call) * kN) << "er=" << er;
      EXPECT_EQ(inj.stats().operations, static_cast<std::uint64_t>(call) * kN) << "er=" << er;
    }
  }
}

TEST(FaultsimDot, DenseAndSkipAheadBranchesBookIdenticalOpportunities) {
  // Audit regression for the FaultStats opportunity contract: the dense
  // branch accounts one operation per product inside corrupt_product(),
  // the skip-ahead branch books whole spans up front via
  // count_operations(n), and the er == 0 gemm fast path books the whole
  // tile — three different mechanisms that must land on the same number
  // for the same workload. A change that double-counts (count_operations
  // plus self-counting corrupt_product) or skips a branch shows up here
  // as a rate-dependent operations count.
  const std::vector<std::size_t> kRowLens{1024, 1, 7, 333, 0, 512};
  std::uint64_t total = 0;
  for (const std::size_t n : kRowLens) total += n;

  std::vector<std::uint64_t> ops_by_rate;
  for (const double er : {0.05, 0.2}) {  // skip-ahead regime, dense regime
    faultsim::FaultInjector inj = make_injector(er, 0xACC2ULL);
    nn::FaultyContext ctx(inj);
    for (const std::size_t n : kRowLens) {
      const std::vector<double> w = random_vector(n, 7000 + n);
      const std::vector<double> x = random_vector(n, 8000 + n);
      (void)ctx.dot(w.data(), x.data(), n);
    }
    EXPECT_EQ(inj.stats().operations, total) << "er=" << er;
    ops_by_rate.push_back(inj.stats().operations);
  }
  EXPECT_EQ(ops_by_rate[0], ops_by_rate[1])
      << "opportunity accounting must not depend on which branch ran";

  // The er == 0 gemm fast path (tile through the exact kernel) books the
  // same opportunities the row-wise path would.
  constexpr std::size_t kRows = 5;
  constexpr std::size_t kIn = 33;
  constexpr std::size_t kOut = 4;
  const std::vector<double> wmat = random_vector(kIn * kOut, 9001);
  const std::vector<double> bias = random_vector(kOut, 9002);
  const std::vector<double> tile = random_vector(kRows * kIn, 9003);
  std::vector<double> y(kRows * kOut);
  faultsim::FaultInjector inj0 = make_injector(0.0, 0xACC3ULL);
  nn::FaultyContext ctx0(inj0);
  ctx0.gemm(wmat.data(), bias.data(), tile.data(), kRows, kIn, kOut, y.data());
  EXPECT_EQ(inj0.stats().operations, kRows * kIn * kOut);
  EXPECT_EQ(ctx0.mac_count(), kRows * kIn * kOut);
  EXPECT_EQ(inj0.stats().faults, 0u);
}

TEST(FaultsimDot, NonFiniteProductsPassThroughTheSpanKernel) {
  // A non-finite product has no Q16.47 image; the kernel must pass it
  // through unfaulted in both regimes without disturbing the sum's
  // infiniteness.
  constexpr std::size_t kN = 64;
  std::vector<double> w = random_vector(kN, 123);
  std::vector<double> x = random_vector(kN, 134);
  w[17] = std::numeric_limits<double>::infinity();
  x[17] = 1.0;

  for (const double er : {0.125, 1.0}) {  // max skip-ahead rate, dense branch
    faultsim::FaultInjector inj = make_injector(er, 0x1F1ULL);
    nn::FaultyContext ctx(inj);
    for (int r = 0; r < 50; ++r) {
      EXPECT_TRUE(std::isinf(ctx.dot(w.data(), x.data(), kN))) << "er=" << er;
    }
    EXPECT_EQ(inj.stats().operations, 50u * kN);
  }
}

}  // namespace
}  // namespace shmd
