// Tests for the always-on scoring service: request-anchored determinism
// (same seed => bit-identical scores through the MPMC queue under ANY
// worker count), overload shedding with exact accounting (every
// submission terminal as exactly one of scored / shed / deadline-missed),
// and epoch-based reconfiguration that neither stalls nor tears in-flight
// requests. The Serve* suites also run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hmd/deployment.hpp"
#include "hmd/detector.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/network.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/scoring_service.hpp"

namespace shmd::serve {
namespace {

using namespace std::chrono_literals;

const trace::FeatureConfig kFc{trace::FeatureView::kInsnCategory, 2048};

nn::Network make_net() {
  const std::vector<std::size_t> topo{8, 12, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
}

trace::FeatureSet make_features(std::uint64_t seed, std::size_t n_windows = 4) {
  rng::Xoshiro256ss gen(seed);
  std::vector<std::vector<double>> windows(n_windows, std::vector<double>(8));
  for (auto& window : windows) {
    for (double& x : window) x = gen.uniform01();
  }
  trace::FeatureSet fs;
  fs.put(kFc, std::move(windows));
  return fs;
}

std::vector<trace::FeatureSet> make_workload(std::size_t n) {
  std::vector<trace::FeatureSet> workload;
  workload.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workload.push_back(make_features(100 + i));
  return workload;
}

std::vector<const trace::FeatureSet*> as_pointers(const std::vector<trace::FeatureSet>& v) {
  std::vector<const trace::FeatureSet*> ptrs;
  ptrs.reserve(v.size());
  for (const auto& fs : v) ptrs.push_back(&fs);
  return ptrs;
}

DetectorEpoch test_epoch(double error_rate) {
  const hmd::StochasticHmd det(make_net(), kFc, error_rate);
  return make_epoch(det);
}

// ------------------------------------------------------------ RequestQueue

TEST(ServeQueue, RejectsZeroCapacity) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

TEST(ServeQueue, FifoOrderAndAdmissionSeq) {
  RequestQueue q(4);
  const trace::FeatureSet fs = make_features(1);
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.features = &fs;
    ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  }
  EXPECT_EQ(q.size(), 3u);
  Request out;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.seq, i);  // admission order, stamped by the queue
  }
}

TEST(ServeQueue, ShedDoesNotConsumeSeq) {
  // Shed submissions must not perturb the fault streams of accepted ones:
  // the k-th ACCEPTED request carries seq k no matter how many rejections
  // happened in between.
  RequestQueue q(2);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  EXPECT_EQ(q.try_push(r), SubmitStatus::kShed);  // full
  Request out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 0u);
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 1u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 2u);  // the shed attempt left no gap
}

TEST(ServeQueue, CloseRejectsNewAndDrainsOld) {
  RequestQueue q(4);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.push(r), SubmitStatus::kAccepted);
  ASSERT_EQ(q.push(r), SubmitStatus::kAccepted);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(r), SubmitStatus::kClosed);
  EXPECT_EQ(q.push(r), SubmitStatus::kClosed);
  Request out;
  EXPECT_TRUE(q.pop(out));  // accepted requests survive close()
  EXPECT_TRUE(q.pop(out));
  EXPECT_FALSE(q.pop(out));  // closed AND drained
}

TEST(ServeQueue, PopBatchDrainsFifoWithoutWaitingForAFullBatch) {
  RequestQueue q(8);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  for (int i = 0; i < 5; ++i) ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  std::vector<Request> out;
  // A batch pop takes what is queued right now, up to max_batch — it must
  // never block waiting to fill the batch.
  ASSERT_EQ(q.pop_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].seq, i);  // FIFO within the batch
  ASSERT_EQ(q.pop_batch(out, 8), 2u);  // partial: only 2 queued
  EXPECT_EQ(out[0].seq, 3u);
  EXPECT_EQ(out[1].seq, 4u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ServeQueue, PopBatchSeqStampingUnaffectedByBatchSize) {
  // seq is stamped at ADMISSION, not at dequeue: however the requests are
  // later grouped into batches, the k-th accepted request carries seq k.
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  std::vector<std::uint64_t> seqs_batched;
  std::vector<std::uint64_t> seqs_unbatched;
  for (const std::size_t max_batch : {std::size_t{3}, std::size_t{1}}) {
    RequestQueue q(8);
    for (int i = 0; i < 6; ++i) ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
    std::vector<std::uint64_t>& seqs = max_batch == 1 ? seqs_unbatched : seqs_batched;
    std::vector<Request> out;
    while (q.size() > 0) {
      ASSERT_GT(q.pop_batch(out, max_batch), 0u);
      for (const Request& popped : out) seqs.push_back(popped.seq);
    }
  }
  EXPECT_EQ(seqs_batched, seqs_unbatched);
  EXPECT_EQ(seqs_batched, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ServeQueue, PopBatchPartialBatchOnCloseAndDrain) {
  RequestQueue q(8);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  for (int i = 0; i < 3; ++i) ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  q.close();
  std::vector<Request> out;
  ASSERT_EQ(q.pop_batch(out, 8), 3u);  // accepted requests survive close()
  EXPECT_EQ(q.pop_batch(out, 8), 0u);  // closed AND drained
  EXPECT_TRUE(out.empty());
}

TEST(ServeQueue, PopBatchBlocksWhilePaused) {
  RequestQueue q(4);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  q.set_paused(true);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::vector<Request> out;
    EXPECT_EQ(q.pop_batch(out, 4), 1u);
    popped.store(true, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(popped.load(std::memory_order_relaxed))
      << "pop_batch must block while the queue is paused, even with work queued";
  q.set_paused(false);
  consumer.join();
  EXPECT_TRUE(popped.load(std::memory_order_relaxed));
}

TEST(ServeQueue, CloseOverridesPause) {
  RequestQueue q(2);
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  q.set_paused(true);
  q.close();
  Request out;
  EXPECT_TRUE(q.pop(out));  // shutdown drains even through a pause
  EXPECT_FALSE(q.pop(out));
}

// ------------------------------------------------------------- DetectorEpoch

TEST(ServeEpoch, MakeEpochSnapshotsDetectorOperatingPoint) {
  const hmd::StochasticHmd det(make_net(), kFc, 0.25);
  const DetectorEpoch epoch = make_epoch(det, 0.6, 0.4);
  EXPECT_EQ(epoch.id, 0u);  // not yet installed
  EXPECT_DOUBLE_EQ(epoch.error_rate, 0.25);
  EXPECT_DOUBLE_EQ(epoch.threshold, 0.6);
  EXPECT_DOUBLE_EQ(epoch.vote_fraction, 0.4);
  EXPECT_EQ(epoch.features, kFc);
  EXPECT_EQ(epoch.network.mac_count(), det.network().mac_count());
}

TEST(ServeEpoch, MakeEpochFromBundleUsesCalibration) {
  hmd::DeploymentBundle bundle{make_net(), kFc, 0.15, {{40.0, -100.0}, {60.0, -200.0}}};
  const DetectorEpoch epoch = make_epoch(bundle, 50.0);
  EXPECT_DOUBLE_EQ(epoch.offset_mv, -150.0);  // linear interpolation at 50 °C
  EXPECT_DOUBLE_EQ(epoch.error_rate, 0.15);   // no volt model: bundle target er
  EXPECT_EQ(epoch.features, kFc);
}

TEST(ServeEpoch, SlotSwapKeepsReaderSnapshotAlive) {
  EpochSlot slot;
  auto first = std::make_shared<const DetectorEpoch>(test_epoch(0.1));
  slot.install(first);
  const std::shared_ptr<const DetectorEpoch> reader = slot.current();
  slot.install(std::make_shared<const DetectorEpoch>(test_epoch(0.9)));
  // The reader's snapshot is untouched by the swap (RCU semantics)...
  EXPECT_DOUBLE_EQ(reader->error_rate, 0.1);
  // ...while new readers see the new epoch.
  EXPECT_DOUBLE_EQ(slot.current()->error_rate, 0.9);
}

// -------------------------------------------------------------- ServiceStats

TEST(ServeQueue, BlockedProducersAllWakeOnClose) {
  RequestQueue q(1);
  const trace::FeatureSet fs = make_features(1);
  Request fill;
  fill.features = &fs;
  ASSERT_EQ(q.try_push(fill), SubmitStatus::kAccepted);  // the ring is now full

  std::atomic<int> woke{0};
  std::vector<std::thread> producers;
  producers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&q, &fs, &woke] {
      Request r;
      r.features = &fs;
      EXPECT_EQ(q.push(r), SubmitStatus::kClosed);  // blocks until close()
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(woke.load(), 0) << "producers must actually block on the full ring";
  q.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(woke.load(), 3) << "close() must wake every blocked producer";
  EXPECT_EQ(q.size(), 1u) << "the accepted request still drains";
}

TEST(ServeStats, SnapshotSerializationRoundTrips) {
  ServiceStatsSnapshot snap;
  snap.enqueued = 100;
  snap.shed = 7;
  snap.rejected_closed = 2;
  snap.scored = 90;
  snap.deadline_missed = 1;
  snap.failed = 0;
  snap.epoch_swaps = 3;
  snap.latency.counts[10] = 40;
  snap.latency.counts[11] = 50;
  snap.latency.total = 90;
  snap.missed_wait.counts[20] = 1;
  snap.missed_wait.total = 1;
  faultsim::FaultStats& f1 = snap.per_epoch_faults[1];
  f1.operations = 12345;
  f1.faults = 42;
  f1.bit_flips[0] = 20;
  f1.bit_flips[63] = 22;
  snap.per_epoch_faults[9].operations = 99;
  snap.folded_epochs = 4;
  snap.folded_faults.operations = 777;
  snap.folded_faults.faults = 5;
  snap.folded_faults.bit_flips[31] = 3;
  snap.verdict_queries = 17;
  snap.per_epoch_verdicts[1] = 12;
  snap.per_epoch_verdicts[9] = 5;
  snap.folded_verdict_queries = 8;
  snap.rejected_on_admission = 13;  // v5 counters
  snap.evicted = 6;
  snap.scored_late = 4;
  snap.throttled = 9;

  const std::vector<std::uint8_t> wire = serialize(snap);
  const std::optional<ServiceStatsSnapshot> back = deserialize_snapshot(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);
}

TEST(ServeStats, DeserializeRejectsCorruptedInput) {
  ServiceStatsSnapshot snap;
  snap.scored = 5;
  snap.per_epoch_faults[1].operations = 10;
  const std::vector<std::uint8_t> wire = serialize(snap);

  std::vector<std::uint8_t> truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(deserialize_snapshot(truncated).has_value());

  std::vector<std::uint8_t> bad_format = wire;
  bad_format[0] ^= 0xFF;
  EXPECT_FALSE(deserialize_snapshot(bad_format).has_value());

  std::vector<std::uint8_t> trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(deserialize_snapshot(trailing).has_value());

  // A hostile epoch count must be rejected before it drives reads or
  // allocation (the count field sits after the v5 counters, the two
  // latency histograms, and the folded-epoch aggregate).
  std::vector<std::uint8_t> hostile = wire;
  const std::size_t count_at =
      1 +
      8 * (12 + 2 * LatencyHistogram::kBuckets + 1 + 2 + faultsim::BitFaultDistribution::kBits);
  for (std::size_t i = 0; i < 8; ++i) hostile[count_at + i] = 0xFF;
  EXPECT_FALSE(deserialize_snapshot(hostile).has_value());

  // Same for the verdict-map count: it is the second-to-last word of a
  // snapshot with an empty verdict map.
  std::vector<std::uint8_t> hostile_verdicts = wire;
  const std::size_t verdict_count_at = wire.size() - 8;
  for (std::size_t i = 0; i < 8; ++i) hostile_verdicts[verdict_count_at + i] = 0xFF;
  EXPECT_FALSE(deserialize_snapshot(hostile_verdicts).has_value());

  EXPECT_FALSE(deserialize_snapshot({}).has_value());
}

TEST(ServeService, CompletionHookFiresOnCompleteAndOnReject) {
  ScoringService service(test_epoch(0.05), ServeConfig{.num_workers = 1, .queue_capacity = 1});
  const auto workload = make_workload(1);
  std::atomic<int> fired{0};
  ScoreTicket ticket;
  ticket.set_completion_hook(
      [](void* arg) noexcept {
        static_cast<std::atomic<int>*>(arg)->fetch_add(1, std::memory_order_relaxed);
      },
      &fired);

  ASSERT_EQ(service.try_submit(workload[0], ticket), SubmitStatus::kAccepted);
  // The hook fires strictly AFTER the done-notification, so wait() alone
  // does not order it — poll the hook itself.
  while (fired.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  EXPECT_TRUE(ticket.done());
  EXPECT_EQ(ticket.outcome(), RequestOutcome::kScored);

  // Rejection path: the hook fires synchronously inside try_submit.
  service.pause();
  ScoreTicket filler;
  ASSERT_EQ(service.try_submit(workload[0], filler), SubmitStatus::kAccepted);
  EXPECT_EQ(service.try_submit(workload[0], ticket), SubmitStatus::kShed);
  EXPECT_EQ(fired.load(std::memory_order_relaxed), 2);
  EXPECT_TRUE(ticket.done()) << "a rejected ticket is immediately done again";

  service.resume();
  filler.wait();  // the worker must finish with `filler` before it leaves scope
}

TEST(ServeStats, HistogramQuantilesUseGeometricMidpoints) {
  ServiceStats stats;
  const faultsim::FaultStats none;
  for (int i = 0; i < 50; ++i) stats.on_scored(10, 1, none);    // bucket 3: [8, 16)
  for (int i = 0; i < 50; ++i) stats.on_scored(1500, 1, none);  // bucket 10: [1024, 2048)
  const LatencyHistogram hist = stats.snapshot().latency;
  EXPECT_EQ(hist.total, 100u);
  // Each quantile reports its bucket's geometric midpoint 2^(b+0.5) — the
  // upper edge overstated by up to 2x.
  EXPECT_DOUBLE_EQ(hist.p50_ns(), std::exp2(3.5));
  EXPECT_DOUBLE_EQ(hist.p99_ns(), std::exp2(10.5));
  // q = 0 lands in the first non-empty bucket, q = 1 in the last.
  EXPECT_DOUBLE_EQ(hist.quantile_ns(0.0), std::exp2(3.5));
  EXPECT_DOUBLE_EQ(hist.quantile_ns(1.0), std::exp2(10.5));
}

TEST(ServeStats, HistogramQuantileSingleBucketAndEmpty) {
  LatencyHistogram single;
  single.counts[5] = 7;  // every sample in [32, 64)
  single.total = 7;
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(single.quantile_ns(q), std::exp2(5.5)) << q;
  }
  const LatencyHistogram empty;
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(empty.quantile_ns(q), 0.0) << q;
  }
}

TEST(ServeStats, AccountingIdentityAndPerEpochFaults) {
  ServiceStats stats;
  faultsim::FaultStats delta;
  delta.operations = 10;
  delta.faults = 2;
  for (int i = 0; i < 5; ++i) stats.on_enqueued();
  stats.on_scored(100, 1, delta);
  stats.on_scored(100, 2, delta);
  stats.on_scored(100, 2, delta);
  stats.on_deadline_missed(3000);  // waited ~3 µs before expiring
  stats.on_failed();
  stats.on_shed();
  const ServiceStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.enqueued, 5u);
  EXPECT_EQ(snap.scored, 3u);
  EXPECT_EQ(snap.in_flight(), 0u);
  EXPECT_EQ(snap.shed, 1u);
  // The miss left its queue-wait in the second histogram — and nothing in
  // the scored-only latency histogram.
  EXPECT_EQ(snap.missed_wait.total, 1u);
  EXPECT_EQ(snap.missed_wait.counts[11], 1u);  // 3000 ns -> bucket [2048, 4096)
  EXPECT_EQ(snap.latency.total, 3u);
  ASSERT_EQ(snap.per_epoch_faults.size(), 2u);
  EXPECT_EQ(snap.per_epoch_faults.at(1).operations, 10u);
  EXPECT_EQ(snap.per_epoch_faults.at(2).operations, 20u);
  EXPECT_EQ(snap.per_epoch_faults.at(2).faults, 4u);
}

TEST(ServeStats, PerEpochFaultsAreBoundedAndFoldWithoutLoss) {
  // A moving-target service rolls epochs forever; the per-epoch map (and
  // with it the serialized Stats payload) must stay bounded, with aged-out
  // epochs folded into the aggregate so no fault count is ever lost.
  ServiceStats stats;
  faultsim::FaultStats delta;
  delta.operations = 3;
  delta.faults = 1;
  const std::uint64_t kEpochs = ServiceStats::kMaxTrackedEpochs + 40;
  for (std::uint64_t e = 1; e <= kEpochs; ++e) stats.on_scored(100, e, delta);

  const ServiceStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.per_epoch_faults.size(), ServiceStats::kMaxTrackedEpochs);
  EXPECT_EQ(snap.folded_epochs, 40u);
  // The oldest epochs folded; the newest survive individually.
  EXPECT_EQ(snap.per_epoch_faults.count(1), 0u);
  EXPECT_EQ(snap.per_epoch_faults.count(kEpochs), 1u);
  faultsim::FaultStats total = snap.folded_faults;
  for (const auto& [id, faults] : snap.per_epoch_faults) total.merge(faults);
  EXPECT_EQ(total.operations, 3u * kEpochs);
  EXPECT_EQ(total.faults, kEpochs);
  // The bounded snapshot must serialize well inside the frame layer's
  // default payload limit no matter how long the service has been up.
  EXPECT_LT(serialize(snap).size(), 1024u * 1024u / 4);
}

// ------------------------------------------------- determinism (criterion a)

TEST(ServeService, SameSeedIsBitIdenticalUnderAnyWorkerCount) {
  const std::vector<trace::FeatureSet> workload = make_workload(16);
  const auto batch = as_pointers(workload);
  ServeConfig config;
  config.seed = 42;
  config.queue_capacity = 64;

  std::vector<std::vector<std::vector<double>>> runs;
  for (std::size_t workers : {1u, 2u, 3u}) {
    config.num_workers = workers;
    ScoringService service(test_epoch(0.3), config);
    runs.push_back(service.score_all(batch));
  }
  // Fault streams are anchored to the request's admission seq, not to the
  // worker that happens to dequeue it: scores are a pure function of
  // (seed, submission order).
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);

  // Different seed => different fault noise.
  config.num_workers = 2;
  config.seed = 43;
  ScoringService other(test_epoch(0.3), config);
  EXPECT_NE(other.score_all(batch), runs[0]);
}

TEST(ServeService, BatchedScoresBitIdenticalToUnbatched) {
  // The tentpole contract: cross-request batching is a pure throughput
  // optimization. For a fixed (seed, admission order), scores must be
  // bit-identical for ANY max_batch and ANY worker count — the per-request
  // fault stream is re-anchored from (seed, seq) at each request boundary
  // within a tile, so batch composition can never leak into results.
  const std::vector<trace::FeatureSet> workload = make_workload(24);
  const auto batch = as_pointers(workload);
  ServeConfig config;
  config.seed = 42;
  config.queue_capacity = 64;

  std::vector<std::vector<std::vector<double>>> runs;
  const std::pair<std::size_t, std::size_t> shapes[] = {{1, 1}, {1, 16}, {3, 16}, {2, 5}};
  for (const auto& [workers, max_batch] : shapes) {
    config.num_workers = workers;
    config.max_batch = max_batch;
    ScoringService service(test_epoch(0.3), config);
    runs.push_back(service.score_all(batch));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0], runs[i]) << "workers=" << shapes[i].first
                                << " max_batch=" << shapes[i].second;
  }
}

TEST(ServeService, RejectsZeroMaxBatch) {
  ServeConfig config;
  config.max_batch = 0;
  EXPECT_THROW(ScoringService(test_epoch(0.1), config), std::invalid_argument);
}

TEST(ServeService, ConsecutiveRoundsRerollTheBoundary) {
  const std::vector<trace::FeatureSet> workload = make_workload(12);
  const auto batch = as_pointers(workload);
  ServeConfig config;
  config.num_workers = 2;
  config.seed = 7;
  ScoringService service(test_epoch(0.3), config);
  const auto round1 = service.score_all(batch);
  // The admission counter keeps advancing, so the next round draws fresh
  // fault noise — the per-round moving target survives the queue path.
  EXPECT_NE(service.score_all(batch), round1);
}

TEST(ServeService, ZeroErrorRateMatchesNominalScores) {
  const std::vector<trace::FeatureSet> workload = make_workload(6);
  const auto batch = as_pointers(workload);
  const hmd::StochasticHmd det(make_net(), kFc, 0.0);
  ServeConfig config;
  config.num_workers = 2;
  ScoringService service(make_epoch(det), config);
  const auto scores = service.score_all(batch);
  ASSERT_EQ(scores.size(), batch.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], det.window_scores_nominal(*batch[i])) << i;
  }
}

TEST(ServeService, VerdictMatchesFractionVoteOverScores) {
  const std::vector<trace::FeatureSet> workload = make_workload(8);
  ServeConfig config;
  config.num_workers = 2;
  config.seed = 11;
  ScoringService scoring(test_epoch(0.2), config);
  ScoringService detecting(test_epoch(0.2), config);  // same seed: same scores
  const auto scores = scoring.score_all(as_pointers(workload));
  const auto verdicts = detecting.detect_all(as_pointers(workload));
  ASSERT_EQ(verdicts.size(), scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(verdicts[i], hmd::fraction_vote(scores[i], 0.5,
                                              hmd::Detector::kDefaultVoteFraction))
        << i;
  }
}

// ------------------------------------- overload accounting (criterion b)

TEST(ServeService, ShedsAtCapacityAndAccountsEveryRequest) {
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  ScoringService service(test_epoch(0.1), config);
  service.pause();  // workers hold; the ring fills deterministically

  std::vector<ScoreTicket> tickets(7);
  std::size_t accepted = 0;
  std::size_t shed = 0;
  for (auto& ticket : tickets) {
    const SubmitStatus status = service.try_submit(fs, ticket);
    if (status == SubmitStatus::kAccepted) {
      ++accepted;
    } else {
      ASSERT_EQ(status, SubmitStatus::kShed);
      ++shed;
      // A shed ticket is immediately done and reusable — waiting on it
      // must not hang.
      EXPECT_TRUE(ticket.done());
      EXPECT_EQ(ticket.outcome(), RequestOutcome::kPending);
    }
  }
  EXPECT_EQ(accepted, 4u);  // exactly the ring capacity
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(service.queue_depth(), 4u);

  service.resume();
  for (auto& ticket : tickets) ticket.wait();

  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.enqueued, 4u);
  EXPECT_EQ(snap.scored, 4u);
  EXPECT_EQ(snap.shed, 3u);
  EXPECT_EQ(snap.deadline_missed, 0u);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.in_flight(), 0u);  // every submission reached a terminal state
  EXPECT_EQ(snap.latency.total, 4u);
}

TEST(ServeService, ExpiredRequestsAreDeadlineMissedNotScored) {
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  ScoringService service(test_epoch(0.1), config);
  service.pause();

  std::vector<ScoreTicket> tickets(3);
  const auto deadline = ServiceClock::now() + 2ms;
  for (auto& ticket : tickets) {
    ASSERT_EQ(service.try_submit(fs, ticket, deadline), SubmitStatus::kAccepted);
  }
  std::this_thread::sleep_for(10ms);  // let every deadline lapse while queued
  service.resume();
  for (auto& ticket : tickets) {
    ticket.wait();
    EXPECT_EQ(ticket.outcome(), RequestOutcome::kDeadlineMissed);
    EXPECT_TRUE(ticket.scores().empty());
  }
  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.enqueued, 3u);
  EXPECT_EQ(snap.deadline_missed, 3u);
  EXPECT_EQ(snap.scored, 0u);
  EXPECT_EQ(snap.in_flight(), 0u);
  // Missed requests leave their queue-wait in the second histogram (they
  // waited >= 10ms here), keeping the scored-only latency histogram clean.
  EXPECT_EQ(snap.missed_wait.total, 3u);
  EXPECT_GE(snap.missed_wait.p50_ns(), 1e7 / 2);
  EXPECT_EQ(snap.latency.total, 0u);
}

TEST(ServeService, CloseRejectsNewWorkAndDrainsAccepted) {
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  ScoringService service(test_epoch(0.1), config);

  ScoreTicket before;
  ASSERT_EQ(service.submit(fs, before), SubmitStatus::kAccepted);
  service.close();
  ScoreTicket after;
  EXPECT_EQ(service.submit(fs, after), SubmitStatus::kClosed);
  EXPECT_TRUE(after.done());
  before.wait();
  EXPECT_EQ(before.outcome(), RequestOutcome::kScored);  // drained, not dropped
  const std::vector<const trace::FeatureSet*> batch{&fs};
  EXPECT_THROW((void)service.score_all(batch), std::runtime_error);
  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.rejected_closed, 2u);  // the bare submit + score_all's attempt
  EXPECT_EQ(snap.in_flight(), 0u);
}

TEST(ServeService, BadFeatureSetFailsThatRequestOnly) {
  // A feature set without the epoch's view must complete (exactly once)
  // as kFailed — and must not take the worker down with it.
  trace::FeatureSet wrong_view;
  wrong_view.put(trace::FeatureConfig{trace::FeatureView::kInsnCategory, 512},
                 {{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}});
  const trace::FeatureSet good = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  ScoringService service(test_epoch(0.1), config);

  ScoreTicket bad_ticket;
  ASSERT_EQ(service.submit(wrong_view, bad_ticket), SubmitStatus::kAccepted);
  bad_ticket.wait();
  EXPECT_EQ(bad_ticket.outcome(), RequestOutcome::kFailed);
  EXPECT_TRUE(bad_ticket.scores().empty());

  ScoreTicket good_ticket;
  ASSERT_EQ(service.submit(good, good_ticket), SubmitStatus::kAccepted);
  good_ticket.wait();
  EXPECT_EQ(good_ticket.outcome(), RequestOutcome::kScored);

  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.scored, 1u);
  EXPECT_EQ(snap.in_flight(), 0u);
}

// --------------------------------------- epoch swaps under load (criterion c)

TEST(ServeService, EpochSwapPartitionsFaultStats) {
  const std::vector<trace::FeatureSet> workload = make_workload(8);
  const auto batch = as_pointers(workload);
  ServeConfig config;
  config.num_workers = 2;
  ScoringService service(test_epoch(0.5), config);
  (void)service.score_all(batch);
  const std::uint64_t second = service.install_epoch(test_epoch(0.0));
  (void)service.score_all(batch);

  const ServiceStatsSnapshot snap = service.stats();
  ASSERT_EQ(snap.per_epoch_faults.size(), 2u);
  EXPECT_GT(snap.per_epoch_faults.at(1).faults, 0u);  // er = 0.5 epoch faulted
  EXPECT_GT(snap.per_epoch_faults.at(second).operations, 0u);
  EXPECT_EQ(snap.per_epoch_faults.at(second).faults, 0u);  // er = 0 epoch exact
  EXPECT_EQ(snap.epoch_swaps, 2u);  // construction + explicit install
}

TEST(ServeService, EpochSwapsUnderSustainedLoadLoseNothing) {
  // Criterion (c), and the TSan target: concurrent producers hammer the
  // queue while the control plane re-rolls the epoch; every request must
  // reach a terminal state, scored under exactly one coherent epoch.
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 120;
  constexpr int kSwaps = 20;
  const std::vector<trace::FeatureSet> workload = make_workload(8);
  ServeConfig config;
  config.num_workers = 2;
  config.queue_capacity = 32;
  ScoringService service(test_epoch(0.2), config);

  std::atomic<std::uint64_t> scored{0};
  std::atomic<std::uint64_t> max_epoch_seen{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      ScoreTicket ticket;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(service.submit(workload[(p + i) % workload.size()], ticket),
                  SubmitStatus::kAccepted);
        ticket.wait();
        ASSERT_EQ(ticket.outcome(), RequestOutcome::kScored);
        ASSERT_GE(ticket.epoch_id(), 1u);
        std::uint64_t seen = max_epoch_seen.load(std::memory_order_relaxed);
        while (seen < ticket.epoch_id() &&
               !max_epoch_seen.compare_exchange_weak(seen, ticket.epoch_id(),
                                                     std::memory_order_relaxed)) {
        }
        scored.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::uint64_t last_installed = 1;
  for (int s = 0; s < kSwaps; ++s) {
    std::this_thread::sleep_for(1ms);
    last_installed = service.install_epoch(test_epoch(s % 2 == 0 ? 0.05 : 0.35));
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(scored.load(), kProducers * kPerProducer);
  EXPECT_LE(max_epoch_seen.load(), last_installed);
  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.enqueued, kProducers * kPerProducer);
  EXPECT_EQ(snap.scored, kProducers * kPerProducer);
  EXPECT_EQ(snap.deadline_missed, 0u);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.in_flight(), 0u);
  EXPECT_EQ(snap.epoch_swaps, 1u + kSwaps);
  // Every fault-stat bucket belongs to an epoch that was actually
  // installed — a torn epoch would surface as an impossible id.
  for (const auto& [id, stats] : snap.per_epoch_faults) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, last_installed);
    EXPECT_GT(stats.operations, 0u);
  }
}

// ------------------------------- admission control & overload policies

TEST(ServeQueue, DropOldestEvictsHeadAndAdmitsNewcomer) {
  RequestQueue q(2, admit::make_policy(admit::PolicyKind::kDropOldest));
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 0
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 1
  Request victim;
  ASSERT_EQ(q.try_push(r, &victim), SubmitStatus::kAccepted);  // seq 2 displaces 0
  EXPECT_EQ(victim.seq, 0u);
  EXPECT_EQ(q.size(), 2u);
  Request out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 1u);  // eviction preserved FIFO order of the survivors
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 2u);  // the newcomer's seq is fresh — no seq reuse
}

TEST(ServeQueue, DropOldestWithoutEvictSlotShedsTheNewcomer) {
  // A caller that cannot complete a victim (passes no out-slot) must get
  // plain shed semantics — the queue never drops a request silently.
  RequestQueue q(1, admit::make_policy(admit::PolicyKind::kDropOldest));
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);
  EXPECT_EQ(q.try_push(r), SubmitStatus::kShed);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServeQueue, LifoPopsNewestOnlyPastHalfCapacity) {
  RequestQueue q(4, admit::make_policy(admit::PolicyKind::kLifo));
  const trace::FeatureSet fs = make_features(1);
  Request r;
  r.features = &fs;
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 0
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 1
  Request out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 0u);  // depth 2 of 4: at half, still FIFO
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 2
  ASSERT_EQ(q.try_push(r), SubmitStatus::kAccepted);  // seq 3 -> depth 3 of 4
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 3u);  // past half: newest first
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 1u);  // back at depth 2: FIFO resumes at the front
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.seq, 2u);
}

TEST(ServeService, ExpiredAtSubmitIsRejectedNeverScored) {
  // Regression: a request whose deadline has already passed at submit
  // time must be refused at the door — not enqueued, not scored, and
  // counted as rejected_on_admission rather than deadline_missed.
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  ScoringService service(test_epoch(0.1), config);

  ScoreTicket ticket;
  const auto expired = ServiceClock::now() - 1ms;
  EXPECT_EQ(service.try_submit(fs, ticket, expired), SubmitStatus::kRejected);
  EXPECT_TRUE(ticket.done());
  EXPECT_EQ(ticket.outcome(), RequestOutcome::kRejected);
  EXPECT_TRUE(ticket.scores().empty());

  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.rejected_on_admission, 1u);
  EXPECT_EQ(snap.enqueued, 0u);
  EXPECT_EQ(snap.scored, 0u);
  EXPECT_EQ(snap.deadline_missed, 0u);
  EXPECT_EQ(snap.in_flight(), 0u);
}

TEST(ServeService, RejectOnArrivalUsesThePredictedWait) {
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  ScoringService service(test_epoch(0.1), config);

  // Warm the predictor: a few scored requests give it a service-time EWMA.
  ScoreTicket warm;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(service.submit(fs, warm), SubmitStatus::kAccepted);
    warm.wait();
  }
  ASSERT_GT(service.wait_predictor().samples(), 0u);
  ASSERT_GT(service.wait_predictor().ewma_service_ns(), 0.0);

  // Hold the workers and build a backlog the predictor can see.
  service.pause();
  std::vector<ScoreTicket> backlog(4);
  for (auto& t : backlog) ASSERT_EQ(service.try_submit(fs, t), SubmitStatus::kAccepted);

  // A deadline tighter than the predicted wait for 4 queued requests is
  // hopeless — reject at the door instead of scoring garbage later.
  ScoreTicket doomed;
  const auto tight = ServiceClock::now() + std::chrono::nanoseconds(50);
  EXPECT_EQ(service.try_submit(fs, doomed, tight), SubmitStatus::kRejected);
  EXPECT_EQ(doomed.outcome(), RequestOutcome::kRejected);

  // No deadline -> no basis for rejection, whatever the backlog.
  ScoreTicket patient;
  EXPECT_EQ(service.try_submit(fs, patient), SubmitStatus::kAccepted);

  service.resume();
  for (auto& t : backlog) t.wait();
  patient.wait();
  EXPECT_EQ(patient.outcome(), RequestOutcome::kScored);
  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.rejected_on_admission, 1u);
  EXPECT_EQ(snap.in_flight(), 0u);
}

TEST(ServeService, DropOldestEvictionCompletesTheVictimAndAccounts) {
  const trace::FeatureSet fs = make_features(5);
  ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.admission_policy = admit::PolicyKind::kDropOldest;
  ScoringService service(test_epoch(0.1), config);
  service.pause();

  std::vector<ScoreTicket> tickets(3);
  for (auto& t : tickets) ASSERT_EQ(service.try_submit(fs, t), SubmitStatus::kAccepted);
  // The third submit displaced the first: its ticket completed as
  // kRejected without ever reaching a worker.
  EXPECT_TRUE(tickets[0].done());
  EXPECT_EQ(tickets[0].outcome(), RequestOutcome::kRejected);
  EXPECT_TRUE(tickets[0].scores().empty());

  service.resume();
  for (auto& t : tickets) t.wait();
  EXPECT_EQ(tickets[1].outcome(), RequestOutcome::kScored);
  EXPECT_EQ(tickets[2].outcome(), RequestOutcome::kScored);

  const ServiceStatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.enqueued, 3u);
  EXPECT_EQ(snap.evicted, 1u);
  EXPECT_EQ(snap.scored, 2u);
  EXPECT_EQ(snap.in_flight(), 0u);  // evicted is terminal in the identity
  // The victim's queue wait landed in the missed-wait histogram, keeping
  // the scored-only latency histogram clean.
  EXPECT_EQ(snap.missed_wait.total, 1u);
  EXPECT_EQ(snap.latency.total, 2u);
}

TEST(ServeStats, ExtendedAccountingIdentityWithV5Counters) {
  ServiceStats stats;
  const faultsim::FaultStats none;
  for (int i = 0; i < 6; ++i) stats.on_enqueued();
  stats.on_scored(100, 1, none);
  stats.on_scored(100, 1, none, /*late=*/true);  // scored but past deadline
  stats.on_deadline_missed(3000);
  stats.on_failed();
  stats.on_evicted(5000);
  stats.on_rejected_admission();  // pre-enqueue: outside the identity
  stats.on_throttled();           // transport-level: outside the identity
  const ServiceStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.enqueued, 6u);
  EXPECT_EQ(snap.scored, 2u);
  EXPECT_EQ(snap.scored_late, 1u);
  EXPECT_EQ(snap.goodput(), 1u);  // scored minus scored-late
  EXPECT_EQ(snap.evicted, 1u);
  EXPECT_EQ(snap.rejected_on_admission, 1u);
  EXPECT_EQ(snap.throttled, 1u);
  // enqueued = scored + deadline_missed + failed + evicted + in_flight
  EXPECT_EQ(snap.in_flight(), 1u);  // the sixth request is still queued
  // Evicted and missed waits share the missed-wait histogram.
  EXPECT_EQ(snap.missed_wait.total, 2u);
  EXPECT_EQ(snap.latency.total, 2u);
}

TEST(ServeService, ScoresAreBitIdenticalUnderEveryAdmissionPolicy) {
  // Policies change WHICH requests are admitted under overload, never
  // what an admitted request scores. Below saturation (blocking submits,
  // no overflow) every policy admits everything in the same order, so
  // the full score vectors must match bit for bit.
  const std::vector<trace::FeatureSet> workload = make_workload(24);
  const auto batch = as_pointers(workload);
  std::vector<std::vector<std::vector<double>>> per_policy;
  for (const admit::PolicyKind kind :
       {admit::PolicyKind::kFifo, admit::PolicyKind::kDropOldest,
        admit::PolicyKind::kLifo}) {
    ServeConfig config;
    config.num_workers = 2;
    config.queue_capacity = 8;
    config.seed = 42;
    config.admission_policy = kind;
    ScoringService service(test_epoch(0.25), config);
    per_policy.push_back(service.score_all(batch));
  }
  ASSERT_EQ(per_policy.size(), 3u);
  EXPECT_EQ(per_policy[0], per_policy[1]);
  EXPECT_EQ(per_policy[0], per_policy[2]);
}

}  // namespace
}  // namespace shmd::serve
