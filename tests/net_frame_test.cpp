// Property/fuzz tests for the wire protocol (src/net/frame.hpp): payload
// codecs must round-trip bit-exactly, and FrameDecoder must reassemble
// frames under arbitrary fragmentation and coalescing while rejecting
// garbage — sticky failure, no UB, no hostile-length allocation. The
// whole suite runs under ASan/UBSan in CI's sanitize job.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::net {
namespace {

ScoreRequest make_request(std::uint64_t seed, std::size_t n_windows = 3,
                          std::size_t width = 8) {
  rng::Xoshiro256ss gen(seed);
  ScoreRequest req;
  req.view = static_cast<std::uint8_t>(gen.below(3));
  req.period = 2048;
  req.deadline_us = static_cast<std::uint32_t>(gen.below(1000));
  req.width = width;
  req.windows.assign(n_windows, std::vector<double>(width));
  for (auto& window : req.windows) {
    for (double& x : window) x = gen.uniform(-10.0, 10.0);
  }
  return req;
}

std::vector<std::uint8_t> wire_of(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

// ----------------------------------------------------------- payload codecs

TEST(NetFrame, ScoreRequestRoundTripsBitExactly) {
  const ScoreRequest req = make_request(7);
  const std::vector<std::uint8_t> wire = encode_score_request(req);
  const std::optional<ScoreRequest> back = decode_score_request(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, req);
  // Doubles travel as IEEE-754 bit patterns — spot-check one exactly.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back->windows[0][0]),
            std::bit_cast<std::uint64_t>(req.windows[0][0]));
}

TEST(NetFrame, ScoreResultRoundTripsBitExactly) {
  ScoreResult result;
  result.outcome = 1;
  result.verdict = true;
  result.epoch_id = 42;
  result.latency_ns = 123456789;
  result.scores = {0.1, 0.2, 0.999999999999, -0.0};
  const std::optional<ScoreResult> back = decode_score_result(encode_score_result(result));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, result);
}

TEST(NetFrame, VerdictResultRoundTripsBitExactly) {
  // Decision counts straddling the byte-packing boundaries: empty, less
  // than one byte, exactly one byte, ragged tail.
  for (const std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{8},
                              std::size_t{13}, std::size_t{64}}) {
    rng::Xoshiro256ss gen(n);
    VerdictResult result;
    result.outcome = 1;
    result.verdict = n % 2 == 0;
    result.epoch_id = 7 + n;
    result.latency_ns = 987654321;
    result.decisions.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.decisions[i] = gen.bernoulli(0.5);
    const std::optional<VerdictResult> back =
        decode_verdict_result(encode_verdict_result(result));
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, result) << n;
  }
}

TEST(NetFrame, VerdictResultRejectsTruncationAndTrailingGarbage) {
  VerdictResult result;
  result.decisions = {true, false, true, true, false, true, false, true, true};
  const std::vector<std::uint8_t> wire = encode_verdict_result(result);
  for (const std::size_t cut : {std::size_t{1}, wire.size() / 2, wire.size() - 1}) {
    const std::vector<std::uint8_t> truncated(wire.begin(),
                                              wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_verdict_result(truncated).has_value()) << "cut at " << cut;
  }
  std::vector<std::uint8_t> trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(decode_verdict_result(trailing).has_value());
  EXPECT_FALSE(decode_verdict_result({}).has_value());
}

TEST(NetFrame, VerdictResultRejectsNonzeroPadBits) {
  // 9 decisions -> 2 bytes, 7 pad bits in the tail byte. A sender that
  // sets any of them is smuggling out-of-contract state; reject.
  VerdictResult result;
  result.decisions.assign(9, true);
  std::vector<std::uint8_t> wire = encode_verdict_result(result);
  ASSERT_TRUE(decode_verdict_result(wire).has_value());
  wire.back() |= 0x80;  // highest pad bit of the tail byte
  EXPECT_FALSE(decode_verdict_result(wire).has_value());
}

TEST(NetFrame, VerdictResultRejectsHostileDecisionCount) {
  // Huge declared n_decisions (u32 at offset 20) must be rejected by
  // arithmetic against the actual payload size, never by allocating.
  VerdictResult result;
  result.decisions = {true, false};
  std::vector<std::uint8_t> wire = encode_verdict_result(result);
  for (std::size_t i = 0; i < 4; ++i) wire[20 + i] = 0xFF;
  EXPECT_FALSE(decode_verdict_result(wire).has_value());
}

TEST(NetFrame, ErrorBodyRoundTrips) {
  ErrorBody body;
  body.code = ErrorCode::kShed;
  body.message = "request queue full; retry later";
  const std::optional<ErrorBody> back = decode_error(encode_error(body));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, body);

  const std::optional<ErrorBody> empty = decode_error(encode_error(ErrorBody{}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->message.empty());
}

TEST(NetFrame, DecodersRejectTruncationAndTrailingGarbage) {
  const std::vector<std::uint8_t> wire = encode_score_request(make_request(3));
  for (const std::size_t cut : {std::size_t{1}, wire.size() / 2, wire.size() - 1}) {
    const std::vector<std::uint8_t> truncated(wire.begin(),
                                              wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_score_request(truncated).has_value()) << "cut at " << cut;
  }
  std::vector<std::uint8_t> trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(decode_score_request(trailing).has_value());
  EXPECT_FALSE(decode_score_request({}).has_value());
  EXPECT_FALSE(decode_score_result({}).has_value());
  EXPECT_FALSE(decode_error({}).has_value());
}

TEST(NetFrame, DecodersRejectHostileLengthFields) {
  // A huge declared window count must be rejected by arithmetic, never by
  // attempting the allocation. n_windows lives at payload offset 12.
  std::vector<std::uint8_t> wire = encode_score_request(make_request(3));
  for (std::size_t i = 0; i < 4; ++i) wire[12 + i] = 0xFF;
  EXPECT_FALSE(decode_score_request(wire).has_value());

  // Same for a ScoreResult score count (offset 20).
  ScoreResult result;
  result.scores = {1.0, 2.0};
  std::vector<std::uint8_t> rw = encode_score_result(result);
  for (std::size_t i = 0; i < 4; ++i) rw[20 + i] = 0xFF;
  EXPECT_FALSE(decode_score_result(rw).has_value());
}

TEST(NetFrame, ScoreRequestRejectsDimensionsWhoseProductWraps) {
  // n_windows=2^31, width=2^30: the 64-bit product n_windows*width*8 is
  // exactly 2^64 ≡ 0, which equals remaining()=0 for a 20-byte payload.
  // A product-shaped size check passes and the decoder then attempts a
  // multi-GiB allocation — the check must be division-shaped instead.
  std::vector<std::uint8_t> wire = encode_score_request(make_request(5, 1, 1));
  wire.resize(20);  // header only: view/pad/period/deadline/n_windows/width
  const auto put32 = [&wire](std::size_t at, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) wire[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put32(12, 0x80000000u);  // n_windows = 2^31
  put32(16, 0x40000000u);  // width = 2^30
  EXPECT_FALSE(decode_score_request(wire).has_value());
}

TEST(NetFrame, PayloadDecoderFuzzNeverCrashes) {
  // Random bytes through every payload decoder: any outcome but UB/throw
  // is correct (ASan/UBSan in CI make violations fatal).
  rng::Xoshiro256ss gen(0xF422);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(gen.below(96));
    for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(gen() & 0xFF);
    (void)decode_score_request(bytes);
    (void)decode_score_result(bytes);
    (void)decode_verdict_result(bytes);
    (void)decode_error(bytes);
  }
  // Mutated valid payloads: flip one byte anywhere; must decode or reject,
  // never crash.
  const std::vector<std::uint8_t> valid = encode_score_request(make_request(11));
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> mutant = valid;
    mutant[gen.below(mutant.size())] ^= static_cast<std::uint8_t>(1 + (gen() & 0xFF));
    (void)decode_score_request(mutant);
  }
}

// ------------------------------------------------------------- FrameDecoder

TEST(NetFrame, DecoderHandlesSingleCompleteFrame) {
  Frame frame;
  frame.type = FrameType::kScore;
  frame.request_id = 77;
  frame.payload = encode_score_request(make_request(5));
  FrameDecoder decoder;
  decoder.feed(wire_of(frame));
  const std::optional<Frame> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.failed());
}

TEST(NetFrame, DecoderReassemblesUnderArbitraryFragmentation) {
  // Property: for ANY chunking of the byte stream, the decoded frame
  // sequence equals the encoded one. 64 random fragmentations plus the
  // pathological one-byte-at-a-time case.
  std::vector<Frame> frames;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Frame f;
    f.type = i % 2 == 0 ? FrameType::kScore : FrameType::kPing;
    f.request_id = i;
    if (f.type == FrameType::kScore) {
      f.payload = encode_score_request(make_request(i, 1 + i % 4, 4));
    }
    frames.push_back(std::move(f));
  }
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) encode_frame(f, stream);

  for (std::uint64_t seed = 0; seed < 65; ++seed) {
    rng::Xoshiro256ss gen(seed);
    FrameDecoder decoder;
    std::vector<Frame> decoded;
    std::size_t at = 0;
    while (at < stream.size()) {
      // seed 0: one byte at a time; otherwise random chunks up to 96 bytes.
      const std::size_t chunk =
          seed == 0 ? 1
                    : std::min(stream.size() - at, std::size_t{1} + gen.below(96));
      decoder.feed(std::span<const std::uint8_t>(stream.data() + at, chunk));
      at += chunk;
      while (std::optional<Frame> f = decoder.next()) decoded.push_back(std::move(*f));
    }
    ASSERT_FALSE(decoder.failed()) << "seed " << seed;
    EXPECT_EQ(decoded, frames) << "seed " << seed;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(NetFrame, DecoderHandlesCoalescedFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 50; ++i) {
    Frame f;
    f.type = FrameType::kPong;
    f.request_id = i;
    f.payload = {static_cast<std::uint8_t>(i)};
    encode_frame(f, stream);
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::optional<Frame> f = decoder.next();
    ASSERT_TRUE(f.has_value()) << i;
    EXPECT_EQ(f->request_id, i);
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(NetFrame, DecoderRejectsGarbageHeadersStickily) {
  const struct {
    const char* what;
    std::size_t offset;
    std::uint8_t value;
  } cases[] = {
      {"bad magic", 0, 0x00},
      {"bad version", 4, 99},
      {"unknown type", 5, 0xEE},
      {"reserved bits", 6, 1},
  };
  for (const auto& c : cases) {
    Frame frame;
    frame.type = FrameType::kPing;
    std::vector<std::uint8_t> wire = wire_of(frame);
    wire[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.feed(wire);
    EXPECT_FALSE(decoder.next().has_value()) << c.what;
    EXPECT_TRUE(decoder.failed()) << c.what;
    EXPECT_FALSE(decoder.error().empty()) << c.what;
    // Sticky: a valid frame after the poison is ignored.
    decoder.feed(wire_of(Frame{}));
    EXPECT_FALSE(decoder.next().has_value()) << c.what;
    EXPECT_TRUE(decoder.failed()) << c.what;
  }
}

TEST(NetFrame, DecoderRejectsOversizedPayloadBeforeBuffering) {
  // Declare a payload over the limit: the decoder must fail from the
  // header alone, without waiting for (or allocating) the claimed bytes.
  FrameDecoder decoder(/*max_payload=*/1024);
  std::vector<std::uint8_t> header;
  Frame frame;
  frame.payload.assign(16, 0);  // real bytes don't matter
  encode_frame(frame, header);
  header[16] = 0xFF;  // payload length u32 at offset 16 -> huge
  header[17] = 0xFF;
  header[18] = 0xFF;
  header[19] = 0x7F;
  decoder.feed(header);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("exceeds limit"), std::string::npos);
}

TEST(NetFrame, DecoderFuzzRandomBytesNeverCrash) {
  rng::Xoshiro256ss gen(0xDEC0DE);
  for (int iter = 0; iter < 300; ++iter) {
    FrameDecoder decoder(4096);
    const std::size_t total = 1 + gen.below(512);
    std::size_t fed = 0;
    while (fed < total && !decoder.failed()) {
      std::vector<std::uint8_t> chunk(1 + gen.below(64));
      for (std::uint8_t& b : chunk) b = static_cast<std::uint8_t>(gen() & 0xFF);
      // Bias the first bytes toward the real magic so some iterations get
      // past the header check into length/payload handling.
      if (fed == 0 && gen.bernoulli(0.5) && chunk.size() >= 6) {
        chunk[0] = 0x44;
        chunk[1] = 0x4D;
        chunk[2] = 0x48;
        chunk[3] = 0x53;
        chunk[4] = kProtocolVersion;
        chunk[5] = static_cast<std::uint8_t>(gen.below(9));  // all frame types incl. kVerdict*
      }
      decoder.feed(chunk);
      fed += chunk.size();
      while (decoder.next().has_value()) {
      }
    }
  }
}

TEST(NetFrame, EncodeFrameAppendsWithoutDisturbingPriorBytes) {
  std::vector<std::uint8_t> out = {0xAA, 0xBB};
  Frame frame;
  frame.type = FrameType::kStats;
  frame.request_id = 5;
  encode_frame(frame, out);
  EXPECT_EQ(out.size(), 2 + kHeaderSize);
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
  FrameDecoder decoder;
  decoder.feed(std::span<const std::uint8_t>(out.data() + 2, out.size() - 2));
  const std::optional<Frame> back = decoder.next();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, frame);
}

}  // namespace
}  // namespace shmd::net
