#include <gtest/gtest.h>

#include <cmath>

#include "nn/decision_tree.hpp"
#include "nn/logistic_regression.hpp"
#include "nn/mlp_classifier.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::nn {
namespace {

/// Linearly separable blobs: class 1 around (0.8, 0.8), class 0 around
/// (0.2, 0.2), with some spread.
std::vector<TrainSample> blobs(std::size_t n, double spread, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<TrainSample> data;
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = (i % 2) == 0;
    const double cx = positive ? 0.8 : 0.2;
    data.push_back(TrainSample{{cx + spread * gen.gaussian(), cx + spread * gen.gaussian()},
                               positive ? 1.0 : 0.0});
  }
  return data;
}

/// XOR-like blobs: not linearly separable.
std::vector<TrainSample> xor_blobs(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<TrainSample> data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = gen.uniform01();
    const double y = gen.uniform01();
    data.push_back(TrainSample{{x, y}, ((x > 0.5) != (y > 0.5)) ? 1.0 : 0.0});
  }
  return data;
}

double accuracy(const Classifier& model, const std::vector<TrainSample>& data) {
  std::size_t correct = 0;
  for (const TrainSample& s : data) correct += model.classify(s.x) == (s.y > 0.5);
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

// ---------------------------------------------------------------------- LR

TEST(LogisticRegression, SeparatesLinearBlobs) {
  LogisticRegression lr;
  const auto train = blobs(400, 0.1, 1);
  lr.fit(train);
  EXPECT_GT(accuracy(lr, blobs(200, 0.1, 2)), 0.97);
}

TEST(LogisticRegression, PredictBeforeFitThrows) {
  LogisticRegression lr;
  const std::vector<double> x{0.5, 0.5};
  EXPECT_THROW((void)lr.predict(x), std::invalid_argument);
}

TEST(LogisticRegression, AnalyticGradientMatchesNumeric) {
  LogisticRegression lr;
  lr.fit(blobs(200, 0.15, 3));
  const std::vector<double> x{0.45, 0.6};
  const auto analytic = lr.gradient(x);
  // Numeric via the base-class helper semantics.
  constexpr double eps = 1e-5;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> up = x;
    std::vector<double> down = x;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (lr.predict(up) - lr.predict(down)) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-6);
  }
}

TEST(LogisticRegression, ClassBalancingHelpsMinorityClass) {
  // 90% positives: unbalanced LR tends to predict everything positive.
  rng::Xoshiro256ss gen(4);
  std::vector<TrainSample> data;
  for (int i = 0; i < 600; ++i) {
    const bool positive = i % 10 != 0;
    const double cx = positive ? 0.65 : 0.35;
    data.push_back(TrainSample{{cx + 0.12 * gen.gaussian(), cx + 0.12 * gen.gaussian()},
                               positive ? 1.0 : 0.0});
  }
  LogisticRegressionConfig balanced;
  balanced.balance_classes = true;
  LogisticRegression lr_bal(balanced);
  lr_bal.fit(data);
  LogisticRegressionConfig unbal;
  unbal.balance_classes = false;
  LogisticRegression lr_unbal(unbal);
  lr_unbal.fit(data);

  std::size_t bal_tn = 0;
  std::size_t unbal_tn = 0;
  std::size_t negatives = 0;
  for (const TrainSample& s : data) {
    if (s.y > 0.5) continue;
    ++negatives;
    bal_tn += !lr_bal.classify(s.x);
    unbal_tn += !lr_unbal.classify(s.x);
  }
  ASSERT_GT(negatives, 0u);
  EXPECT_GE(bal_tn, unbal_tn);
  EXPECT_GT(static_cast<double>(bal_tn) / static_cast<double>(negatives), 0.8);
}

TEST(LogisticRegression, DifferentiableFlag) {
  LogisticRegression lr;
  EXPECT_TRUE(lr.differentiable());
  EXPECT_EQ(lr.name(), "lr");
}

// ---------------------------------------------------------------------- DT

TEST(DecisionTree, SeparatesLinearBlobs) {
  DecisionTree dt;
  dt.fit(blobs(400, 0.1, 5));
  EXPECT_GT(accuracy(dt, blobs(200, 0.1, 6)), 0.95);
}

TEST(DecisionTree, LearnsXorUnlikeLr) {
  // DT was chosen in the paper for its non-differentiability; it also
  // handles non-linear structure LR cannot.
  const auto train = xor_blobs(800, 7);
  const auto test = xor_blobs(400, 8);
  DecisionTree dt;
  dt.fit(train);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_GT(accuracy(dt, test), 0.9);
  EXPECT_LT(accuracy(lr, test), 0.65);
}

TEST(DecisionTree, RespectsDepthLimit) {
  DecisionTreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTree dt(cfg);
  dt.fit(xor_blobs(500, 9));
  EXPECT_LE(dt.depth(), 4);  // depth counts nodes on the path incl. leaf
}

TEST(DecisionTree, PureLeafForPureData) {
  DecisionTree dt;
  std::vector<TrainSample> pure;
  for (int i = 0; i < 50; ++i) pure.push_back(TrainSample{{0.1 * i, 0.2}, 1.0});
  dt.fit(pure);
  EXPECT_EQ(dt.node_count(), 1u);
  const std::vector<double> x{0.3, 0.2};
  EXPECT_DOUBLE_EQ(dt.predict(x), 1.0);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree dt;
  const std::vector<double> x{0.1};
  EXPECT_THROW((void)dt.predict(x), std::logic_error);
}

TEST(DecisionTree, NonDifferentiable) {
  DecisionTree dt;
  EXPECT_FALSE(dt.differentiable());
  EXPECT_EQ(dt.name(), "dt");
}

TEST(DecisionTree, InvalidConfigThrows) {
  DecisionTreeConfig bad;
  bad.max_depth = 0;
  EXPECT_THROW(DecisionTree{bad}, std::invalid_argument);
}

// --------------------------------------------------------------------- MLP

TEST(MlpClassifier, LearnsXorBlobs) {
  TrainConfig train;
  train.epochs = 200;
  train.patience = 0;
  MlpClassifier mlp({2, 12, 6, 1}, train, 17);
  mlp.fit(xor_blobs(800, 11));
  EXPECT_GT(accuracy(mlp, xor_blobs(400, 12)), 0.9);
}

TEST(MlpClassifier, RefitIsIndependentOfPreviousState) {
  TrainConfig train;
  train.epochs = 60;
  train.patience = 0;
  MlpClassifier mlp({2, 8, 1}, train, 21);
  const auto data = blobs(200, 0.1, 13);
  mlp.fit(data);
  const double first = mlp.predict(data.front().x);
  mlp.fit(data);  // same data, fresh init: identical result
  EXPECT_DOUBLE_EQ(mlp.predict(data.front().x), first);
}

TEST(MlpClassifier, NumericalGradientPointsTowardPositiveClass) {
  TrainConfig train;
  train.epochs = 120;
  train.patience = 0;
  MlpClassifier mlp({2, 8, 1}, train, 23);
  mlp.fit(blobs(400, 0.1, 14));
  // Positive class sits at higher coordinates: the gradient of P(malware)
  // at the midpoint should be positive in both dims.
  const std::vector<double> mid{0.5, 0.5};
  const auto g = mlp.gradient(mid);
  EXPECT_GT(g[0], 0.0);
  EXPECT_GT(g[1], 0.0);
}

}  // namespace
}  // namespace shmd::nn
