#include <gtest/gtest.h>

#include "eval/data_adapter.hpp"
#include "eval/metrics.hpp"
#include "nn/network.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/trng_sim.hpp"
#include "support/test_corpus.hpp"
#include "sys/energy_meter.hpp"
#include "sys/latency_model.hpp"
#include "sys/memory_model.hpp"
#include "sys/power_model.hpp"

namespace shmd {
namespace {

using trace::FeatureConfig;
using trace::FeatureView;

// ----------------------------------------------------------------- metrics

TEST(ConfusionMatrix, CountsAndRates) {
  eval::ConfusionMatrix cm;
  cm.add(true, true);    // TP
  cm.add(true, true);    // TP
  cm.add(true, false);   // FN
  cm.add(false, false);  // TN
  cm.add(false, true);   // FP
  EXPECT_EQ(cm.tp(), 2u);
  EXPECT_EQ(cm.fn(), 1u);
  EXPECT_EQ(cm.tn(), 1u);
  EXPECT_EQ(cm.fp(), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(cm.fnr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 2.0 / 3.0);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyMatrixRatesAreZero) {
  eval::ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fnr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrix, MergeAddsCounts) {
  eval::ConfusionMatrix a;
  a.add(true, true);
  eval::ConfusionMatrix b;
  b.add(false, true);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.fp(), 1u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

// ------------------------------------------------------------- data adapter

TEST(DataAdapter, WindowSamplesInheritProgramLabel) {
  const trace::Dataset& ds = test::small_dataset();
  const std::vector<std::size_t> indices{0, 1};
  const FeatureConfig fc{FeatureView::kInsnCategory, ds.config().periods[0]};
  const auto samples = eval::window_samples(ds, indices, fc);
  const std::size_t per_program = ds.config().trace_length / fc.period;
  ASSERT_EQ(samples.size(), 2 * per_program);
  for (std::size_t i = 0; i < per_program; ++i) {
    EXPECT_DOUBLE_EQ(samples[i].y, ds.samples()[0].malware() ? 1.0 : 0.0);
  }
}

TEST(DataAdapter, MultiviewConcatenatesDimensions) {
  const trace::Dataset& ds = test::small_dataset();
  const std::size_t period = ds.config().periods[0];
  const std::vector<FeatureConfig> configs{
      {FeatureView::kInsnCategory, period}, {FeatureView::kMemory, period}};
  const std::vector<std::size_t> indices{0};
  const auto samples = eval::window_samples_multiview(ds, indices, configs);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.front().x.size(), eval::multiview_dim(configs));
  EXPECT_EQ(samples.front().x.size(),
            trace::view_dim(FeatureView::kInsnCategory) + trace::view_dim(FeatureView::kMemory));
}

TEST(DataAdapter, MultiviewRejectsMixedPeriods) {
  const trace::Dataset& ds = test::small_dataset();
  const std::vector<FeatureConfig> configs{
      {FeatureView::kInsnCategory, ds.config().periods[0]},
      {FeatureView::kMemory, ds.config().periods[1]}};
  const std::vector<std::size_t> indices{0};
  EXPECT_THROW((void)eval::window_samples_multiview(ds, indices, configs),
               std::invalid_argument);
}

TEST(DataAdapter, ConcatViewsChecksWindowCounts) {
  const std::vector<std::vector<std::vector<double>>> ragged{
      {{1.0}, {2.0}},
      {{3.0}},
  };
  EXPECT_THROW((void)eval::concat_views(ragged), std::invalid_argument);
}

// -------------------------------------------------------------- power model

TEST(PowerModel, NominalPowerAtNominalVoltage) {
  sys::PowerModel pm;
  EXPECT_NEAR(pm.power_w(1.18), 15.0, 1e-9);
  EXPECT_NEAR(pm.savings_vs_nominal(1.18), 0.0, 1e-12);
}

TEST(PowerModel, SuperLinearSavings) {
  sys::PowerModel pm;
  // 10% voltage cut must save more than 10% power (P ~ V^2..V^3).
  EXPECT_GT(pm.savings_vs_nominal(1.18 * 0.9), 0.15);
  // Monotone in depth.
  double prev = -1.0;
  for (double v = 1.18; v >= 0.68; v -= 0.05) {
    const double s = pm.savings_vs_nominal(v);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(PowerModel, PaperOperatingPointSavings) {
  // ~15-20% savings at the er=0.1 undervolt (~-113 mV → 1.067 V).
  sys::PowerModel pm;
  const double savings = pm.savings_vs_nominal(1.18 - 0.113);
  EXPECT_GT(savings, 0.12);
  EXPECT_LT(savings, 0.25);
}

TEST(PowerModel, SavingsVsRhmdExceedSavingsVsBaseline) {
  sys::PowerModel pm;
  const double rhmd_power = pm.power_w(1.18) * 1.3;  // RHMD switching overhead
  EXPECT_GT(pm.savings_vs(1.0, rhmd_power), pm.savings_vs_nominal(1.0));
}

TEST(PowerModel, InvalidInputsThrow) {
  sys::PowerModel pm;
  EXPECT_THROW((void)pm.power_w(0.0), std::invalid_argument);
  EXPECT_THROW((void)pm.savings_vs(1.0, 0.0), std::invalid_argument);
  sys::PowerModelConfig bad;
  bad.nominal_power_w = -1.0;
  EXPECT_THROW(sys::PowerModel{bad}, std::invalid_argument);
}

// ------------------------------------------------------------ latency model

class LatencyTest : public ::testing::Test {
 protected:
  static nn::Network paper_net() {
    const std::vector<std::size_t> topo{16, 232, 60, 1};
    return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  }
  sys::LatencyModel lat_;
};

TEST_F(LatencyTest, PaperScaleInferenceIsAbout7us) {
  // §VIII: "The average inference time is 7 us" for Stochastic-HMD.
  const nn::Network net = paper_net();
  EXPECT_NEAR(lat_.inference_us(net), 7.0, 0.5);
}

TEST_F(LatencyTest, RhmdOverheadMatchesPaperOrdering) {
  // §VIII: 7.7 us for RHMD-2F, 7.8 us for RHMD-2F2P — at least ~10%
  // overhead over Stochastic-HMD, growing with the model count.
  const nn::Network net = paper_net();
  const double base = lat_.inference_us(net);
  const double r2f = lat_.rhmd_inference_us(net, 2);
  const double r2f2p = lat_.rhmd_inference_us(net, 4);
  EXPECT_GT(r2f, 1.08 * base);
  EXPECT_GT(r2f2p, r2f);
  EXPECT_NEAR(r2f, 7.7, 0.6);
  EXPECT_NEAR(r2f2p, 7.9, 0.6);
}

TEST_F(LatencyTest, SingleBaseRhmdHasOnlySelectionCost) {
  const nn::Network net = paper_net();
  const double r1 = lat_.rhmd_inference_us(net, 1);
  EXPECT_GT(r1, lat_.inference_us(net));
  EXPECT_LT(r1, lat_.rhmd_inference_us(net, 2));
}

TEST_F(LatencyTest, TrngDefenseIsAbout62x) {
  // §VIII: "the TRNG based implementation adds ~62x performance overhead".
  const nn::Network net = paper_net();
  rng::TrngSim trng;
  const double ratio = lat_.noise_inference_us(net, trng) / lat_.inference_us(net);
  EXPECT_NEAR(ratio, 62.0, 6.0);
}

TEST_F(LatencyTest, PrngDefenseIsAbout4x) {
  // §VIII: "the PRNG based implementation adds ~4x performance overhead".
  const nn::Network net = paper_net();
  rng::LgmPrng prng;
  const double ratio = lat_.noise_inference_us(net, prng) / lat_.inference_us(net);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST_F(LatencyTest, InvalidArgumentsThrow) {
  const nn::Network net = paper_net();
  EXPECT_THROW((void)lat_.rhmd_inference_us(net, 0), std::invalid_argument);
  sys::LatencyModelConfig bad;
  bad.frequency_ghz = 0.0;
  EXPECT_THROW(sys::LatencyModel{bad}, std::invalid_argument);
}

// ------------------------------------------------------------- energy meter

TEST(EnergyMeter, UndervoltedDetectionSavesEnergyNotTime) {
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  const auto nominal = meter.detection(net, 1.18);
  const auto undervolted = meter.detection(net, 1.06);
  // §VIII: "scaling the voltage has no effect on the inference time".
  EXPECT_DOUBLE_EQ(nominal.time_us, undervolted.time_us);
  EXPECT_LT(undervolted.energy_uj, nominal.energy_uj);
}

TEST(EnergyMeter, TrngEnergyIsAbout112x) {
  // §VIII: "~112x energy consumption overhead" for the TRNG defense.
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  rng::TrngSim trng;
  const double ratio =
      meter.noise_detection(net, trng).energy_uj / meter.detection(net, 1.18).energy_uj;
  EXPECT_NEAR(ratio, 112.0, 15.0);
}

TEST(EnergyMeter, PrngEnergyIsAbout5point7x) {
  // §VIII: "~5.7x energy consumption overhead" for the PRNG defense.
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  rng::LgmPrng prng;
  const double ratio =
      meter.noise_detection(net, prng).energy_uj / meter.detection(net, 1.18).energy_uj;
  EXPECT_NEAR(ratio, 5.7, 1.0);
}

TEST(EnergyMeter, AccumulatesMeasurementRuns) {
  const std::vector<std::size_t> topo{4, 4, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::EnergyMeter meter{sys::PowerModel{}, sys::LatencyModel{}};
  const auto s = meter.detection(net, 1.18);
  meter.record(s);
  meter.record(s);
  EXPECT_EQ(meter.detections(), 2u);
  EXPECT_NEAR(meter.total_energy_uj(), 2.0 * s.energy_uj, 1e-12);
  EXPECT_NEAR(meter.average_power_w(), s.average_power_w(), 1e-9);
  meter.reset();
  EXPECT_EQ(meter.detections(), 0u);
}

// ------------------------------------------------------------- memory model

TEST(MemoryModel, StorageSavingsEquationOne) {
  // Paper Eq. (1): savings = (n-1)/n.
  EXPECT_DOUBLE_EQ(sys::MemoryModel::storage_savings(2), 0.5);
  EXPECT_DOUBLE_EQ(sys::MemoryModel::storage_savings(4), 0.75);
  EXPECT_DOUBLE_EQ(sys::MemoryModel::storage_savings(6), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(sys::MemoryModel::storage_savings(1), 0.0);
  EXPECT_THROW((void)sys::MemoryModel::storage_savings(0), std::invalid_argument);
}

TEST(MemoryModel, PaperModelExceedsL1) {
  // §VIII: 71 KB model vs 32 KB L1.
  const std::vector<std::size_t> topo{16, 232, 60, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::MemoryModel mm;
  EXPECT_TRUE(mm.exceeds_l1(net));
  EXPECT_EQ(sys::MemoryModel::rhmd_bytes(net, 4), 4 * net.memory_bytes());
}

TEST(MemoryModel, SmallModelFitsL1) {
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  const nn::Network net(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid, 1);
  sys::MemoryModel mm;
  EXPECT_FALSE(mm.exceeds_l1(net));
}

}  // namespace
}  // namespace shmd
