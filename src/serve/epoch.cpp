#include "serve/epoch.hpp"

namespace shmd::serve {

DetectorEpoch make_epoch(const hmd::StochasticHmd& detector, double threshold,
                         double vote_fraction) {
  DetectorEpoch epoch;
  epoch.network = detector.network();
  epoch.features = detector.feature_config();
  epoch.error_rate = detector.error_rate();
  epoch.threshold = threshold;
  epoch.vote_fraction = vote_fraction;
  epoch.distribution = detector.fault_distribution();
  return epoch;
}

DetectorEpoch make_epoch(const hmd::DeploymentBundle& bundle, double temp_c,
                         const volt::VoltFaultModel* model) {
  DetectorEpoch epoch;
  epoch.network = bundle.network;
  epoch.features = bundle.feature_config;
  // Direct-er bundles ship without a calibration table; the offset is
  // then purely informational and stays at nominal (0 mV).
  epoch.offset_mv = bundle.calibration.empty() ? 0.0 : bundle.offset_for_temperature(temp_c);
  epoch.error_rate =
      model != nullptr ? model->fault_probability(epoch.offset_mv, temp_c) : bundle.target_error_rate;
  return epoch;
}

}  // namespace shmd::serve
