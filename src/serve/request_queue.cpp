#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace shmd::serve {

RequestQueue::RequestQueue(std::size_t capacity,
                           std::unique_ptr<const admit::AdmissionPolicy> policy)
    : policy_(policy != nullptr ? std::move(policy)
                                : admit::make_policy(admit::PolicyKind::kFifo)),
      ring_(capacity) {
  if (capacity == 0) throw std::invalid_argument("RequestQueue: capacity must be > 0");
}

SubmitStatus RequestQueue::try_push(const Request& request, Request* evicted) {
  if (evicted != nullptr) evicted->ticket = nullptr;
  {
    const util::MutexLock lock(mu_);
    if (closed_) return SubmitStatus::kClosed;
    if (count_ == ring_.size()) {
      if (evicted == nullptr || !policy_->evict_oldest_on_overflow()) {
        return SubmitStatus::kShed;
      }
      // Drop-oldest: the head request has waited longest and is the most
      // likely deadline casualty; hand it back to the caller (who owns
      // ticket completion) and admit the newcomer in its slot. The new
      // request still gets the NEXT seq — eviction changes queue
      // membership, never the (seed, admission order) function that
      // scores the survivors.
      *evicted = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
    Request& slot = ring_[(head_ + count_) % ring_.size()];
    slot = request;
    slot.seq = next_seq_++;
    ++count_;
  }
  not_empty_.notify_one();
  return SubmitStatus::kAccepted;
}

SubmitStatus RequestQueue::push(const Request& request) {
  {
    const util::MutexLock lock(mu_);
    while (!closed_ && count_ == ring_.size()) not_full_.wait(mu_);
    if (closed_) return SubmitStatus::kClosed;
    Request& slot = ring_[(head_ + count_) % ring_.size()];
    slot = request;
    slot.seq = next_seq_++;
    ++count_;
  }
  not_empty_.notify_one();
  return SubmitStatus::kAccepted;
}

Request RequestQueue::take_one() {
  // LIFO-under-overload pops the BACK of the ring: the newest request has
  // the most deadline budget left, so serving it first maximizes useful
  // completions while the dequeue-time expiry check reaps the starved
  // old ones. FIFO (and LIFO below its depth threshold) pops the head.
  if (policy_->pop_newest_first(count_, ring_.size())) {
    --count_;
    return ring_[(head_ + count_) % ring_.size()];
  }
  const Request out = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return out;
}

bool RequestQueue::pop(Request& out) {
  {
    const util::MutexLock lock(mu_);
    // While paused, consumers sleep even with work queued (so overload is
    // observable); close() overrides pause so shutdown always drains.
    while (!closed_ && (count_ == 0 || paused_)) not_empty_.wait(mu_);
    if (count_ == 0) return false;  // closed and drained
    out = take_one();
  }
  not_full_.notify_one();
  return true;
}

std::size_t RequestQueue::pop_batch(std::vector<Request>& out, std::size_t max_batch) {
  out.clear();
  {
    const util::MutexLock lock(mu_);
    while (!closed_ && (count_ == 0 || paused_)) not_empty_.wait(mu_);
    if (count_ == 0) return 0;  // closed and drained
    const std::size_t n = count_ < max_batch ? count_ : max_batch;
    for (std::size_t k = 0; k < n; ++k) out.push_back(take_one());
  }
  // Up to max_batch slots opened at once: wake every blocked producer,
  // not just one.
  not_full_.notify_all();
  return out.size();
}

void RequestQueue::close() {
  {
    const util::MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void RequestQueue::set_paused(bool paused) {
  {
    const util::MutexLock lock(mu_);
    paused_ = paused;
  }
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  const util::MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  const util::MutexLock lock(mu_);
  return count_;
}

}  // namespace shmd::serve
