// RequestQueue: the bounded MPMC ring between request producers and the
// scoring workers.
//
// Design constraints, in order:
//   bounded   — an always-on detector under attack must degrade by
//               *shedding* (reject-with-status) rather than by unbounded
//               queue growth: a flood of scoring requests is itself an
//               evasion vector (starve the detector until the evasive
//               sample has run). Capacity is fixed at construction.
//   two paths — try_push() is the overload-control path (never blocks,
//               reports kShed when full); push() is the closed-loop path
//               (blocks until space, for cooperative in-process callers).
//   deadlines — each request carries an absolute deadline; expiry is
//               checked at *dequeue* so a stale request costs a counter
//               bump, not an inference. The serving layer additionally
//               rejects on arrival when the predicted queue wait already
//               exceeds the deadline (admit::WaitPredictor), so doomed
//               requests never occupy a slot.
//   policy    — overload behavior (what to do on overflow, which end of
//               the ring to pop from) is pluggable via
//               admit::AdmissionPolicy. Policies change WHICH requests
//               get scored, never WHAT a surviving request scores: seq
//               is stamped at admission under the mutex and each fault
//               stream is a pure function of (seed, seq).
//   mutex+cv  — the ring holds trivially-copyable Request structs under
//               one mutex with two condition variables. At the service's
//               operating point (requests cost ~µs of inference each) the
//               lock is uncontended; a lock-free ring would buy nothing
//               measurable and cost TSan-provable correctness.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "admit/policy.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace shmd::trace {
class FeatureSet;
}  // namespace shmd::trace

namespace shmd::serve {

class ScoreTicket;

using ServiceClock = std::chrono::steady_clock;

/// Disposition of one submission attempt.
enum class SubmitStatus : std::uint8_t {
  kAccepted,  ///< enqueued; the ticket will be completed exactly once
  kShed,      ///< queue full (try_submit only); no worker will see the request
  kClosed,    ///< service is shutting down; no worker will see the request
  kRejected,  ///< admission control: the deadline is unmeetable (already
              ///< expired, or predicted queue wait exceeds the budget);
              ///< no worker will see the request
};

/// One queued scoring request. Plain data — the ring stores these by
/// value, so enqueue/dequeue never allocate.
struct Request {
  ScoreTicket* ticket = nullptr;              ///< caller-owned completion slot
  const trace::FeatureSet* features = nullptr;  ///< caller-owned, must outlive scoring
  ServiceClock::time_point deadline = ServiceClock::time_point::max();
  ServiceClock::time_point enqueue_time{};
  /// Admission order, stamped by the queue: the k-th accepted request
  /// carries seq k. Seeds the request's private fault stream.
  std::uint64_t seq = 0;
};

class RequestQueue {
 public:
  /// `policy` selects the overload behavior (see admit::AdmissionPolicy);
  /// nullptr installs the FIFO baseline.
  explicit RequestQueue(std::size_t capacity,
                        std::unique_ptr<const admit::AdmissionPolicy> policy = nullptr);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Non-blocking enqueue: kShed when the ring is full, kClosed after
  /// close(). The overload-shedding path.
  ///
  /// Under a drop-oldest policy a full ring evicts instead of shedding:
  /// the oldest admitted request is moved into `*evicted` (its ticket
  /// non-null; the CALLER must complete it — the queue never touches
  /// tickets) and the newcomer is admitted with a fresh seq. With
  /// `evicted == nullptr` a full ring always sheds, whatever the policy —
  /// callers that cannot complete a victim opt out of eviction.
  [[nodiscard]] SubmitStatus try_push(const Request& request, Request* evicted = nullptr);

  /// Blocking enqueue: waits for space. Returns kClosed if the queue is
  /// (or becomes) closed while waiting.
  [[nodiscard]] SubmitStatus push(const Request& request);

  /// Blocking dequeue: waits for a request. Returns false only when the
  /// queue is closed AND drained — accepted requests are always handed to
  /// a worker, never dropped.
  [[nodiscard]] bool pop(Request& out);

  /// Blocking batch dequeue: waits until at least one request is
  /// available (same pause/close gating as pop), then drains up to
  /// `max_batch` requests — whatever is queued RIGHT NOW, never waiting
  /// to fill the batch (batching amortizes the lock, it must not add
  /// latency) — into `out` (cleared first) in FIFO admission order,
  /// all under one lock acquisition. Returns out.size(); 0 only when the
  /// queue is closed AND drained.
  [[nodiscard]] std::size_t pop_batch(std::vector<Request>& out, std::size_t max_batch);

  /// Stop accepting new requests and wake every waiter. Requests already
  /// accepted remain poppable (drain semantics). Idempotent.
  void close();

  /// Gate the consumer side: while paused, pop() blocks even when
  /// requests are queued, so producers observably fill the ring (the
  /// overload tests and drain-for-maintenance both need this to be
  /// deterministic). close() overrides pause so shutdown always drains.
  void set_paused(bool paused);

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] const admit::AdmissionPolicy& policy() const noexcept { return *policy_; }

 private:
  /// Pop one request off whichever end the policy selects (mu_ held).
  [[nodiscard]] Request take_one() SHMD_REQUIRES(mu_);

  /// Installed before any thread sees the queue; immutable afterwards.
  const std::unique_ptr<const admit::AdmissionPolicy> policy_;
  mutable util::Mutex mu_;
  util::CondVar not_full_ SHMD_CV_WAITS_ON(mu_);
  util::CondVar not_empty_ SHMD_CV_WAITS_ON(mu_);
  /// The ring buffer itself is sized once in the constructor and never
  /// reallocated; only its slots are written under the lock. capacity()
  /// reads the invariant size lock-free.
  std::vector<Request> ring_;
  std::size_t head_ SHMD_GUARDED_BY(mu_) = 0;   ///< index of the oldest queued request
  std::size_t count_ SHMD_GUARDED_BY(mu_) = 0;  ///< queued requests
  /// Admission counter (stamps Request::seq).
  std::uint64_t next_seq_ SHMD_GUARDED_BY(mu_) = 0;
  bool closed_ SHMD_GUARDED_BY(mu_) = false;
  bool paused_ SHMD_GUARDED_BY(mu_) = false;
};

}  // namespace shmd::serve
