#include "serve/scoring_service.hpp"

#include <stdexcept>
#include <utility>

#include "hmd/detector.hpp"
#include "nn/arithmetic.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"
#include "runtime/thread_pool.hpp"

namespace shmd::serve {

namespace {

/// Deterministic per-request stream seed: splitmix over the base seed and
/// a golden-ratio-spread sequence number, so request k's fault stream is
/// a function of (seed, k) alone — never of which worker scored it.
std::uint64_t request_seed(std::uint64_t base, std::uint64_t seq) noexcept {
  rng::SplitMix64 mix(base ^ ((seq + 1) * 0x9E3779B97F4A7C15ULL));
  return mix();
}

}  // namespace

ScoringService::ScoringService(DetectorEpoch initial_epoch, ServeConfig config)
    : config_(config), queue_(config.queue_capacity) {
  const std::size_t n_workers = runtime::resolve_workers(config_.num_workers);
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    // Per-worker injector: private stats and scratch; its generator is
    // re-anchored per request, so the initial stream here never scores.
    workers_.push_back(Worker{
        faultsim::FaultInjector(initial_epoch.error_rate, initial_epoch.distribution,
                                config_.seed),
        nn::ForwardScratch{}});
  }
  (void)install_epoch(std::move(initial_epoch));
  threads_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ScoringService::~ScoringService() {
  close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t ScoringService::install_epoch(DetectorEpoch epoch) {
  epoch.id = next_epoch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = epoch.id;
  slot_.install(std::make_shared<const DetectorEpoch>(std::move(epoch)));
  stats_.on_epoch_swap();
  return id;
}

SubmitStatus ScoringService::do_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                       std::optional<ServiceClock::time_point> deadline,
                                       bool blocking) {
  Request request;
  request.ticket = &ticket;
  request.features = &features;
  request.deadline = deadline.value_or(ServiceClock::time_point::max());
  request.enqueue_time = ServiceClock::now();
  // request.seq is stamped by the queue at admission (under its mutex),
  // so the k-th ACCEPTED request always carries seq k regardless of how
  // many submissions were shed in between — shedding patterns can never
  // perturb the fault stream of the requests that do get scored.
  // begin() must precede the push: once the request is in the ring a
  // worker may complete it at any moment, and a late reset would wipe the
  // result. On rejection no worker ever saw the request, so the ticket is
  // still exclusively ours and abort_submit() restores it to a completed,
  // immediately reusable state (outcome kPending, empty scores).
  ticket.begin();
  const SubmitStatus status = blocking ? queue_.push(request) : queue_.try_push(request);
  switch (status) {
    case SubmitStatus::kAccepted:
      stats_.on_enqueued();
      break;
    case SubmitStatus::kShed:
      ticket.abort_submit();
      stats_.on_shed();
      break;
    case SubmitStatus::kClosed:
      ticket.abort_submit();
      stats_.on_rejected_closed();
      break;
  }
  return status;
}

SubmitStatus ScoringService::submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                    std::optional<ServiceClock::time_point> deadline) {
  return do_submit(features, ticket, deadline, /*blocking=*/true);
}

SubmitStatus ScoringService::try_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                        std::optional<ServiceClock::time_point> deadline) {
  return do_submit(features, ticket, deadline, /*blocking=*/false);
}

std::vector<std::vector<double>> ScoringService::score_all(
    std::span<const trace::FeatureSet* const> batch) {
  std::vector<ScoreTicket> tickets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (submit(*batch[i], tickets[i]) != SubmitStatus::kAccepted) {
      // Already-submitted tickets complete (the queue drains on close);
      // wait for them so their Request pointers do not dangle.
      for (std::size_t j = 0; j < i; ++j) tickets[j].wait();
      throw std::runtime_error("ScoringService::score_all: service is closed");
    }
  }
  std::vector<std::vector<double>> scores(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    tickets[i].wait();
    scores[i] = std::move(tickets[i].scores_);
  }
  return scores;
}

std::vector<bool> ScoringService::detect_all(std::span<const trace::FeatureSet* const> batch) {
  std::vector<ScoreTicket> tickets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (submit(*batch[i], tickets[i]) != SubmitStatus::kAccepted) {
      for (std::size_t j = 0; j < i; ++j) tickets[j].wait();
      throw std::runtime_error("ScoringService::detect_all: service is closed");
    }
  }
  std::vector<bool> verdicts(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    tickets[i].wait();
    verdicts[i] = tickets[i].verdict();
  }
  return verdicts;
}

void ScoringService::close() {
  queue_.close();  // also overrides any pause, so the drain completes
}

void ScoringService::worker_loop(std::size_t w) {
  Worker& worker = workers_[w];
  Request request;
  while (queue_.pop(request)) {
    const std::shared_ptr<const DetectorEpoch> epoch = slot_.current();
    ScoreTicket& ticket = *request.ticket;
    const ServiceClock::time_point start = ServiceClock::now();
    ticket.epoch_id_ = epoch->id;
    if (start >= request.deadline) {
      ticket.latency_ = start - request.enqueue_time;
      stats_.on_deadline_missed();
      ticket.complete(RequestOutcome::kDeadlineMissed);
      continue;
    }
    faultsim::FaultInjector& injector = worker.injector;
    injector.set_error_rate(epoch->error_rate);
    injector.set_distribution(epoch->distribution);
    injector.generator() = rng::Xoshiro256ss(request_seed(config_.seed, request.seq));
    injector.reset_stats();  // per-request delta, attributed to this epoch below
    nn::FaultyContext ctx(injector);
    bool ok = true;
    try {
      const std::vector<std::vector<double>>& windows =
          request.features->windows(epoch->features);
      ticket.scores_.reserve(windows.size());
      for (const std::vector<double>& window : windows) {
        ticket.scores_.push_back(epoch->network.forward(window, ctx, worker.scratch)[0]);
      }
      ticket.verdict_ =
          hmd::fraction_vote(ticket.scores_, epoch->threshold, epoch->vote_fraction);
    } catch (...) {
      // A worker must outlive any single bad request (e.g. a feature set
      // missing the epoch's view). The ticket still completes — exactly
      // once — with kFailed.
      ticket.scores_.clear();
      ok = false;
    }
    const ServiceClock::time_point end = ServiceClock::now();
    ticket.latency_ = end - request.enqueue_time;
    if (ok) {
      stats_.on_scored(static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               end - request.enqueue_time)
                               .count()),
                       epoch->id, injector.stats());
      ticket.complete(RequestOutcome::kScored);
    } else {
      stats_.on_failed();
      ticket.complete(RequestOutcome::kFailed);
    }
  }
}

}  // namespace shmd::serve
