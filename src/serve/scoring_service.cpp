#include "serve/scoring_service.hpp"

#include <stdexcept>
#include <utility>

#include "hmd/detector.hpp"
#include "nn/arithmetic.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"
#include "runtime/thread_pool.hpp"

namespace shmd::serve {

namespace {

/// Deterministic per-request stream seed, so request k's fault stream is
/// a function of (seed, k) alone — never of which worker scored it. The
/// formula lives in rng::stream_seed because attack::InProcessOracle
/// replays it to predict the service bit-for-bit.
std::uint64_t request_seed(std::uint64_t base, std::uint64_t seq) noexcept {
  return rng::stream_seed(base, seq);
}

}  // namespace

ScoringService::ScoringService(DetectorEpoch initial_epoch, ServeConfig config)
    : config_(config),
      queue_(config.queue_capacity, admit::make_policy(config.admission_policy)),
      predictor_(config.ewma_alpha) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("ScoringService: max_batch must be >= 1");
  }
  const std::size_t n_workers = runtime::resolve_workers(config_.num_workers);
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    // Per-worker injector: private stats and scratch; its generator is
    // re-anchored per request, so the initial stream here never scores.
    workers_.push_back(Worker{
        faultsim::FaultInjector(initial_epoch.error_rate, initial_epoch.distribution,
                                config_.seed),
        nn::ForwardScratch{}});
  }
  (void)install_epoch(std::move(initial_epoch));
  threads_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ScoringService::~ScoringService() {
  close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t ScoringService::install_epoch(DetectorEpoch epoch) {
  epoch.id = next_epoch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = epoch.id;
  slot_.install(std::make_shared<const DetectorEpoch>(std::move(epoch)));
  stats_.on_epoch_swap();
  return id;
}

SubmitStatus ScoringService::do_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                       std::optional<ServiceClock::time_point> deadline,
                                       bool blocking) {
  Request request;
  request.ticket = &ticket;
  request.features = &features;
  request.deadline = deadline.value_or(ServiceClock::time_point::max());
  request.enqueue_time = ServiceClock::now();
  // request.seq is stamped by the queue at admission (under its mutex),
  // so the k-th ACCEPTED request always carries seq k regardless of how
  // many submissions were shed in between — shedding patterns can never
  // perturb the fault stream of the requests that do get scored.
  // begin() must precede the push: once the request is in the ring a
  // worker may complete it at any moment, and a late reset would wipe the
  // result. On rejection no worker ever saw the request, so the ticket is
  // still exclusively ours and abort_submit() restores it to a completed,
  // immediately reusable state (outcome kPending / kRejected, empty
  // scores).
  ticket.begin();
  // Admission control: a request whose deadline is unmeetable must not
  // occupy a ring slot. Two tiers — (1) already expired at submit: reject
  // unconditionally on both paths (the dequeue-time expiry check would
  // only rediscover this after the request wasted queue space); (2)
  // predicted-wait rejection on the non-blocking overload path: with
  // `depth` requests ahead and the workers' EWMA service time, the
  // request would come up for scoring past its deadline, so admitting it
  // trades a slot a viable request could use for a guaranteed miss.
  if (deadline.has_value()) {
    bool doomed = request.enqueue_time >= request.deadline;
    if (!doomed && !blocking && config_.reject_on_arrival) {
      const std::uint64_t predicted_ns =
          predictor_.predicted_wait_ns(queue_.size(), workers_.size());
      doomed = request.enqueue_time + std::chrono::nanoseconds(predicted_ns) >
               request.deadline;
    }
    if (doomed) {
      ticket.abort_submit(RequestOutcome::kRejected);
      stats_.on_rejected_admission();
      return SubmitStatus::kRejected;
    }
  }
  Request evicted;  // ticket stays null unless a drop-oldest policy fires
  const SubmitStatus status =
      blocking ? queue_.push(request) : queue_.try_push(request, &evicted);
  switch (status) {
    case SubmitStatus::kAccepted:
      stats_.on_enqueued();
      if (evicted.ticket != nullptr) {
        // The queue handed the displaced oldest request back to us; its
        // submitter may be wait()ing, so it completes here — exactly
        // once, as kRejected — with its queue wait recorded alongside the
        // expiry casualties.
        const ServiceClock::duration wait = request.enqueue_time - evicted.enqueue_time;
        evicted.ticket->latency_ = wait;
        stats_.on_evicted(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
        evicted.ticket->complete(RequestOutcome::kRejected);
      }
      break;
    case SubmitStatus::kShed:
      ticket.abort_submit();
      stats_.on_shed();
      break;
    case SubmitStatus::kClosed:
      ticket.abort_submit();
      stats_.on_rejected_closed();
      break;
    case SubmitStatus::kRejected:
      break;  // unreachable: rejection is decided above, not by the queue
  }
  return status;
}

SubmitStatus ScoringService::submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                    std::optional<ServiceClock::time_point> deadline) {
  return do_submit(features, ticket, deadline, /*blocking=*/true);
}

SubmitStatus ScoringService::try_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                                        std::optional<ServiceClock::time_point> deadline) {
  return do_submit(features, ticket, deadline, /*blocking=*/false);
}

std::vector<std::vector<double>> ScoringService::score_all(
    std::span<const trace::FeatureSet* const> batch) {
  std::vector<ScoreTicket> tickets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (submit(*batch[i], tickets[i]) != SubmitStatus::kAccepted) {
      // Already-submitted tickets complete (the queue drains on close);
      // wait for them so their Request pointers do not dangle.
      for (std::size_t j = 0; j < i; ++j) tickets[j].wait();
      throw std::runtime_error("ScoringService::score_all: service is closed");
    }
  }
  std::vector<std::vector<double>> scores(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    tickets[i].wait();
    scores[i] = std::move(tickets[i].scores_);
  }
  return scores;
}

std::vector<bool> ScoringService::detect_all(std::span<const trace::FeatureSet* const> batch) {
  std::vector<ScoreTicket> tickets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (submit(*batch[i], tickets[i]) != SubmitStatus::kAccepted) {
      for (std::size_t j = 0; j < i; ++j) tickets[j].wait();
      throw std::runtime_error("ScoringService::detect_all: service is closed");
    }
  }
  std::vector<bool> verdicts(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    tickets[i].wait();
    verdicts[i] = tickets[i].verdict();
  }
  return verdicts;
}

void ScoringService::close() {
  queue_.close();  // also overrides any pause, so the drain completes
}

void ScoringService::worker_loop(std::size_t w) {
  Worker& worker = workers_[w];
  // Per-batch scratch, reused across batches: the drained requests, the
  // windows-major tile their windows flatten into, and the per-request
  // row ranges within that tile. All grow to steady-state size once.
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  struct Pending {
    const Request* request;    ///< element of `batch`
    std::size_t row_begin;     ///< first tile row of this request's windows
    std::size_t rows;          ///< number of windows
  };
  std::vector<Pending> pending;
  pending.reserve(config_.max_batch);
  std::vector<double> tile;
  while (queue_.pop_batch(batch, config_.max_batch) > 0) {
    // One epoch load and (at most) one injector reconfiguration per
    // tile: every request drained together scores under one coherent
    // operating point — requests dequeued after a swap score under the
    // new epoch, exactly as in the unbatched path.
    const std::shared_ptr<const DetectorEpoch> epoch = slot_.current();
    faultsim::FaultInjector& injector = worker.injector;
    if (worker.configured_epoch != epoch->id) {
      injector.set_error_rate(epoch->error_rate);
      injector.set_distribution(epoch->distribution);
      worker.configured_epoch = epoch->id;
    }
    const std::size_t in_dim = epoch->network.input_dim();
    const std::size_t out_dim = epoch->network.output_dim();
    // Phase 1 — admission triage and tile build: expire requests whose
    // deadline passed in the queue, flatten survivors' windows into the
    // tile, and fail (without killing the worker or the rest of the
    // batch) any request whose feature set violates the epoch's contract.
    pending.clear();
    tile.clear();
    for (const Request& request : batch) {
      ScoreTicket& ticket = *request.ticket;
      ticket.epoch_id_ = epoch->id;
      ticket.threshold_ = epoch->threshold;
      const ServiceClock::time_point start = ServiceClock::now();
      if (start >= request.deadline) {
        const ServiceClock::duration wait = start - request.enqueue_time;
        ticket.latency_ = wait;
        stats_.on_deadline_missed(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
        ticket.complete(RequestOutcome::kDeadlineMissed);
        continue;
      }
      const std::size_t row_begin = tile.size() / in_dim;
      try {
        const std::vector<std::vector<double>>& windows =
            request.features->windows(epoch->features);
        for (const std::vector<double>& window : windows) {
          if (window.size() != in_dim) {
            throw std::invalid_argument("window width != network input width");
          }
          tile.insert(tile.end(), window.begin(), window.end());
        }
        pending.push_back(Pending{&request, row_begin, windows.size()});
      } catch (...) {
        tile.resize(row_begin * in_dim);  // discard any partial flatten
        ticket.scores_.clear();
        ticket.latency_ = ServiceClock::now() - request.enqueue_time;
        stats_.on_failed();
        ticket.complete(RequestOutcome::kFailed);
      }
    }
    // Phase 2 — score each surviving request's sub-tile. Requests stay
    // contiguous and are scored in admission order; the injector stream
    // is re-anchored from (seed, seq) at each request boundary, so every
    // request's fault stream — and therefore its scores — is bit-identical
    // to the unbatched path regardless of which requests share its tile.
    nn::FaultyContext ctx(injector);
    // Service-time marker for the WaitPredictor: each request's share is
    // the gap between consecutive completion timestamps (the first gap
    // also absorbs this batch's triage + reconfig cost — which is honest,
    // since an arriving request waits behind that too). Reuses the `end`
    // clock read each iteration already makes.
    ServiceClock::time_point service_mark = ServiceClock::now();
    for (const Pending& p : pending) {
      const Request& request = *p.request;
      ScoreTicket& ticket = *request.ticket;
      injector.generator() = rng::Xoshiro256ss(request_seed(config_.seed, request.seq));
      injector.reset_stats();  // per-request delta, attributed to this epoch below
      bool ok = true;
      try {
        const std::span<const double> in(tile.data() + p.row_begin * in_dim, p.rows * in_dim);
        const std::span<const double> out =
            epoch->network.forward_batch(in, p.rows, ctx, worker.scratch);
        ticket.scores_.resize(p.rows);
        for (std::size_t r = 0; r < p.rows; ++r) ticket.scores_[r] = out[r * out_dim];
        ticket.verdict_ =
            hmd::fraction_vote(ticket.scores_, epoch->threshold, epoch->vote_fraction);
      } catch (...) {
        // A worker must outlive any single bad request. The ticket still
        // completes — exactly once — with kFailed.
        ticket.scores_.clear();
        ok = false;
      }
      const ServiceClock::time_point end = ServiceClock::now();
      ticket.latency_ = end - request.enqueue_time;
      predictor_.record_service_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - service_mark).count()));
      service_mark = end;
      if (ok) {
        // A request that finishes past its deadline still returns its
        // scores (the work is done), but counts against goodput.
        const bool late = end > request.deadline;
        stats_.on_scored(static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 end - request.enqueue_time)
                                 .count()),
                         epoch->id, injector.stats(), late);
        // Decision-only traffic is the attack surface: count it against
        // the operating point that answered, so the defender can read
        // hostile query volume per epoch off the snapshot.
        if (ticket.decision_only_) stats_.on_verdict_query(epoch->id);
        ticket.complete(RequestOutcome::kScored);
      } else {
        stats_.on_failed();
        ticket.complete(RequestOutcome::kFailed);
      }
    }
  }
}

}  // namespace shmd::serve
