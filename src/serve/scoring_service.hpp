// ScoringService: the always-on scoring front-end of the repository.
//
// The paper's deployment (§I, §IX) is a dedicated undervolted core that
// re-classifies every running program each detection round. The batch
// runtime (runtime::BatchScorer) models one such round as a fork/join over
// a frozen workload; this service models the *steady state* — a continuous
// stream of scoring requests from monitors, benches, and (eventually)
// network front-ends, flowing through a bounded ring into a resident
// worker pool, while the stochastic boundary re-rolls underneath via
// epoch swaps (epoch.hpp).
//
// Determinism contract — stronger than BatchScorer's. BatchScorer pins
// worker w to a fixed slice and a jump()-derived stream, so (seed, worker
// count) reproduces scores. Through an MPMC queue that scheme breaks:
// which worker dequeues which request is a race, so any *worker*-anchored
// stream makes scores depend on scheduling. The service therefore anchors
// fault streams to the REQUEST: each accepted request gets a sequence
// number, and the worker that scores it re-seeds its private injector
// from splitmix(seed, seq) before the forward passes. Result: a fixed
// seed reproduces bit-identical scores for the k-th accepted request
// under ANY worker count and any scheduling — (seed, worker count)
// reproducibility, as required, plus worker-count independence for free.
// Workers still own a private FaultInjector and ForwardScratch each (no
// sharing, no locks on the scoring path, zero steady-state allocation in
// the forward pass).
//
// Overload discipline: the ring is bounded; try_submit() sheds with
// kShed instead of queueing unboundedly (a request flood must not be able
// to starve the detector — see request_queue.hpp), and every request
// carries an optional absolute deadline checked at dequeue. On top of
// that sits deadline-aware admission (src/admit/): try_submit rejects on
// arrival (kRejected) when the deadline is already unmeetable — expired
// at submit, or the WaitPredictor's estimated queue wait exceeds the
// remaining budget — so doomed requests never occupy a ring slot; and the
// configured AdmissionPolicy decides overflow behavior (shed newcomer /
// evict oldest) and dequeue order (FIFO / LIFO-under-overload).
// ServiceStats accounts each submission as exactly one of scored / shed /
// rejected / deadline-missed / evicted (plus a failed counter that stays
// zero unless a caller violates the feature-set contract), and scored
// splits into on-time and late so goodput — scored within deadline — is
// first-class.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "admit/policy.hpp"
#include "admit/wait_predictor.hpp"
#include "faultsim/fault_injector.hpp"
#include "nn/network.hpp"
#include "serve/epoch.hpp"
#include "serve/request_queue.hpp"
#include "serve/service_stats.hpp"
#include "trace/dataset.hpp"

namespace shmd::serve {

struct ServeConfig {
  /// Scoring worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_workers = 0;
  /// Ring capacity; submissions beyond it block (submit) or shed
  /// (try_submit).
  std::size_t queue_capacity = 1024;
  /// Base seed for the per-request fault streams.
  std::uint64_t seed = 0x5E7F1CEULL;
  /// Upper bound on how many queued requests one worker drains and scores
  /// per queue round-trip (cross-request batching: one lock acquisition,
  /// one epoch load, one injector reconfiguration per tile). Batching
  /// never delays a lone request — a batch pop returns with whatever is
  /// queued — and never changes scores: per-request fault streams are
  /// re-anchored at request boundaries within the tile, so results are
  /// bit-identical for any max_batch. Must be >= 1.
  std::size_t max_batch = 16;
  /// Overload policy installed on the queue (see admit::AdmissionPolicy).
  /// Every policy preserves the determinism contract.
  admit::PolicyKind admission_policy = admit::PolicyKind::kFifo;
  /// When true, try_submit with a deadline returns kRejected if the
  /// WaitPredictor's estimated queue wait already exceeds the deadline
  /// budget (reject-on-arrival). Requests without a deadline are never
  /// rejected this way.
  bool reject_on_arrival = true;
  /// EWMA smoothing factor for the per-request service-time estimate.
  double ewma_alpha = 0.1;
};

/// Terminal disposition of an accepted request.
enum class RequestOutcome : std::uint8_t {
  kPending,         ///< not yet completed (in queue or being scored)
  kScored,          ///< scored under the epoch recorded in epoch_id()
  kDeadlineMissed,  ///< expired in the queue; never scored
  kFailed,          ///< scoring threw (e.g. feature set lacks the epoch's view)
  kRejected,        ///< turned away by admission control (unmeetable deadline
                    ///< at submit) or evicted by a drop-oldest overflow policy;
                    ///< never scored
};

/// Caller-owned completion slot for one request. Submit it, wait() (or
/// poll done()), read the results; the same ticket can then be submitted
/// again — its score buffer keeps its capacity, so a monitor that reuses
/// tickets round after round allocates nothing in steady state. A ticket
/// must stay alive and unmoved from submission until done() — it is
/// neither copyable nor movable to make the aliasing contract explicit.
class ScoreTicket {
 public:
  ScoreTicket() = default;
  ScoreTicket(const ScoreTicket&) = delete;
  ScoreTicket& operator=(const ScoreTicket&) = delete;

  /// Push-style completion for event-loop callers (the network front-end):
  /// `hook(arg)` fires on the completing thread every time the ticket
  /// transitions to done — after a worker finishes the request AND after a
  /// rejected submission. It runs strictly after the done-notification, so
  /// a reactor woken by the hook may free the ticket without racing the
  /// worker's notify; a caller that does so must not also wait() on the
  /// ticket from another thread. The hook must be noexcept and cheap (it
  /// runs on the scoring worker); it survives begin(), so set it once per
  /// ticket lifetime. Set before submitting — never while a submission is
  /// in flight.
  using CompletionHook = void (*)(void*) noexcept;
  void set_completion_hook(CompletionHook hook, void* arg) noexcept {
    hook_ = hook;
    hook_arg_ = arg;
  }

  /// Block until no submission is in flight. A fresh ticket (and one
  /// whose submission was rejected) is already done with outcome
  /// kPending, so wait() only ever blocks on an accepted submission —
  /// ticket pools can wait() unconditionally before reuse.
  void wait() const noexcept {
    // C++20 atomic wait: futex-backed, no per-ticket mutex.
    done_.wait(false, std::memory_order_acquire);
  }
  [[nodiscard]] bool done() const noexcept { return done_.load(std::memory_order_acquire); }

  // Results — meaningful only once done() is true.
  [[nodiscard]] RequestOutcome outcome() const noexcept { return outcome_; }
  /// Per-window live scores (empty unless outcome() == kScored).
  [[nodiscard]] const std::vector<double>& scores() const noexcept { return scores_; }
  /// fraction_vote verdict under the scoring epoch's threshold.
  [[nodiscard]] bool verdict() const noexcept { return verdict_; }
  /// Epoch that completed this request (DetectorEpoch::id).
  [[nodiscard]] std::uint64_t epoch_id() const noexcept { return epoch_id_; }
  /// The scoring epoch's decision threshold, stamped by the worker — how
  /// a decision-only front-end turns scores() into per-window decisions
  /// without being told the (defender-private) operating point.
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  /// Enqueue→completion time.
  [[nodiscard]] std::chrono::nanoseconds latency() const noexcept { return latency_; }

  /// Mark this ticket's submissions as decision-only queries (kVerdict
  /// traffic): the service counts them per epoch in ServiceStats so a
  /// defender can see hostile query volume per operating point. Like the
  /// completion hook this survives begin() — set once per ticket
  /// lifetime, before submitting.
  void set_decision_only(bool decision_only) noexcept { decision_only_ = decision_only; }
  [[nodiscard]] bool decision_only() const noexcept { return decision_only_; }

 private:
  friend class ScoringService;

  void begin() noexcept {
    outcome_ = RequestOutcome::kPending;
    scores_.clear();  // capacity retained: steady-state reuse allocates nothing
    verdict_ = false;
    epoch_id_ = 0;
    threshold_ = 0.5;
    latency_ = std::chrono::nanoseconds{0};
    done_.store(false, std::memory_order_relaxed);
  }
  void complete(RequestOutcome outcome) noexcept {
    // Copy the hook out BEFORE publishing done_: the instant the store
    // lands, a wait()ing owner may destroy the ticket, so no member may
    // be touched past this line. (notify_all is safe on the published
    // atomic: libstdc++ keys its waiter table by address.)
    const CompletionHook hook = hook_;
    void* const hook_arg = hook_arg_;
    outcome_ = outcome;
    done_.store(true, std::memory_order_release);
    done_.notify_all();
    if (hook != nullptr) hook(hook_arg);
  }
  /// Undo begin() after a rejected submission (no worker ever saw the
  /// request): the ticket is done() again — with outcome kPending for a
  /// shed/closed rejection (nothing decided about the request itself), or
  /// kRejected when admission control turned it away — so rejected
  /// tickets can be resubmitted and never hang a wait().
  void abort_submit(RequestOutcome outcome = RequestOutcome::kPending) noexcept {
    const CompletionHook hook = hook_;  // same discipline as complete()
    void* const hook_arg = hook_arg_;
    outcome_ = outcome;
    done_.store(true, std::memory_order_release);
    done_.notify_all();
    if (hook != nullptr) hook(hook_arg);
  }

  std::vector<double> scores_;
  std::chrono::nanoseconds latency_{0};
  std::uint64_t epoch_id_ = 0;
  double threshold_ = 0.5;
  bool verdict_ = false;
  RequestOutcome outcome_ = RequestOutcome::kPending;
  std::atomic<bool> done_{true};  // fresh = done-with-no-result; begin() arms it
  CompletionHook hook_ = nullptr;  // survives begin(): per-lifetime, not per-submit
  void* hook_arg_ = nullptr;
  bool decision_only_ = false;  // survives begin(), like the hook
};

class ScoringService {
 public:
  /// Starts the worker pool and installs `initial_epoch` (stamped as
  /// epoch 1).
  explicit ScoringService(DetectorEpoch initial_epoch, ServeConfig config = {});
  ~ScoringService();  ///< close(), drain, join

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  // -- reconfiguration (the moving-target control plane) -------------------

  /// Atomically publish a new operating point; returns the stamped epoch
  /// id. In-flight requests finish under the epoch they started with;
  /// requests dequeued after the swap score under the new one. Never
  /// blocks scoring.
  std::uint64_t install_epoch(DetectorEpoch epoch);
  [[nodiscard]] std::shared_ptr<const DetectorEpoch> current_epoch() const {
    return slot_.current();
  }

  // -- request plane -------------------------------------------------------

  /// Blocking submission: waits for ring space. The ticket and feature
  /// set must outlive completion. Returns kClosed after close().
  SubmitStatus submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                      std::optional<ServiceClock::time_point> deadline = std::nullopt);

  /// Non-blocking submission: kShed when the ring is full (or, under a
  /// drop-oldest policy, the OLDEST queued request is evicted to admit
  /// this one), kRejected when the deadline is unmeetable on arrival —
  /// the overload-control path. A shed ticket is done() with outcome
  /// kPending, an admission-rejected one with kRejected; either may be
  /// resubmitted immediately.
  SubmitStatus try_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                          std::optional<ServiceClock::time_point> deadline = std::nullopt);

  /// Closed-loop convenience: submit every item, wait for all, return
  /// per-item window scores (the queue-path analogue of
  /// BatchScorer::score_batch). Throws std::runtime_error if the service
  /// is closed.
  [[nodiscard]] std::vector<std::vector<double>> score_all(
      std::span<const trace::FeatureSet* const> batch);
  /// Same, but per-item verdicts under the scoring epoch's threshold.
  [[nodiscard]] std::vector<bool> detect_all(std::span<const trace::FeatureSet* const> batch);

  // -- lifecycle -----------------------------------------------------------

  /// Hold the workers (accepted requests stay queued; producers see the
  /// ring fill). resume() releases them. close() overrides a pause.
  void pause() { queue_.set_paused(true); }
  void resume() { queue_.set_paused(false); }

  /// Stop accepting requests; already-accepted ones still drain (each is
  /// completed as scored / deadline-missed, never dropped). Idempotent.
  void close();

  // -- observability -------------------------------------------------------

  [[nodiscard]] ServiceStatsSnapshot stats() const { return stats_.snapshot(); }
  [[nodiscard]] std::size_t num_workers() const noexcept { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept { return queue_.capacity(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// The admission plane's service-time estimator (read-only outside the
  /// workers; exposed for observability and tests).
  [[nodiscard]] const admit::WaitPredictor& wait_predictor() const noexcept {
    return predictor_;
  }
  /// Account one transport-level fair-share throttle rejection (called by
  /// the network front-end so the snapshot a remote client reads includes
  /// throttling — net sits above serve in the layering DAG).
  void record_throttled() noexcept { stats_.on_throttled(); }

 private:
  struct Worker {
    faultsim::FaultInjector injector;
    nn::ForwardScratch scratch;
    /// Epoch id the injector was last configured for: reconfiguration
    /// (error rate + alias-table copy) happens per epoch *change*, not
    /// per request. 0 matches no epoch (install_epoch stamps from 1).
    std::uint64_t configured_epoch = 0;
  };

  SubmitStatus do_submit(const trace::FeatureSet& features, ScoreTicket& ticket,
                         std::optional<ServiceClock::time_point> deadline, bool blocking);
  void worker_loop(std::size_t w);

  ServeConfig config_;
  RequestQueue queue_;
  EpochSlot slot_;
  ServiceStats stats_;
  admit::WaitPredictor predictor_;
  std::atomic<std::uint64_t> next_epoch_id_{0};
  std::vector<Worker> workers_;      ///< sized once; never reallocated while serving
  std::vector<std::thread> threads_;
};

}  // namespace shmd::serve
