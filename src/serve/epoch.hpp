// DetectorEpoch: one detection round's frozen operating point, and the
// RCU-style slot that swaps it under live traffic.
//
// The paper's deployment (§I, §IX) is a *moving target*: between detection
// rounds the defender re-rolls the stochastic boundary — a new undervolt
// offset from the thermal governor, a re-explored error rate, or a whole
// new network from a hot-reloaded DeploymentBundle. An always-on service
// cannot stop the world for any of that. The epoch mechanism makes
// reconfiguration wait-free for the scoring path:
//
//   * a DetectorEpoch is an immutable value — network weights, feature
//     config, error rate, undervolt offset, decision threshold — built
//     off to the side at nominal cost;
//   * EpochSlot::install() publishes it with one shared_ptr swap;
//   * each request loads the slot ONCE at scoring time and runs entirely
//     against that snapshot. In-flight requests keep their epoch alive by
//     refcount, so a swap can neither stall them (no reader lock is held
//     across inference) nor tear them (no request ever sees half of two
//     epochs).
#pragma once

#include <cstdint>
#include <memory>

#include "faultsim/bit_fault_distribution.hpp"
#include "hmd/deployment.hpp"
#include "hmd/detector.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/network.hpp"
#include "trace/dataset.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "volt/volt_fault_model.hpp"

namespace shmd::serve {

/// Immutable operating-point snapshot for one detection epoch. The id is
/// stamped by ScoringService::install_epoch (0 = not yet installed) and
/// keys the per-epoch fault statistics in ServiceStats.
struct DetectorEpoch {
  std::uint64_t id = 0;
  nn::Network network;
  trace::FeatureConfig features;
  /// Per-product fault probability (the paper's er knob) for this round.
  double error_rate = 0.0;
  /// Undervolt offset (mV, negative) behind `error_rate` — informational
  /// in simulation, the actual rail programming in a real deployment.
  double offset_mv = 0.0;
  double threshold = 0.5;
  double vote_fraction = hmd::Detector::kDefaultVoteFraction;
  faultsim::BitFaultDistribution distribution = faultsim::BitFaultDistribution::measured();
};

/// Snapshot the operating point of an existing detector (direct-er mode):
/// the service then serves the same boundary the serial detector would.
[[nodiscard]] DetectorEpoch make_epoch(const hmd::StochasticHmd& detector,
                                       double threshold = 0.5,
                                       double vote_fraction = hmd::Detector::kDefaultVoteFraction);

/// Build an epoch from a deployment bundle at die temperature `temp_c`:
/// the offset comes from the bundle's calibration table, and the error
/// rate from `model` at that (offset, temperature) when given — the
/// voltage-driven path — or from the bundle's space-explored target when
/// not. This is the hot-reload entry point: load_deployment() + this +
/// install_epoch() re-points live traffic at a new artifact.
[[nodiscard]] DetectorEpoch make_epoch(const hmd::DeploymentBundle& bundle, double temp_c,
                                       const volt::VoltFaultModel* model = nullptr);

/// RCU-style publication slot: install() publishes a new epoch with one
/// pointer swap; current() hands a reader its own reference. Neither ever
/// holds the lock across anything heavier than a refcount operation, so
/// a swap cannot stall scoring. Readers that obtained a snapshot before
/// an install keep using — and keep alive — the old epoch until they
/// drop it.
class EpochSlot {
 public:
  void install(std::shared_ptr<const DetectorEpoch> epoch) {
    const util::MutexLock lock(mu_);
    epoch_ = std::move(epoch);
  }

  [[nodiscard]] std::shared_ptr<const DetectorEpoch> current() const {
    const util::MutexLock lock(mu_);
    return epoch_;
  }

 private:
  // A mutex rather than std::atomic<std::shared_ptr>: the lock covers one
  // refcount operation (~ns), is immune to the libstdc++ spinlock's TSan
  // blind spots, and keeps the swap semantics obvious. Contention is one
  // load per *request*, not per MAC.
  mutable util::Mutex mu_;
  std::shared_ptr<const DetectorEpoch> epoch_ SHMD_GUARDED_BY(mu_);
};

}  // namespace shmd::serve
