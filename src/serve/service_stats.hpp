// ServiceStats: the observability surface of the always-on scoring
// service.
//
// A serving layer that sheds load must be able to prove it never *loses*
// load: every request a client hands to the service is accounted for as
// exactly one of scored / shed / deadline-missed. The counters here are
// lock-free atomics bumped on the hot path; the latency histogram uses
// power-of-two nanosecond buckets so recording is one CLZ plus one atomic
// increment; only the per-epoch fault-statistics map takes a mutex (one
// short merge per completed request). `snapshot()` returns a plain value
// type, so readers never observe half-updated state and monitoring code
// can diff snapshots across rounds.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "faultsim/fault_injector.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace shmd::serve {

/// Fixed log₂-bucketed latency histogram: bucket b counts samples in
/// [2^b, 2^(b+1)) nanoseconds (bucket 0 additionally absorbs 0 ns). 48
/// buckets cover ~78 hours, far beyond any plausible request latency.
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 48;
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;

  /// Latency (ns) at quantile `q` in [0, 1]: the geometric midpoint
  /// 2^(b+0.5) of the first bucket whose cumulative count reaches
  /// q * total — the unbiased point estimate under a log-uniform
  /// within-bucket assumption. (The upper edge overstated every quantile
  /// by up to 2x: bucket 0 reported 2 ns for sub-nanosecond samples.)
  /// Returns 0 when the histogram is empty.
  [[nodiscard]] double quantile_ns(double q) const noexcept;
  [[nodiscard]] double p50_ns() const noexcept { return quantile_ns(0.50); }
  [[nodiscard]] double p99_ns() const noexcept { return quantile_ns(0.99); }

  friend bool operator==(const LatencyHistogram&, const LatencyHistogram&) = default;
};

/// One coherent read of the service's counters (see ServiceStats).
struct ServiceStatsSnapshot {
  std::uint64_t enqueued = 0;         ///< requests accepted into the ring
  std::uint64_t shed = 0;             ///< try_submit rejections (queue full)
  std::uint64_t rejected_closed = 0;  ///< submissions after close()
  std::uint64_t scored = 0;           ///< completed with a verdict
  std::uint64_t deadline_missed = 0;  ///< expired in the queue, never scored
  std::uint64_t failed = 0;           ///< scoring threw (contract violation by caller)
  std::uint64_t epoch_swaps = 0;      ///< install_epoch() calls
  std::uint64_t verdict_queries = 0;  ///< decision-only (kVerdict) requests scored
  /// Admission-control rejections at the door (deadline already expired
  /// at submit, or predicted queue wait exceeds the deadline budget).
  /// Like `shed`, these were never enqueued — reported separately from
  /// the accounting identity.
  std::uint64_t rejected_on_admission = 0;
  /// Admitted requests dropped by a drop-oldest overflow policy. A
  /// terminal disposition of an ENQUEUED request, so it participates in
  /// in_flight() alongside scored/deadline_missed/failed.
  std::uint64_t evicted = 0;
  /// Subset of `scored` that completed AFTER the request's deadline —
  /// work the service did but the client could no longer use. Goodput
  /// (the headline serving metric) is scored - scored_late.
  std::uint64_t scored_late = 0;
  /// Fair-share throttle rejections at the transport (kThrottled Error
  /// frames sent by NetServer). Transport-level like `shed`: never
  /// enqueued, reported separately.
  std::uint64_t throttled = 0;
  LatencyHistogram latency;           ///< enqueue→completion, scored only
  /// Queue-wait of deadline-missed requests (enqueue→expiry-detection).
  /// Kept separate from `latency` so scored-path quantiles stay
  /// survivor-only, while overload analysis still sees how long the
  /// expired requests sat — before this histogram, missed requests left
  /// no latency trace at all and overload p50/p99 reflected survivors.
  LatencyHistogram missed_wait;
  /// Fault statistics per detector epoch (keyed by DetectorEpoch::id) —
  /// the serving-layer equivalent of StochasticHmd::fault_stats(), split
  /// at reconfiguration boundaries. Bounded: only the most recent
  /// ServiceStats::kMaxTrackedEpochs epochs are listed individually;
  /// older ones are folded into `folded_faults` so a long-lived service
  /// re-rolling epochs every few hundred milliseconds cannot grow this
  /// map (and the serialized Stats payload) without bound.
  std::map<std::uint64_t, faultsim::FaultStats> per_epoch_faults;
  faultsim::FaultStats folded_faults;  ///< aggregate of epochs aged out of the map
  std::uint64_t folded_epochs = 0;     ///< how many epochs were folded
  /// Decision-only query volume per detector epoch — the defender-side
  /// view of a black-box adversary's probing: how many kVerdict requests
  /// each operating point answered before it was rotated away. Bounded
  /// exactly like per_epoch_faults; aged-out epochs fold into
  /// `folded_verdict_queries` so no query is ever lost from the total.
  std::map<std::uint64_t, std::uint64_t> per_epoch_verdicts;
  std::uint64_t folded_verdict_queries = 0;  ///< verdict queries aged out of the map

  /// Requests accepted but not yet terminal (0 once the service drains).
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return enqueued - scored - deadline_missed - failed - evicted;
  }

  /// Requests scored within their deadline — the headline serving metric
  /// under overload (raw `scored` counts work; goodput counts USEFUL
  /// work).
  [[nodiscard]] std::uint64_t goodput() const noexcept { return scored - scored_late; }

  friend bool operator==(const ServiceStatsSnapshot&, const ServiceStatsSnapshot&) = default;
};

/// Compact fixed-width little-endian serialization of a snapshot — the
/// payload of the network Stats frame, so a remote client reads the same
/// accounting a local caller would. The layout is versioned (one leading
/// format byte); deserialize_snapshot rejects unknown versions and
/// truncated or trailing-garbage buffers with nullopt, never UB.
[[nodiscard]] std::vector<std::uint8_t> serialize(const ServiceStatsSnapshot& snap);
[[nodiscard]] std::optional<ServiceStatsSnapshot> deserialize_snapshot(
    std::span<const std::uint8_t> bytes);

/// Live, thread-safe counter block owned by the ScoringService.
class ServiceStats {
 public:
  /// Oldest epochs beyond this count fold into an aggregate (see
  /// ServiceStatsSnapshot::folded_faults). 256 × ~536 wire bytes keeps a
  /// worst-case serialized snapshot near 140 KiB, comfortably inside the
  /// frame layer's 1 MiB default payload limit.
  static constexpr std::size_t kMaxTrackedEpochs = 256;

  void on_enqueued() noexcept { enqueued_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed() noexcept { shed_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_closed() noexcept {
    rejected_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Record one deadline miss, with how long the request waited in the
  /// queue before a worker found it expired.
  void on_deadline_missed(std::uint64_t wait_ns) noexcept;
  void on_failed() noexcept { failed_.fetch_add(1, std::memory_order_relaxed); }
  void on_epoch_swap() noexcept { epoch_swaps_.fetch_add(1, std::memory_order_relaxed); }
  /// Admission-control rejection at the door (never enqueued).
  void on_rejected_admission() noexcept {
    rejected_on_admission_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Drop-oldest eviction of an admitted request, with how long the
  /// victim waited before being displaced (recorded into the missed-wait
  /// histogram: evictions and expiries are both queue-wait casualties).
  void on_evicted(std::uint64_t wait_ns) noexcept;
  /// Transport fair-share throttle rejection (kThrottled Error frame).
  void on_throttled() noexcept { throttled_.fetch_add(1, std::memory_order_relaxed); }

  /// Record one completed scoring: latency plus the request's fault-stat
  /// delta attributed to the epoch that scored it. `late` marks a request
  /// that completed past its deadline (counts against goodput).
  void on_scored(std::uint64_t latency_ns, std::uint64_t epoch_id,
                 const faultsim::FaultStats& faults, bool late = false);

  /// Record one decision-only (kVerdict) request, attributed to the epoch
  /// that answered it. Called in addition to on_scored for such requests.
  void on_verdict_query(std::uint64_t epoch_id);

  [[nodiscard]] ServiceStatsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_closed_{0};
  std::atomic<std::uint64_t> scored_{0};
  std::atomic<std::uint64_t> deadline_missed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> epoch_swaps_{0};
  std::atomic<std::uint64_t> verdict_queries_{0};
  std::atomic<std::uint64_t> rejected_on_admission_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> scored_late_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets> latency_buckets_{};
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets> missed_wait_buckets_{};
  mutable util::Mutex faults_mu_;
  std::map<std::uint64_t, faultsim::FaultStats> per_epoch_faults_ SHMD_GUARDED_BY(faults_mu_);
  /// Aged-out epochs, aggregated.
  faultsim::FaultStats folded_faults_ SHMD_GUARDED_BY(faults_mu_);
  std::uint64_t folded_epochs_ SHMD_GUARDED_BY(faults_mu_) = 0;
  std::map<std::uint64_t, std::uint64_t> per_epoch_verdicts_ SHMD_GUARDED_BY(faults_mu_);
  std::uint64_t folded_verdict_queries_ SHMD_GUARDED_BY(faults_mu_) = 0;
};

}  // namespace shmd::serve
