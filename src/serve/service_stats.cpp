#include "serve/service_stats.hpp"

#include <bit>
#include <cmath>

namespace shmd::serve {

namespace {

std::size_t bucket_of(std::uint64_t ns) noexcept {
  if (ns == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(ns)) - 1;
  return b < LatencyHistogram::kBuckets ? b : LatencyHistogram::kBuckets - 1;
}

}  // namespace

double LatencyHistogram::quantile_ns(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += static_cast<double>(counts[b]);
    if (cumulative >= target && counts[b] > 0) {
      // Geometric midpoint of [2^b, 2^(b+1)): sqrt(2^b * 2^(b+1)).
      return std::exp2(static_cast<double>(b) + 0.5);
    }
  }
  return std::exp2(static_cast<double>(kBuckets) - 0.5);
}

void ServiceStats::on_deadline_missed(std::uint64_t wait_ns) noexcept {
  deadline_missed_.fetch_add(1, std::memory_order_relaxed);
  missed_wait_buckets_[bucket_of(wait_ns)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::on_evicted(std::uint64_t wait_ns) noexcept {
  evicted_.fetch_add(1, std::memory_order_relaxed);
  missed_wait_buckets_[bucket_of(wait_ns)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::on_scored(std::uint64_t latency_ns, std::uint64_t epoch_id,
                             const faultsim::FaultStats& faults, bool late) {
  // scored_ is bumped BEFORE scored_late_ and snapshot() reads them in
  // the opposite order, so goodput() (scored - scored_late) never
  // underflows — same discipline as enqueued_ vs the terminal counters.
  scored_.fetch_add(1, std::memory_order_relaxed);
  if (late) scored_late_.fetch_add(1, std::memory_order_relaxed);
  latency_buckets_[bucket_of(latency_ns)].fetch_add(1, std::memory_order_relaxed);
  const util::MutexLock lock(faults_mu_);
  per_epoch_faults_[epoch_id].merge(faults);
  // Bound the map: a moving-target service re-rolls epochs indefinitely,
  // so without aging this grows (and the serialized Stats payload with
  // it) until snapshots blow the frame payload limit. Fold the oldest
  // epochs into the aggregate; no fault count is ever lost.
  while (per_epoch_faults_.size() > kMaxTrackedEpochs) {
    const auto oldest = per_epoch_faults_.begin();
    folded_faults_.merge(oldest->second);
    ++folded_epochs_;
    per_epoch_faults_.erase(oldest);
  }
}

void ServiceStats::on_verdict_query(std::uint64_t epoch_id) {
  verdict_queries_.fetch_add(1, std::memory_order_relaxed);
  const util::MutexLock lock(faults_mu_);
  ++per_epoch_verdicts_[epoch_id];
  // Same aging discipline as the fault map: the total survives folding.
  while (per_epoch_verdicts_.size() > kMaxTrackedEpochs) {
    const auto oldest = per_epoch_verdicts_.begin();
    folded_verdict_queries_ += oldest->second;
    per_epoch_verdicts_.erase(oldest);
  }
}

namespace {

// Explicit little-endian byte encoding: the wire format must not depend
// on host endianness or struct layout.
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[offset + i]} << (8 * i);
  return v;
}

constexpr std::uint8_t kSnapshotFormat = 5;  // v5: admission-control counters
                                             // (rejected_on_admission, evicted,
                                             // scored_late, throttled); v4 added
                                             // the verdict-query counter + map
constexpr std::size_t kCounterWords = 12;
constexpr std::size_t kFaultStatsWords =
    2 + static_cast<std::size_t>(faultsim::BitFaultDistribution::kBits);
constexpr std::size_t kEpochEntryWords = 1 + kFaultStatsWords;

}  // namespace

std::vector<std::uint8_t> serialize(const ServiceStatsSnapshot& snap) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 * (kCounterWords + 1 + kFaultStatsWords + 1 + 2 * LatencyHistogram::kBuckets +
                       kEpochEntryWords * snap.per_epoch_faults.size() + 2 +
                       2 * snap.per_epoch_verdicts.size()));
  out.push_back(kSnapshotFormat);
  put_u64(out, snap.enqueued);
  put_u64(out, snap.shed);
  put_u64(out, snap.rejected_closed);
  put_u64(out, snap.scored);
  put_u64(out, snap.deadline_missed);
  put_u64(out, snap.failed);
  put_u64(out, snap.epoch_swaps);
  put_u64(out, snap.verdict_queries);
  put_u64(out, snap.rejected_on_admission);
  put_u64(out, snap.evicted);
  put_u64(out, snap.scored_late);
  put_u64(out, snap.throttled);
  for (const std::uint64_t count : snap.latency.counts) put_u64(out, count);
  for (const std::uint64_t count : snap.missed_wait.counts) put_u64(out, count);
  put_u64(out, snap.folded_epochs);
  put_u64(out, snap.folded_faults.operations);
  put_u64(out, snap.folded_faults.faults);
  for (const std::uint64_t flips : snap.folded_faults.bit_flips) put_u64(out, flips);
  put_u64(out, snap.per_epoch_faults.size());
  for (const auto& [epoch_id, faults] : snap.per_epoch_faults) {
    put_u64(out, epoch_id);
    put_u64(out, faults.operations);
    put_u64(out, faults.faults);
    for (const std::uint64_t flips : faults.bit_flips) put_u64(out, flips);
  }
  put_u64(out, snap.folded_verdict_queries);
  put_u64(out, snap.per_epoch_verdicts.size());
  for (const auto& [epoch_id, count] : snap.per_epoch_verdicts) {
    put_u64(out, epoch_id);
    put_u64(out, count);
  }
  return out;
}

std::optional<ServiceStatsSnapshot> deserialize_snapshot(std::span<const std::uint8_t> bytes) {
  // Fixed part: format byte, counters, both histograms, folded faults,
  // fault-map length — plus (after the variable fault section) the folded
  // verdict counter and the verdict-map length.
  constexpr std::size_t kFixed =
      1 + 8 * (kCounterWords + 2 * LatencyHistogram::kBuckets + 1 + kFaultStatsWords + 1 + 2);
  if (bytes.size() < kFixed || bytes[0] != kSnapshotFormat) return std::nullopt;
  ServiceStatsSnapshot snap;
  std::size_t at = 1;
  const auto next = [&] {
    const std::uint64_t v = get_u64(bytes, at);
    at += 8;
    return v;
  };
  snap.enqueued = next();
  snap.shed = next();
  snap.rejected_closed = next();
  snap.scored = next();
  snap.deadline_missed = next();
  snap.failed = next();
  snap.epoch_swaps = next();
  snap.verdict_queries = next();
  snap.rejected_on_admission = next();
  snap.evicted = next();
  snap.scored_late = next();
  snap.throttled = next();
  for (std::uint64_t& count : snap.latency.counts) {
    count = next();
    snap.latency.total += count;
  }
  for (std::uint64_t& count : snap.missed_wait.counts) {
    count = next();
    snap.missed_wait.total += count;
  }
  snap.folded_epochs = next();
  snap.folded_faults.operations = next();
  snap.folded_faults.faults = next();
  for (std::uint64_t& flips : snap.folded_faults.bit_flips) flips = next();
  const std::uint64_t n_epochs = next();
  // Reject a length that cannot match the remaining bytes BEFORE trusting
  // it (a hostile count must not drive reads, allocations, or overflow).
  // The fault entries must leave room for the verdict section's two fixed
  // words; the verdict-map check below then consumes the rest exactly.
  constexpr std::uint64_t kEntryBytes = 8 * kEpochEntryWords;
  constexpr std::uint64_t kVerdictFixedBytes = 8 * 2;
  if (bytes.size() - at < kVerdictFixedBytes ||
      n_epochs > (bytes.size() - at - kVerdictFixedBytes) / kEntryBytes) {
    return std::nullopt;
  }
  for (std::uint64_t e = 0; e < n_epochs; ++e) {
    const std::uint64_t epoch_id = next();
    faultsim::FaultStats& faults = snap.per_epoch_faults[epoch_id];
    faults.operations = next();
    faults.faults = next();
    for (std::uint64_t& flips : faults.bit_flips) flips = next();
  }
  if (bytes.size() - at < kVerdictFixedBytes) return std::nullopt;
  snap.folded_verdict_queries = next();
  const std::uint64_t n_verdicts = next();
  constexpr std::uint64_t kVerdictEntryBytes = 8 * 2;
  if (n_verdicts > (bytes.size() - at) / kVerdictEntryBytes ||
      bytes.size() - at != n_verdicts * kVerdictEntryBytes) {
    return std::nullopt;
  }
  for (std::uint64_t e = 0; e < n_verdicts; ++e) {
    const std::uint64_t epoch_id = next();
    snap.per_epoch_verdicts[epoch_id] = next();
  }
  return snap;
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot snap;
  // Terminal counters are read BEFORE enqueued_: a request that lands
  // between the two reads then inflates in_flight() instead of
  // underflowing it (a request increments enqueued_ strictly before its
  // terminal counter, so this order keeps enqueued >= scored + missed).
  // scored_late_ before scored_ for the same reason (goodput() must not
  // underflow).
  snap.scored_late = scored_late_.load(std::memory_order_relaxed);
  snap.scored = scored_.load(std::memory_order_relaxed);
  snap.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.evicted = evicted_.load(std::memory_order_relaxed);
  snap.enqueued = enqueued_.load(std::memory_order_relaxed);
  snap.shed = shed_.load(std::memory_order_relaxed);
  snap.rejected_closed = rejected_closed_.load(std::memory_order_relaxed);
  snap.epoch_swaps = epoch_swaps_.load(std::memory_order_relaxed);
  snap.verdict_queries = verdict_queries_.load(std::memory_order_relaxed);
  snap.rejected_on_admission = rejected_on_admission_.load(std::memory_order_relaxed);
  snap.throttled = throttled_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    snap.latency.counts[b] = latency_buckets_[b].load(std::memory_order_relaxed);
    snap.latency.total += snap.latency.counts[b];
    snap.missed_wait.counts[b] = missed_wait_buckets_[b].load(std::memory_order_relaxed);
    snap.missed_wait.total += snap.missed_wait.counts[b];
  }
  {
    const util::MutexLock lock(faults_mu_);
    snap.per_epoch_faults = per_epoch_faults_;
    snap.folded_faults = folded_faults_;
    snap.folded_epochs = folded_epochs_;
    snap.per_epoch_verdicts = per_epoch_verdicts_;
    snap.folded_verdict_queries = folded_verdict_queries_;
  }
  return snap;
}

}  // namespace shmd::serve
