#include "serve/service_stats.hpp"

#include <bit>

namespace shmd::serve {

namespace {

std::size_t bucket_of(std::uint64_t ns) noexcept {
  if (ns == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(ns)) - 1;
  return b < LatencyHistogram::kBuckets ? b : LatencyHistogram::kBuckets - 1;
}

}  // namespace

double LatencyHistogram::quantile_ns(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += static_cast<double>(counts[b]);
    if (cumulative >= target && counts[b] > 0) {
      return static_cast<double>(std::uint64_t{1} << (b + 1));  // bucket upper edge
    }
  }
  return static_cast<double>(std::uint64_t{1} << kBuckets);
}

void ServiceStats::on_scored(std::uint64_t latency_ns, std::uint64_t epoch_id,
                             const faultsim::FaultStats& faults) {
  scored_.fetch_add(1, std::memory_order_relaxed);
  latency_buckets_[bucket_of(latency_ns)].fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard lock(faults_mu_);
  per_epoch_faults_[epoch_id].merge(faults);
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot snap;
  // Terminal counters are read BEFORE enqueued_: a request that lands
  // between the two reads then inflates in_flight() instead of
  // underflowing it (a request increments enqueued_ strictly before its
  // terminal counter, so this order keeps enqueued >= scored + missed).
  snap.scored = scored_.load(std::memory_order_relaxed);
  snap.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.enqueued = enqueued_.load(std::memory_order_relaxed);
  snap.shed = shed_.load(std::memory_order_relaxed);
  snap.rejected_closed = rejected_closed_.load(std::memory_order_relaxed);
  snap.epoch_swaps = epoch_swaps_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    snap.latency.counts[b] = latency_buckets_[b].load(std::memory_order_relaxed);
    snap.latency.total += snap.latency.counts[b];
  }
  {
    const std::lock_guard lock(faults_mu_);
    snap.per_epoch_faults = per_epoch_faults_;
  }
  return snap;
}

}  // namespace shmd::serve
