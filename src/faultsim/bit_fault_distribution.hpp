// Distribution of fault *locations* (which output bit flips) for an
// undervolted multiplier, reproducing the shape of the paper's Figure 1.
//
// Empirical facts encoded here (paper §II, consistent with Plundervolt and
// the FPGA reduced-voltage study it cites):
//   * the sign bit never flips,
//   * the 8 least significant bits never flip,
//   * eligible middle/high bits flip with a unimodal, bump-shaped
//     probability profile (long carry chains fail first).
//
// The "measured" profile is a discretized Gaussian bump over the eligible
// bits; a "uniform" profile over the same support is provided as the
// ablation baseline (DESIGN.md choice #1).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "faultsim/fixed_point.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::faultsim {

class BitFaultDistribution {
 public:
  static constexpr int kBits = 64;

  /// Fig.-1-shaped profile: Gaussian bump centered at `center_bit` with
  /// spread `sigma_bits`, restricted to eligible bits.
  [[nodiscard]] static BitFaultDistribution measured(double center_bit = 36.0,
                                                     double sigma_bits = 7.0);

  /// Ablation: uniform over all eligible bits.
  [[nodiscard]] static BitFaultDistribution uniform();

  /// Degenerate "stuck-at" profile: all mass on one bit. Models a
  /// *deterministic* approximate-computing fault (the paper's §III argues
  /// such deterministic noise is not a moving-target defense — the
  /// ablation benches demonstrate why).
  [[nodiscard]] static BitFaultDistribution stuck_at(int bit);

  /// Probability that a fault lands on `bit` (0 for protected bits).
  [[nodiscard]] double pmf(int bit) const;

  /// Sample a fault location. Binary search for the first CDF bin
  /// exceeding the draw — the identical u -> bit mapping as a linear
  /// first-`u < cdf` scan (plateaus over protected bits are skipped by
  /// both), at ~6 probes instead of ~40. Inline because it sits on the
  /// per-fault-site hot path of the skip-ahead dot kernel.
  [[nodiscard]] int sample(rng::Xoshiro256ss& gen) const {
    const double u = gen.uniform01();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return kBits - 2;  // unreachable given cdf_[63] == 1
    return static_cast<int>(it - cdf_.begin());
  }

  /// True when `bit` can ever flip (not the sign bit, not a low LSB).
  [[nodiscard]] static constexpr bool eligible(int bit) noexcept {
    return bit >= kProtectedLsbs && bit < kSignBit;
  }

 private:
  BitFaultDistribution() = default;

  void build_cdf();

  std::array<double, kBits> pmf_{};
  std::array<double, kBits> cdf_{};
};

}  // namespace shmd::faultsim
