// Q16.47 fixed-point view of MAC products.
//
// §II of the paper characterizes timing faults on the CPU's *integer
// multiplier*: bit flips land in the middle/high bits of the 64-bit
// product, never in the sign bit (a trivial XOR, off the critical path) and
// never in the 8 least significant bits (short carry chains). To apply the
// same physical model to the detector's floating-point MACs, we view each
// product through a signed Q16.47 fixed-point lens: bit k carries weight
// 2^(k-47), bit 63 is the sign. A flip of an eligible bit then perturbs the
// product by exactly the weight of that bit — the same significance
// structure the real multiplier exhibits.
#pragma once

#include <cstdint>
#include <limits>

namespace shmd::faultsim {

/// Number of fractional bits in the product representation.
inline constexpr int kFracBits = 47;
/// Sign bit position (never flips; see §II).
inline constexpr int kSignBit = 63;
/// Number of protected least-significant bits (never flip; see §II).
inline constexpr int kProtectedLsbs = 8;

/// Largest magnitude representable in Q16.47.
inline constexpr double kQMax = 65536.0;  // 2^16

/// Convert a real value to Q16.47 with saturation. Non-finite inputs are
/// defined too: ±inf saturate, NaN maps to 0 — a NaN has no meaningful bit
/// image in Q16.47, and letting it reach the static_cast would be UB.
[[nodiscard]] constexpr std::int64_t to_q(double x) noexcept {
  constexpr double scale = 140737488355328.0;  // 2^47
  if (x != x) return 0;  // NaN (constexpr-friendly isnan)
  if (x >= kQMax) return std::numeric_limits<std::int64_t>::max();
  if (x <= -kQMax) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(x * scale);
}

/// Convert Q16.47 back to a real value.
[[nodiscard]] constexpr double from_q(std::int64_t q) noexcept {
  constexpr double inv_scale = 1.0 / 140737488355328.0;  // 2^-47
  return static_cast<double>(q) * inv_scale;
}

/// Weight (real-value magnitude) of flipping bit `bit` in Q16.47.
[[nodiscard]] constexpr double bit_weight(int bit) noexcept {
  double w = 1.0;
  int d = bit - kFracBits;
  for (; d > 0; --d) w *= 2.0;
  for (; d < 0; ++d) w *= 0.5;
  return w;
}

}  // namespace shmd::faultsim
