// FaultInjector: the paper's "stochastic fault injection tool" (§VI.A).
//
// "...we built a stochastic fault injection tool that emulates timing
//  violations at the output of arithmetic operations, based on the error
//  distribution model detailed earlier in Section II. Practically, the tool
//  injects timing violation errors that follow the distribution that
//  matches the undervolting level."
//
// The injector owns: the per-operation fault probability (the paper's
// "error rate", er), the bit-location distribution (Fig. 1 shape), and its
// own RNG stream. It exposes corruption hooks for raw 64-bit multiplier
// outputs (characterization experiments) and for real-valued MAC products
// (detector inference), plus per-bit statistics for regenerating Fig. 1.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "faultsim/bit_fault_distribution.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::faultsim {

/// Per-bit and aggregate fault statistics (drives Fig. 1).
struct FaultStats {
  std::uint64_t operations = 0;  ///< corruption opportunities seen
  std::uint64_t faults = 0;      ///< operations that actually faulted
  std::array<std::uint64_t, BitFaultDistribution::kBits> bit_flips{};

  [[nodiscard]] double fault_rate() const noexcept {
    return operations == 0 ? 0.0 : static_cast<double>(faults) / static_cast<double>(operations);
  }
  /// Per-bit error rate: fraction of *operations* whose output had this
  /// bit flipped (the y-axis of Fig. 1).
  [[nodiscard]] double bit_error_rate(int bit) const;
  void reset() noexcept { *this = FaultStats{}; }

  /// Accumulate another collector's counts (the runtime merges per-worker
  /// statistics into a batch total with this).
  void merge(const FaultStats& other) noexcept {
    operations += other.operations;
    faults += other.faults;
    for (std::size_t b = 0; b < bit_flips.size(); ++b) bit_flips[b] += other.bit_flips[b];
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

class FaultInjector {
 public:
  FaultInjector(double error_rate, BitFaultDistribution distribution,
                std::uint64_t seed = 0xFA017ULL);

  /// Per-operation fault probability in [0, 1] — the paper's er knob.
  void set_error_rate(double er);
  [[nodiscard]] double error_rate() const noexcept { return error_rate_; }

  void set_distribution(BitFaultDistribution distribution) noexcept {
    distribution_ = distribution;
  }
  [[nodiscard]] const BitFaultDistribution& distribution() const noexcept {
    return distribution_;
  }

  /// Corrupt a raw 64-bit multiplier output: with probability er, flip one
  /// bit sampled from the location distribution. Used by the §II
  /// characterization experiments.
  [[nodiscard]] std::uint64_t corrupt_u64(std::uint64_t product);

  /// Same, but under a one-off probability `p` instead of the configured
  /// flat rate (operand-dependent criticality, FaultyAlu). The configured
  /// rate is untouched; `p` must be a finite value in [0, 1].
  [[nodiscard]] std::uint64_t corrupt_u64(std::uint64_t product, double p);

  /// Corrupt a real-valued MAC product through the Q16.47 lens: with
  /// probability er, flip one eligible bit of the fixed-point image and
  /// convert back. Used by the Stochastic-HMD inference path. Inline:
  /// this is the per-product cost of the dense-fault dot regime.
  [[nodiscard]] double corrupt_product(double product) {
    ++stats_.operations;
    // A non-finite product has no Q16.47 bit image to flip; pass it
    // through untouched (before consuming any RNG, so fault streams are
    // unaffected).
    if (!std::isfinite(product)) return product;
    if (!gen_.bernoulli(error_rate_)) return product;
    const int bit = distribution_.sample(gen_);
    ++stats_.faults;
    ++stats_.bit_flips[static_cast<std::size_t>(bit)];
    const std::int64_t q = to_q(product);
    const auto flipped =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(q) ^ (std::uint64_t{1} << bit));
    return from_q(flipped);
  }

  // -- span-level (skip-ahead) fault sampling ------------------------------
  //
  // A Bernoulli(er) decision per product over a span is equivalent to
  // sampling the gap to the next faulted product from Geometric(er): the
  // span-level ArithmeticContext::dot kernels run exact vectorizable dot
  // products between sampled fault sites instead of paying one virtual
  // call + one RNG draw per MAC, with identical per-product fault
  // statistics (see DESIGN.md "Span-level arithmetic").

  /// Gap sentinel: no fault within any feasible span length.
  static constexpr std::size_t kNoFault = std::numeric_limits<std::size_t>::max();

  /// Sample the number of fault-free products preceding the next faulted
  /// one in a Bernoulli(er) product stream (Geometric(er) by inversion:
  /// floor(log1p(-u) / log1p(-er))). Returns kNoFault when er == 0 (and
  /// consumes no randomness); returns 0 on every call when er == 1.
  /// Geometric memorylessness makes it sound to discard the tail of a
  /// sampled gap at a span boundary and resample for the next span.
  /// The er == 0 no-draw guarantee is load-bearing beyond speed:
  /// FaultyContext::gemm reblocks its tile through the exact kernel at
  /// er == 0 precisely because the generator state is untouched either
  /// way, keeping the batched path stream-identical to per-row dot().
  /// Inline (like corrupt_product_at_fault): one call per fault site is
  /// the entire non-SIMD cost of the skip-ahead dot kernel.
  [[nodiscard]] std::size_t next_fault_gap() {
    if (error_rate_ <= 0.0) return kNoFault;
    if (error_rate_ >= 1.0) return 0;
    // Inversion: u ~ U[0,1) -> floor(log(1-u) / log(1-er)) ~ Geometric(er),
    // the count of fault-free trials before the first success. log1p keeps
    // full precision at the small error rates the paper sweeps (er <= 1e-2).
    const double u = gen_.uniform01();
    const double gap = std::floor(std::log1p(-u) * inv_log1m_er_);
    if (gap >= static_cast<double>(kNoFault)) return kNoFault;
    return static_cast<std::size_t>(gap);
  }

  /// Unconditionally fault one product the caller selected via
  /// next_fault_gap(): flip one eligible Q16.47 bit and count the fault.
  /// Does NOT advance the operations counter — span callers account for
  /// whole spans with count_operations(). Non-finite products have no bit
  /// image and pass through unfaulted, exactly as in corrupt_product().
  [[nodiscard]] double corrupt_product_at_fault(double product) {
    if (!std::isfinite(product)) return product;
    const int bit = distribution_.sample(gen_);
    ++stats_.faults;
    ++stats_.bit_flips[static_cast<std::size_t>(bit)];
    const std::int64_t q = to_q(product);
    const auto flipped =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(q) ^ (std::uint64_t{1} << bit));
    return from_q(flipped);
  }

  /// Advance the operations counter by a whole span of products, so
  /// FaultStats sees the same opportunity count whether a span ran through
  /// the scalar path or a skip-ahead kernel.
  void count_operations(std::uint64_t n) noexcept { stats_.operations += n; }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Direct access to the injector's RNG stream (tests use this to verify
  /// stream independence; nothing else should).
  [[nodiscard]] rng::Xoshiro256ss& generator() noexcept { return gen_; }

 private:
  /// Flip one distribution-sampled bit of `product` and record the fault.
  [[nodiscard]] std::uint64_t apply_fault_u64(std::uint64_t product);

  double error_rate_;
  double inv_log1m_er_ = 0.0;  ///< 1 / log1p(-er), cached for next_fault_gap()
  BitFaultDistribution distribution_;
  rng::Xoshiro256ss gen_;
  FaultStats stats_;
};

}  // namespace shmd::faultsim
