#include "faultsim/faulty_alu.hpp"

namespace shmd::faultsim {

std::uint64_t FaultyAlu::mul(std::uint64_t a, std::uint64_t b) {
  ++mul_count_;
  const std::uint64_t exact = a * b;
  if (operand_prob_) {
    // Operand-dependent criticality: corrupt under the per-operand
    // probability without ever mutating the injector's configured flat
    // rate (the old set_error_rate() round trip validated and wrote
    // injector state twice per multiply).
    return injector_->corrupt_u64(exact, operand_prob_(a, b));
  }
  return injector_->corrupt_u64(exact);
}

std::uint64_t FaultyAlu::add(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a + b;
}

std::uint64_t FaultyAlu::sub(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a - b;
}

std::uint64_t FaultyAlu::bit_and(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a & b;
}

std::uint64_t FaultyAlu::bit_or(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a | b;
}

std::uint64_t FaultyAlu::bit_xor(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a ^ b;
}

}  // namespace shmd::faultsim
