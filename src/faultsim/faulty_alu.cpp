#include "faultsim/faulty_alu.hpp"

namespace shmd::faultsim {

std::uint64_t FaultyAlu::mul(std::uint64_t a, std::uint64_t b) {
  ++mul_count_;
  const std::uint64_t exact = a * b;
  if (operand_prob_) {
    // Operand-dependent criticality: swap in the per-operand probability
    // for this one corruption, then restore the flat rate.
    const double flat = injector_->error_rate();
    injector_->set_error_rate(operand_prob_(a, b));
    const std::uint64_t result = injector_->corrupt_u64(exact);
    injector_->set_error_rate(flat);
    return result;
  }
  return injector_->corrupt_u64(exact);
}

std::uint64_t FaultyAlu::add(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a + b;
}

std::uint64_t FaultyAlu::sub(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a - b;
}

std::uint64_t FaultyAlu::bit_and(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a & b;
}

std::uint64_t FaultyAlu::bit_or(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a | b;
}

std::uint64_t FaultyAlu::bit_xor(std::uint64_t a, std::uint64_t b) noexcept {
  ++nonmul_count_;
  return a ^ b;
}

}  // namespace shmd::faultsim
