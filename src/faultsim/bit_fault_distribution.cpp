#include "faultsim/bit_fault_distribution.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::faultsim {

BitFaultDistribution BitFaultDistribution::measured(double center_bit, double sigma_bits) {
  if (sigma_bits <= 0.0) throw std::invalid_argument("measured: sigma must be positive");
  BitFaultDistribution d;
  for (int b = 0; b < kBits; ++b) {
    if (!eligible(b)) continue;
    const double z = (static_cast<double>(b) - center_bit) / sigma_bits;
    d.pmf_[static_cast<std::size_t>(b)] = std::exp(-0.5 * z * z);
  }
  d.build_cdf();
  return d;
}

BitFaultDistribution BitFaultDistribution::uniform() {
  BitFaultDistribution d;
  for (int b = 0; b < kBits; ++b) {
    if (eligible(b)) d.pmf_[static_cast<std::size_t>(b)] = 1.0;
  }
  d.build_cdf();
  return d;
}

BitFaultDistribution BitFaultDistribution::stuck_at(int bit) {
  if (!eligible(bit)) throw std::invalid_argument("stuck_at: bit is protected");
  BitFaultDistribution d;
  d.pmf_[static_cast<std::size_t>(bit)] = 1.0;
  d.build_cdf();
  return d;
}

void BitFaultDistribution::build_cdf() {
  double total = 0.0;
  for (double p : pmf_) total += p;
  if (total <= 0.0) throw std::logic_error("BitFaultDistribution: empty support");
  double acc = 0.0;
  for (int b = 0; b < kBits; ++b) {
    pmf_[static_cast<std::size_t>(b)] /= total;
    acc += pmf_[static_cast<std::size_t>(b)];
    cdf_[static_cast<std::size_t>(b)] = acc;
  }
  cdf_[kBits - 1] = 1.0;  // guard against rounding drift
}

double BitFaultDistribution::pmf(int bit) const {
  if (bit < 0 || bit >= kBits) throw std::out_of_range("pmf: bit out of range");
  return pmf_[static_cast<std::size_t>(bit)];
}

}  // namespace shmd::faultsim
