#include "faultsim/fault_injector.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::faultsim {

double FaultStats::bit_error_rate(int bit) const {
  if (bit < 0 || bit >= BitFaultDistribution::kBits) {
    throw std::out_of_range("bit_error_rate: bit out of range");
  }
  if (operations == 0) return 0.0;
  return static_cast<double>(bit_flips[static_cast<std::size_t>(bit)]) /
         static_cast<double>(operations);
}

FaultInjector::FaultInjector(double error_rate, BitFaultDistribution distribution,
                             std::uint64_t seed)
    : error_rate_(0.0), distribution_(distribution), gen_(seed) {
  set_error_rate(error_rate);
}

void FaultInjector::set_error_rate(double er) {
  // The negated-range spelling rejects NaN too: a NaN er would sail past
  // `er < 0 || er > 1` and silently break the skip-ahead geometric math
  // (log1p(-NaN) gaps) as well as every Bernoulli draw downstream.
  if (!(er >= 0.0 && er <= 1.0)) throw std::invalid_argument("error rate must be in [0, 1]");
  error_rate_ = er;
  // Cached for next_fault_gap(): one log per geometric draw instead of two.
  inv_log1m_er_ = (er > 0.0 && er < 1.0) ? 1.0 / std::log1p(-er) : 0.0;
}

std::uint64_t FaultInjector::apply_fault_u64(std::uint64_t product) {
  const int bit = distribution_.sample(gen_);
  ++stats_.faults;
  ++stats_.bit_flips[static_cast<std::size_t>(bit)];
  return product ^ (std::uint64_t{1} << bit);
}

std::uint64_t FaultInjector::corrupt_u64(std::uint64_t product) {
  ++stats_.operations;
  if (!gen_.bernoulli(error_rate_)) return product;
  return apply_fault_u64(product);
}

std::uint64_t FaultInjector::corrupt_u64(std::uint64_t product, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("per-operation fault probability must be in [0, 1]");
  }
  ++stats_.operations;
  if (!gen_.bernoulli(p)) return product;
  return apply_fault_u64(product);
}

}  // namespace shmd::faultsim
