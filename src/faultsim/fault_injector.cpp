#include "faultsim/fault_injector.hpp"

#include <cmath>
#include <stdexcept>

#include "faultsim/fixed_point.hpp"

namespace shmd::faultsim {

double FaultStats::bit_error_rate(int bit) const {
  if (bit < 0 || bit >= BitFaultDistribution::kBits) {
    throw std::out_of_range("bit_error_rate: bit out of range");
  }
  if (operations == 0) return 0.0;
  return static_cast<double>(bit_flips[static_cast<std::size_t>(bit)]) /
         static_cast<double>(operations);
}

FaultInjector::FaultInjector(double error_rate, BitFaultDistribution distribution,
                             std::uint64_t seed)
    : error_rate_(0.0), distribution_(distribution), gen_(seed) {
  set_error_rate(error_rate);
}

void FaultInjector::set_error_rate(double er) {
  // The negated-range spelling rejects NaN too: a NaN er would sail past
  // `er < 0 || er > 1` and silently break the skip-ahead geometric math
  // (log1p(-NaN) gaps) as well as every Bernoulli draw downstream.
  if (!(er >= 0.0 && er <= 1.0)) throw std::invalid_argument("error rate must be in [0, 1]");
  error_rate_ = er;
  // Cached for next_fault_gap(): one log per geometric draw instead of two.
  inv_log1m_er_ = (er > 0.0 && er < 1.0) ? 1.0 / std::log1p(-er) : 0.0;
}

std::uint64_t FaultInjector::apply_fault_u64(std::uint64_t product) {
  const int bit = distribution_.sample(gen_);
  ++stats_.faults;
  ++stats_.bit_flips[static_cast<std::size_t>(bit)];
  return product ^ (std::uint64_t{1} << bit);
}

std::uint64_t FaultInjector::corrupt_u64(std::uint64_t product) {
  ++stats_.operations;
  if (!gen_.bernoulli(error_rate_)) return product;
  return apply_fault_u64(product);
}

std::uint64_t FaultInjector::corrupt_u64(std::uint64_t product, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("per-operation fault probability must be in [0, 1]");
  }
  ++stats_.operations;
  if (!gen_.bernoulli(p)) return product;
  return apply_fault_u64(product);
}

double FaultInjector::corrupt_product(double product) {
  ++stats_.operations;
  // A non-finite product has no Q16.47 bit image to flip; pass it through
  // untouched (before consuming any RNG, so fault streams are unaffected).
  if (!std::isfinite(product)) return product;
  if (!gen_.bernoulli(error_rate_)) return product;
  const int bit = distribution_.sample(gen_);
  ++stats_.faults;
  ++stats_.bit_flips[static_cast<std::size_t>(bit)];
  const std::int64_t q = to_q(product);
  const auto flipped = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(q) ^ (std::uint64_t{1} << bit));
  return from_q(flipped);
}

std::size_t FaultInjector::next_fault_gap() {
  if (error_rate_ <= 0.0) return kNoFault;
  if (error_rate_ >= 1.0) return 0;
  // Inversion: u ~ U[0,1) -> floor(log(1-u) / log(1-er)) ~ Geometric(er),
  // the count of fault-free trials before the first success. log1p keeps
  // full precision at the small error rates the paper sweeps (er <= 1e-2).
  const double u = gen_.uniform01();
  const double gap = std::floor(std::log1p(-u) * inv_log1m_er_);
  if (gap >= static_cast<double>(kNoFault)) return kNoFault;
  return static_cast<std::size_t>(gap);
}

double FaultInjector::corrupt_product_at_fault(double product) {
  if (!std::isfinite(product)) return product;
  const int bit = distribution_.sample(gen_);
  ++stats_.faults;
  ++stats_.bit_flips[static_cast<std::size_t>(bit)];
  const std::int64_t q = to_q(product);
  const auto flipped = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(q) ^ (std::uint64_t{1} << bit));
  return from_q(flipped);
}

}  // namespace shmd::faultsim
