// FaultyAlu: an ALU model with an undervolting-aware multiplier.
//
// Mirrors the paper's §II characterization setup: only *multiplications*
// fault under undervolting ("we tried undervolting addition, subtraction,
// and bit-wise operations, but no faults were observed" — simpler circuits,
// shorter propagation delays). The per-operation fault probability can be
// operand-dependent (the paper observes fault onset between −103 mV and
// −145 mV "depending on inputs"): callers may install a probability
// function, typically volt::VoltFaultModel::operand_fault_probability.
#pragma once

#include <cstdint>
#include <functional>

#include "faultsim/fault_injector.hpp"

namespace shmd::faultsim {

class FaultyAlu {
 public:
  /// Maps the two multiplier operands to a per-operation fault
  /// probability. When empty, the injector's flat error rate applies;
  /// when set, each multiply corrupts under the mapped probability via
  /// FaultInjector::corrupt_u64(product, p) and the configured flat rate
  /// is never touched.
  using OperandProbabilityFn = std::function<double(std::uint64_t, std::uint64_t)>;

  explicit FaultyAlu(FaultInjector& injector) : injector_(&injector) {}

  void set_operand_probability(OperandProbabilityFn fn) { operand_prob_ = std::move(fn); }

  /// Multiplication: subject to stochastic timing faults.
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b);

  /// Addition/subtraction/bitwise: never fault under undervolting (§II);
  /// still counted so op mixes can be reported.
  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept;
  [[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b) noexcept;
  [[nodiscard]] std::uint64_t bit_and(std::uint64_t a, std::uint64_t b) noexcept;
  [[nodiscard]] std::uint64_t bit_or(std::uint64_t a, std::uint64_t b) noexcept;
  [[nodiscard]] std::uint64_t bit_xor(std::uint64_t a, std::uint64_t b) noexcept;

  [[nodiscard]] std::uint64_t mul_count() const noexcept { return mul_count_; }
  [[nodiscard]] std::uint64_t nonmul_count() const noexcept { return nonmul_count_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return injector_->stats(); }

 private:
  FaultInjector* injector_;
  OperandProbabilityFn operand_prob_;
  std::uint64_t mul_count_ = 0;
  std::uint64_t nonmul_count_ = 0;
};

}  // namespace shmd::faultsim
