#include "runtime/batch_scorer.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/arithmetic.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::runtime {

namespace {

std::vector<const trace::FeatureSet*> as_pointers(std::span<const trace::FeatureSet> batch) {
  std::vector<const trace::FeatureSet*> ptrs;
  ptrs.reserve(batch.size());
  for (const trace::FeatureSet& fs : batch) ptrs.push_back(&fs);
  return ptrs;
}

}  // namespace

BatchScorer::BatchScorer(const hmd::StochasticHmd& hmd, RuntimeConfig config)
    : hmd_(&hmd), pool_(resolve_workers(config.num_workers)) {
  // Worker w's fault stream: the base stream jumped w times. jump()
  // advances by 2^128 draws, so the streams cannot overlap within any
  // feasible run length.
  rng::Xoshiro256ss stream(config.seed);
  workers_.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    Worker worker{
        faultsim::FaultInjector(hmd.error_rate(), hmd.fault_distribution(), config.seed),
        nn::ForwardScratch{}};
    worker.injector.generator() = stream;
    stream.jump();
    workers_.push_back(std::move(worker));
  }
}

std::vector<std::vector<double>> BatchScorer::score_batch(
    std::span<const trace::FeatureSet> batch) {
  const auto ptrs = as_pointers(batch);
  return score_batch(std::span<const trace::FeatureSet* const>(ptrs));
}

std::vector<std::vector<double>> BatchScorer::score_batch(
    std::span<const trace::FeatureSet* const> batch) {
  // Pick up the detector's current operating point (space-exploration
  // sweeps move it between batches).
  const double er = hmd_->error_rate();
  for (Worker& worker : workers_) worker.injector.set_error_rate(er);
  const nn::Network& net = hmd_->network();
  const trace::FeatureConfig fc = hmd_->feature_config();
  std::vector<std::vector<double>> scores(batch.size());
  pool_.run([&](std::size_t w) {
    Worker& worker = workers_[w];
    nn::FaultyContext faulty(worker.injector);
    const Slice slice = worker_slice(batch.size(), w, workers_.size());
    for (std::size_t i = slice.begin; i < slice.end; ++i) {
      const auto& windows = batch[i]->windows(fc);
      std::vector<double>& out = scores[i];
      out.reserve(windows.size());
      for (const std::vector<double>& window : windows) {
        // forward issues one FaultyContext::dot per output row: fault
        // sites are geometric skip-ahead samples from this worker's
        // private stream, fault-free spans run exact.
        out.push_back(net.forward(window, faulty, worker.scratch)[0]);
      }
    }
  });
  return scores;
}

std::vector<bool> BatchScorer::detect_batch(std::span<const trace::FeatureSet* const> batch,
                                            double threshold, double vote_fraction) {
  const std::vector<std::vector<double>> scores = score_batch(batch);
  std::vector<bool> verdicts(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    verdicts[i] = hmd::fraction_vote(scores[i], threshold, vote_fraction);
  }
  return verdicts;
}

const faultsim::FaultStats& BatchScorer::worker_stats(std::size_t worker) const {
  if (worker >= workers_.size()) throw std::out_of_range("BatchScorer: worker out of range");
  return workers_[worker].injector.stats();
}

faultsim::FaultStats BatchScorer::merged_stats() const {
  faultsim::FaultStats total;
  for (const Worker& worker : workers_) total.merge(worker.injector.stats());
  return total;
}

RhmdBatchScorer::RhmdBatchScorer(const hmd::Rhmd& rhmd, RuntimeConfig config)
    : pool_(resolve_workers(config.num_workers)) {
  replicas_.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    hmd::Rhmd replica = rhmd;
    // w+1 jumps: replica 0 is already offset from the source detector, so
    // serial and batched use of the same Rhmd stay uncorrelated.
    replica.jump_switch_stream(w + 1);
    replicas_.push_back(std::move(replica));
  }
}

std::vector<std::vector<double>> RhmdBatchScorer::score_batch(
    std::span<const trace::FeatureSet> batch) {
  const auto ptrs = as_pointers(batch);
  return score_batch(std::span<const trace::FeatureSet* const>(ptrs));
}

std::vector<std::vector<double>> RhmdBatchScorer::score_batch(
    std::span<const trace::FeatureSet* const> batch) {
  std::vector<std::vector<double>> scores(batch.size());
  pool_.run([&](std::size_t w) {
    hmd::Rhmd& replica = replicas_[w];
    const Slice slice = worker_slice(batch.size(), w, replicas_.size());
    for (std::size_t i = slice.begin; i < slice.end; ++i) {
      scores[i] = replica.window_scores(*batch[i]);
    }
  });
  return scores;
}

}  // namespace shmd::runtime
