// Batched, multi-threaded scoring for the stochastic detectors.
//
// The figure benches sweep error_rate x repeats x folds over thousands of
// programs, and the deployment story is a detection core serving many
// monitored programs per round; both were serial with per-call heap
// allocations. A batch scorer amortizes three things at once:
//
//   threads — the batch is statically sliced across a persistent pool
//             (see thread_pool.hpp for why static beats stealing here);
//   RNG     — every worker owns a FaultInjector whose xoshiro256** stream
//             is derived from one seed via jump() (streams 2^128 draws
//             apart), so parallel fault statistics never share or overlap
//             a generator;
//   memory  — each worker scores through a reusable ForwardScratch, so
//             the steady-state hot loop performs zero heap allocations
//             (and caches the network's widest-layer width per worker);
//   spans   — every forward routes one ArithmeticContext::dot call per
//             output row, so undervolted workers pay the geometric
//             skip-ahead kernel (one RNG draw per *fault*, not per MAC)
//             and fault-free spans run as exact dot products.
//
// Determinism contract: worker w always scores the same slice of the
// batch with the same private stream, so one (seed, worker count) pair
// reproduces bit-identical scores run after run. Different worker counts
// re-partition the batch and therefore draw different (equally valid)
// fault noise — fix the worker count, not just the seed, to reproduce a
// figure exactly.
#pragma once

#include <span>
#include <vector>

#include "faultsim/fault_injector.hpp"
#include "hmd/detector.hpp"
#include "hmd/rhmd.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/network.hpp"
#include "runtime/thread_pool.hpp"

namespace shmd::runtime {

struct RuntimeConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_workers = 0;
  /// Base seed for the per-worker fault streams (worker w runs on the
  /// stream jumped w times from this seed).
  std::uint64_t seed = 0xBA7C4ULL;
};

/// Batch front-end for a StochasticHmd in direct-er mode. The scorer
/// re-reads the detector's error rate at every batch, so space-exploration
/// sweeps that call set_error_rate() between batches need no re-setup.
/// (Voltage-driven detectors score through their own attached domain
/// serially; a batch runtime for that path would need one rail per worker
/// — see CpuPackage.)
class BatchScorer {
 public:
  explicit BatchScorer(const hmd::StochasticHmd& hmd, RuntimeConfig config = {});

  /// scores[i] = per-window live scores of batch[i], as
  /// StochasticHmd::window_scores would produce them.
  [[nodiscard]] std::vector<std::vector<double>> score_batch(
      std::span<const trace::FeatureSet> batch);
  /// Same, over non-contiguous feature sets (fold indices into a Dataset).
  [[nodiscard]] std::vector<std::vector<double>> score_batch(
      std::span<const trace::FeatureSet* const> batch);

  /// Per-program verdicts for one detection round (fraction_vote over each
  /// program's window scores, as Detector::detect).
  [[nodiscard]] std::vector<bool> detect_batch(
      std::span<const trace::FeatureSet* const> batch, double threshold = 0.5,
      double vote_fraction = hmd::Detector::kDefaultVoteFraction);

  [[nodiscard]] std::size_t num_workers() const noexcept { return workers_.size(); }
  /// One worker's fault statistics (accumulated over all its batches).
  [[nodiscard]] const faultsim::FaultStats& worker_stats(std::size_t worker) const;
  /// All workers' statistics merged — the batch-run equivalent of
  /// StochasticHmd::fault_stats().
  [[nodiscard]] faultsim::FaultStats merged_stats() const;

 private:
  struct Worker {
    faultsim::FaultInjector injector;
    nn::ForwardScratch scratch;
  };

  const hmd::StochasticHmd* hmd_;
  std::vector<Worker> workers_;
  ThreadPool pool_;
};

/// Batch front-end for the RHMD baseline: every worker owns a replica of
/// the ensemble whose epoch-switch stream is jump()-derived from the
/// original, so parallel epoch switching stays reproducible under the same
/// determinism contract as BatchScorer.
class RhmdBatchScorer {
 public:
  explicit RhmdBatchScorer(const hmd::Rhmd& rhmd, RuntimeConfig config = {});

  [[nodiscard]] std::vector<std::vector<double>> score_batch(
      std::span<const trace::FeatureSet> batch);
  [[nodiscard]] std::vector<std::vector<double>> score_batch(
      std::span<const trace::FeatureSet* const> batch);

  [[nodiscard]] std::size_t num_workers() const noexcept { return replicas_.size(); }

 private:
  std::vector<hmd::Rhmd> replicas_;
  ThreadPool pool_;
};

}  // namespace shmd::runtime
