// Persistent worker pool for the batch inference runtime.
//
// Deliberately minimal: the runtime's unit of work is "worker w processes
// its fixed slice of the batch", so the pool only needs one fork/join
// primitive — run a callable on every worker and wait for all of them.
// Static slicing (rather than a shared work queue) is what makes batch
// scoring reproducible: each worker owns a deterministic set of items and
// a private RNG stream, so the same seed and worker count always produce
// bit-identical scores. Chunks are balanced to within one item, and the
// detectors' per-item cost is near-uniform, so stealing would buy little.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace shmd::runtime {

/// Contiguous range of batch items owned by one worker.
struct Slice {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Balanced static partition: worker `worker` of `n_workers` owns a
/// contiguous slice of `n_items`, the first `n_items % n_workers` workers
/// taking one extra item. The slices tile [0, n_items) exactly.
[[nodiscard]] Slice worker_slice(std::size_t n_items, std::size_t worker,
                                 std::size_t n_workers) noexcept;

/// Resolve a requested worker count: 0 means "all cores"
/// (std::thread::hardware_concurrency, floored at 1). Shared by every
/// pool-owning component (ThreadPool, BatchScorer, serve::ScoringService)
/// so "0 = all cores" means the same thing everywhere.
[[nodiscard]] std::size_t resolve_workers(std::size_t requested) noexcept;

class ThreadPool {
 public:
  /// Upper bound on an explicit worker count; requests above it (usually a
  /// negative number cast to size_t) throw std::invalid_argument.
  static constexpr std::size_t kMaxWorkers = 4096;

  /// `n_workers` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Run `fn(worker_id)` on every worker (ids 0..size()-1) and block until
  /// all calls return. The first exception any worker throws is rethrown
  /// on the calling thread after the join; the pool stays usable.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> threads_;
  util::Mutex mu_;
  util::CondVar start_cv_ SHMD_CV_WAITS_ON(mu_);
  util::CondVar done_cv_ SHMD_CV_WAITS_ON(mu_);
  const std::function<void(std::size_t)>* job_ SHMD_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ SHMD_GUARDED_BY(mu_) = 0;
  std::size_t pending_ SHMD_GUARDED_BY(mu_) = 0;
  bool stop_ SHMD_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ SHMD_GUARDED_BY(mu_);
};

}  // namespace shmd::runtime
