#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace shmd::runtime {

Slice worker_slice(std::size_t n_items, std::size_t worker, std::size_t n_workers) noexcept {
  if (n_workers == 0 || worker >= n_workers) return {};
  const std::size_t base = n_items / n_workers;
  const std::size_t extra = n_items % n_workers;
  const std::size_t begin = worker * base + std::min(worker, extra);
  return {begin, begin + base + (worker < extra ? 1 : 0)};
}

std::size_t resolve_workers(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t n_workers) {
  n_workers = resolve_workers(n_workers);
  // A wrapped negative (size_t(-1)) or similar nonsense would otherwise die
  // deep inside vector::reserve with an unhelpful length_error.
  if (n_workers > kMaxWorkers) {
    throw std::invalid_argument("ThreadPool: implausible worker count");
  }
  threads_.reserve(n_workers);
  for (std::size_t id = 0; id < n_workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      const util::MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) start_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(id);
    } catch (...) {
      const util::MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const util::MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  std::exception_ptr err;
  {
    const util::MutexLock lock(mu_);
    job_ = &fn;
    first_error_ = nullptr;
    pending_ = threads_.size();
    ++generation_;
    start_cv_.notify_all();
    while (pending_ != 0) done_cv_.wait(mu_);
    job_ = nullptr;
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace shmd::runtime
