#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shmd::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace shmd::util
