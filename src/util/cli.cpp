#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace shmd::util {

void CliParser::add_flag(const std::string& name, const std::string& help,
                         std::string default_value) {
  flags_[name] = Flag{help, std::move(default_value), /*is_bool=*/false};
}

void CliParser::add_bool(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, "false", /*is_bool=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + arg);
    if (it->second.is_bool) {
      it->second.value = has_value ? value : "true";
    } else if (has_value) {
      it->second.value = value;
    } else {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for --" + arg);
      it->second.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("flag not registered: --" + name);
  return it->second.value;
}

int CliParser::get_int(const std::string& name) const { return std::stoi(get(name)); }

double CliParser::get_double(const std::string& name) const { return std::stod(get(name)); }

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

void CliParser::print_help(const std::string& program) const {
  // shmd-lint: stream-ok(print_help exists to write usage text to stdout)
  std::printf("Usage: %s [flags]\n\nFlags:\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    // shmd-lint: stream-ok(print_help exists to write usage text to stdout)
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                flag.value.c_str());
  }
}

}  // namespace shmd::util
