#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace shmd::util {

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec + "': unix: needs a socket path");
    }
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': expected host:port or unix:/path");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = colon == 0 ? "*" : spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() || port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec + "': port '" + port_text +
                                "' is not a number in [0, 65535]");
  }
  unsigned long port = 0;  // NOLINT(google-runtime-int): stoul's return type
  try {
    port = std::stoul(port_text);
  } catch (const std::out_of_range&) {
    port = 65536;  // flows into the range check below
  }
  if (port > 65535) {
    throw std::invalid_argument("endpoint '" + spec + "': port '" + port_text +
                                "' is not a number in [0, 65535]");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         std::string default_value) {
  flags_[name] = Flag{help, std::move(default_value), /*is_bool=*/false};
}

void CliParser::add_bool(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, "false", /*is_bool=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + arg);
    if (it->second.is_bool) {
      it->second.value = has_value ? value : "true";
    } else if (has_value) {
      it->second.value = value;
    } else {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for --" + arg);
      it->second.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("flag not registered: --" + name);
  return it->second.value;
}

int CliParser::get_int(const std::string& name) const { return std::stoi(get(name)); }

double CliParser::get_double(const std::string& name) const { return std::stod(get(name)); }

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

void CliParser::print_help(const std::string& program) const {
  // shmd-lint: stream-ok(print_help exists to write usage text to stdout)
  std::printf("Usage: %s [flags]\n\nFlags:\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    // shmd-lint: stream-ok(print_help exists to write usage text to stdout)
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                flag.value.c_str());
  }
}

}  // namespace shmd::util
