#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace shmd::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::save_csv: cannot open " + path);
  print_csv(out);
  if (!out) throw std::runtime_error("Table::save_csv: write failed for " + path);
}

std::string ascii_bar(double value, double max, std::size_t width) {
  if (max <= 0.0 || value < 0.0) return std::string(width, ' ');
  const double frac = std::clamp(value / max, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5);
  return std::string(filled, '#') + std::string(width - filled, ' ');
}

}  // namespace shmd::util
