// Small statistics helpers shared by the evaluation harness and benches.
//
// Everything here is deliberately dependency-free: the experiment code
// aggregates accuracy/score distributions with these helpers and the bench
// binaries print them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace shmd::util {

/// Arithmetic mean of a sample; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased (n-1) sample standard deviation; returns 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Population variance with Bessel's correction; 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Minimum of a non-empty sample.
[[nodiscard]] double min(std::span<const double> xs);

/// Maximum of a non-empty sample.
[[nodiscard]] double max(std::span<const double> xs);

/// Median (linear-interpolated) of a sample; returns 0 for an empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// q-th quantile (q in [0,1]) with linear interpolation between order
/// statistics; returns 0 for an empty span.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; returns 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Streaming mean/variance accumulator (Welford). Use when samples are
/// produced one at a time and storing them all would be wasteful.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi). Samples outside the range are clamped
/// into the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Center of bin `bin` on the value axis.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Fraction of all samples that landed in `bin` (0 if histogram is empty).
  [[nodiscard]] double density(std::size_t bin) const;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace shmd::util
