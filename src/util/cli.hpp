// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown flags are an error so typos in experiment sweeps fail loudly
// instead of silently running the default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace shmd::util {

class CliParser {
 public:
  /// Register a flag before parse(). `help` is printed by print_help().
  void add_flag(const std::string& name, const std::string& help, std::string default_value);
  void add_bool(const std::string& name, const std::string& help);

  /// Parse argv; returns false (after printing help) if --help was given.
  /// Throws std::invalid_argument on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  void print_help(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace shmd::util
