// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown flags are an error so typos in experiment sweeps fail loudly
// instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace shmd::util {

/// A parsed listen/connect address for the network front-end: either a
/// TCP host:port or a Unix-domain socket path. Pure string parsing — no
/// socket calls — so every binary can validate flags before src/net/
/// touches the kernel.
struct Endpoint {
  enum class Kind : std::uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;        ///< TCP only; numeric IPv4, "localhost", or "*"
  std::uint16_t port = 0;  ///< TCP only; 0 = ephemeral (server picks)
  std::string path;        ///< Unix only; filesystem path of the socket

  /// Canonical spec string ("host:port" or "unix:/path"), parseable back.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parse "host:port" (e.g. "127.0.0.1:7433", "localhost:0", "*:7433") or
/// "unix:/path" (e.g. "unix:/run/shmd.sock"). An empty host means every
/// interface ("*"). Throws std::invalid_argument with a message naming
/// the spec and the defect — flag typos in deploy scripts must fail
/// loudly, not bind somewhere surprising.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

class CliParser {
 public:
  /// Register a flag before parse(). `help` is printed by print_help().
  void add_flag(const std::string& name, const std::string& help, std::string default_value);
  void add_bool(const std::string& name, const std::string& help);

  /// Parse argv; returns false (after printing help) if --help was given.
  /// Throws std::invalid_argument on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  void print_help(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace shmd::util
