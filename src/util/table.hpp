// Console table / CSV rendering used by the per-figure bench harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// Table class gives them a uniform "print the rows the paper reports" path
// (aligned text for the console, CSV for downstream plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace shmd::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `precision` decimal digits.
  static std::string fmt(double value, int precision = 3);
  /// Convenience: percentage formatting ("93.42%").
  static std::string pct(double fraction, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Render as an aligned, boxed text table.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180-style quoting for cells containing commas).
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file, creating/truncating it. Throws on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal ASCII bar of `width` cells filled proportionally to
/// value/max (used by benches to sketch the paper's bar charts in-terminal).
[[nodiscard]] std::string ascii_bar(double value, double max, std::size_t width = 40);

}  // namespace shmd::util
