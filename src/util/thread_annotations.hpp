// Clang Thread Safety Analysis macros, plus the project's lint-only
// synchronization markers.
//
// The serving stack's two load-bearing contracts — scores are a pure
// function of (seed, admission order) under any worker/batch count, and
// the moving-target epoch swap is stall-free and tear-free — rest on a
// handful of mutexes whose locking rules used to live in comments. These
// macros turn those comments into compiler-checked facts: under clang,
// `-Wthread-safety -Werror` (wired into shmd_warnings) rejects any access
// to an SHMD_GUARDED_BY member without its mutex held, any function that
// forgets its SHMD_REQUIRES contract, and any scoped lock that escapes its
// scope still held. Under GCC every macro expands to nothing, so the
// annotated code stays portable; the clang CI job is the enforcement
// point.
//
// The analysis only understands capability-annotated types, and
// libstdc++'s std::mutex is not one — so the annotated primitives in
// sync.hpp (util::Mutex, util::MutexLock, util::CondVar) are the project's
// lockables, and shmd-lint rule R6 enforces that every synchronization
// member in src/serve, src/net, src/runtime and src/admit participates in
// these annotations (or carries a reasoned `lock-free` tag).
//
// SHMD_CV_WAITS_ON is ours, not clang's: the analysis has no model for
// condition variables, so the macro expands to nothing everywhere and
// exists purely as a machine-checked (R6) declaration of which mutex a
// condition variable's waiters hold.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SHMD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SHMD_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC do not implement TSA
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define SHMD_CAPABILITY(x) SHMD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define SHMD_SCOPED_CAPABILITY SHMD_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed with `x` held.
#define SHMD_GUARDED_BY(x) SHMD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed with `x` held.
#define SHMD_PT_GUARDED_BY(x) SHMD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held.
#define SHMD_REQUIRES(...) SHMD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define SHMD_ACQUIRE(...) SHMD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define SHMD_RELEASE(...) SHMD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define SHMD_TRY_ACQUIRE(ret, ...) \
  SHMD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking public entry points).
#define SHMD_EXCLUDES(...) SHMD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis' benefit) that a capability is held.
#define SHMD_ASSERT_CAPABILITY(x) SHMD_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define SHMD_RETURN_CAPABILITY(x) SHMD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function deliberately outside the analysis. Every use
/// should say why in a comment.
#define SHMD_NO_THREAD_SAFETY_ANALYSIS SHMD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Lint-only (expands to nothing on every compiler): declares the mutex a
/// condition variable's waiters hold. Clang TSA cannot model condition
/// variables; shmd-lint R6 requires this marker on every CondVar member in
/// the concurrency-bearing trees so the association is at least recorded
/// and reviewed. Example:
///
///   util::CondVar not_empty_ SHMD_CV_WAITS_ON(mu_);
#define SHMD_CV_WAITS_ON(x)
