// Annotated synchronization primitives: the project's lockable types.
//
// Clang Thread Safety Analysis (thread_annotations.hpp) tracks
// capabilities only on types that declare them, and libstdc++'s std::mutex
// does not — a std::lock_guard over a std::mutex is invisible to the
// analysis, so every GUARDED_BY member would falsely warn. These thin
// wrappers carry the attributes and delegate everything to the standard
// primitives, so they cost nothing at runtime (every method is a single
// inlined forwarding call), stay fully visible to TSan, and make
// `-Wthread-safety -Werror` a meaningful gate.
//
// Idioms the analysis can follow (and the ones it cannot):
//
//   MutexLock lock(mu_);                 // scoped acquire, checked
//   while (!ready_) cv_.wait(mu_);       // explicit wait loop, checked
//   cv_.wait(lock, [&] { ... });         // NOT offered: a capturing
//                                        // predicate is analyzed as its
//                                        // own unannotated function, so
//                                        // every guarded read inside it
//                                        // would warn. Write the loop.
//
// notify_one/notify_all intentionally take no capability: waking waiters
// after releasing the mutex is legal (and how most call sites here do it).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace shmd::util {

/// std::mutex with capability annotations. Satisfies Lockable, so generic
/// code (std::lock_guard) still works — but prefer MutexLock, which the
/// analysis checks.
class SHMD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SHMD_ACQUIRE() { mu_.lock(); }
  void unlock() SHMD_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SHMD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Underlying std::mutex — for CondVar's adopt-lock bridge only. Not
  /// annotated: going through native() bypasses the analysis.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over a Mutex (the annotated std::lock_guard). Acquires on
/// construction, releases on destruction; the analysis verifies both ends.
class SHMD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SHMD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SHMD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable whose wait() states its mutex contract in the
/// signature: wait(mu) requires mu held, releases it while sleeping, and
/// re-acquires before returning — the net effect the analysis needs (held
/// at entry, held at exit) expressed with SHMD_REQUIRES. Callers write the
/// standard explicit loop:
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep until notified, re-acquire `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mu) SHMD_REQUIRES(mu) {
    // Adopt the already-held native mutex for the std::condition_variable
    // protocol, then release the unique_lock's ownership claim so the
    // MutexLock at the call site keeps sole responsibility for unlocking.
    std::unique_lock<std::mutex> native_lock(mu.native(), std::adopt_lock);
    cv_.wait(native_lock);
    (void)native_lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace shmd::util
