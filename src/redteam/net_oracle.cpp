#include "redteam/net_oracle.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/scoring_service.hpp"

namespace shmd::redteam {

namespace {

/// A reply that is not a scored result is a campaign-fatal condition:
/// report exactly what the server said instead of fabricating a label.
[[noreturn]] void throw_rejection(const net::Reply& reply) {
  if (reply.error.has_value()) {
    throw std::runtime_error("NetOracle: server rejected query: " + reply.error->message);
  }
  throw std::runtime_error("NetOracle: unexpected reply frame type " +
                           std::to_string(static_cast<unsigned>(reply.type)));
}

void require_scored(std::uint8_t outcome) {
  if (outcome != static_cast<std::uint8_t>(serve::RequestOutcome::kScored)) {
    throw std::runtime_error("NetOracle: request completed without a verdict (outcome " +
                             std::to_string(static_cast<unsigned>(outcome)) + ")");
  }
}

}  // namespace

NetOracle::NetOracle(net::NetClient& client, NetOracleConfig config)
    : client_(&client), config_(config) {
  if (config_.pipeline_depth == 0) {
    throw std::invalid_argument("NetOracle: pipeline_depth must be >= 1");
  }
  client_->set_recv_deadline(config_.recv_timeout);
}

std::uint64_t NetOracle::send_query(const trace::FeatureSet& features) {
  const std::vector<std::vector<double>>& windows = features.windows(config_.features);
  net::ScoreRequest req;
  req.view = static_cast<std::uint8_t>(config_.features.view);
  req.period = static_cast<std::uint32_t>(config_.features.period);
  req.deadline_us = config_.deadline_us;
  req.width = windows.empty() ? 0 : windows.front().size();
  req.windows = windows;
  return config_.use_verdict_frames ? client_->send_verdict(req) : client_->send_score(req);
}

attack::OracleReply NetOracle::to_oracle_reply(const net::Reply& reply) const {
  attack::OracleReply out;
  if (reply.verdict.has_value()) {
    require_scored(reply.verdict->outcome);
    out.decisions = reply.verdict->decisions;
    out.verdict = reply.verdict->verdict;
    out.epoch_id = reply.verdict->epoch_id;
    return out;  // decision-only: scores stay empty, as deployed
  }
  if (reply.result.has_value()) {
    require_scored(reply.result->outcome);
    out.decisions.reserve(reply.result->scores.size());
    for (const double s : reply.result->scores) out.decisions.push_back(s >= config_.threshold);
    out.verdict = reply.result->verdict;
    out.epoch_id = reply.result->epoch_id;
    out.scores = reply.result->scores;  // trusted channel leaks scores
    return out;
  }
  throw_rejection(reply);
}

attack::OracleReply NetOracle::do_query(const trace::FeatureSet& features) {
  const std::uint64_t id = send_query(features);
  const net::Reply reply = client_->recv_reply();
  if (reply.request_id != id) {
    throw std::runtime_error("NetOracle: out-of-order reply to a synchronous query");
  }
  return to_oracle_reply(reply);
}

std::vector<attack::OracleReply> NetOracle::do_query_many(
    std::span<const trace::FeatureSet* const> batch) {
  // Sliding-window pipelining over one connection. The service stamps
  // admission seq in wire order, so the k-th request sent here is the
  // k-th accepted request regardless of depth — replies may complete out
  // of order, which is why they are re-keyed by request id before the
  // base class folds them into the decision hash in QUERY order.
  std::vector<attack::OracleReply> replies(batch.size());
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(config_.pipeline_depth * 2);
  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < batch.size()) {
    while (sent < batch.size() && sent - received < config_.pipeline_depth) {
      index_of.emplace(send_query(*batch[sent]), sent);
      ++sent;
    }
    const net::Reply reply = client_->recv_reply();
    const auto it = index_of.find(reply.request_id);
    if (it == index_of.end()) {
      throw std::runtime_error("NetOracle: reply to a request id never issued");
    }
    replies[it->second] = to_oracle_reply(reply);
    index_of.erase(it);
    ++received;
  }
  return replies;
}

}  // namespace shmd::redteam
