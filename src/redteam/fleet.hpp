// Fleet: cross-device evasion transfer (§IX, "Calibration").
//
// Undervolting faults are a property of the individual die: the paper
// measures fault onset between −103 mV and −145 mV *depending on the
// chip and temperature*, which is why every deployment is calibrated
// per device. That variability is itself a defense-in-depth property —
// an attacker who reverse-engineers ONE device's stochastic boundary
// holds a proxy of that die's error rate, not the fleet's.
//
// This module models a fleet as N sampled DeviceProfiles all programmed
// with the SAME rail offset — the offset the defender calibrated on a
// reference device for a target error rate. Process variation then gives
// every other die a different effective error rate at that offset, so
// evasive malware crafted against the reference device meets a subtly
// different boundary on each peer. measure() ships one crafted evasive
// set through a per-device oracle (in-process replicas, or NetOracles
// against N served instances) and reports per-device transfer — the
// cross-device row of BENCH_attack.json.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/transferability.hpp"
#include "trace/dataset.hpp"
#include "volt/device_profile.hpp"

namespace shmd::redteam {

/// One fleet member: its silicon, and what the calibrated rail offset
/// does to it.
struct FleetDevice {
  std::size_t index = 0;
  volt::DeviceProfile profile;
  /// Fleet-wide rail programming (mV, negative = undervolt), calibrated
  /// on device 0 for the defender's target error rate.
  double offset_mv = 0.0;
  /// This die's effective per-MAC error rate at that offset.
  double error_rate = 0.0;
  /// True when the shared offset would freeze this die — such a device
  /// cannot serve and is excluded from measurement (but still reported,
  /// because a fleet rollout that freezes silicon is a finding).
  bool frozen = false;
};

/// Per-device outcome of shipping one crafted evasive set.
struct FleetDeviceOutcome {
  FleetDevice device;
  attack::TransferabilityResult transfer;
  std::uint64_t queries_used = 0;
  std::uint64_t decision_hash = 0;
};

/// Sample `n_devices` dies (deterministic in profile_seed; device i uses
/// profile_seed + i), calibrate the rail on device 0 so ITS error rate is
/// `calibrated_er` at `temp_c`, and report what that shared offset does
/// to every die.
[[nodiscard]] std::vector<FleetDevice> sample_fleet(std::size_t n_devices,
                                                    std::uint64_t profile_seed,
                                                    double calibrated_er, double temp_c);

/// Builds the query channel to one device's victim — an InProcessOracle
/// for simulation-only campaigns, or a NetOracle bound to that device's
/// served instance for the over-the-wire fleet.
using OracleFactory =
    std::function<std::unique_ptr<attack::QueryOracle>(const FleetDevice&)>;

/// Ship `crafted` (one evasive set, built against the reference device's
/// proxy) to every non-frozen device and measure per-device transfer.
/// Frozen devices appear in the result with an empty measurement.
[[nodiscard]] std::vector<FleetDeviceOutcome> measure_fleet_transfer(
    const trace::Dataset& dataset, const attack::CraftOutcome& crafted,
    std::span<const FleetDevice> fleet, const OracleFactory& make_oracle,
    const attack::EvasionConfig& evasion = {}, int detection_rounds = 1);

}  // namespace shmd::redteam
