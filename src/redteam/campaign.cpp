#include "redteam/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hmd/stochastic_hmd.hpp"
#include "serve/epoch.hpp"

namespace shmd::redteam {

nn::Network served_reference_network(std::uint64_t seed) {
  // Must stay in lockstep with shmd-served (examples/shmd_served.cpp
  // builds its detector through this function): topology or seeding drift
  // here silently breaks every --connect campaign's parity check.
  const std::vector<std::size_t> topo{16, 32, 16, 1};
  return nn::Network(topo, nn::Activation::kSigmoid, nn::Activation::kSigmoid,
                     static_cast<unsigned>(seed));
}

// ------------------------------------------------------------ controllers

InProcessEpochController::InProcessEpochController(attack::InProcessOracle& oracle,
                                                   std::vector<double> schedule)
    : oracle_(&oracle), schedule_(std::move(schedule)) {
  if (schedule_.empty()) {
    throw std::invalid_argument("InProcessEpochController: empty schedule");
  }
}

std::uint64_t InProcessEpochController::roll() {
  return oracle_->install_error_rate(schedule_[next_++ % schedule_.size()]);
}

ServiceEpochController::ServiceEpochController(serve::ScoringService& service,
                                               nn::Network network,
                                               trace::FeatureConfig features,
                                               std::vector<double> schedule)
    : service_(&service), network_(std::move(network)), features_(features),
      schedule_(std::move(schedule)) {
  if (schedule_.empty()) {
    throw std::invalid_argument("ServiceEpochController: empty schedule");
  }
}

std::uint64_t ServiceEpochController::roll() {
  const hmd::StochasticHmd moved(network_, features_,
                                 schedule_[next_++ % schedule_.size()]);
  return service_->install_epoch(serve::make_epoch(moved));
}

// ---------------------------------------------------------- RollingOracle

RollingOracle::RollingOracle(attack::QueryOracle& inner, EpochController* controller,
                             std::uint64_t period)
    : inner_(&inner), controller_(controller), period_(period) {}

void RollingOracle::note_queries(std::uint64_t n) {
  if (period_ == 0 || controller_ == nullptr) return;
  since_roll_ += n;
  while (since_roll_ >= period_) {
    (void)controller_->roll();
    ++rolls_;
    since_roll_ -= period_;
  }
}

attack::OracleReply RollingOracle::do_query(const trace::FeatureSet& features) {
  attack::OracleReply reply = inner_->query(features);
  note_queries(1);
  return reply;
}

std::vector<attack::OracleReply> RollingOracle::do_query_many(
    std::span<const trace::FeatureSet* const> batch) {
  if (period_ == 0 || controller_ == nullptr) return inner_->query_many(batch);
  // Split at roll boundaries so a roll never lands mid-pipeline: the
  // chunk before it has all its replies in hand (query_many blocks for
  // them) before the epoch moves, on every transport.
  std::vector<attack::OracleReply> replies;
  replies.reserve(batch.size());
  std::size_t at = 0;
  while (at < batch.size()) {
    const std::uint64_t until_roll = period_ - since_roll_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch.size() - at, until_roll));
    std::vector<attack::OracleReply> chunk =
        inner_->query_many(batch.subspan(at, take));
    for (attack::OracleReply& reply : chunk) replies.push_back(std::move(reply));
    note_queries(take);
    at += take;
  }
  return replies;
}

// --------------------------------------------------------------- Campaign

CampaignResult Campaign::run(attack::QueryOracle& victim, EpochController* controller,
                             std::span<const std::size_t> query_indices,
                             std::span<const std::size_t> test_indices,
                             std::span<const std::size_t> malware_indices) const {
  RollingOracle oracle(victim, controller, config_.epoch_period_queries);
  if (config_.query_budget > 0) oracle.set_budget(config_.query_budget);

  // Budget layout: the effectiveness measurement (one query per test
  // program) and the transfer measurement (worst case detection_rounds
  // per malware program) are reserved up front; whatever remains buys
  // labels. Truncating the TRAINING set — rather than letting a query
  // mid-stage throw — keeps a budgeted campaign a weaker attacker, not a
  // crashed one.
  const std::uint64_t repeat =
      config_.re.repeat_queries > 0 ? static_cast<std::uint64_t>(config_.re.repeat_queries) : 1;
  const std::uint64_t rounds =
      config_.detection_rounds > 0 ? static_cast<std::uint64_t>(config_.detection_rounds) : 1;
  const std::uint64_t reserved =
      static_cast<std::uint64_t>(test_indices.size()) +
      static_cast<std::uint64_t>(malware_indices.size()) * rounds;
  std::size_t n_train = query_indices.size();
  if (config_.query_budget > 0) {
    if (config_.query_budget < reserved + repeat) {
      throw std::invalid_argument(
          "Campaign: query budget cannot cover the reserved measurements plus one "
          "labeled program");
    }
    n_train = static_cast<std::size_t>(
        std::min<std::uint64_t>(n_train, (config_.query_budget - reserved) / repeat));
  }
  const std::vector<std::size_t> train_indices(query_indices.begin(),
                                               query_indices.begin() +
                                                   static_cast<std::ptrdiff_t>(n_train));

  const attack::ReverseEngineer re(*dataset_);
  const attack::ReverseEngineeringResult proxy =
      re.run(oracle, train_indices, test_indices, config_.re);

  attack::EvasionConfig evasion = config_.evasion;
  if (config_.calibrate_craft_threshold) evasion.craft_threshold = proxy.craft_threshold;
  const attack::TransferabilityEval eval(*dataset_, evasion, config_.detection_rounds);
  const attack::CraftOutcome crafted =
      eval.craft(*proxy.proxy, malware_indices, config_.re.proxy_configs);

  CampaignResult result;
  result.transfer = eval.measure(oracle, crafted);
  result.re_effectiveness = proxy.effectiveness;
  result.train_programs = train_indices.size();
  result.label_queries = static_cast<std::uint64_t>(train_indices.size()) * repeat;
  result.queries_used = oracle.queries_used();
  result.epochs_rolled = oracle.rolls();
  result.decision_hash = oracle.decision_hash();
  return result;
}

}  // namespace shmd::redteam
