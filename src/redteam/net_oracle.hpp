// NetOracle: the attack::QueryOracle that actually crosses a socket.
//
// Everything below attack/ treats the victim as an abstract query channel;
// this class is the channel's deployed form — a live shmd-served daemon
// reached through net::NetClient. It is the top of the layer DAG on
// purpose: redteam may include attack, net, and serve, so the adaptive
// adversary pipeline (reverse-engineer → craft → measure) runs unchanged
// whether the oracle is an in-process replica or this wire-backed one,
// and the two are bit-identical for a fixed service seed (the parity
// property tests/redteam_test.cpp and CI's attack-smoke job pin down).
//
// Transport discipline:
//   * decision-only by default — queries ride kVerdict frames and replies
//     expose per-window decisions, never raw scores (the §V threat
//     model); score-leaking kScore mode exists for trusted ablations;
//   * query_many() pipelines up to `pipeline_depth` requests in flight on
//     the one connection, then reorders replies by request id, so the
//     observed labels are independent of server completion order while
//     wall-clock stays round-trip-bound, not request-bound;
//   * every in-protocol rejection (kShed, kClosed, policy refusals) and
//     every non-scored outcome throws — a red-team campaign must never
//     silently count a dropped query as a benign verdict.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "attack/oracle.hpp"
#include "net/client.hpp"
#include "trace/dataset.hpp"

namespace shmd::redteam {

struct NetOracleConfig {
  /// Feature view/period the victim epoch serves; queries ship this
  /// program's windows under exactly this key.
  trace::FeatureConfig features;
  /// kVerdict (decision-only, the deployed channel) when true; kScore
  /// (raw scores, trusted endpoints only) when false.
  bool use_verdict_frames = true;
  /// Receive deadline per blocking read (0 = wait forever). Applied to
  /// the client on construction — the dead-daemon guard for unattended
  /// campaigns.
  std::chrono::milliseconds recv_timeout{0};
  /// Relative per-request deadline shipped in the request (0 = none).
  std::uint32_t deadline_us = 0;
  /// Max requests in flight during query_many().
  std::size_t pipeline_depth = 32;
  /// Decision threshold used to derive per-window decisions in kScore
  /// mode (kVerdict replies carry server-side decisions already).
  double threshold = 0.5;
};

class NetOracle final : public attack::QueryOracle {
 public:
  /// `client` must already be connected; the oracle borrows it (one
  /// oracle per connection — request ids and reply order are per-socket
  /// state).
  NetOracle(net::NetClient& client, NetOracleConfig config);

 protected:
  [[nodiscard]] attack::OracleReply do_query(const trace::FeatureSet& features) override;
  [[nodiscard]] std::vector<attack::OracleReply> do_query_many(
      std::span<const trace::FeatureSet* const> batch) override;

 private:
  [[nodiscard]] std::uint64_t send_query(const trace::FeatureSet& features);
  [[nodiscard]] attack::OracleReply to_oracle_reply(const net::Reply& reply) const;

  net::NetClient* client_;
  NetOracleConfig config_;
};

}  // namespace shmd::redteam
