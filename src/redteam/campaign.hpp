// Campaign: the end-to-end adaptive adversary loop against a live victim.
//
// The paper's evaluation (§VII) measures each attack stage in isolation;
// a deployment review needs the whole kill chain run against the moving
// target as one budgeted campaign:
//
//   1. label  — query the victim on attacker-held programs through a
//               QueryOracle, observing decisions only;
//   2. train  — fit a proxy on the observed labels (ReverseEngineer);
//   3. craft  — mutate malware until the proxy clears it (EvasionAttack,
//               zero victim contact);
//   4. ship   — measure which evasive samples transfer to the real
//               victim, again through the oracle.
//
// while the defender re-rolls the stochastic operating point UNDERNEATH
// the campaign — modeled here as an epoch roll every N oracle queries
// (RollingOracle + EpochController), the query-clock analogue of
// shmd-served's wall-clock --epoch-period-ms. Query-count pacing keeps
// campaigns deterministic: the k-th query always lands on the same epoch
// for a fixed (seed, schedule, period), in-process or over the wire, so
// the bit-parity guarantee extends to rolling victims.
//
// The oracle is the ONLY victim contact in all four stages, which is what
// makes the budget accounting and the cross-transport parity hash honest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/evasion.hpp"
#include "attack/oracle.hpp"
#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "nn/network.hpp"
#include "serve/scoring_service.hpp"
#include "trace/dataset.hpp"

namespace shmd::redteam {

/// The topology shmd-served deploys ({16, 32, 16, 1}, sigmoid throughout),
/// seeded identically — shared here so red-team tooling can replicate a
/// daemon's boundary bit-for-bit from its --seed alone.
[[nodiscard]] nn::Network served_reference_network(std::uint64_t seed);

/// Feature key the reference daemon serves.
inline constexpr trace::FeatureConfig kServedFeatureConfig{trace::FeatureView::kInsnCategory,
                                                           2048};

/// Rolls the victim's operating point. Implementations move whichever
/// victim the campaign targets; roll() returns the newly stamped epoch id
/// so schedules can be cross-checked between transports.
class EpochController {
 public:
  EpochController() = default;
  EpochController(const EpochController&) = delete;
  EpochController& operator=(const EpochController&) = delete;
  virtual ~EpochController() = default;

  virtual std::uint64_t roll() = 0;
};

/// Moves an InProcessOracle through an error-rate schedule (cycled).
class InProcessEpochController final : public EpochController {
 public:
  InProcessEpochController(attack::InProcessOracle& oracle, std::vector<double> schedule);
  std::uint64_t roll() override;

 private:
  attack::InProcessOracle* oracle_;
  std::vector<double> schedule_;
  std::size_t next_ = 0;
};

/// Moves a live ScoringService through the same schedule: each roll
/// installs a fresh epoch over the same network/feature config. Epoch ids
/// advance exactly as InProcessOracle's (initial point = 1, rolls stamp
/// 2, 3, ...), so a rolling wire campaign stays bit-identical to its
/// in-process twin.
class ServiceEpochController final : public EpochController {
 public:
  ServiceEpochController(serve::ScoringService& service, nn::Network network,
                         trace::FeatureConfig features, std::vector<double> schedule);
  std::uint64_t roll() override;

 private:
  serve::ScoringService* service_;
  nn::Network network_;
  trace::FeatureConfig features_;
  std::vector<double> schedule_;
  std::size_t next_ = 0;
};

/// Decorator that rolls the victim every `period` queries. Batches are
/// split at roll boundaries: the queries before a roll complete (replies
/// received) before the roll happens, matching what a wire campaign
/// observes — pre-roll requests score under the old epoch on both
/// transports. period = 0 (or a null controller) disables rolling.
class RollingOracle final : public attack::QueryOracle {
 public:
  RollingOracle(attack::QueryOracle& inner, EpochController* controller, std::uint64_t period);

  [[nodiscard]] std::uint64_t rolls() const noexcept { return rolls_; }

 protected:
  [[nodiscard]] attack::OracleReply do_query(const trace::FeatureSet& features) override;
  [[nodiscard]] std::vector<attack::OracleReply> do_query_many(
      std::span<const trace::FeatureSet* const> batch) override;

 private:
  void note_queries(std::uint64_t n);

  attack::QueryOracle* inner_;
  EpochController* controller_;
  std::uint64_t period_;
  std::uint64_t since_roll_ = 0;
  std::uint64_t rolls_ = 0;
};

struct CampaignConfig {
  /// Proxy model, label rule, repeat queries, proxy feature configs.
  attack::ReverseEngineerConfig re;
  attack::EvasionConfig evasion;
  /// Total victim queries the campaign may spend (0 = unlimited). The
  /// label stage is truncated to whatever the budget leaves after the
  /// effectiveness and transfer measurements are reserved.
  std::uint64_t query_budget = 0;
  /// Roll the victim's epoch every this many queries (0 = static victim).
  std::uint64_t epoch_period_queries = 0;
  /// Detection rounds per shipped sample (see TransferabilityEval).
  int detection_rounds = 1;
  /// Re-target the evasion threshold from the trained proxy's calibrated
  /// craft threshold (what the benches do) instead of the static default.
  bool calibrate_craft_threshold = true;
};

struct CampaignResult {
  /// Proxy/victim agreement on the testing fold.
  double re_effectiveness = 0.0;
  /// Programs actually labeled after budget truncation.
  std::size_t train_programs = 0;
  std::uint64_t label_queries = 0;
  attack::TransferabilityResult transfer;
  std::uint64_t queries_used = 0;
  std::uint64_t epochs_rolled = 0;
  /// FNV-1a digest of every observed reply, in query order — equal
  /// between an in-process and an over-the-wire run of the same campaign
  /// iff the victim behaved bit-identically.
  std::uint64_t decision_hash = 0;
};

class Campaign {
 public:
  Campaign(const trace::Dataset& dataset, CampaignConfig config)
      : dataset_(&dataset), config_(config) {}

  /// Run the full loop against `victim`. `controller` (may be null) is
  /// invoked by the query-clock roller; all victim contact is charged
  /// against config.query_budget. Throws std::invalid_argument when the
  /// budget cannot cover even the reserved measurements plus one labeled
  /// program.
  [[nodiscard]] CampaignResult run(attack::QueryOracle& victim, EpochController* controller,
                                   std::span<const std::size_t> query_indices,
                                   std::span<const std::size_t> test_indices,
                                   std::span<const std::size_t> malware_indices) const;

 private:
  const trace::Dataset* dataset_;
  CampaignConfig config_;
};

}  // namespace shmd::redteam
