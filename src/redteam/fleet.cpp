#include "redteam/fleet.hpp"

#include <stdexcept>

#include "volt/volt_fault_model.hpp"

namespace shmd::redteam {

std::vector<FleetDevice> sample_fleet(std::size_t n_devices, std::uint64_t profile_seed,
                                      double calibrated_er, double temp_c) {
  if (n_devices == 0) throw std::invalid_argument("sample_fleet: n_devices must be >= 1");
  std::vector<FleetDevice> fleet;
  fleet.reserve(n_devices);
  // The defender calibrates the rail on device 0 (the reference die) for
  // the target error rate, then programs the SAME offset fleet-wide —
  // the realistic rollout, since per-device calibration is exactly the
  // burden §IX flags. Every peer die answers at whatever error rate its
  // own silicon yields at that depth.
  const volt::DeviceProfile reference = volt::DeviceProfile::sample(profile_seed);
  const double offset_mv =
      volt::VoltFaultModel(reference).offset_for_error_rate(calibrated_er, temp_c);
  for (std::size_t i = 0; i < n_devices; ++i) {
    FleetDevice device;
    device.index = i;
    device.profile = volt::DeviceProfile::sample(profile_seed + i);
    device.offset_mv = offset_mv;
    const volt::VoltFaultModel model(device.profile);
    device.frozen = model.freezes(offset_mv, temp_c);
    device.error_rate = device.frozen ? 0.0 : model.fault_probability(offset_mv, temp_c);
    fleet.push_back(device);
  }
  return fleet;
}

std::vector<FleetDeviceOutcome> measure_fleet_transfer(
    const trace::Dataset& dataset, const attack::CraftOutcome& crafted,
    std::span<const FleetDevice> fleet, const OracleFactory& make_oracle,
    const attack::EvasionConfig& evasion, int detection_rounds) {
  const attack::TransferabilityEval eval(dataset, evasion, detection_rounds);
  std::vector<FleetDeviceOutcome> outcomes;
  outcomes.reserve(fleet.size());
  for (const FleetDevice& device : fleet) {
    FleetDeviceOutcome outcome;
    outcome.device = device;
    if (!device.frozen) {
      const std::unique_ptr<attack::QueryOracle> oracle = make_oracle(device);
      outcome.transfer = eval.measure(*oracle, crafted);
      outcome.queries_used = oracle->queries_used();
      outcome.decision_hash = oracle->decision_hash();
    }
    outcomes.push_back(outcome);
  }
  return outcomes;
}

}  // namespace shmd::redteam
