#include "attack/composite_proxy.hpp"

#include <algorithm>
#include <stdexcept>

namespace shmd::attack {

CompositeProxy::CompositeProxy(std::vector<Part> parts) : parts_(std::move(parts)) {
  if (parts_.empty()) throw std::invalid_argument("CompositeProxy: need >= 1 part");
  for (const Part& p : parts_) {
    if (!p.model) throw std::invalid_argument("CompositeProxy: null part model");
    if (p.dim == 0) throw std::invalid_argument("CompositeProxy: zero-dim part");
  }
}

double CompositeProxy::recalibrate(double score, double threshold) {
  threshold = std::clamp(threshold, 1e-6, 1.0 - 1e-6);
  if (score <= threshold) return 0.5 * score / threshold;
  return 0.5 + 0.5 * (score - threshold) / (1.0 - threshold);
}

double CompositeProxy::predict(std::span<const double> x, nn::ArithmeticContext& ctx) const {
  double worst = 0.0;
  for (const Part& p : parts_) {
    if (p.offset + p.dim > x.size()) {
      throw std::invalid_argument("CompositeProxy::predict: input too short for part slice");
    }
    worst = std::max(
        worst, recalibrate(p.model->predict(x.subspan(p.offset, p.dim), ctx), p.threshold));
  }
  return worst;
}

void CompositeProxy::fit(std::span<const nn::TrainSample> /*data*/) {
  throw std::logic_error("CompositeProxy: fit the parts individually before assembly");
}

bool CompositeProxy::differentiable() const noexcept {
  return std::all_of(parts_.begin(), parts_.end(),
                     [](const Part& p) { return p.model->differentiable(); });
}

}  // namespace shmd::attack
