// CompositeProxy: the attacker's model of a randomized ensemble.
//
// Against an RHMD the attacker knows the construction's feature vectors
// (§VII.C: the proxy is built "using all the feature vectors used in the
// construction"). A single model over concatenated views approximates the
// ensemble *average* — but evading the average still loses to whichever
// base detector was not fooled. The effective attacker instead trains one
// proxy per view and treats the ensemble as the MAX over them: a window
// only counts as benign when every per-view proxy agrees. Driving the
// composite score down therefore drives every base boundary down.
#pragma once

#include <memory>
#include <vector>

#include "nn/classifier.hpp"

namespace shmd::attack {

class CompositeProxy final : public nn::Classifier {
 public:
  struct Part {
    std::unique_ptr<nn::Classifier> model;
    std::size_t offset = 0;  ///< slice start within the concatenated input
    std::size_t dim = 0;     ///< slice length
    /// Calibrated decision threshold. Per-view models fitted to ensemble
    /// mixture labels are systematically miscalibrated (a benign-looking
    /// memory window often carries a malware label because a *different*
    /// view's model flagged that epoch), so the attacker picks, per part,
    /// the threshold that best reproduces the queried labels and the
    /// composite rescales scores so that threshold maps to 0.5.
    double threshold = 0.5;
  };

  /// Piecewise-linear rescale mapping `threshold` to 0.5 (0→0, 1→1).
  [[nodiscard]] static double recalibrate(double score, double threshold);

  explicit CompositeProxy(std::vector<Part> parts);

  /// Max over the per-view proxies, each reading its own slice of the
  /// concatenated feature vector. The context reaches every part, so a
  /// composite of undervolted detectors stays fault-covered.
  using nn::Classifier::predict;
  [[nodiscard]] double predict(std::span<const double> x,
                               nn::ArithmeticContext& ctx) const override;

  /// Fitting happens per part before construction; a composite refuses
  /// blanket fit() calls.
  void fit(std::span<const nn::TrainSample> data) override;

  [[nodiscard]] std::string_view name() const noexcept override { return "composite-max"; }
  [[nodiscard]] bool differentiable() const noexcept override;

  [[nodiscard]] std::size_t part_count() const noexcept { return parts_.size(); }
  [[nodiscard]] const nn::Classifier& part(std::size_t i) const { return *parts_.at(i).model; }

 private:
  std::vector<Part> parts_;
};

}  // namespace shmd::attack
