#include "attack/whitebox.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace shmd::attack {

WhiteBoxFeatureAttack::WhiteBoxFeatureAttack(WhiteBoxConfig config) : config_(config) {
  if (config_.gradient_samples < 1 || config_.verify_samples < 1) {
    throw std::invalid_argument("WhiteBoxFeatureAttack: sample counts must be >= 1");
  }
  if (config_.max_steps < 1) {
    throw std::invalid_argument("WhiteBoxFeatureAttack: max_steps must be >= 1");
  }
  if (config_.epsilon <= 0.0 || config_.step <= 0.0) {
    throw std::invalid_argument("WhiteBoxFeatureAttack: epsilon/step must be positive");
  }
}

std::vector<double> WhiteBoxFeatureAttack::project_simplex(std::span<const double> x) {
  // Euclidean projection (Held et al.): sort descending, find the largest
  // k with u_k + (1 - sum_{i<=k} u_i)/k > 0, shift and clip.
  std::vector<double> u(x.begin(), x.end());
  std::sort(u.begin(), u.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumulative += u[i];
    const double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      theta = candidate;
      k = i + 1;
    }
  }
  if (k == 0) {
    // Degenerate input: fall back to the uniform point.
    return std::vector<double>(x.size(), 1.0 / static_cast<double>(x.size()));
  }
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::max(0.0, x[i] - theta);
  }
  return out;
}

WhiteBoxResult WhiteBoxFeatureAttack::attack(QueryFn query, std::span<const double> x0) const {
  if (x0.empty()) throw std::invalid_argument("WhiteBoxFeatureAttack: empty input");

  WhiteBoxResult result;
  result.adversarial.assign(x0.begin(), x0.end());
  std::vector<double> x(x0.begin(), x0.end());

  const auto averaged_query = [&](std::span<const double> point, int samples) {
    double sum = 0.0;
    for (int s = 0; s < samples; ++s) sum += query(point);
    result.queries += static_cast<std::size_t>(samples);
    return sum / static_cast<double>(samples);
  };
  const auto l1_from_origin = [&](const std::vector<double>& point) {
    double d = 0.0;
    for (std::size_t i = 0; i < point.size(); ++i) d += std::abs(point[i] - x0[i]);
    return d;
  };

  std::vector<double> gradient(x.size());
  std::vector<double> probe(x.size());
  for (int step_idx = 0; step_idx < config_.max_steps; ++step_idx) {
    result.steps = step_idx + 1;

    // Success check on the averaged live score.
    const double score = averaged_query(x, config_.verify_samples);
    result.final_score = score;
    if (score < config_.target_score) {
      result.evaded = true;
      break;
    }

    // Finite-difference gradient estimate over live queries.
    for (std::size_t i = 0; i < x.size(); ++i) {
      probe = x;
      probe[i] = x[i] + config_.epsilon;
      const double up = averaged_query(probe, config_.gradient_samples);
      probe[i] = x[i] - config_.epsilon;
      const double down = averaged_query(probe, config_.gradient_samples);
      gradient[i] = (up - down) / (2.0 * config_.epsilon);
    }

    // Descend and project back onto the simplex; enforce the L1 budget by
    // backtracking toward the origin point when exceeded.
    for (std::size_t i = 0; i < x.size(); ++i) x[i] -= config_.step * gradient[i];
    x = project_simplex(x);
    double distance = l1_from_origin(x);
    if (distance > config_.max_l1_distance) {
      const double blend = config_.max_l1_distance / distance;
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = x0[i] + blend * (x[i] - x0[i]);
      }
      x = project_simplex(x);
      distance = l1_from_origin(x);
    }
    result.adversarial = x;
    result.l1_distance = distance;
  }
  return result;
}

}  // namespace shmd::attack
