// Evasive-malware generation (§V, §VII.B): the second attack stage.
//
// Given a reverse-engineered proxy, the attacker mutates a malware binary
// so the proxy classifies it benign, then ships it hoping the evasion
// *transfers* to the real victim. Following the RHMD methodology the paper
// adopts ("we use our evasion framework to inject instructions to evade
// it"), the mutation operator is **add-only instruction injection**: the
// malicious payload's own instructions are never removed — extra
// instructions of chosen categories are interleaved to reshape the
// observed instruction-category mix. Functionality is preserved by
// construction.
//
// Search: iterated greedy. Each round estimates, for every candidate
// category, how the program's mean feature vector would move if a chunk of
// that category were injected (an analytic dilution model — cheap, and
// usable even against the non-differentiable DT proxy), injects a real
// chunk of the best category, and re-extracts true features. The attack
// succeeds when the proxy's majority verdict over windows flips to benign.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/classifier.hpp"
#include "trace/dataset.hpp"

namespace shmd::attack {

struct EvasionConfig {
  /// Injection budget relative to the original trace length. Evasive
  /// malware that doubles its own dynamic footprint is already pushing
  /// plausibility; the budget is the attacker's stealth/effort constraint
  /// and the main reason noisy proxies hurt so much — with limited
  /// injection there is no room to overshoot a misplaced boundary.
  double max_injection_fraction = 1.0;
  /// Instructions injected per round, relative to the detection period.
  /// Injection is *targeted*: each round picks the worst-scoring window
  /// and pads inside it, instead of diluting the whole trace uniformly.
  double chunk_window_fraction = 0.30;
  int max_rounds = 150;
  /// Deployment rule the attacker assumes: the detector flags a program
  /// when >= this fraction of windows score malicious (majority vote).
  double vote_fraction = 0.50;
  /// Keep injecting until at most this fraction of proxy windows is still
  /// flagged. The gap below vote_fraction is the attacker's safety margin
  /// against proxy/victim disagreement; a *minimal* margin keeps the
  /// injected footprint small (every injected instruction costs the
  /// attacker stealth), which is why evasive samples end up parked close
  /// to the boundary — where a moving-target defense hurts them most.
  double margin_fraction = 0.20;
  /// Conservative score threshold used while crafting: a window counts as
  /// "still flagged" above this (below the real 0.5 decision threshold),
  /// so windows are pushed clearly into benign territory rather than
  /// parked at 0.499 — margin in *score* that survives proxy/victim model
  /// mismatch.
  double craft_threshold = 0.42;
  std::uint64_t seed = 0xE7A51ULL;
  /// Mimicry mix: a probability distribution over the 16 instruction
  /// categories (typically the mean benign profile measured on the
  /// attacker's own fold — see benign_category_mix()). When non-empty,
  /// crafting may inject *mixture* chunks drawn from this profile in
  /// addition to single-category chunks. Mixture padding is what defeats
  /// multi-view detectors: it drags every feature view toward the benign
  /// centroid at once, where single-category padding creates windows
  /// unlike any real program.
  std::vector<double> mimicry_mix;
};

struct EvasionResult {
  bool proxy_evaded = false;
  std::vector<trace::Instruction> trace;  ///< mutated instruction stream
  std::size_t injected = 0;
  double final_proxy_score = 1.0;
  int rounds = 0;
};

class EvasionAttack {
 public:
  explicit EvasionAttack(EvasionConfig config = {});

  /// Craft an evasive variant of `original` against `proxy`, which reads
  /// the concatenation of `proxy_configs` (all sharing one period).
  [[nodiscard]] EvasionResult craft(std::span<const trace::Instruction> original,
                                    const nn::Classifier& proxy,
                                    std::span<const trace::FeatureConfig> proxy_configs) const;

  /// Mean proxy score over the windows of `trace` (the quantity the attack
  /// drives below 0.5).
  [[nodiscard]] static double proxy_program_score(
      std::span<const trace::Instruction> trace, const nn::Classifier& proxy,
      std::span<const trace::FeatureConfig> proxy_configs);

  /// Inject `count` synthetic instructions of `category` at uniformly
  /// random positions within [begin, end) of the stream (whole stream by
  /// default; deterministic in `seed`). Exposed for tests.
  [[nodiscard]] static std::vector<trace::Instruction> inject(
      std::span<const trace::Instruction> trace, trace::InsnCategory category,
      std::size_t count, std::uint64_t seed, std::size_t begin = 0,
      std::size_t end = SIZE_MAX);

  /// Mixture variant: each injected instruction's category is drawn from
  /// `mix` (a distribution over the 16 categories).
  [[nodiscard]] static std::vector<trace::Instruction> inject_mix(
      std::span<const trace::Instruction> trace, std::span<const double> mix,
      std::size_t count, std::uint64_t seed, std::size_t begin = 0,
      std::size_t end = SIZE_MAX);

 private:
  EvasionConfig config_;
};

/// Mean instruction-category frequency profile of the *benign* programs in
/// `indices` (measured at `period`) — the attacker's mimicry target,
/// computed from data the attacker legitimately owns.
[[nodiscard]] std::vector<double> benign_category_mix(const trace::Dataset& dataset,
                                                      std::span<const std::size_t> indices,
                                                      std::size_t period);

}  // namespace shmd::attack
