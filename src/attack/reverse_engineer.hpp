// Reverse engineering (§V, §VII.A): the first stage of the black-box
// evasion pipeline.
//
// The attacker queries the victim HMD with programs it controls, records
// the victim's *observed* decisions (which, for a Stochastic-HMD, are
// noisy samples of a moving boundary), and trains a proxy model on those
// labels. Effectiveness is measured on the held-out testing fold as the
// agreement between the proxy and the victim's underlying (noise-free)
// boundary — the quantity Fig. 3 reports.
//
// Proxy model classes per the paper: MLP, logistic regression, and
// decision tree.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "attack/oracle.hpp"
#include "hmd/detector.hpp"
#include "nn/classifier.hpp"
#include "trace/dataset.hpp"

namespace shmd::attack {

enum class ProxyKind : std::uint8_t { kMlp = 0, kLr, kDt };

[[nodiscard]] std::string_view proxy_kind_name(ProxyKind kind);

struct ReverseEngineerConfig {
  ProxyKind kind = ProxyKind::kMlp;
  /// Feature configurations the proxy observes, concatenated. For single-
  /// model victims this is the victim's own config; for RHMD victims it is
  /// every config in the construction at the epoch period ("we
  /// reverse-engineer each RHMD construction using all the feature vectors
  /// used in the construction", §VII.C).
  std::vector<trace::FeatureConfig> proxy_configs;
  std::uint64_t seed = 0xA77AC4ULL;
  /// MLP proxy hidden widths.
  std::vector<std::size_t> mlp_hidden = {24, 12};
  /// With multiple proxy configs (RHMD victims), train one proxy per view
  /// and combine them with a max — evading the composite then means
  /// evading *every* base boundary. Off by default: the stronger RHMD
  /// attacker is repeat-query union learning (below); the composite is
  /// kept as an ablation.
  bool per_view_composite = false;
  /// Query each window this many times. A randomized ensemble's
  /// randomness is a small FINITE set: repeated queries enumerate it, and
  /// with the kAny label rule the attacker learns the *union* of all base
  /// boundaries — evading that union evades every base model. Undervolting
  /// noise is continuous and operand-dependent; repetition just samples
  /// more noise, which is exactly the asymmetry that makes Stochastic-HMDs
  /// harder to reverse-engineer.
  int repeat_queries = 1;
  enum class LabelRule : std::uint8_t {
    kSingle = 0,  ///< one query, its verdict is the label (the paper's attacker)
    kAny,         ///< label malware if ANY repeat flagged (union learning)
    kMajority,    ///< majority of repeats (noise-averaging adaptive attacker)
  };
  LabelRule label_rule = LabelRule::kSingle;
};

struct ReverseEngineeringResult {
  std::unique_ptr<nn::Classifier> proxy;
  /// Test-fold agreement between proxy and the victim's nominal boundary.
  double effectiveness = 0.0;
  /// Number of label queries issued against the (live) victim.
  std::size_t query_count = 0;
  /// Attacker's calibrated crafting target: the 75th percentile of the
  /// proxy's scores over windows the victim labeled benign (clamped to
  /// [0.30, 0.46]). Driving malware windows below this score puts them
  /// squarely inside the score range the victim treats as benign —
  /// meaningful even for composite proxies whose absolute scale is
  /// distorted by ensemble-mixture labels.
  double craft_threshold = 0.42;
};

class ReverseEngineer {
 public:
  explicit ReverseEngineer(const trace::Dataset& dataset) : dataset_(&dataset) {}

  /// Query the victim behind `oracle` on the programs of `query_indices`
  /// (victim-training or attacker-training fold, per the two attack
  /// scenarios of §VII.A), train the proxy, and score it on
  /// `test_indices`. All victim contact — labeling AND the effectiveness
  /// measurement — goes through the oracle, so the same campaign runs
  /// in-process or over the wire and is charged against one budget.
  [[nodiscard]] ReverseEngineeringResult run(QueryOracle& oracle,
                                             std::span<const std::size_t> query_indices,
                                             std::span<const std::size_t> test_indices,
                                             const ReverseEngineerConfig& config) const;

  /// Convenience: wrap a live detector in a DetectorOracle (score-leaking
  /// legacy channel; decisions at threshold 0.5 — identical labels).
  [[nodiscard]] ReverseEngineeringResult run(hmd::Detector& victim,
                                             std::span<const std::size_t> query_indices,
                                             std::span<const std::size_t> test_indices,
                                             const ReverseEngineerConfig& config) const;

  /// Build (features, label) pairs by querying the victim — exposed for
  /// tests and ablations. Repeat queries for one program are pipelined
  /// through QueryOracle::query_many.
  [[nodiscard]] std::vector<nn::TrainSample> query_victim(
      QueryOracle& oracle, std::span<const std::size_t> indices,
      std::span<const trace::FeatureConfig> proxy_configs, int repeat_queries = 1,
      ReverseEngineerConfig::LabelRule rule =
          ReverseEngineerConfig::LabelRule::kSingle) const;
  [[nodiscard]] std::vector<nn::TrainSample> query_victim(
      hmd::Detector& victim, std::span<const std::size_t> indices,
      std::span<const trace::FeatureConfig> proxy_configs, int repeat_queries = 1,
      ReverseEngineerConfig::LabelRule rule =
          ReverseEngineerConfig::LabelRule::kSingle) const;

 private:
  const trace::Dataset* dataset_;
};

/// Instantiate an (unfitted) proxy classifier of `kind`.
[[nodiscard]] std::unique_ptr<nn::Classifier> make_proxy(const ReverseEngineerConfig& config,
                                                         std::size_t input_dim);

}  // namespace shmd::attack
