// QueryOracle: the attacker's only window onto the victim.
//
// The paper's threat model (§V) is black-box: the adversary submits
// programs and observes *decisions* — not scores, not weights, not the
// operating point. Everything in src/attack used to shortcut that by
// calling hmd::Detector directly; this interface makes the query channel
// explicit so the same RE/evasion pipeline runs unchanged against an
// in-process detector, a request-anchored replica of the scoring
// service, or (via redteam::NetOracle, one layer up) a live daemon over
// src/net — and so query budgets are enforced where queries happen.
//
// Replies are decision-only by default: OracleReply::scores stays empty
// unless the concrete oracle explicitly leaks scores (DetectorOracle in
// legacy mode). That matches both the deployed wire protocol
// (kVerdictResult) and the bit-parity requirement between in-process and
// over-the-wire campaigns: identical observed labels, identical proxy
// training sets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "faultsim/fault_injector.hpp"
#include "hmd/detector.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "nn/arithmetic.hpp"
#include "nn/network.hpp"
#include "trace/dataset.hpp"

namespace shmd::attack {

/// What one query buys the attacker: the victim's observed per-window
/// decisions for a single program, sampled from whatever boundary the
/// victim is running right now.
struct OracleReply {
  /// Per-window decisions at the victim's (hidden) threshold.
  std::vector<bool> decisions;
  /// Program-level fraction-vote verdict.
  bool verdict = false;
  /// Operating point that answered (0 when the victim does not expose
  /// epochs). Attackers may not rely on it for crafting — it exists so
  /// campaigns can report boundary churn — but it folds into the
  /// decision hash, keeping the parity probe honest about *when* each
  /// answer was sampled, not just what it said.
  std::uint64_t epoch_id = 0;
  /// Raw scores. EMPTY in decision-only deployments (the default); only
  /// legacy score-leaking oracles fill it.
  std::vector<double> scores;
};

/// Thrown when a query would exceed the configured budget. The query is
/// not issued: a budgeted attacker simply runs out.
class OracleBudgetExhausted : public std::runtime_error {
 public:
  OracleBudgetExhausted()
      : std::runtime_error("QueryOracle: query budget exhausted") {}
};

class QueryOracle {
 public:
  QueryOracle() = default;
  QueryOracle(const QueryOracle&) = delete;
  QueryOracle& operator=(const QueryOracle&) = delete;
  virtual ~QueryOracle() = default;

  /// Submit one program; blocks until the victim answers. Charges one
  /// query against the budget (throws OracleBudgetExhausted first when
  /// none remain).
  [[nodiscard]] OracleReply query(const trace::FeatureSet& features);

  /// Submit a batch. Semantically a loop over query() — same replies,
  /// same order, same accounting — but wire-backed oracles overlap the
  /// round trips (pipelining). Charges batch.size() queries up front.
  [[nodiscard]] std::vector<OracleReply> query_many(
      std::span<const trace::FeatureSet* const> batch);

  /// Cap total queries (std::nullopt = unlimited). May be lowered or
  /// raised mid-campaign; accounting is cumulative per oracle.
  void set_budget(std::optional<std::uint64_t> budget) noexcept { budget_ = budget; }
  [[nodiscard]] std::optional<std::uint64_t> budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t queries_used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    if (!budget_) return ~0ULL;
    return *budget_ > used_ ? *budget_ - used_ : 0;
  }

  /// FNV-1a digest over every observed reply (decision bits, verdict,
  /// epoch id, in query order). Two campaigns that saw bit-identical
  /// victim behavior have equal hashes — the cross-transport parity
  /// probe CI compares between an InProcessOracle and a NetOracle.
  [[nodiscard]] std::uint64_t decision_hash() const noexcept { return hash_; }

 protected:
  [[nodiscard]] virtual OracleReply do_query(const trace::FeatureSet& features) = 0;
  /// Default: sequential do_query loop. Override to pipeline.
  [[nodiscard]] virtual std::vector<OracleReply> do_query_many(
      std::span<const trace::FeatureSet* const> batch);

 private:
  void charge(std::uint64_t n);
  void observe(const OracleReply& reply) noexcept;

  std::optional<std::uint64_t> budget_;
  std::uint64_t used_ = 0;
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
};

/// Legacy adapter: wraps any hmd::Detector as an oracle. By default it
/// leaks raw scores (exactly what the pre-oracle attack code observed),
/// so existing benches keep their semantics; pass leak_scores = false
/// for the deployed decision-only channel.
class DetectorOracle final : public QueryOracle {
 public:
  explicit DetectorOracle(hmd::Detector& victim, double threshold = 0.5,
                          double vote_fraction = hmd::Detector::kDefaultVoteFraction,
                          bool leak_scores = true)
      : victim_(&victim), threshold_(threshold), vote_fraction_(vote_fraction),
        leak_scores_(leak_scores) {}

 protected:
  [[nodiscard]] OracleReply do_query(const trace::FeatureSet& features) override;

 private:
  hmd::Detector* victim_;
  double threshold_;
  double vote_fraction_;
  bool leak_scores_;
};

/// Request-anchored replica of the scoring service, decision-only.
///
/// Scores the k-th query exactly as serve::ScoringService scores the
/// k-th accepted request for the same base seed: private FaultInjector
/// re-seeded from rng::stream_seed(seed, k) before each forward pass,
/// batch-of-one tile through Network::forward_batch, fraction-vote
/// verdict at the epoch threshold. A campaign against this oracle is
/// therefore bit-identical to the same campaign against a freshly
/// started daemon over the wire — the property tests/redteam_test.cpp
/// and the CI attack-smoke job pin down.
///
/// install_error_rate() is the in-process analogue of
/// ScoringService::install_epoch: it moves the boundary and stamps the
/// next epoch id, so query-count-driven epoch rolling (redteam::Campaign)
/// reproduces the daemon's schedule deterministically.
class InProcessOracle final : public QueryOracle {
 public:
  InProcessOracle(const hmd::StochasticHmd& victim, std::uint64_t service_seed,
                  double threshold = 0.5,
                  double vote_fraction = hmd::Detector::kDefaultVoteFraction);

  /// Swap the operating point (error rate); returns the stamped epoch id
  /// (initial point is epoch 1, mirroring install_epoch).
  std::uint64_t install_error_rate(double error_rate);
  [[nodiscard]] std::uint64_t epoch_id() const noexcept { return epoch_id_; }
  [[nodiscard]] double error_rate() const noexcept { return injector_.error_rate(); }

 protected:
  [[nodiscard]] OracleReply do_query(const trace::FeatureSet& features) override;

 private:
  nn::Network net_;
  trace::FeatureConfig config_;
  faultsim::FaultInjector injector_;
  nn::ForwardScratch scratch_;
  std::vector<double> tile_;  ///< reused windows-major flatten buffer
  double threshold_;
  double vote_fraction_;
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 0;  ///< admission counter (queue stamps from 0)
  std::uint64_t epoch_id_ = 1;
};

}  // namespace shmd::attack
