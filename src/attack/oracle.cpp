#include "attack/oracle.hpp"

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::attack {

namespace {

/// FNV-1a, one byte at a time — the same digest idiom the loadgens use
/// for score hashes.
constexpr std::uint64_t fnv1a(std::uint64_t hash, std::uint8_t byte) noexcept {
  return (hash ^ byte) * 0x100000001B3ULL;
}

}  // namespace

OracleReply QueryOracle::query(const trace::FeatureSet& features) {
  charge(1);
  OracleReply reply = do_query(features);
  observe(reply);
  return reply;
}

std::vector<OracleReply> QueryOracle::query_many(
    std::span<const trace::FeatureSet* const> batch) {
  charge(batch.size());
  std::vector<OracleReply> replies = do_query_many(batch);
  for (const OracleReply& reply : replies) observe(reply);
  return replies;
}

std::vector<OracleReply> QueryOracle::do_query_many(
    std::span<const trace::FeatureSet* const> batch) {
  std::vector<OracleReply> replies;
  replies.reserve(batch.size());
  for (const trace::FeatureSet* features : batch) replies.push_back(do_query(*features));
  return replies;
}

void QueryOracle::charge(std::uint64_t n) {
  if (budget_ && used_ + n > *budget_) throw OracleBudgetExhausted();
  used_ += n;
}

void QueryOracle::observe(const OracleReply& reply) noexcept {
  for (const bool d : reply.decisions) hash_ = fnv1a(hash_, d ? 1 : 0);
  hash_ = fnv1a(hash_, reply.verdict ? 1 : 0);
  for (int b = 0; b < 8; ++b) {
    hash_ = fnv1a(hash_, static_cast<std::uint8_t>(reply.epoch_id >> (8 * b)));
  }
}

OracleReply DetectorOracle::do_query(const trace::FeatureSet& features) {
  OracleReply reply;
  std::vector<double> scores = victim_->window_scores(features);
  reply.decisions.resize(scores.size());
  for (std::size_t w = 0; w < scores.size(); ++w) {
    reply.decisions[w] = scores[w] >= threshold_;
  }
  reply.verdict = hmd::fraction_vote(scores, threshold_, vote_fraction_);
  if (leak_scores_) reply.scores = std::move(scores);
  return reply;
}

InProcessOracle::InProcessOracle(const hmd::StochasticHmd& victim,
                                 std::uint64_t service_seed, double threshold,
                                 double vote_fraction)
    : net_(victim.network()), config_(victim.feature_config()),
      injector_(victim.error_rate(), victim.fault_distribution(), service_seed),
      threshold_(threshold), vote_fraction_(vote_fraction), seed_(service_seed) {}

std::uint64_t InProcessOracle::install_error_rate(double error_rate) {
  injector_.set_error_rate(error_rate);
  return ++epoch_id_;
}

OracleReply InProcessOracle::do_query(const trace::FeatureSet& features) {
  // Mirror of the ScoringService worker's scoring path, batch of one:
  // flatten the program's windows into a windows-major tile, re-anchor
  // the private fault stream at the admission sequence number, forward
  // the whole tile, vote. Any divergence here breaks the in-process vs
  // over-the-wire parity guarantee — change both or neither.
  const std::vector<std::vector<double>>& windows = features.windows(config_);
  const std::size_t in_dim = net_.input_dim();
  const std::size_t out_dim = net_.output_dim();
  tile_.clear();
  for (const std::vector<double>& window : windows) {
    if (window.size() != in_dim) {
      throw std::invalid_argument("InProcessOracle: window width != network input width");
    }
    tile_.insert(tile_.end(), window.begin(), window.end());
  }
  injector_.generator() = rng::Xoshiro256ss(rng::stream_seed(seed_, next_seq_++));
  injector_.reset_stats();
  nn::FaultyContext ctx(injector_);
  const std::span<const double> out =
      net_.forward_batch(tile_, windows.size(), ctx, scratch_);

  OracleReply reply;
  reply.epoch_id = epoch_id_;
  std::vector<double> scores(windows.size());
  reply.decisions.resize(windows.size());
  for (std::size_t r = 0; r < windows.size(); ++r) {
    scores[r] = out[r * out_dim];
    reply.decisions[r] = scores[r] >= threshold_;
  }
  reply.verdict = hmd::fraction_vote(scores, threshold_, vote_fraction_);
  // Decision-only: the deployed channel never leaks scores.
  return reply;
}

}  // namespace shmd::attack
