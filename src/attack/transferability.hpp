// Transferability evaluation (§VII.B): do evasive samples crafted against
// the proxy also evade the real victim?
//
// "transferability is defined by the percentage of evasive malware
//  designed to evade the reverse-engineered model that can also evade the
//  victim HMD's detection" — Fig. 4 reports that success rate; Fig. 5
// reports its complement (% of evasive malware *detected*).
//
// The evaluation is split in two halves: craft() runs entirely on the
// attacker's side (proxy only, zero victim queries) and measure() ships
// the surviving evasive samples through a QueryOracle — so one crafted
// set can be measured against many victims (the fleet cross-device
// scenario) and every victim contact is budget-accounted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/evasion.hpp"
#include "attack/oracle.hpp"
#include "hmd/detector.hpp"
#include "nn/classifier.hpp"
#include "trace/dataset.hpp"

namespace shmd::attack {

struct TransferabilityResult {
  std::size_t malware_tested = 0;   ///< malware programs attacked
  std::size_t proxy_evaded = 0;     ///< ...whose proxy evasion succeeded
  std::size_t transferred = 0;      ///< ...that then also evaded the victim
  std::size_t mean_injected = 0;    ///< average injected instructions (evaded set)

  /// Fig. 4's y-axis: evasive malware that beats the victim, among those
  /// that beat the proxy.
  [[nodiscard]] double success_rate() const noexcept {
    return proxy_evaded == 0
               ? 0.0
               : static_cast<double>(transferred) / static_cast<double>(proxy_evaded);
  }
  /// Fig. 5's y-axis.
  [[nodiscard]] double detected_rate() const noexcept {
    return proxy_evaded == 0 ? 1.0 : 1.0 - success_rate();
  }
};

/// One malware program that beat the proxy, ready to ship to a victim.
struct EvasiveSample {
  std::size_t index = 0;        ///< dataset index of the original program
  trace::FeatureSet features;   ///< extracted features of the evasive trace
  std::size_t injected = 0;     ///< benign instructions the attack inserted
};

/// Attacker-side output of the crafting stage.
struct CraftOutcome {
  std::size_t malware_tested = 0;       ///< programs attacked (denominator)
  std::vector<EvasiveSample> evasive;   ///< the proxy-evading survivors
};

class TransferabilityEval {
 public:
  /// `detection_rounds`: how many program-level detection rounds the
  /// victim gets while the shipped malware executes (default 1, matching
  /// the paper's single-decision transferability metric). HMDs monitor
  /// continuously, so the multi-round setting is exposed as an ablation:
  /// an evasive sample must survive EVERY round, and while a
  /// deterministic victim repeats its verdict, a stochastic victim
  /// re-samples its boundary each round — over a monitoring horizon any
  /// borderline sample is eventually caught.
  TransferabilityEval(const trace::Dataset& dataset, EvasionConfig evasion_config = {},
                      int detection_rounds = 1)
      : dataset_(&dataset), evasion_config_(evasion_config),
        detection_rounds_(detection_rounds) {}

  /// Attack every malware program in `indices` with `proxy` (no victim
  /// contact): per-program seeded evasion, survivors re-extracted at the
  /// dataset's periods.
  [[nodiscard]] CraftOutcome craft(const nn::Classifier& proxy,
                                   std::span<const std::size_t> indices,
                                   std::span<const trace::FeatureConfig> proxy_configs) const;

  /// Ship the crafted survivors through the oracle: each sample is
  /// queried `detection_rounds` times; one flagged verdict is a
  /// detection. Single-round measurement is pipelined via query_many.
  [[nodiscard]] TransferabilityResult measure(QueryOracle& oracle,
                                              const CraftOutcome& crafted) const;

  /// craft() + measure() against one victim.
  [[nodiscard]] TransferabilityResult run(
      QueryOracle& oracle, const nn::Classifier& proxy,
      std::span<const std::size_t> indices,
      std::span<const trace::FeatureConfig> proxy_configs) const;
  /// Convenience: wraps a live detector in a score-leaking DetectorOracle.
  [[nodiscard]] TransferabilityResult run(
      hmd::Detector& victim, const nn::Classifier& proxy,
      std::span<const std::size_t> indices,
      std::span<const trace::FeatureConfig> proxy_configs) const;

 private:
  const trace::Dataset* dataset_;
  EvasionConfig evasion_config_;
  int detection_rounds_;
};

}  // namespace shmd::attack
