#include "attack/transferability.hpp"

namespace shmd::attack {

TransferabilityResult TransferabilityEval::run(
    hmd::Detector& victim, const nn::Classifier& proxy, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs) const {
  TransferabilityResult result;
  std::size_t injected_total = 0;

  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset_->samples().at(idx);
    if (!sample.malware()) continue;
    ++result.malware_tested;

    EvasionConfig cfg = evasion_config_;
    cfg.seed = evasion_config_.seed ^ (0x9E3779B97F4A7C15ULL * (idx + 1));
    const EvasionAttack attack(cfg);
    const std::vector<trace::Instruction> original = dataset_->trace_of(idx);
    EvasionResult evasive = attack.craft(original, proxy, proxy_configs);
    if (!evasive.proxy_evaded) continue;
    ++result.proxy_evaded;
    injected_total += evasive.injected;

    // Ship the evasive sample: the victim re-classifies it every round for
    // as long as it executes; one flagged round is a detection.
    const trace::FeatureSet features =
        trace::extract_feature_set(evasive.trace, dataset_->config().periods);
    bool detected = false;
    for (int round = 0; round < detection_rounds_ && !detected; ++round) {
      detected = victim.detect(features);
    }
    if (!detected) ++result.transferred;
  }

  if (result.proxy_evaded > 0) result.mean_injected = injected_total / result.proxy_evaded;
  return result;
}

}  // namespace shmd::attack
