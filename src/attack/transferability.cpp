#include "attack/transferability.hpp"

namespace shmd::attack {

CraftOutcome TransferabilityEval::craft(
    const nn::Classifier& proxy, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs) const {
  CraftOutcome out;
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset_->samples().at(idx);
    if (!sample.malware()) continue;
    ++out.malware_tested;

    EvasionConfig cfg = evasion_config_;
    cfg.seed = evasion_config_.seed ^ (0x9E3779B97F4A7C15ULL * (idx + 1));
    const EvasionAttack attack(cfg);
    const std::vector<trace::Instruction> original = dataset_->trace_of(idx);
    EvasionResult evasive = attack.craft(original, proxy, proxy_configs);
    if (!evasive.proxy_evaded) continue;

    out.evasive.push_back(EvasiveSample{
        idx, trace::extract_feature_set(evasive.trace, dataset_->config().periods),
        evasive.injected});
  }
  return out;
}

TransferabilityResult TransferabilityEval::measure(QueryOracle& oracle,
                                                   const CraftOutcome& crafted) const {
  TransferabilityResult result;
  result.malware_tested = crafted.malware_tested;
  result.proxy_evaded = crafted.evasive.size();

  std::size_t injected_total = 0;
  for (const EvasiveSample& s : crafted.evasive) injected_total += s.injected;

  if (detection_rounds_ == 1) {
    // Single-decision metric: one pipelined batch, one verdict each.
    std::vector<const trace::FeatureSet*> batch;
    batch.reserve(crafted.evasive.size());
    for (const EvasiveSample& s : crafted.evasive) batch.push_back(&s.features);
    const std::vector<OracleReply> replies = oracle.query_many(batch);
    for (const OracleReply& reply : replies) {
      if (!reply.verdict) ++result.transferred;
    }
  } else {
    // Multi-round monitoring: the shipped sample is re-classified round
    // after round; one flagged round is a detection. Sequential per
    // sample so the victim's query order matches the pre-oracle code.
    for (const EvasiveSample& s : crafted.evasive) {
      bool detected = false;
      for (int round = 0; round < detection_rounds_ && !detected; ++round) {
        detected = oracle.query(s.features).verdict;
      }
      if (!detected) ++result.transferred;
    }
  }

  if (result.proxy_evaded > 0) result.mean_injected = injected_total / result.proxy_evaded;
  return result;
}

TransferabilityResult TransferabilityEval::run(
    QueryOracle& oracle, const nn::Classifier& proxy, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs) const {
  return measure(oracle, craft(proxy, indices, proxy_configs));
}

TransferabilityResult TransferabilityEval::run(
    hmd::Detector& victim, const nn::Classifier& proxy, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs) const {
  DetectorOracle oracle(victim);
  return run(oracle, proxy, indices, proxy_configs);
}

}  // namespace shmd::attack
