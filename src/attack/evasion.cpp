#include "attack/evasion.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "eval/data_adapter.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::attack {

namespace {

using trace::FeatureConfig;
using trace::FeatureView;
using trace::Instruction;
using trace::InsnCategory;

std::vector<std::vector<double>> extract_proxy_windows(
    std::span<const Instruction> trace, std::span<const FeatureConfig> configs) {
  std::vector<std::vector<std::vector<double>>> per_view;
  per_view.reserve(configs.size());
  for (const auto& c : configs) {
    per_view.push_back(trace::extract_windows(trace, c.view, c.period));
  }
  return eval::concat_views(per_view);
}

/// Expected per-instruction feature contribution of an injected
/// instruction of `category` for one view. Ratio-style features that an
/// injection leaves roughly untouched take the current mean value, so that
/// the dilution blend below is a no-op for them.
std::vector<double> category_contribution(FeatureView view, InsnCategory category,
                                          std::span<const double> current) {
  const trace::CategoryBehavior& b = trace::category_behavior(category);
  switch (view) {
    case FeatureView::kInsnCategory: {
      std::vector<double> phi(trace::kNumCategories, 0.0);
      phi[static_cast<std::size_t>(category)] = 1.0;
      return phi;
    }
    case FeatureView::kMemory: {
      std::vector<double> phi(current.begin(), current.end());
      const double pa = std::min(1.0, b.mem_read_prob + b.mem_write_prob);
      phi[0] = b.mem_read_prob;
      phi[1] = b.mem_write_prob;
      for (std::size_t s = 0; s < trace::kNumStrideBuckets; ++s) {
        // Stride fractions are ratios among accesses: injections pull them
        // toward the category's own stride mix in proportion to how often
        // the category touches memory.
        phi[2 + s] = pa > 0.0 ? b.stride_probs[s] : current[2 + s];
      }
      phi[7] = pa;
      return phi;
    }
    case FeatureView::kControlFlow: {
      std::vector<double> phi(current.begin(), current.end());
      const bool is_control = category == InsnCategory::kControlTransfer;
      phi[0] = is_control ? 1.0 : 0.0;
      if (is_control) {
        phi[1] = b.control_mix[0];
        phi[5] = b.control_mix[1];
        phi[3] = b.control_mix[2];
        phi[4] = b.control_mix[3];
        phi[2] = 0.68;  // injected branches mimic benign taken ratios
      }
      // Basic-block length (index 6) and taken-alternation (7) keep their
      // current values: the dilution model cannot express them usefully.
      return phi;
    }
  }
  throw std::invalid_argument("category_contribution: unknown view");
}

/// Dilution estimate: blend the current mean features toward the
/// category's contribution as if `m_new` of `n_total` instructions in each
/// window were injections of `category`.
std::vector<double> estimate_after_injection(std::span<const double> mean,
                                             std::span<const FeatureConfig> configs,
                                             InsnCategory category, double blend) {
  std::vector<double> estimate;
  estimate.reserve(mean.size());
  std::size_t offset = 0;
  for (const auto& c : configs) {
    const std::size_t dim = trace::view_dim(c.view);
    const std::span<const double> cur = mean.subspan(offset, dim);
    const std::vector<double> phi = category_contribution(c.view, category, cur);
    for (std::size_t i = 0; i < dim; ++i) {
      estimate.push_back((1.0 - blend) * cur[i] + blend * phi[i]);
    }
    offset += dim;
  }
  return estimate;
}

/// Mixture analogue: contribution is the mix-weighted average of the
/// per-category contributions.
std::vector<double> estimate_after_mix_injection(std::span<const double> mean,
                                                 std::span<const FeatureConfig> configs,
                                                 std::span<const double> mix, double blend) {
  std::vector<double> estimate;
  estimate.reserve(mean.size());
  std::size_t offset = 0;
  for (const auto& c : configs) {
    const std::size_t dim = trace::view_dim(c.view);
    const std::span<const double> cur = mean.subspan(offset, dim);
    std::vector<double> phi(dim, 0.0);
    for (std::size_t cat = 0; cat < trace::kNumCategories; ++cat) {
      if (mix[cat] <= 0.0) continue;
      const std::vector<double> part =
          category_contribution(c.view, static_cast<InsnCategory>(cat), cur);
      for (std::size_t i = 0; i < dim; ++i) phi[i] += mix[cat] * part[i];
    }
    for (std::size_t i = 0; i < dim; ++i) {
      estimate.push_back((1.0 - blend) * cur[i] + blend * phi[i]);
    }
    offset += dim;
  }
  return estimate;
}

InsnCategory sample_mix(std::span<const double> mix, rng::Xoshiro256ss& gen) {
  double u = gen.uniform01();
  for (std::size_t c = 0; c < trace::kNumCategories; ++c) {
    u -= mix[c];
    if (u < 0.0) return static_cast<InsnCategory>(c);
  }
  return InsnCategory::kDataMovement;
}

Instruction synthesize_instruction(InsnCategory category, rng::Xoshiro256ss& gen) {
  const trace::CategoryBehavior& b = trace::category_behavior(category);
  Instruction insn;
  insn.category = category;
  insn.mem_read = gen.bernoulli(b.mem_read_prob);
  insn.mem_write = gen.bernoulli(b.mem_write_prob);
  if (insn.mem_read || insn.mem_write) {
    double u = gen.uniform01();
    for (std::size_t s = 0; s < trace::kNumStrideBuckets; ++s) {
      u -= b.stride_probs[s];
      if (u < 0.0) {
        insn.stride_bucket = static_cast<std::uint8_t>(s);
        break;
      }
    }
  }
  if (category == InsnCategory::kControlTransfer) {
    double u = gen.uniform01();
    for (std::size_t k = 0; k < 4; ++k) {
      u -= b.control_mix[k];
      if (u < 0.0) {
        insn.control = static_cast<trace::ControlKind>(k + 1);
        break;
      }
    }
    if (insn.control == trace::ControlKind::kCondBranch) {
      // Injected branches mimic benign branch behavior (mostly-taken loop
      // back-edges): 50/50 outcomes would make padding-heavy windows stand
      // out to a control-flow-view detector as unlike any real program.
      insn.branch_taken = gen.bernoulli(0.68);
    }
  }
  return insn;
}

}  // namespace

EvasionAttack::EvasionAttack(EvasionConfig config) : config_(config) {
  if (config_.chunk_window_fraction <= 0.0) {
    throw std::invalid_argument("EvasionAttack: chunk_window_fraction must be positive");
  }
  if (config_.max_rounds <= 0) {
    throw std::invalid_argument("EvasionAttack: max_rounds must be positive");
  }
}

double EvasionAttack::proxy_program_score(std::span<const Instruction> trace,
                                          const nn::Classifier& proxy,
                                          std::span<const FeatureConfig> proxy_configs) {
  const auto windows = extract_proxy_windows(trace, proxy_configs);
  if (windows.empty()) throw std::invalid_argument("proxy_program_score: trace too short");
  double sum = 0.0;
  for (const auto& w : windows) sum += proxy.predict(w);
  return sum / static_cast<double>(windows.size());
}

std::vector<Instruction> EvasionAttack::inject(std::span<const Instruction> trace,
                                               InsnCategory category, std::size_t count,
                                               std::uint64_t seed, std::size_t begin,
                                               std::size_t end) {
  end = std::min(end, trace.size());
  begin = std::min(begin, end);
  rng::Xoshiro256ss gen(seed);
  // Sample insertion points (indices into the original stream, within
  // [begin, end]) and merge in one pass. Duplicates are fine — several
  // injections may land between the same pair of original instructions.
  std::vector<std::size_t> points(count);
  for (auto& p : points) p = begin + gen.below(end - begin + 1);
  std::sort(points.begin(), points.end());

  std::vector<Instruction> out;
  out.reserve(trace.size() + count);
  std::size_t next = 0;
  for (std::size_t src = 0; src <= trace.size(); ++src) {
    while (next < count && points[next] == src) {
      out.push_back(synthesize_instruction(category, gen));
      ++next;
    }
    if (src < trace.size()) out.push_back(trace[src]);
  }
  return out;
}

std::vector<Instruction> EvasionAttack::inject_mix(std::span<const Instruction> trace,
                                                   std::span<const double> mix,
                                                   std::size_t count, std::uint64_t seed,
                                                   std::size_t begin, std::size_t end) {
  if (mix.size() != trace::kNumCategories) {
    throw std::invalid_argument("inject_mix: mix must cover all categories");
  }
  end = std::min(end, trace.size());
  begin = std::min(begin, end);
  rng::Xoshiro256ss gen(seed);
  std::vector<std::size_t> points(count);
  for (auto& p : points) p = begin + gen.below(end - begin + 1);
  std::sort(points.begin(), points.end());

  std::vector<Instruction> out;
  out.reserve(trace.size() + count);
  std::size_t next = 0;
  for (std::size_t src = 0; src <= trace.size(); ++src) {
    while (next < count && points[next] == src) {
      out.push_back(synthesize_instruction(sample_mix(mix, gen), gen));
      ++next;
    }
    if (src < trace.size()) out.push_back(trace[src]);
  }
  return out;
}

std::vector<double> benign_category_mix(const trace::Dataset& dataset,
                                        std::span<const std::size_t> indices,
                                        std::size_t period) {
  std::vector<double> mix(trace::kNumCategories, 0.0);
  std::size_t windows = 0;
  const FeatureConfig config{FeatureView::kInsnCategory, period};
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset.samples().at(idx);
    if (sample.malware()) continue;
    for (const std::vector<double>& w : sample.features.windows(config)) {
      for (std::size_t c = 0; c < trace::kNumCategories; ++c) mix[c] += w[c];
      ++windows;
    }
  }
  if (windows == 0) throw std::invalid_argument("benign_category_mix: no benign programs");
  for (double& m : mix) m /= static_cast<double>(windows);
  return mix;
}

EvasionResult EvasionAttack::craft(std::span<const Instruction> original,
                                   const nn::Classifier& proxy,
                                   std::span<const FeatureConfig> proxy_configs) const {
  if (proxy_configs.empty()) throw std::invalid_argument("craft: no proxy configs");

  EvasionResult result;
  result.trace.assign(original.begin(), original.end());

  const std::size_t period = proxy_configs.front().period;
  const auto chunk = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.chunk_window_fraction * static_cast<double>(period)));
  const auto budget = static_cast<std::size_t>(config_.max_injection_fraction *
                                               static_cast<double>(original.size()));
  rng::Xoshiro256ss gen(config_.seed);

  for (int round = 0; round < config_.max_rounds; ++round) {
    result.rounds = round;
    const auto windows = extract_proxy_windows(result.trace, proxy_configs);
    double mean_score = 0.0;
    std::size_t flagged = 0;
    std::size_t worst = 0;
    double worst_score = -1.0;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const double s = proxy.predict(windows[w]);
      mean_score += s;
      if (s >= config_.craft_threshold) ++flagged;
      if (s > worst_score) {
        worst_score = s;
        worst = w;
      }
    }
    mean_score /= static_cast<double>(windows.size());
    result.final_proxy_score = mean_score;
    const double flagged_fraction =
        static_cast<double>(flagged) / static_cast<double>(windows.size());
    if (flagged_fraction <= config_.margin_fraction) break;
    if (result.injected + chunk > budget) break;

    // Targeted injection: pad inside the worst-scoring window. Candidates
    // are the 16 single categories plus (when configured) the benign
    // mimicry mixture, ranked by the dilution estimate on that window's
    // own features; `blend` is the injected fraction within the window.
    const double blend =
        static_cast<double>(chunk) / static_cast<double>(period + chunk);
    const bool have_mimicry = config_.mimicry_mix.size() == trace::kNumCategories;
    InsnCategory best_cat = InsnCategory::kDataMovement;
    bool use_mimicry = false;
    double best_est = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < trace::kNumCategories; ++c) {
      const auto cat = static_cast<InsnCategory>(c);
      const std::vector<double> est_features =
          estimate_after_injection(windows[worst], proxy_configs, cat, blend);
      const double est = proxy.predict(est_features);
      if (est < best_est) {
        best_est = est;
        best_cat = cat;
      }
    }
    if (have_mimicry) {
      const std::vector<double> est_features = estimate_after_mix_injection(
          windows[worst], proxy_configs, config_.mimicry_mix, blend);
      // Slight preference for mimicry on ties: it is the lower-variance
      // move (padding looks like real benign code in every view).
      if (proxy.predict(est_features) <= best_est + 0.02) use_mimicry = true;
    }
    // Occasionally explore a random category to escape estimate errors.
    if (!use_mimicry && gen.bernoulli(0.1)) {
      best_cat = static_cast<InsnCategory>(gen.below(trace::kNumCategories));
    }

    const std::size_t begin = worst * period;
    const std::size_t end = std::min(begin + period, result.trace.size());
    result.trace = use_mimicry
                       ? inject_mix(result.trace, config_.mimicry_mix, chunk, gen(), begin, end)
                       : inject(result.trace, best_cat, chunk, gen(), begin, end);
    result.injected += chunk;
  }

  // Final verdict against the assumed deployment rule: the proxy is evaded
  // when fewer than vote_fraction of windows remain flagged.
  const auto windows = extract_proxy_windows(result.trace, proxy_configs);
  std::size_t flagged = 0;
  double mean_score = 0.0;
  for (const auto& w : windows) {
    const double s = proxy.predict(w);
    mean_score += s;
    if (s >= 0.5) ++flagged;
  }
  result.final_proxy_score = mean_score / static_cast<double>(windows.size());
  result.proxy_evaded = static_cast<double>(flagged) <
                        config_.vote_fraction * static_cast<double>(windows.size());
  return result;
}

}  // namespace shmd::attack
