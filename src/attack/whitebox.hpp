// White-box feature-space attack: §I claim (ii) made testable.
//
// "These non-deterministic variations of the model lead to ... (ii) a
//  stochastic gradient over the input, which makes the estimation of the
//  gradient direction challenging for the adversary."
//
// This attacker is strictly stronger than the paper's black-box pipeline:
// it works directly in feature space (no instruction-realization
// constraint except the frequency simplex), and estimates the victim's
// gradient by finite differences over LIVE queries. Against a
// deterministic victim the estimate is exact; against a Stochastic-HMD
// every probe is a fresh noise sample, so the attacker must average
// `gradient_samples` queries per probe — and still descends a blurred
// landscape. The bench sweeping `gradient_samples` quantifies exactly how
// much query volume the undervolting noise extorts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace shmd::attack {

struct WhiteBoxConfig {
  /// Live queries averaged per probe point during gradient estimation.
  int gradient_samples = 1;
  /// Finite-difference probe radius.
  double epsilon = 0.02;
  /// Gradient-descent step size.
  double step = 0.15;
  int max_steps = 60;
  /// Success requires the (averaged) live score below this.
  double target_score = 0.45;
  /// Live queries averaged for the success check.
  int verify_samples = 5;
  /// Movement budget: L1 distance from the original feature point (the
  /// feature-space analogue of the injection budget).
  double max_l1_distance = 0.8;
  std::uint64_t seed = 0x3B17E0ULL;
};

struct WhiteBoxResult {
  bool evaded = false;
  std::vector<double> adversarial;  ///< final feature point
  std::size_t queries = 0;          ///< live victim queries consumed
  int steps = 0;
  double final_score = 1.0;
  double l1_distance = 0.0;
};

class WhiteBoxFeatureAttack {
 public:
  /// `query` returns one LIVE victim score for a feature vector (a fresh
  /// noise sample each call for stochastic victims).
  using QueryFn = std::function<double(std::span<const double>)>;

  explicit WhiteBoxFeatureAttack(WhiteBoxConfig config = {});

  /// Drive `x0` (a point on the probability simplex, e.g. an
  /// instruction-category frequency vector) toward the benign side of the
  /// victim's boundary by estimated-gradient descent, projecting every
  /// iterate back onto the simplex.
  [[nodiscard]] WhiteBoxResult attack(QueryFn query, std::span<const double> x0) const;

  /// Euclidean projection onto the probability simplex
  /// {x : x_i >= 0, sum x_i = 1}. Exposed for tests.
  [[nodiscard]] static std::vector<double> project_simplex(std::span<const double> x);

 private:
  WhiteBoxConfig config_;
};

}  // namespace shmd::attack
