#include "attack/reverse_engineer.hpp"

#include <algorithm>
#include <stdexcept>

#include "attack/composite_proxy.hpp"
#include "eval/data_adapter.hpp"
#include "nn/decision_tree.hpp"
#include "nn/logistic_regression.hpp"
#include "nn/mlp_classifier.hpp"

namespace shmd::attack {

std::string_view proxy_kind_name(ProxyKind kind) {
  switch (kind) {
    case ProxyKind::kMlp: return "mlp";
    case ProxyKind::kLr: return "lr";
    case ProxyKind::kDt: return "dt";
  }
  throw std::invalid_argument("proxy_kind_name: unknown kind");
}

std::unique_ptr<nn::Classifier> make_proxy(const ReverseEngineerConfig& config,
                                           std::size_t input_dim) {
  switch (config.kind) {
    case ProxyKind::kMlp: {
      std::vector<std::size_t> topology;
      topology.push_back(input_dim);
      topology.insert(topology.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
      topology.push_back(1);
      nn::TrainConfig train;
      train.algorithm = nn::TrainAlgorithm::kRprop;
      train.epochs = 120;
      train.patience = 0;  // no validation split inside the proxy
      return std::make_unique<nn::MlpClassifier>(std::move(topology), train, config.seed);
    }
    case ProxyKind::kLr:
      return std::make_unique<nn::LogisticRegression>();
    case ProxyKind::kDt:
      return std::make_unique<nn::DecisionTree>();
  }
  throw std::invalid_argument("make_proxy: unknown kind");
}

namespace {

/// Concatenated proxy feature vectors for one program, one per window at
/// the shared period of `configs`.
std::vector<std::vector<double>> proxy_windows(const trace::ProgramSample& sample,
                                               std::span<const trace::FeatureConfig> configs) {
  std::vector<std::vector<std::vector<double>>> per_view;
  per_view.reserve(configs.size());
  for (const auto& c : configs) per_view.push_back(sample.features.windows(c));
  return eval::concat_views(per_view);
}

}  // namespace

std::vector<nn::TrainSample> ReverseEngineer::query_victim(
    QueryOracle& oracle, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs, int repeat_queries,
    ReverseEngineerConfig::LabelRule rule) const {
  if (proxy_configs.empty()) throw std::invalid_argument("query_victim: no proxy configs");
  if (repeat_queries < 1) throw std::invalid_argument("query_victim: repeat_queries >= 1");
  for (const auto& c : proxy_configs) {
    if (c.period != proxy_configs.front().period) {
      throw std::invalid_argument("query_victim: proxy configs must share one period");
    }
  }
  // One batch for the whole labeling pass (program-major, repeat-minor):
  // a wire-backed oracle overlaps every round trip, an in-process one
  // answers sequentially in the same order — identical replies either
  // way. The labels the attacker sees are the victim's *observed*
  // decisions, randomness and all; repeated queries re-sample it.
  std::vector<const trace::FeatureSet*> batch;
  batch.reserve(indices.size() * static_cast<std::size_t>(repeat_queries));
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset_->samples().at(idx);
    for (int q = 0; q < repeat_queries; ++q) batch.push_back(&sample.features);
  }
  const std::vector<OracleReply> replies = oracle.query_many(batch);

  std::vector<nn::TrainSample> out;
  std::vector<int> flag_counts;
  std::size_t at = 0;
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset_->samples().at(idx);
    flag_counts.assign(replies[at].decisions.size(), 0);
    for (int q = 0; q < repeat_queries; ++q) {
      const OracleReply& reply = replies[at++];
      const std::size_t n = std::min(flag_counts.size(), reply.decisions.size());
      for (std::size_t w = 0; w < n; ++w) {
        if (reply.decisions[w]) ++flag_counts[w];
      }
    }
    std::vector<std::vector<double>> features = proxy_windows(sample, proxy_configs);
    const std::size_t n = std::min(flag_counts.size(), features.size());
    for (std::size_t w = 0; w < n; ++w) {
      double label = 0.0;
      switch (rule) {
        case ReverseEngineerConfig::LabelRule::kSingle:
        case ReverseEngineerConfig::LabelRule::kAny:
          label = flag_counts[w] > 0 ? 1.0 : 0.0;
          break;
        case ReverseEngineerConfig::LabelRule::kMajority:
          label = 2 * flag_counts[w] > repeat_queries ? 1.0 : 0.0;
          break;
      }
      out.push_back(nn::TrainSample{std::move(features[w]), label});
    }
  }
  return out;
}

std::vector<nn::TrainSample> ReverseEngineer::query_victim(
    hmd::Detector& victim, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> proxy_configs, int repeat_queries,
    ReverseEngineerConfig::LabelRule rule) const {
  DetectorOracle oracle(victim);
  return query_victim(oracle, indices, proxy_configs, repeat_queries, rule);
}

ReverseEngineeringResult ReverseEngineer::run(QueryOracle& oracle,
                                              std::span<const std::size_t> query_indices,
                                              std::span<const std::size_t> test_indices,
                                              const ReverseEngineerConfig& config) const {
  ReverseEngineeringResult result;
  const std::vector<nn::TrainSample> labeled = query_victim(
      oracle, query_indices, config.proxy_configs, config.repeat_queries, config.label_rule);
  if (labeled.empty()) throw std::invalid_argument("ReverseEngineer: no labeled windows");
  result.query_count = labeled.size() * static_cast<std::size_t>(config.repeat_queries);

  if (config.per_view_composite && config.proxy_configs.size() > 1) {
    // One proxy per view on its slice of the concatenated features, all
    // sharing the queried labels; combined with a max.
    std::vector<CompositeProxy::Part> parts;
    std::size_t offset = 0;
    std::size_t view_idx = 0;
    for (const trace::FeatureConfig& fc : config.proxy_configs) {
      const std::size_t dim = trace::view_dim(fc.view);
      std::vector<nn::TrainSample> slice;
      slice.reserve(labeled.size());
      for (const nn::TrainSample& s : labeled) {
        slice.push_back(nn::TrainSample{
            std::vector<double>(s.x.begin() + static_cast<std::ptrdiff_t>(offset),
                                s.x.begin() + static_cast<std::ptrdiff_t>(offset + dim)),
            s.y});
      }
      ReverseEngineerConfig part_config = config;
      part_config.seed = config.seed + 0x9E37 * (++view_idx);
      auto model = make_proxy(part_config, dim);
      model->fit(slice);
      // Calibrate: pick the threshold maximizing *balanced* accuracy
      // (mean of per-class agreement) against the queried labels. Raw
      // agreement would degenerate under the 5:1 malware prior — a
      // flag-everything threshold already scores ~83%.
      double best_threshold = 0.5;
      double best_balanced = -1.0;
      for (int t = 1; t < 20; ++t) {
        const double threshold = 0.05 * t;
        std::size_t tp = 0;
        std::size_t tn = 0;
        std::size_t pos = 0;
        std::size_t neg = 0;
        for (const nn::TrainSample& s : slice) {
          const bool says = model->predict(s.x) >= threshold;
          if (s.y > 0.5) {
            ++pos;
            if (says) ++tp;
          } else {
            ++neg;
            if (!says) ++tn;
          }
        }
        if (pos == 0 || neg == 0) break;  // degenerate labels: keep 0.5
        const double balanced = 0.5 * (static_cast<double>(tp) / static_cast<double>(pos) +
                                       static_cast<double>(tn) / static_cast<double>(neg));
        if (balanced > best_balanced) {
          best_balanced = balanced;
          best_threshold = threshold;
        }
      }
      parts.push_back(CompositeProxy::Part{std::move(model), offset, dim, best_threshold});
      offset += dim;
    }
    result.proxy = std::make_unique<CompositeProxy>(std::move(parts));
  } else {
    result.proxy = make_proxy(config, labeled.front().x.size());
    result.proxy->fit(labeled);
  }

  // Calibrated crafting target: where do benign-labeled windows live on
  // this proxy's score scale? For multi-view (ensemble) proxies the scale
  // is distorted by mixture labels, so the cap sits at the recalibrated
  // boundary itself.
  {
    std::vector<double> benign_scores;
    for (const nn::TrainSample& s : labeled) {
      if (s.y < 0.5) benign_scores.push_back(result.proxy->predict(s.x));
    }
    if (!benign_scores.empty()) {
      std::sort(benign_scores.begin(), benign_scores.end());
      const auto pos = static_cast<std::size_t>(0.75 *
                                                static_cast<double>(benign_scores.size() - 1));
      const double hi = config.proxy_configs.size() > 1 ? 0.50 : 0.60;
      result.craft_threshold = std::clamp(benign_scores[pos], 0.30, hi);
    }
  }

  // Effectiveness: agreement with the victim's *live* decisions on the
  // testing fold — §VII.A: "we use the testing set to evaluate the proxy
  // model performance". Against a Stochastic-HMD the victim's answers are
  // noisy samples of a moving boundary, so even a perfect replica of the
  // nominal model cannot score 100% — exactly the resistance property the
  // defense claims.
  std::size_t agree = 0;
  std::size_t total = 0;
  std::vector<const trace::FeatureSet*> test_batch;
  test_batch.reserve(test_indices.size());
  for (std::size_t idx : test_indices) {
    test_batch.push_back(&dataset_->samples().at(idx).features);
  }
  const std::vector<OracleReply> replies = oracle.query_many(test_batch);
  for (std::size_t i = 0; i < test_indices.size(); ++i) {
    const trace::ProgramSample& sample = dataset_->samples().at(test_indices[i]);
    const std::vector<std::vector<double>> features =
        proxy_windows(sample, config.proxy_configs);
    const std::size_t n = std::min(replies[i].decisions.size(), features.size());
    for (std::size_t w = 0; w < n; ++w) {
      const bool victim_says = replies[i].decisions[w];
      const bool proxy_says = result.proxy->classify(features[w]);
      agree += (victim_says == proxy_says) ? 1 : 0;
      ++total;
    }
  }
  result.effectiveness = total == 0 ? 0.0 : static_cast<double>(agree) / static_cast<double>(total);
  return result;
}

ReverseEngineeringResult ReverseEngineer::run(hmd::Detector& victim,
                                              std::span<const std::size_t> query_indices,
                                              std::span<const std::size_t> test_indices,
                                              const ReverseEngineerConfig& config) const {
  DetectorOracle oracle(victim);
  return run(oracle, query_indices, test_indices, config);
}

}  // namespace shmd::attack
