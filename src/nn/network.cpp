#include "nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "rng/xoshiro256ss.hpp"

namespace shmd::nn {

Network::Network(std::span<const std::size_t> topology, Activation hidden, Activation output,
                 std::uint64_t seed) {
  if (topology.size() < 2) throw std::invalid_argument("Network: topology needs >= 2 layers");
  for (std::size_t dim : topology) {
    if (dim == 0) throw std::invalid_argument("Network: zero-width layer");
  }
  rng::Xoshiro256ss gen(seed);
  layers_.reserve(topology.size() - 1);
  for (std::size_t l = 0; l + 1 < topology.size(); ++l) {
    Layer layer;
    layer.in_dim = topology[l];
    layer.out_dim = topology[l + 1];
    layer.activation = (l + 2 == topology.size()) ? output : hidden;
    layer.weights.resize(layer.in_dim * layer.out_dim);
    layer.biases.assign(layer.out_dim, 0.0);
    // Xavier/Glorot uniform: U(-r, r), r = sqrt(6 / (fan_in + fan_out)).
    const double r =
        std::sqrt(6.0 / static_cast<double>(layer.in_dim + layer.out_dim));
    for (double& w : layer.weights) w = gen.uniform(-r, r);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Network::input_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.front().in_dim;
}

std::size_t Network::output_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.back().out_dim;
}

std::size_t Network::mac_count() const noexcept {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.weights.size();
  return n;
}

std::size_t Network::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.weights.size() + l.biases.size();
  return n;
}

std::size_t Network::memory_bytes() const noexcept {
  return parameter_count() * sizeof(float);
}

std::vector<double> Network::forward(std::span<const double> input,
                                     ArithmeticContext& ctx) const {
  ForwardScratch scratch;
  const std::span<const double> out = forward(input, ctx, scratch);
  return std::vector<double>(out.begin(), out.end());
}

std::span<const double> Network::forward(std::span<const double> input, ArithmeticContext& ctx,
                                         ForwardScratch& scratch) const {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty network");
  if (input.size() != input_dim()) {
    throw std::invalid_argument("Network::forward: input dimension mismatch");
  }
  // Grow both ping-pong buffers to the widest activation once. The widest
  // width is cached in the scratch keyed on this network's identity, so
  // repeated calls skip the layer scan; resize() below then reuses
  // capacity and the hot loop never touches the heap. (Layer widths are
  // fixed after construction/load — training mutates weights, not shapes.)
  if (scratch.net_ != this) {
    std::size_t max_width = input.size();
    for (const Layer& layer : layers_) max_width = std::max(max_width, layer.out_dim);
    scratch.max_width_ = max_width;
    scratch.net_ = this;
  }
  scratch.a_.reserve(scratch.max_width_);
  scratch.b_.reserve(scratch.max_width_);
  std::vector<double>* current = &scratch.a_;
  std::vector<double>* next = &scratch.b_;
  current->assign(input.begin(), input.end());
  for (const Layer& layer : layers_) {
    next->resize(layer.out_dim);
    const double* in = current->data();
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      // One span-level call per output row: the context perturbs each
      // product per its fault model and accumulates exactly (§II — adders
      // never fault); the bias joins the exact accumulation.
      const double acc =
          layer.biases[o] + ctx.dot(&layer.weights[o * layer.in_dim], in, layer.in_dim);
      (*next)[o] = activate(layer.activation, acc);
    }
    std::swap(current, next);
  }
  return std::span<const double>(*current);
}

std::span<const double> Network::forward_batch(std::span<const double> x, std::size_t rows,
                                               ArithmeticContext& ctx,
                                               ForwardScratch& scratch) const {
  if (layers_.empty()) throw std::logic_error("Network::forward_batch: empty network");
  if (x.size() != rows * input_dim()) {
    throw std::invalid_argument("Network::forward_batch: tile size mismatch");
  }
  if (rows == 0) return {};
  // Same width cache as forward(), scaled by the tile height: both
  // ping-pong buffers grow to rows x widest-layer once, so a worker
  // scoring same-shaped tiles allocates nothing in steady state.
  if (scratch.net_ != this) {
    std::size_t max_width = input_dim();
    for (const Layer& layer : layers_) max_width = std::max(max_width, layer.out_dim);
    scratch.max_width_ = max_width;
    scratch.net_ = this;
  }
  scratch.a_.reserve(rows * scratch.max_width_);
  scratch.b_.reserve(rows * scratch.max_width_);
  std::vector<double>* current = &scratch.a_;
  std::vector<double>* next = &scratch.b_;
  const double* in = x.data();  // first layer reads the caller's tile directly
  for (const Layer& layer : layers_) {
    next->resize(rows * layer.out_dim);
    ctx.gemm(layer.weights.data(), layer.biases.data(), in, rows, layer.in_dim, layer.out_dim,
             next->data());
    // Activation is elementwise and exact — applying it after the whole
    // tile's GEMM reorders nothing a context could observe.
    for (double& v : *next) v = activate(layer.activation, v);
    in = next->data();
    std::swap(current, next);
  }
  return std::span<const double>(current->data(), rows * layers_.back().out_dim);
}

std::vector<double> Network::forward(std::span<const double> input) const {
  ExactContext exact;
  return forward(input, exact);
}

void Network::save(std::ostream& os) const {
  os << "SHMD-NET 1\n";
  os << layers_.size() + 1 << '\n';
  os << layers_.front().in_dim;
  for (const Layer& l : layers_) os << ' ' << l.out_dim;
  os << '\n';
  for (const Layer& l : layers_) os << activation_name(l.activation) << '\n';
  os.precision(17);
  for (const Layer& l : layers_) {
    for (double w : l.weights) os << w << ' ';
    os << '\n';
    for (double b : l.biases) os << b << ' ';
    os << '\n';
  }
  if (!os) throw std::runtime_error("Network::save: stream write failed");
}

Network Network::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (!is || magic != "SHMD-NET" || version != 1) {
    throw std::runtime_error("Network::load: bad header");
  }
  std::size_t n_dims = 0;
  is >> n_dims;
  if (!is || n_dims < 2 || n_dims > 64) throw std::runtime_error("Network::load: bad topology");
  // Each dimension must be a nonzero, sane width: the constructor rejects
  // zero-width layers, and an unbounded dim from a malformed file would
  // drive a multi-GB resize (or overflow in_dim * out_dim) below.
  constexpr std::size_t kMaxLayerDim = 1u << 16;
  std::vector<std::size_t> topology(n_dims);
  for (auto& d : topology) {
    if (!(is >> d)) throw std::runtime_error("Network::load: truncated topology");
    if (d == 0) throw std::runtime_error("Network::load: zero-width layer");
    if (d > kMaxLayerDim) {
      throw std::runtime_error("Network::load: layer width exceeds sane limit (65536)");
    }
  }
  std::vector<Activation> acts(n_dims - 1);
  for (auto& a : acts) {
    std::string name;
    is >> name;
    a = activation_from_name(name);
  }
  Network net;
  net.layers_.reserve(n_dims - 1);
  for (std::size_t l = 0; l + 1 < n_dims; ++l) {
    Layer layer;
    layer.in_dim = topology[l];
    layer.out_dim = topology[l + 1];
    layer.activation = acts[l];
    layer.weights.resize(layer.in_dim * layer.out_dim);
    layer.biases.resize(layer.out_dim);
    for (double& w : layer.weights) is >> w;
    for (double& b : layer.biases) is >> b;
    net.layers_.push_back(std::move(layer));
  }
  if (!is) throw std::runtime_error("Network::load: truncated stream");
  return net;
}

}  // namespace shmd::nn
