// Activation functions for the dense network (FANN-style selection).
#pragma once

#include <cstdint>
#include <string_view>

namespace shmd::nn {

enum class Activation : std::uint8_t {
  kSigmoid = 0,
  kTanh,
  kRelu,
  kLinear,
};

[[nodiscard]] std::string_view activation_name(Activation a);
[[nodiscard]] Activation activation_from_name(std::string_view name);

/// f(x)
[[nodiscard]] double activate(Activation a, double x);

/// f'(x) expressed in terms of the *output* y = f(x) where possible
/// (sigmoid/tanh), falling back to x for ReLU/linear. `x` is the
/// pre-activation, `y` the post-activation.
[[nodiscard]] double activate_derivative(Activation a, double x, double y);

}  // namespace shmd::nn
