// Binary logistic regression — the "simple" reverse-engineering proxy
// (§VII.A). Trained by full-batch gradient descent with L2 regularization.
#pragma once

#include <cstdint>

#include "nn/classifier.hpp"

namespace shmd::nn {

struct LogisticRegressionConfig {
  int epochs = 800;
  double learning_rate = 1.0;
  double l2 = 1e-4;
  /// Re-weight classes inversely to their frequency. The HMD corpora are
  /// heavily imbalanced (3000 malware vs 600 benign); without balancing,
  /// LR degenerates into a majority-class predictor.
  bool balance_classes = true;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  using Classifier::predict;
  [[nodiscard]] double predict(std::span<const double> x, ArithmeticContext& ctx) const override;
  void fit(std::span<const TrainSample> data) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "lr"; }
  [[nodiscard]] bool differentiable() const noexcept override { return true; }
  /// Analytic gradient: p(1-p) * w.
  [[nodiscard]] std::vector<double> gradient(std::span<const double> x) const override;

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return w_; }
  [[nodiscard]] double bias() const noexcept { return b_; }

 private:
  LogisticRegressionConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace shmd::nn
