// Dense feed-forward network — the from-scratch FANN replacement.
//
// Deliberately small and transparent: the HMD models in the paper are
// compact MLPs (≈71 KB of float weights) whose inference must route every
// multiply through an ArithmeticContext so the undervolting fault injector
// can perturb products in exactly the place the hardware would.
//
// The inference path (`forward`) takes the context per call; the training
// path (in trainer.cpp) uses a direct exact-arithmetic implementation —
// the paper never trains under undervolting ("no retraining or fine
// tuning is needed"), so training speed is kept free of virtual dispatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "nn/activation.hpp"
#include "nn/arithmetic.hpp"

namespace shmd::nn {

/// One dense layer: out_dim x in_dim weights (row-major) plus biases.
struct Layer {
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  Activation activation = Activation::kSigmoid;
  std::vector<double> weights;  ///< weights[o * in_dim + i]
  std::vector<double> biases;   ///< biases[o]

  [[nodiscard]] double& w(std::size_t out, std::size_t in) { return weights[out * in_dim + in]; }
  [[nodiscard]] double w(std::size_t out, std::size_t in) const {
    return weights[out * in_dim + in];
  }
};

/// Reusable forward-pass workspace: two ping-pong activation buffers that
/// grow to the widest layer on first use and are then recycled, so
/// steady-state inference through the scratch overload of
/// Network::forward performs zero heap allocations. The widest-layer
/// width is computed once per network and cached here (keyed on the
/// network's identity), so steady-state calls skip the per-call layer
/// scan. One scratch per thread — it is mutable state and must not be
/// shared concurrently.
class ForwardScratch {
 public:
  friend class Network;

 private:
  std::vector<double> a_;
  std::vector<double> b_;
  const void* net_ = nullptr;  ///< network the cached width belongs to
  std::size_t max_width_ = 0;
};

class Network {
 public:
  Network() = default;

  /// Build with Xavier-uniform initial weights, deterministic in `seed`.
  /// `topology` = {in, hidden..., out}; hidden/output activations given
  /// separately (FANN-style: same activation for all hidden layers).
  Network(std::span<const std::size_t> topology, Activation hidden, Activation output,
          std::uint64_t seed);

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return layers_.at(i); }

  /// Total number of MAC operations one inference performs (= number of
  /// weights); drives the latency/energy models.
  [[nodiscard]] std::size_t mac_count() const noexcept;
  /// Trainable parameter count (weights + biases).
  [[nodiscard]] std::size_t parameter_count() const noexcept;
  /// Model storage footprint assuming float32 parameters, as deployed
  /// (the paper's "every HMD takes 71 KB of memory").
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Inference with every product routed through `ctx`.
  [[nodiscard]] std::vector<double> forward(std::span<const double> input,
                                            ArithmeticContext& ctx) const;

  /// Allocation-free inference: activations live in `scratch`, which is
  /// grown once and reused across calls. The returned span aliases
  /// `scratch` and is valid until its next use.
  [[nodiscard]] std::span<const double> forward(std::span<const double> input,
                                                ArithmeticContext& ctx,
                                                ForwardScratch& scratch) const;

  /// Batched inference over a windows-major tile: `x` holds `rows` input
  /// rows of input_dim() each (x[r * input_dim() + i]); the result span
  /// holds rows * output_dim() values, y[r * output_dim() + o]. Layers
  /// run tile-at-a-time through ctx.gemm, each layer visiting rows in
  /// ascending order with each (row, output) cell accumulated under the
  /// lane-blocked contract of src/nn/kernels/kernels.hpp (the documented
  /// gemm fallback order). For a
  /// stateless context (exact) every row's result is bit-identical to
  /// forward() on that row. A stateful context (the fault injector)
  /// consumes its stream layer-major across the tile — deterministic in
  /// (context state, tile), but a different interleaving than calling
  /// forward() row by row; callers needing per-item streams re-anchor the
  /// generator at item boundaries and batch per item (see
  /// ScoringService::worker_loop). The returned span aliases `scratch`
  /// (grown to rows x widest-layer once, then reused) and is valid until
  /// its next use.
  [[nodiscard]] std::span<const double> forward_batch(std::span<const double> x, std::size_t rows,
                                                      ArithmeticContext& ctx,
                                                      ForwardScratch& scratch) const;

  /// Convenience: exact-arithmetic inference.
  [[nodiscard]] std::vector<double> forward(std::span<const double> input) const;

  /// FANN-style text serialization.
  void save(std::ostream& os) const;
  [[nodiscard]] static Network load(std::istream& is);

 private:
  std::vector<Layer> layers_;
};

}  // namespace shmd::nn
