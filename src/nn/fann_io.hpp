// FANN-format model interchange.
//
// The paper implements its HMDs on the Fast Artificial Neural Network
// library and injects faults into FANN's inference; models trained there
// are saved in FANN's text format (`FANN_FLO_2.1`). This reader/writer
// speaks that format for the subset FANN's standard MLPs use — fully
// connected layered networks with per-neuron sigmoid-family activations —
// so models can move between this reproduction and a stock FANN setup.
//
// Supported: FANN_FLO_2.1 header, layer_sizes with bias neurons,
// per-neuron (num_inputs, activation_function, steepness) records, and the
// connection list of a standard fully-connected layout. Activations map
// FANN_SIGMOID(±steepness) → kSigmoid, FANN_SIGMOID_SYMMETRIC → kTanh,
// FANN_LINEAR → kLinear. Shortcut connections and sparse topologies are
// rejected with a clear error.
#pragma once

#include <iosfwd>
#include <stdexcept>

#include "nn/network.hpp"

namespace shmd::nn {

/// Thrown on malformed or unsupported FANN files.
class FannFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write `net` as a FANN_FLO_2.1 file. All hidden/output activations must
/// be sigmoid/tanh/linear (ReLU has no FANN 2.1 equivalent → throws).
void save_fann(const Network& net, std::ostream& os);

/// Parse a FANN_FLO_2.1 file into a Network.
[[nodiscard]] Network load_fann(std::istream& is);

}  // namespace shmd::nn
