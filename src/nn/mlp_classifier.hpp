// MLP classifier: a Network + Trainer behind the Classifier interface.
// Used both as the victim HMD model class and as the strongest
// reverse-engineering proxy (§VII.A).
#pragma once

#include <cstdint>

#include "nn/classifier.hpp"
#include "nn/network.hpp"

namespace shmd::nn {

class MlpClassifier final : public Classifier {
 public:
  MlpClassifier(std::vector<std::size_t> topology, TrainConfig train_config,
                std::uint64_t init_seed);

  using Classifier::predict;
  [[nodiscard]] double predict(std::span<const double> x, ArithmeticContext& ctx) const override;
  void fit(std::span<const TrainSample> data) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "mlp"; }
  [[nodiscard]] bool differentiable() const noexcept override { return true; }

  [[nodiscard]] const Network& network() const noexcept { return net_; }
  [[nodiscard]] Network& network() noexcept { return net_; }

 private:
  std::vector<std::size_t> topology_;
  TrainConfig train_config_;
  std::uint64_t init_seed_;
  Network net_;
};

}  // namespace shmd::nn
