#include "nn/fann_io.hpp"

#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace shmd::nn {

namespace {

// FANN activation-function enum values (fann_activationfunc_enum).
constexpr int kFannLinear = 0;
constexpr int kFannSigmoid = 3;
constexpr int kFannSigmoidSymmetric = 5;

int to_fann_activation(Activation a) {
  switch (a) {
    case Activation::kSigmoid: return kFannSigmoid;
    case Activation::kTanh: return kFannSigmoidSymmetric;
    case Activation::kLinear: return kFannLinear;
    case Activation::kRelu:
      throw FannFormatError("save_fann: ReLU has no FANN 2.1 activation equivalent");
  }
  throw FannFormatError("save_fann: unknown activation");
}

/// FANN computes sigmoid as 1/(1+e^(-2 s x)) and sigmoid_symmetric as
/// tanh(s x). Our activations are the fixed-form s-free versions, so the
/// steepness is folded into the incoming weights on load and written as
/// the neutral value on save (0.5 for sigmoid, 1.0 for tanh/linear).
double neutral_steepness(Activation a) {
  return a == Activation::kSigmoid ? 0.5 : 1.0;
}

double steepness_weight_scale(int fann_activation, double steepness) {
  switch (fann_activation) {
    case kFannSigmoid: return 2.0 * steepness;  // shmd-lint: exact-ok(load-time weight fold)
    case kFannSigmoidSymmetric: return steepness;
    case kFannLinear: return steepness;
    default:
      throw FannFormatError("load_fann: unsupported activation function " +
                            std::to_string(fann_activation));
  }
}

Activation from_fann_activation(int fann_activation) {
  switch (fann_activation) {
    case kFannSigmoid: return Activation::kSigmoid;
    case kFannSigmoidSymmetric: return Activation::kTanh;
    case kFannLinear: return Activation::kLinear;
    default:
      throw FannFormatError("load_fann: unsupported activation function " +
                            std::to_string(fann_activation));
  }
}

}  // namespace

void save_fann(const Network& net, std::ostream& os) {
  const std::size_t n_layers = net.num_layers() + 1;

  os << "FANN_FLO_2.1\n";
  os << "num_layers=" << n_layers << '\n';
  os << "learning_rate=0.700000\n";
  os << "connection_rate=1.000000\n";
  os << "network_type=0\n";
  os << "learning_momentum=0.000000\n";
  os << "training_algorithm=2\n";
  os << "train_error_function=1\n";
  os << "train_stop_function=0\n";
  os << "cascade_output_change_fraction=0.010000\n";
  os << "quickprop_decay=-0.000100\n";
  os << "quickprop_mu=1.750000\n";
  os << "rprop_increase_factor=1.200000\n";
  os << "rprop_decrease_factor=0.500000\n";
  os << "rprop_delta_min=0.000000\n";
  os << "rprop_delta_max=50.000000\n";
  os << "rprop_delta_zero=0.100000\n";
  os << "cascade_output_stagnation_epochs=12\n";
  os << "cascade_candidate_change_fraction=0.010000\n";
  os << "cascade_candidate_stagnation_epochs=12\n";
  os << "cascade_max_out_epochs=150\n";
  os << "cascade_min_out_epochs=50\n";
  os << "cascade_max_cand_epochs=150\n";
  os << "cascade_min_cand_epochs=50\n";
  os << "cascade_num_candidate_groups=2\n";
  os << "bit_fail_limit=0.35\n";
  os << "cascade_candidate_limit=1000.0\n";
  os << "cascade_weight_multiplier=0.4\n";
  os << "cascade_activation_functions_count=2\n";
  os << "cascade_activation_functions=3 5 \n";
  os << "cascade_activation_steepnesses_count=1\n";
  os << "cascade_activation_steepnesses=0.5 \n";

  // layer_sizes include one bias neuron per layer (FANN convention).
  os << "layer_sizes=" << net.input_dim() + 1;
  for (std::size_t l = 0; l < net.num_layers(); ++l) os << ' ' << net.layer(l).out_dim + 1;
  os << " \n";
  os << "scale_included=0\n";

  // Neuron records: input layer + bias first (no inputs), then per layer
  // the real neurons followed by that layer's bias neuron.
  os << "neurons (num_inputs, activation_function, activation_steepness)=";
  for (std::size_t i = 0; i < net.input_dim() + 1; ++i) os << "(0, 0, 0.0) ";
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Layer& layer = net.layer(l);
    const int act = to_fann_activation(layer.activation);
    const double steepness = neutral_steepness(layer.activation);
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      os << '(' << layer.in_dim + 1 << ", " << act << ", " << steepness << ") ";
    }
    os << "(0, 0, 0.0) ";  // the layer's bias neuron
  }
  os << '\n';

  // Connections: neuron indices are global, layer by layer, bias last in
  // each layer. For every real neuron: weights from each previous-layer
  // real neuron, then the bias connection.
  os.precision(17);
  os << "connections (connected_to_neuron, weight)=";
  std::size_t prev_first = 0;
  std::size_t prev_size = net.input_dim() + 1;  // incl. bias
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Layer& layer = net.layer(l);
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      for (std::size_t i = 0; i < layer.in_dim; ++i) {
        os << '(' << prev_first + i << ", " << layer.w(o, i) << ") ";
      }
      os << '(' << prev_first + prev_size - 1 << ", " << layer.biases[o] << ") ";
    }
    prev_first += prev_size;
    prev_size = layer.out_dim + 1;
  }
  os << '\n';
  if (!os) throw FannFormatError("save_fann: stream write failed");
}

namespace {

/// Parse "(a, b, c)"-style tuples from the remainder of a line/stream.
struct TupleReader {
  std::istream& is;

  /// Reads "(x, y, z)" into the provided doubles; returns false on EOF.
  bool read3(double& a, double& b, double& c) {
    char ch = 0;
    if (!(is >> ch)) return false;
    if (ch != '(') throw FannFormatError("load_fann: expected '(' in tuple list");
    char comma = 0;
    if (!(is >> a >> comma >> b >> comma >> c >> ch) || ch != ')') {
      throw FannFormatError("load_fann: malformed 3-tuple");
    }
    return true;
  }
  bool read2(double& a, double& b) {
    char ch = 0;
    if (!(is >> ch)) return false;
    if (ch != '(') throw FannFormatError("load_fann: expected '(' in tuple list");
    char comma = 0;
    if (!(is >> a >> comma >> b >> ch) || ch != ')') {
      throw FannFormatError("load_fann: malformed 2-tuple");
    }
    return true;
  }
};

}  // namespace

Network load_fann(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != "FANN_FLO_2.1") {
    throw FannFormatError("load_fann: not a FANN_FLO_2.1 file (got '" + magic + "')");
  }

  std::map<std::string, std::string> scalars;
  std::vector<std::size_t> layer_sizes;
  std::string line;
  // Scalar key=value lines until layer_sizes; then the remaining headers.
  while (std::getline(is, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "layer_sizes") {
      std::istringstream ss(value);
      std::size_t n = 0;
      while (ss >> n) layer_sizes.push_back(n);
      continue;
    }
    if (key.rfind("neurons ", 0) == 0) {
      // Reached the neuron list; stop header parsing. Re-parse below using
      // the captured value plus the rest of the stream.
      break;
    }
    scalars[key] = value;
  }

  if (layer_sizes.size() < 2) throw FannFormatError("load_fann: missing/short layer_sizes");
  if (scalars.count("network_type") && scalars["network_type"] != "0") {
    throw FannFormatError("load_fann: only layered (network_type=0) nets are supported");
  }
  if (scalars.count("connection_rate")) {
    const double rate = std::stod(scalars["connection_rate"]);
    if (std::abs(rate - 1.0) > 1e-6) {
      throw FannFormatError("load_fann: only fully-connected nets are supported");
    }
  }

  // Neuron records. `line` currently holds "neurons (...)=(...) (...)".
  const auto neurons_eq = line.find('=');
  std::istringstream neuron_stream(line.substr(neurons_eq + 1));
  TupleReader neurons{neuron_stream};

  struct NeuronRec {
    std::size_t num_inputs = 0;
    int activation = 0;
    double steepness = 0.0;
  };
  std::size_t total_neurons = 0;
  for (std::size_t s : layer_sizes) total_neurons += s;
  std::vector<NeuronRec> recs;
  double a = 0;
  double b = 0;
  double c = 0;
  while (neurons.read3(a, b, c)) {
    recs.push_back(NeuronRec{static_cast<std::size_t>(a), static_cast<int>(b), c});
  }
  if (recs.size() != total_neurons) {
    throw FannFormatError("load_fann: neuron count does not match layer_sizes");
  }

  // Build topology (strip the bias neuron from every layer).
  std::vector<std::size_t> topology;
  for (std::size_t s : layer_sizes) {
    if (s < 2) throw FannFormatError("load_fann: layer with no real neurons");
    topology.push_back(s - 1);
  }

  // Activations per non-input layer, from that layer's first real neuron.
  std::vector<Activation> activations;
  std::vector<double> steepnesses;
  {
    std::size_t offset = layer_sizes[0];
    for (std::size_t l = 1; l < layer_sizes.size(); ++l) {
      const NeuronRec& rec = recs.at(offset);
      if (rec.num_inputs != layer_sizes[l - 1]) {
        throw FannFormatError("load_fann: shortcut/sparse topologies are not supported");
      }
      activations.push_back(from_fann_activation(rec.activation));
      steepnesses.push_back(rec.steepness);
      offset += layer_sizes[l];
    }
  }

  // Connections line.
  if (!std::getline(is, line) || line.rfind("connections", 0) != 0) {
    throw FannFormatError("load_fann: missing connections line");
  }
  const auto conn_eq = line.find('=');
  std::istringstream conn_stream(line.substr(conn_eq + 1));
  TupleReader connections{conn_stream};

  Network net([&] {
    // Seeded arbitrarily; every weight is overwritten below.
    return Network(topology, activations.front(),
                   activations.back(), /*seed=*/1);
  }());
  // Per-layer activations may differ; set them explicitly.
  for (std::size_t l = 0; l < net.num_layers(); ++l) net.layer(l).activation = activations[l];

  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    Layer& layer = net.layer(l);
    const double scale = steepness_weight_scale(to_fann_activation(layer.activation),
                                                steepnesses[l]);
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      for (std::size_t i = 0; i <= layer.in_dim; ++i) {
        double target = 0;
        double weight = 0;
        if (!connections.read2(target, weight)) {
          throw FannFormatError("load_fann: connection list ended early");
        }
        if (i < layer.in_dim) {
          layer.w(o, i) = weight * scale;  // shmd-lint: exact-ok(one-time import scaling)
        } else {
          // bias-neuron connection; shmd-lint: exact-ok(one-time import scaling)
          layer.biases[o] = weight * scale;
        }
      }
    }
  }
  return net;
}

}  // namespace shmd::nn
