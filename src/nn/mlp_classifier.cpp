#include "nn/mlp_classifier.hpp"

namespace shmd::nn {

MlpClassifier::MlpClassifier(std::vector<std::size_t> topology, TrainConfig train_config,
                             std::uint64_t init_seed)
    : topology_(std::move(topology)),
      train_config_(train_config),
      init_seed_(init_seed),
      net_(topology_, Activation::kSigmoid, Activation::kSigmoid, init_seed_) {}

double MlpClassifier::predict(std::span<const double> x, ArithmeticContext& ctx) const {
  return net_.forward(x, ctx)[0];
}

void MlpClassifier::fit(std::span<const TrainSample> data) {
  // Re-initialize so repeated fits are independent of previous state.
  net_ = Network(topology_, Activation::kSigmoid, Activation::kSigmoid, init_seed_);
  Trainer trainer(train_config_);
  trainer.fit(net_, data);
}

}  // namespace shmd::nn
