// CART decision tree — the *non-differentiable* reverse-engineering proxy
// (§VII.A picked DT precisely because gradient-based evasion cannot use
// it directly; our evasion layer falls back to hill-climbing against it).
//
// Gini-impurity splits over quantile-candidate thresholds, depth- and
// leaf-size-limited; leaves predict their training-set malware fraction.
#pragma once

#include <cstdint>

#include "nn/classifier.hpp"

namespace shmd::nn {

struct DecisionTreeConfig {
  int max_depth = 8;
  std::size_t min_samples_leaf = 4;
  /// Number of candidate thresholds examined per feature (quantiles).
  std::size_t candidate_thresholds = 24;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  using Classifier::predict;
  /// Tree traversal computes no products, so the context is unused: a DT
  /// under undervolting keeps its exact decision boundary (which is why
  /// §VII.A calls it out for non-differentiability, not stochasticity).
  [[nodiscard]] double predict(std::span<const double> x, ArithmeticContext& ctx) const override;
  void fit(std::span<const TrainSample> data) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "dt"; }
  [[nodiscard]] bool differentiable() const noexcept override { return false; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int depth() const noexcept;

 private:
  struct Node {
    // Internal node: feature/threshold valid, children set.
    // Leaf: children == -1, probability valid.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint16_t feature = 0;
    double threshold = 0.0;
    double probability = 0.5;
    [[nodiscard]] bool leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(std::span<const TrainSample> data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, int depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace shmd::nn
