#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::nn {

std::string_view activation_name(Activation a) {
  switch (a) {
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
    case Activation::kLinear: return "linear";
  }
  throw std::invalid_argument("activation_name: unknown activation");
}

Activation activation_from_name(std::string_view name) {
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  if (name == "linear") return Activation::kLinear;
  throw std::invalid_argument("activation_from_name: unknown activation");
}

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kLinear: return x;
  }
  throw std::invalid_argument("activate: unknown activation");
}

double activate_derivative(Activation a, double x, double y) {
  switch (a) {
    // shmd-lint: exact-ok(derivatives feed training-time backprop only)
    case Activation::kSigmoid: return y * (1.0 - y);
    // shmd-lint: exact-ok(derivatives feed training-time backprop only)
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kRelu: return x > 0.0 ? 1.0 : 0.0;
    case Activation::kLinear: return 1.0;
  }
  throw std::invalid_argument("activate_derivative: unknown activation");
}

}  // namespace shmd::nn
