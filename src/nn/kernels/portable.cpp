// Portable scalar realization of the lane-blocked accumulation contract
// (kernels.hpp). The project compiles with -ffp-contract=off everywhere
// (top-level CMakeLists.txt — the contract's scalar helpers are
// header-inline, so the flag must cover every TU, not just this one):
// the contract separates each product rounding
// from its accumulate, so the compiler must not fuse
// `lane[k] += w[j] * x[j]` into an FMA — that would change results versus
// the AVX2 table's mul_pd/add_pd sequence and break dispatch parity.
// Plain auto-vectorization of the four independent lanes is legal and
// expected: it preserves the per-lane add order exactly.
#include "nn/kernels/kernels.hpp"

namespace shmd::nn::kernels {
namespace {

void accumulate_blocks_portable(const double* w, const double* x, std::size_t blocks, Acc4& acc) {
  for (std::size_t b = 0; b < blocks; ++b, w += kLanes, x += kLanes) {
    acc.lane[0] += w[0] * x[0];
    acc.lane[1] += w[1] * x[1];
    acc.lane[2] += w[2] * x[2];
    acc.lane[3] += w[3] * x[3];
  }
}

double dot_portable(const double* w, const double* x, std::size_t n) {
  Acc4 acc{};
  const std::size_t blocked = n - n % kLanes;
  accumulate_blocks_portable(w, x, blocked / kLanes, acc);
  accumulate_scalar(w, x, blocked, n, acc);
  return reduce(acc);
}

void gemm_portable(const double* w, const double* bias, const double* x, std::size_t rows,
                   std::size_t in_dim, std::size_t out_dim, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * in_dim;
    double* yr = y + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      yr[o] = bias[o] + dot_portable(w + o * in_dim, xr, in_dim);
    }
  }
}

}  // namespace

const KernelTable& portable_table() noexcept {
  static constexpr KernelTable kTable{dot_portable, gemm_portable, accumulate_blocks_portable,
                                      "portable"};
  return kTable;
}

}  // namespace shmd::nn::kernels
