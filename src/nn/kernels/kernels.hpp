// Vectorized span kernels behind ArithmeticContext: the lane-blocked
// accumulation contract.
//
// Every exact-accumulated span in the project — ExactContext::dot/gemm,
// the fault-free runs inside FaultyContext::dot, the blocked exact GEMM —
// sums its products under ONE canonical order so results are bit-identical
// across ISAs, dispatch choices, batch sizes, and worker counts:
//
//   Lane-blocked accumulation (K = kLanes = 4):
//     * lane k accumulates the products at global indices j with
//       j % K == k, in ascending j order;
//     * each product is rounded separately before the add — fl(w*x) then
//       fl(lane + p): no FMA fusion inside the accumulation (the build
//       disables contraction PROJECT-WIDE — -ffp-contract=off, top-level
//       CMakeLists — so the portable scalar form
//       `lane[j % K] += w[j] * x[j]` and the AVX2 mul_pd/add_pd form are
//       the same IEEE operation sequence in every TU that instantiates
//       the inline helpers, not just the kernel TUs);
//     * the final reduction is the fixed tree ((l0 + l1) + l2) + l3;
//     * the bias (where a caller adds one) joins after the reduction:
//       y = bias + reduce(acc).
//
// K is pinned at 4 — the lane count of one 256-bit double vector — and
// does NOT track the widest vector unit on the host. A wider ISA (AVX-512)
// must still produce the K=4 schedule (two 256-bit lanes per 512-bit
// vector, or split registers), because the contract is the *value*, not
// the instruction count: scores must not move when a binary migrates
// between hosts. A scalar ISA implements the same schedule with four
// independent accumulators, which compilers auto-vectorize legally — the
// per-lane add order is preserved, so no -ffast-math-style reassociation
// is involved.
//
// Dispatch is one-time and per-process: AVX2+FMA when the CPU has it,
// portable otherwise, with SHMD_FORCE_PORTABLE=1 overriding for parity
// testing. Because both implementations realize the identical operation
// sequence, dispatch choice never changes a score — CI's portable-parity
// job gates that claim.
//
// NaN carve-out: a NaN result is guaranteed to be *some* NaN, but its
// payload and sign bits are unspecified — IEEE 754 leaves which NaN an
// operation propagates to the implementation, and compilers may commute
// multiply operands (x86 mul/add return the first source's payload), so
// scalar and vector codegen legally disagree on the payload. Every
// determinate value — including ±inf, denormals, and signed zero — is
// bit-exact across tables. No finite model weight or feature produces
// NaN, so scores are unaffected; the carve-out only matters to the
// property tests, which compare NaN results as "both NaN" and everything
// else bit-for-bit.
#pragma once

#include <cstddef>

namespace shmd::nn::kernels {

/// Lane count of the accumulation contract. Fixed forever at 4 (see the
/// header comment): changing it changes every er>0 score in the project.
inline constexpr std::size_t kLanes = 4;

/// One lane-blocked partial-accumulator set. 32-byte aligned so the AVX2
/// kernels can spill/restore it with aligned vector moves.
struct alignas(32) Acc4 {
  double lane[kLanes];
};

/// Final reduction of the contract: fixed tree, bias joins outside.
[[nodiscard]] inline double reduce(const Acc4& acc) noexcept {
  return ((acc.lane[0] + acc.lane[1]) + acc.lane[2]) + acc.lane[3];
}

/// Scalar lane-blocked accumulation of the global index range [from, to)
/// of w·x into acc. Lane assignment is by GLOBAL index (j % kLanes), so
/// callers can stitch scalar heads/tails around block-aligned runs — the
/// faulty span kernel in arithmetic.hpp does exactly that around fault
/// sites. Inline (header) on purpose: within one binary the head/tail
/// code is the same machine code no matter which kernel table is active,
/// so it cannot break native/portable parity. Cross-BUILD parity is a
/// separate obligation: this helper instantiates into every consumer TU
/// with that TU's flags, so the contract's no-FMA rule must hold
/// project-wide — the top-level CMakeLists sets -ffp-contract=off
/// globally (a baseline-FMA target would otherwise fuse `lane += w*x`
/// here while the kernel TUs do not), and CI's contraction-parity job
/// gates it.
inline void accumulate_scalar(const double* w, const double* x, std::size_t from, std::size_t to,
                              Acc4& acc) noexcept {
  for (std::size_t j = from; j < to; ++j) acc.lane[j % kLanes] += w[j] * x[j];
}

/// One ISA's implementation of the contract. All three entry points
/// produce bit-identical results across tables — that is the contract,
/// and tests/kernels_test.cpp plus the CI portable-parity job enforce it.
struct KernelTable {
  /// Full lane-blocked dot product of length n (blocks + tail + reduce).
  double (*dot)(const double* w, const double* x, std::size_t n);

  /// Lane-blocked GEMM over a windows-major tile:
  /// y[r * out_dim + o] = bias[o] + dot(w + o * in_dim, x + r * in_dim).
  /// Bit-identical to calling dot() per (row, output); implementations
  /// may reblock rows for weight reuse because the per-(row, output)
  /// accumulators stay independent.
  void (*gemm)(const double* w, const double* bias, const double* x, std::size_t rows,
               std::size_t in_dim, std::size_t out_dim, double* y);

  /// Accumulate `blocks` full kLanes-wide blocks starting at w/x into
  /// acc (w[4b + k] * x[4b + k] into lane k, blocks ascending). The
  /// caller guarantees the pointers sit at a lane-aligned global index.
  void (*accumulate_blocks)(const double* w, const double* x, std::size_t blocks, Acc4& acc);

  /// Implementation name for logs/benches: "portable" or "avx2".
  const char* name;
};

/// The portable scalar reference implementation (always available).
[[nodiscard]] const KernelTable& portable_table() noexcept;

/// The AVX2+FMA implementation compiled into this binary, or nullptr when
/// the build targets a non-x86 ISA. Does NOT check the running CPU — use
/// avx2_if_supported() before calling through it.
[[nodiscard]] const KernelTable* avx2_table() noexcept;

/// avx2_table() gated on a runtime cpuid check (AVX2 and FMA): nullptr
/// when the binary has no AVX2 kernel or the host CPU cannot run it.
[[nodiscard]] const KernelTable* avx2_if_supported() noexcept;

/// One-time process-wide dispatch: SHMD_FORCE_PORTABLE (set, non-empty,
/// not "0") pins the portable table; otherwise the best table the host
/// supports. The choice is latched on first use and never re-read —
/// and by the lane-blocked contract it cannot change any score either
/// way, only throughput.
[[nodiscard]] const KernelTable& active() noexcept;

}  // namespace shmd::nn::kernels
