// AVX2 realization of the lane-blocked accumulation contract
// (kernels.hpp). One 256-bit accumulator vector IS the Acc4: vector lane
// k holds contract lane k, and each block step is one mul_pd + one add_pd
// — deliberately NOT an FMA. The contract rounds every product before
// its accumulate so the portable scalar table computes the identical
// value; FMA's fused rounding would diverge in the last bit. (FMA units
// still speed this TU up elsewhere — -mfma stays on so mul/add dual-issue
// scheduling is unconstrained — but vfmadd must never appear in the
// accumulation chain, which the project-wide -ffp-contract=off
// (top-level CMakeLists.txt) guarantees.)
//
// This TU compiles with -mavx2 -mfma on x86 (see src/nn/CMakeLists.txt)
// and as a nullptr stub elsewhere. Only dispatch.cpp may call through
// the table, after a cpuid check.
#include "nn/kernels/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace shmd::nn::kernels {
namespace {

void accumulate_blocks_avx2(const double* w, const double* x, std::size_t blocks, Acc4& acc) {
  __m256d v = _mm256_load_pd(acc.lane);
  for (std::size_t b = 0; b < blocks; ++b, w += kLanes, x += kLanes) {
    v = _mm256_add_pd(v, _mm256_mul_pd(_mm256_loadu_pd(w), _mm256_loadu_pd(x)));
  }
  _mm256_store_pd(acc.lane, v);
}

double dot_avx2(const double* w, const double* x, std::size_t n) {
  Acc4 acc{};
  const std::size_t blocked = n - n % kLanes;
  accumulate_blocks_avx2(w, x, blocked / kLanes, acc);
  accumulate_scalar(w, x, blocked, n, acc);
  return reduce(acc);
}

void gemm_avx2(const double* w, const double* bias, const double* x, std::size_t rows,
               std::size_t in_dim, std::size_t out_dim, double* y) {
  // Four windows advance together so each weight vector load is reused
  // four times; every (row, output) keeps its own accumulator vector, so
  // the per-output value is exactly dot_avx2 of that row.
  const std::size_t blocked = in_dim - in_dim % kLanes;
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* x0 = x + r * in_dim;
    const double* x1 = x0 + in_dim;
    const double* x2 = x1 + in_dim;
    const double* x3 = x2 + in_dim;
    double* yr = y + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      __m256d a0 = _mm256_setzero_pd();
      __m256d a1 = _mm256_setzero_pd();
      __m256d a2 = _mm256_setzero_pd();
      __m256d a3 = _mm256_setzero_pd();
      for (std::size_t i = 0; i < blocked; i += kLanes) {
        const __m256d wv = _mm256_loadu_pd(wo + i);
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(wv, _mm256_loadu_pd(x0 + i)));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(wv, _mm256_loadu_pd(x1 + i)));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(wv, _mm256_loadu_pd(x2 + i)));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(wv, _mm256_loadu_pd(x3 + i)));
      }
      Acc4 t0;
      Acc4 t1;
      Acc4 t2;
      Acc4 t3;
      _mm256_store_pd(t0.lane, a0);
      _mm256_store_pd(t1.lane, a1);
      _mm256_store_pd(t2.lane, a2);
      _mm256_store_pd(t3.lane, a3);
      accumulate_scalar(wo, x0, blocked, in_dim, t0);
      accumulate_scalar(wo, x1, blocked, in_dim, t1);
      accumulate_scalar(wo, x2, blocked, in_dim, t2);
      accumulate_scalar(wo, x3, blocked, in_dim, t3);
      const double b = bias[o];
      yr[o] = b + reduce(t0);
      yr[out_dim + o] = b + reduce(t1);
      yr[2 * out_dim + o] = b + reduce(t2);
      yr[3 * out_dim + o] = b + reduce(t3);
    }
  }
  for (; r < rows; ++r) {
    const double* xr = x + r * in_dim;
    double* yr = y + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      yr[o] = bias[o] + dot_avx2(w + o * in_dim, xr, in_dim);
    }
  }
}

}  // namespace

const KernelTable* avx2_table() noexcept {
  static constexpr KernelTable kTable{dot_avx2, gemm_avx2, accumulate_blocks_avx2, "avx2"};
  return &kTable;
}

}  // namespace shmd::nn::kernels

#else  // non-x86 build: no AVX2 table in this binary.

namespace shmd::nn::kernels {

const KernelTable* avx2_table() noexcept { return nullptr; }

}  // namespace shmd::nn::kernels

#endif
