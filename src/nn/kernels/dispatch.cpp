// One-time runtime dispatch for the lane-blocked kernel tables
// (kernels.hpp). The choice is latched in a magic static on first use:
// per-process, thread-safe, never re-read. SHMD_FORCE_PORTABLE exists so
// the CI portable-parity job can run the whole suite and the serve
// loadgen through the scalar table in the same binary — by the
// lane-blocked contract the scores must come out bit-identical, so the
// env var is a throughput knob that doubles as a correctness probe, not
// a determinism taint.
#include <cstdlib>

#include "nn/kernels/kernels.hpp"

namespace shmd::nn::kernels {

namespace {

bool force_portable() noexcept {
  const char* v = std::getenv("SHMD_FORCE_PORTABLE");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');  // "0" opts back out, anything else forces
}

const KernelTable& resolve() noexcept {
  if (force_portable()) return portable_table();
  if (const KernelTable* avx2 = avx2_if_supported()) return *avx2;
  return portable_table();
}

}  // namespace

const KernelTable* avx2_if_supported() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return avx2_table();
#endif
  return nullptr;
}

const KernelTable& active() noexcept {
  static const KernelTable& kActive = resolve();
  return kActive;
}

}  // namespace shmd::nn::kernels
