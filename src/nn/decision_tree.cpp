#include "nn/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace shmd::nn {

namespace {
double gini(double positives, double total) {
  if (total <= 0.0) return 0.0;
  const double p = positives / total;
  // shmd-lint: exact-ok(Gini impurity drives training-time split search)
  return 2.0 * p * (1.0 - p);
}
}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {
  if (config_.max_depth <= 0) throw std::invalid_argument("DecisionTree: max_depth must be > 0");
  if (config_.candidate_thresholds == 0) {
    throw std::invalid_argument("DecisionTree: need candidate thresholds");
  }
}

double DecisionTree::predict(std::span<const double> x, ArithmeticContext& /*ctx*/) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict: unfitted tree");
  std::int32_t idx = 0;
  while (!nodes_[static_cast<std::size_t>(idx)].leaf()) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.feature >= x.size()) throw std::invalid_argument("DecisionTree: dimension mismatch");
    idx = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].probability;
}

void DecisionTree::fit(std::span<const TrainSample> data) {
  if (data.empty()) throw std::invalid_argument("DecisionTree::fit: empty data");
  nodes_.clear();
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  build(data, indices, 0, indices.size(), 0);
}

std::int32_t DecisionTree::build(std::span<const TrainSample> data,
                                 std::vector<std::size_t>& indices, std::size_t begin,
                                 std::size_t end, int depth) {
  const std::size_t n = end - begin;
  double positives = 0.0;
  for (std::size_t k = begin; k < end; ++k) positives += data[indices[k]].y;

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.probability = positives / static_cast<double>(n);
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || n < 2 * config_.min_samples_leaf || positives == 0.0 ||
      positives == static_cast<double>(n)) {
    return make_leaf();
  }

  const std::size_t dim = data.front().x.size();
  const double parent_impurity = gini(positives, static_cast<double>(n));

  double best_gain = 1e-9;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<double> values(n);
  for (std::size_t f = 0; f < dim; ++f) {
    for (std::size_t k = 0; k < n; ++k) values[k] = data[indices[begin + k]].x[f];
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;

    for (std::size_t c = 1; c <= config_.candidate_thresholds; ++c) {
      const double q = static_cast<double>(c) /
                       static_cast<double>(config_.candidate_thresholds + 1);
      // shmd-lint: exact-ok(quantile index for training-time split candidates)
      const auto pos = static_cast<std::size_t>(q * static_cast<double>(n - 1));
      const double threshold = values[pos];
      if (threshold == values.back()) continue;  // would leave right side empty

      double left_n = 0.0;
      double left_pos = 0.0;
      for (std::size_t k = begin; k < end; ++k) {
        const TrainSample& s = data[indices[k]];
        if (s.x[f] <= threshold) {
          left_n += 1.0;
          left_pos += s.y;
        }
      }
      const double right_n = static_cast<double>(n) - left_n;
      const double right_pos = positives - left_pos;
      if (left_n < static_cast<double>(config_.min_samples_leaf) ||
          right_n < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      const double child_impurity = (left_n * gini(left_pos, left_n) +
                                     right_n * gini(right_pos, right_n)) /
                                    static_cast<double>(n);
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }

  if (best_gain <= 1e-9) return make_leaf();

  // Partition indices around the split (stable not required).
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) { return data[idx].x[best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  Node node;
  node.feature = static_cast<std::uint16_t>(best_feature);
  node.threshold = best_threshold;
  node.probability = positives / static_cast<double>(n);
  nodes_.push_back(node);
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left = build(data, indices, begin, mid, depth + 1);
  const std::int32_t right = build(data, indices, mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  std::function<int(std::int32_t)> walk = [&](std::int32_t idx) -> int {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.leaf()) return 1;
    return 1 + std::max(walk(n.left), walk(n.right));
  };
  return walk(0);
}

}  // namespace shmd::nn
