#include "nn/logistic_regression.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::nn {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionConfig config) : config_(config) {
  if (config_.epochs <= 0) throw std::invalid_argument("LogisticRegression: epochs must be > 0");
}

double LogisticRegression::predict(std::span<const double> x) const {
  if (x.size() != w_.size()) {
    throw std::invalid_argument("LogisticRegression::predict: dimension mismatch (unfitted?)");
  }
  double z = b_;
  for (std::size_t i = 0; i < x.size(); ++i) z += w_[i] * x[i];
  return sigmoid(z);
}

void LogisticRegression::fit(std::span<const TrainSample> data) {
  if (data.empty()) throw std::invalid_argument("LogisticRegression::fit: empty data");
  const std::size_t dim = data.front().x.size();
  for (const TrainSample& s : data) {
    if (s.x.size() != dim) throw std::invalid_argument("LogisticRegression::fit: ragged data");
  }
  w_.assign(dim, 0.0);
  b_ = 0.0;

  // Optional class balancing: weight each sample inversely to its class
  // frequency so the gradient is not dominated by the majority class.
  double pos_weight = 1.0;
  double neg_weight = 1.0;
  if (config_.balance_classes) {
    double positives = 0.0;
    for (const TrainSample& s : data) positives += s.y;
    const double n = static_cast<double>(data.size());
    if (positives > 0.0 && positives < n) {
      pos_weight = n / (2.0 * positives);
      neg_weight = n / (2.0 * (n - positives));
    }
  }

  const double inv_n = 1.0 / static_cast<double>(data.size());
  std::vector<double> gw(dim);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(gw.begin(), gw.end(), 0.0);
    double gb = 0.0;
    for (const TrainSample& s : data) {
      const double weight = s.y > 0.5 ? pos_weight : neg_weight;
      const double err = weight * (predict(s.x) - s.y);
      for (std::size_t i = 0; i < dim; ++i) gw[i] += err * s.x[i];
      gb += err;
    }
    for (std::size_t i = 0; i < dim; ++i) {
      w_[i] -= config_.learning_rate * (gw[i] * inv_n + config_.l2 * w_[i]);
    }
    b_ -= config_.learning_rate * gb * inv_n;
  }
}

std::vector<double> LogisticRegression::gradient(std::span<const double> x) const {
  const double p = predict(x);
  std::vector<double> g(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) g[i] = p * (1.0 - p) * w_[i];
  return g;
}

}  // namespace shmd::nn
