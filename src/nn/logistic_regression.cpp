#include "nn/logistic_regression.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::nn {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionConfig config) : config_(config) {
  if (config_.epochs <= 0) throw std::invalid_argument("LogisticRegression: epochs must be > 0");
}

double LogisticRegression::predict(std::span<const double> x, ArithmeticContext& ctx) const {
  if (x.size() != w_.size()) {
    throw std::invalid_argument("LogisticRegression::predict: dimension mismatch (unfitted?)");
  }
  // The dot product is this model's entire MAC path: like Network::forward,
  // each product goes through the context so an undervolted (FaultyContext)
  // LR detector is covered by the defense. The span-level dot() keeps the
  // per-product fault model while skipping per-MAC virtual dispatch;
  // accumulation stays exact (§II).
  const double z = b_ + ctx.dot(w_.data(), x.data(), x.size());
  return sigmoid(z);
}

void LogisticRegression::fit(std::span<const TrainSample> data) {
  if (data.empty()) throw std::invalid_argument("LogisticRegression::fit: empty data");
  const std::size_t dim = data.front().x.size();
  for (const TrainSample& s : data) {
    if (s.x.size() != dim) throw std::invalid_argument("LogisticRegression::fit: ragged data");
  }
  w_.assign(dim, 0.0);
  b_ = 0.0;

  // Optional class balancing: weight each sample inversely to its class
  // frequency so the gradient is not dominated by the majority class.
  double pos_weight = 1.0;
  double neg_weight = 1.0;
  if (config_.balance_classes) {
    double positives = 0.0;
    for (const TrainSample& s : data) positives += s.y;
    const double n = static_cast<double>(data.size());
    if (positives > 0.0 && positives < n) {
      pos_weight = n / (2.0 * positives);        // shmd-lint: exact-ok(class-balance setup)
      neg_weight = n / (2.0 * (n - positives));  // shmd-lint: exact-ok(class-balance setup)
    }
  }

  const double inv_n = 1.0 / static_cast<double>(data.size());
  std::vector<double> gw(dim);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(gw.begin(), gw.end(), 0.0);
    double gb = 0.0;
    for (const TrainSample& s : data) {
      const double weight = s.y > 0.5 ? pos_weight : neg_weight;
      // shmd-lint: exact-ok(gradient-descent residual, training only)
      const double err = weight * (predict(s.x) - s.y);
      // shmd-lint: exact-ok(weight-gradient accumulation, training only)
      for (std::size_t i = 0; i < dim; ++i) gw[i] += err * s.x[i];
      gb += err;
    }
    for (std::size_t i = 0; i < dim; ++i) {
      // shmd-lint: exact-ok(gradient-descent step, training only)
      w_[i] -= config_.learning_rate * (gw[i] * inv_n + config_.l2 * w_[i]);
    }
    b_ -= config_.learning_rate * gb * inv_n;  // shmd-lint: exact-ok(bias update, training only)
  }
}

std::vector<double> LogisticRegression::gradient(std::span<const double> x) const {
  const double p = predict(x);
  std::vector<double> g(w_.size());
  // shmd-lint: exact-ok(attacker-side analytic gradient of the nominal model)
  for (std::size_t i = 0; i < w_.size(); ++i) g[i] = p * (1.0 - p) * w_[i];
  return g;
}

}  // namespace shmd::nn
