// Training for the dense network: minibatch SGD with momentum, and
// iRPROP− (the resilient-propagation variant FANN defaults to).
//
// Binary cross-entropy loss with a sigmoid output head (the HMD emits
// P(malware)). Training always runs at nominal voltage with exact
// arithmetic — the paper's defense explicitly requires "no retraining or
// fine tuning" of the protected model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"

namespace shmd::nn {

struct TrainSample {
  std::vector<double> x;
  double y = 0.0;  ///< 1 = malware, 0 = benign
};

enum class TrainAlgorithm : std::uint8_t {
  kSgd = 0,
  kRprop,  // iRPROP− (full batch)
};

struct TrainConfig {
  TrainAlgorithm algorithm = TrainAlgorithm::kRprop;
  int epochs = 150;
  // SGD parameters.
  double learning_rate = 0.05;
  double momentum = 0.9;
  std::size_t batch_size = 32;
  // Shared.
  double l2 = 1e-5;
  std::uint64_t shuffle_seed = 0x5EED;
  /// Re-weight classes inversely to frequency during training. HMD corpora
  /// are 5:1 malware-heavy; without balancing the detector buys malware
  /// recall with a large benign false-positive rate.
  bool balance_classes = false;
  /// Early stopping on validation loss; 0 disables.
  int patience = 20;
  double min_delta = 1e-5;
  // iRPROP− step-size schedule.
  double rprop_delta0 = 0.05;
  double rprop_eta_plus = 1.2;
  double rprop_eta_minus = 0.5;
  double rprop_delta_max = 50.0;
  double rprop_delta_min = 1e-7;
};

struct TrainReport {
  int epochs_run = 0;
  double final_train_loss = 0.0;
  double final_val_loss = 0.0;
  bool early_stopped = false;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config = {});

  /// Fit `net` on `train`; if `validation` is non-empty and patience > 0,
  /// stop early when validation loss plateaus and restore the best
  /// parameters seen.
  TrainReport fit(Network& net, std::span<const TrainSample> train,
                  std::span<const TrainSample> validation = {});

  /// Mean binary cross-entropy of `net` on `data` (exact arithmetic).
  [[nodiscard]] static double loss(const Network& net, std::span<const TrainSample> data);

 private:
  TrainConfig config_;
};

}  // namespace shmd::nn
