// ArithmeticContext: where the hardware meets the model.
//
// The paper's integration point (§VI.A): "we integrated our tool to the
// Fast Artificial Neural Network Library (FANN) to simulate the behavior
// of our neural network model under undervolting". Our network routes
// every MAC *product* through an ArithmeticContext:
//
//   ExactContext  — nominal voltage, bit-exact products;
//   FaultyContext — undervolted core: products pass through the stochastic
//                   fault injector (the Stochastic-HMD inference path);
//   NoiseContext  — the §VIII comparison baselines: additive Gaussian noise
//                   whose randomness is *queried per MAC* from a TRNG or
//                   PRNG RandomSource, paying that source's per-query cost.
//
// Additions/accumulations stay exact everywhere: §II observed no faults in
// adders under undervolting.
#pragma once

#include <cstdint>

#include "faultsim/fault_injector.hpp"
#include "rng/random_source.hpp"

namespace shmd::nn {

class ArithmeticContext {
 public:
  virtual ~ArithmeticContext() = default;

  /// One multiply: returns the (possibly perturbed) product a*b.
  [[nodiscard]] virtual double mul(double a, double b) = 0;

  [[nodiscard]] std::uint64_t mac_count() const noexcept { return macs_; }
  void reset_mac_count() noexcept { macs_ = 0; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  void count_mac() noexcept { ++macs_; }

 private:
  std::uint64_t macs_ = 0;
};

/// Bit-exact products (nominal voltage).
class ExactContext final : public ArithmeticContext {
 public:
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b;
  }
  [[nodiscard]] const char* name() const noexcept override { return "exact"; }
};

/// Undervolted products: every multiply may suffer a stochastic timing
/// fault per the injector's error rate and bit-location distribution.
class FaultyContext final : public ArithmeticContext {
 public:
  explicit FaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }
  [[nodiscard]] const char* name() const noexcept override { return "undervolt-faulty"; }

  [[nodiscard]] faultsim::FaultInjector& injector() noexcept { return *injector_; }

 private:
  faultsim::FaultInjector* injector_;
};

/// Additive-noise defense baseline: product + sigma * N(0,1), with the
/// Gaussian drawn from an explicit randomness source (TRNG or PRNG). Each
/// MAC costs one gaussian() (two 64-bit queries) — the overhead §VIII
/// quantifies.
class NoiseContext final : public ArithmeticContext {
 public:
  NoiseContext(rng::RandomSource& source, double sigma) : source_(&source), sigma_(sigma) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b + sigma_ * source_->gaussian();
  }
  [[nodiscard]] const char* name() const noexcept override { return "additive-noise"; }

  [[nodiscard]] rng::RandomSource& source() noexcept { return *source_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  rng::RandomSource* source_;
  double sigma_;
};

}  // namespace shmd::nn
