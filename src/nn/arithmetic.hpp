// ArithmeticContext: where the hardware meets the model.
//
// The paper's integration point (§VI.A): "we integrated our tool to the
// Fast Artificial Neural Network Library (FANN) to simulate the behavior
// of our neural network model under undervolting". Our network routes
// every MAC *product* through an ArithmeticContext:
//
//   ExactContext  — nominal voltage, bit-exact products;
//   FaultyContext — undervolted core: products pass through the stochastic
//                   fault injector (the Stochastic-HMD inference path);
//   NoiseContext  — the §VIII comparison baselines: additive Gaussian noise
//                   whose randomness is *queried per MAC* from a TRNG or
//                   PRNG RandomSource, paying that source's per-query cost.
//
// Additions/accumulations stay exact everywhere: §II observed no faults in
// adders under undervolting.
//
// Three granularities:
//
//   mul(a, b)     — one product, the paper's literal per-MAC hook;
//   dot(w, x, n)  — one output row's worth of products, exact-accumulated
//                   (adders never fault, §II) under the lane-blocked
//                   contract (kernels/kernels.hpp): four strided partial
//                   accumulators (lane k sums indices j % 4 == k,
//                   ascending), reduced in fixed lane order. Every
//                   context — including the mul()-looping fallback —
//                   implements that one order, so results are
//                   bit-identical across contexts, ISAs, and kernel
//                   dispatch choices.
//   gemm(...)     — one layer over a windows-major tile of inputs (the
//                   cross-request batched forward). The default loops
//                   dot() row-major, so the per-product order — and hence
//                   any context's randomness consumption — is identical
//                   to running the rows one at a time; overrides may
//                   block for throughput only where no product consumes
//                   randomness (exact spans).
#pragma once

#include <cstdint>

#include "faultsim/fault_injector.hpp"
#include "nn/kernels/kernels.hpp"
#include "rng/random_source.hpp"

namespace shmd::nn {

namespace detail {

/// Exact GEMM entry shared by ExactContext::gemm and the fault-free fast
/// path of FaultyContext::gemm: routes to the dispatched lane-blocked
/// kernel table (AVX2 when the host has it, portable scalar otherwise).
/// Every (row, output) output is bit-identical to a standalone
/// kernels dot() of that row — blocking reorders *independent*
/// accumulations only, never the summands within one.
inline void exact_gemm(const double* w, const double* bias, const double* x, std::size_t rows,
                       std::size_t in_dim, std::size_t out_dim, double* y) {
  kernels::active().gemm(w, bias, x, rows, in_dim, out_dim, y);
}

}  // namespace detail

class ArithmeticContext {
 public:
  virtual ~ArithmeticContext() = default;

  /// One multiply: returns the (possibly perturbed) product a*b.
  [[nodiscard]] virtual double mul(double a, double b) = 0;

  /// One dot product of length n: sum of (possibly perturbed) products
  /// w[i]*x[i], accumulated exactly (§II: adders never fault) under the
  /// lane-blocked contract — lane i % 4 takes product i, lanes reduce in
  /// fixed order (kernels/kernels.hpp). The fallback routes every
  /// product through mul() in ascending i, so a context that only
  /// implements mul() keeps bit-identical behavior; overrides must
  /// perturb each product with the same marginal distribution mul()
  /// would and accumulate under the same lane schedule.
  [[nodiscard]] virtual double dot(const double* w, const double* x, std::size_t n) {
    kernels::Acc4 acc{};
    for (std::size_t i = 0; i < n; ++i) acc.lane[i % kernels::kLanes] += mul(w[i], x[i]);
    return kernels::reduce(acc);
  }

  /// One dense layer over a windows-major tile: `rows` input rows of
  /// width in_dim (x[r * in_dim + i]), out_dim weight rows (row-major,
  /// w[o * in_dim + i]), producing y[r * out_dim + o] =
  /// bias[o] + dot(w_o, x_r). The bias joins after the lane reduction, as
  /// in Network::forward. The fallback runs the rows in ascending r and,
  /// within a row, the outputs in ascending o via dot() — the exact
  /// per-product order of the unbatched forward — so a stateful context's
  /// randomness consumption is identical to scoring the rows one at a
  /// time. Overrides must preserve that per-product order wherever a
  /// product consumes randomness; only randomness-free spans may be
  /// reblocked for throughput.
  virtual void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
                    std::size_t in_dim, std::size_t out_dim, double* y) {
    for (std::size_t r = 0; r < rows; ++r) {
      const double* xr = x + r * in_dim;
      double* yr = y + r * out_dim;
      for (std::size_t o = 0; o < out_dim; ++o) yr[o] = bias[o] + dot(w + o * in_dim, xr, in_dim);
    }
  }

  [[nodiscard]] std::uint64_t mac_count() const noexcept { return macs_; }
  void reset_mac_count() noexcept { macs_ = 0; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  void count_mac() noexcept { ++macs_; }
  /// Span-level MAC accounting for dot() overrides that bypass mul().
  void count_macs(std::uint64_t n) noexcept { macs_ += n; }

 private:
  std::uint64_t macs_ = 0;
};

/// Bit-exact products (nominal voltage).
class ExactContext final : public ArithmeticContext {
 public:
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b;
  }

  /// Dispatched lane-blocked dot (kernels::active(): AVX2 on capable
  /// x86 hosts, portable scalar otherwise), free of per-MAC virtual
  /// dispatch. Both kernel tables realize the identical operation
  /// sequence as the mul() fallback's lane loop, so results stay
  /// bit-identical across contexts and dispatch choices.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    return kernels::active().dot(w, x, n);
  }

  /// Dispatched lane-blocked GEMM: the kernel may reblock rows for
  /// weight reuse because exact products consume no randomness and every
  /// (row, output) keeps its own lane accumulators — results are
  /// bit-identical to the dot()-looping fallback.
  void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
            std::size_t in_dim, std::size_t out_dim, double* y) override {
    count_macs(static_cast<std::uint64_t>(rows) * in_dim * out_dim);
    detail::exact_gemm(w, bias, x, rows, in_dim, out_dim, y);
  }

  [[nodiscard]] const char* name() const noexcept override { return "exact"; }
};

/// Undervolted products: every multiply may suffer a stochastic timing
/// fault per the injector's error rate and bit-location distribution.
class FaultyContext final : public ArithmeticContext {
 public:
  /// Above this error rate the dot() kernel switches from geometric
  /// skip-ahead to per-product Bernoulli draws: the expected gap between
  /// faults drops below ~1/8 of a cache line of products and the log()
  /// in each geometric draw costs more than the Bernoulli compares it
  /// replaces. The paper's operating points (er <= 0.15, Fig. 2a) sit in
  /// the skip-ahead regime.
  static constexpr double kSkipAheadMaxRate = 0.125;

  explicit FaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }

  /// Geometric skip-ahead kernel: a Bernoulli(er) fault decision per
  /// product is equivalent to sampling the gap to the next fault site
  /// from Geometric(er), so the products between sampled sites are exact
  /// and only the sites themselves pay for bit-flip corruption. The
  /// fault-free runs accumulate under the lane-blocked contract through
  /// the dispatched block kernel (full SIMD width between fault sites):
  /// lane assignment is by global index, so a scalar head aligns each
  /// run to a block boundary, the block kernel eats the middle, and a
  /// scalar tail plus the corrupted product finish it — the exact value
  /// an entirely-scalar lane-blocked loop would produce. Marginal
  /// per-product fault probability, bit-location distribution, and
  /// FaultStats.operations accounting all match the scalar mul() path
  /// (geometric memorylessness makes resampling at span boundaries
  /// sound); only the RNG consumption pattern differs, which is exactly
  /// the moving-target randomness the defense wants fresh per inference
  /// anyway.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    faultsim::FaultInjector& inj = *injector_;
    const double er = inj.error_rate();
    if (er <= 0.0) {
      // Fault-free operating point: no product consumes randomness, so
      // the whole row runs through the dispatched exact kernel —
      // bit- and RNG-stream-identical to the sampled path below, which
      // would draw nothing either (next_fault_gap() returns kNoFault
      // without touching the generator).
      inj.count_operations(n);
      return kernels::active().dot(w, x, n);
    }
    if (er > kSkipAheadMaxRate) {
      // Dense-fault regime: geometric gaps are mostly tiny and a log()
      // per gap costs more than a Bernoulli draw per product, so corrupt
      // per product (still one virtual call per row, not per MAC).
      // corrupt_product() advances FaultStats.operations itself, one per
      // product — the same opportunity count the sampled branch books in
      // bulk via count_operations(n).
      kernels::Acc4 acc{};
      for (std::size_t i = 0; i < n; ++i) {
        acc.lane[i % kernels::kLanes] += inj.corrupt_product(w[i] * x[i]);
      }
      return kernels::reduce(acc);
    }
    inj.count_operations(n);
    const kernels::KernelTable& kt = kernels::active();
    kernels::Acc4 acc{};
    std::size_t i = 0;
    while (i < n) {
      const std::size_t gap = inj.next_fault_gap();
      const bool fault_free = gap >= n - i;
      const std::size_t site = fault_free ? n : i + gap;
      // Scalar head up to the next lane-aligned index, dispatched block
      // kernel over the aligned middle, scalar tail to the fault site.
      // The head/tail code is inline — identical machine code whichever
      // kernel table is active — so native and forced-portable runs of
      // one binary agree bit-for-bit. Across BUILDS it agrees because
      // contraction is off project-wide: with default -ffp-contract a
      // baseline-FMA target would fuse these inlined accumulates into
      // FMA and split er>0 scores from the kernel-TU value.
      const std::size_t aligned = i + (kernels::kLanes - i % kernels::kLanes) % kernels::kLanes;
      const std::size_t head_end = aligned < site ? aligned : site;
      kernels::accumulate_scalar(w, x, i, head_end, acc);
      i = head_end;
      const std::size_t blocks = (site - i) / kernels::kLanes;
      if (blocks > 0) {
        kt.accumulate_blocks(w + i, x + i, blocks, acc);
        i += blocks * kernels::kLanes;
      }
      kernels::accumulate_scalar(w, x, i, site, acc);
      i = site;
      if (fault_free) break;
      acc.lane[i % kernels::kLanes] += inj.corrupt_product_at_fault(w[i] * x[i]);
      ++i;
    }
    return kernels::reduce(acc);
  }

  /// Tiled faulty forward. At the fault-free operating point (er == 0)
  /// no product consumes randomness — next_fault_gap() returns kNoFault
  /// without touching the RNG — so the whole tile runs through the
  /// dispatched exact kernel, bit- and RNG-stream-identical to the
  /// row-wise path; only the FaultStats opportunity count need match.
  /// Under faults the stream is live: products must be consumed in the
  /// exact row-major order of the fallback (the per-request fault stream
  /// is anchored to admission order, and each dot() call re-anchors the
  /// geometric gap at its row boundary exactly as the unbatched forward
  /// does), so the tile loops this class's own dot() — resolved
  /// non-virtually, keeping one (devirtualized) call per output row.
  void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
            std::size_t in_dim, std::size_t out_dim, double* y) override {
    faultsim::FaultInjector& inj = *injector_;
    if (inj.error_rate() <= 0.0) {
      const std::uint64_t n = static_cast<std::uint64_t>(rows) * in_dim * out_dim;
      count_macs(n);
      inj.count_operations(n);
      detail::exact_gemm(w, bias, x, rows, in_dim, out_dim, y);
      return;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* xr = x + r * in_dim;
      double* yr = y + r * out_dim;
      for (std::size_t o = 0; o < out_dim; ++o) {
        yr[o] = bias[o] + FaultyContext::dot(w + o * in_dim, xr, in_dim);
      }
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "undervolt-faulty"; }

  [[nodiscard]] faultsim::FaultInjector& injector() noexcept { return *injector_; }

 private:
  faultsim::FaultInjector* injector_;
};

/// Additive-noise defense baseline: product + sigma * N(0,1), with the
/// Gaussian drawn from an explicit randomness source (TRNG or PRNG). Each
/// MAC costs one gaussian() (two 64-bit queries) — the overhead §VIII
/// quantifies.
class NoiseContext final : public ArithmeticContext {
 public:
  NoiseContext(rng::RandomSource& source, double sigma) : source_(&source), sigma_(sigma) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b + sigma_ * source_->gaussian();
  }

  /// Batched row loop, lane-blocked like every other dot(). Still one
  /// gaussian() query per product — the per-query randomness cost is the
  /// very overhead §VIII measures, so it must not be amortized away;
  /// only the per-MAC virtual dispatch is.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    rng::RandomSource& src = *source_;
    kernels::Acc4 acc{};
    for (std::size_t i = 0; i < n; ++i) {
      acc.lane[i % kernels::kLanes] += w[i] * x[i] + sigma_ * src.gaussian();
    }
    return kernels::reduce(acc);
  }

  [[nodiscard]] const char* name() const noexcept override { return "additive-noise"; }

  [[nodiscard]] rng::RandomSource& source() noexcept { return *source_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  rng::RandomSource* source_;
  double sigma_;
};

}  // namespace shmd::nn
